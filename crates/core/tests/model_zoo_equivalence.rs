//! Cross-validation of the workload model zoo.
//!
//! The tentpole claims of the arrival-curve / offset-transaction
//! extension:
//!
//! * an arrival-curve workload constructed from an event-stream task gets
//!   the **same analysis** (not just the same verdict) from every
//!   registered test — the conversion is exact and structure preserving;
//! * the staircase built from piecewise-linear affine segments reproduces
//!   the segment minimum exactly, and the conservative leaky-bucket
//!   decomposition only ever errs toward pessimism;
//! * offset-transaction verdicts from the candidate-exact analysis agree
//!   with the exhaustive oracle on small systems, and the synchronous
//!   conservative decomposition is sound.

use edf_analysis::tests::{ProcessorDemandTest, QpaTest};
use edf_analysis::transactions::{analyze_transaction_system, exhaustive_transaction_check};
use edf_analysis::workload::PreparedWorkload;
use edf_analysis::{all_tests, FeasibilityTest, Verdict, Workload};
use edf_gen::{ArrivalCurveConfig, TransactionConfig};
use edf_model::{
    AffineSegment, ArrivalCurve, ArrivalCurveTask, EventStream, EventStreamTask, EventTuple, Task,
    TaskSet, Time, Transaction, TransactionPart, TransactionSystem,
};
use proptest::prelude::*;

/// Random event streams with bounded cycles: 1–3 tuples, each periodic
/// (cycle 4–30) or one-shot, offsets 0–20.
fn arb_stream() -> impl Strategy<Value = EventStream> {
    prop::collection::vec((0u64..=30, 0u64..=20), 1..=3).prop_map(|tuples| {
        let tuples = tuples
            .into_iter()
            .map(|(cycle, offset)| {
                if cycle < 4 {
                    EventTuple::single(Time::new(offset))
                } else {
                    EventTuple::periodic(Time::new(cycle), Time::new(offset))
                }
            })
            .collect();
        EventStream::new(tuples).expect("non-empty tuples")
    })
}

fn arb_stream_task() -> impl Strategy<Value = EventStreamTask> {
    (arb_stream(), 1u64..=3, 1u64..=15).prop_map(|(stream, c, d)| {
        EventStreamTask::new(stream, Time::new(c), Time::new(d)).expect("positive parameters")
    })
}

fn arb_small_task() -> impl Strategy<Value = Task> {
    (1u64..=2, 1u64..=10, 2u64..=12).prop_filter_map("valid task", |(c, d, t)| {
        Task::from_ticks(c.min(t), d, t).ok()
    })
}

fn arb_transaction() -> impl Strategy<Value = Transaction> {
    (
        4u64..=16,
        prop::collection::vec((0u64..=15, 1u64..=2, 1u64..=10), 1..=3),
    )
        .prop_map(|(period, parts)| {
            let parts = parts
                .into_iter()
                .map(|(offset, wcet, deadline)| {
                    TransactionPart::new(
                        Time::new(offset % period),
                        Time::new(wcet),
                        Time::new(deadline),
                    )
                })
                .collect();
            Transaction::new(Time::new(period), parts).expect("valid by construction")
        })
}

fn arb_transaction_system() -> impl Strategy<Value = TransactionSystem> {
    (
        prop::collection::vec(arb_small_task(), 0..=2),
        prop::collection::vec(arb_transaction(), 1..=2),
    )
        .prop_map(|(sporadic, transactions)| {
            TransactionSystem::new(TaskSet::from_tasks(sporadic), transactions)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// The acceptance criterion of the model-zoo tentpole: the arrival
    /// curve of an event-stream task is analysis-equivalent under **every**
    /// registered test.
    #[test]
    fn curve_of_event_stream_task_is_equivalent_under_every_registered_test(
        stream_task in arb_stream_task(),
        background in prop::collection::vec(arb_small_task(), 0..=2),
    ) {
        let curve_task = ArrivalCurveTask::from_event_stream_task(&stream_task);

        // The curve and the stream bound events identically...
        for i in (0..300u64).step_by(7) {
            let i = Time::new(i);
            prop_assert_eq!(curve_task.curve().eta(i), stream_task.stream().eta(i));
            prop_assert_eq!(curve_task.dbf(i), stream_task.dbf(i));
        }
        // ... and the round trip is lossless.
        prop_assert_eq!(&curve_task.to_event_stream_task().unwrap(), &stream_task);

        // Same analysis from every registered test, alone and with a
        // sporadic background (mixed via explicit component concatenation).
        let background = TaskSet::from_tasks(background);
        let stream_solo = PreparedWorkload::new(&stream_task);
        let curve_solo = PreparedWorkload::new(&curve_task);
        prop_assert_eq!(stream_solo.components(), curve_solo.components());

        let mut stream_mixed = Workload::demand_components(&background);
        stream_mixed.extend(Workload::demand_components(&stream_task));
        let mut curve_mixed = Workload::demand_components(&background);
        curve_mixed.extend(Workload::demand_components(&curve_task));
        let stream_mixed = PreparedWorkload::from_components(stream_mixed);
        let curve_mixed = PreparedWorkload::from_components(curve_mixed);

        for test in all_tests() {
            prop_assert_eq!(
                test.analyze_prepared(&stream_solo),
                test.analyze_prepared(&curve_solo),
                "{} diverges between models", test.name()
            );
            prop_assert_eq!(
                test.analyze_prepared(&stream_mixed),
                test.analyze_prepared(&curve_mixed),
                "{} diverges on the mixed system", test.name()
            );
        }
    }

    /// `from_affine_segments` is exact: the staircase equals the pointwise
    /// minimum of the affine pieces at every window length.
    #[test]
    fn affine_staircase_matches_the_segment_minimum(
        segments in prop::collection::vec((0u64..=4, 1u64..=30), 1..=3),
    ) {
        let pieces: Vec<AffineSegment> = segments
            .iter()
            .map(|&(b, d)| AffineSegment::new(b, Time::new(d)))
            .collect();
        let curve = ArrivalCurve::from_affine_segments(&pieces).expect("small bursts");
        for i in 0..=240u64 {
            let expected = pieces.iter().map(|p| p.bound(Time::new(i))).min().unwrap();
            prop_assert_eq!(curve.eta(Time::new(i)), expected, "at {}", i);
        }
    }

    /// The conservative decomposition dominates the exact demand pointwise
    /// and never converts an infeasible system into a feasible one.
    #[test]
    fn conservative_curve_decomposition_is_sound(
        segments in prop::collection::vec((1u64..=4, 2u64..=30), 1..=2),
        c in 1u64..=3,
        d in 1u64..=15,
        background in prop::collection::vec(arb_small_task(), 0..=2),
    ) {
        let pieces: Vec<AffineSegment> = segments
            .iter()
            .map(|&(b, dist)| AffineSegment::new(b, Time::new(dist)))
            .collect();
        let curve = ArrivalCurve::from_affine_segments(&pieces).expect("small bursts");
        let exact = ArrivalCurveTask::new(curve, Time::new(c), Time::new(d)).unwrap();
        let conservative = exact.clone().conservative();

        let background = TaskSet::from_tasks(background);
        let mut exact_components = Workload::demand_components(&background);
        exact_components.extend(Workload::demand_components(&exact));
        let mut conservative_components = Workload::demand_components(&background);
        conservative_components.extend(Workload::demand_components(&conservative));
        let exact = PreparedWorkload::from_components(exact_components);
        let conservative = PreparedWorkload::from_components(conservative_components);

        for i in (0..400u64).step_by(9) {
            let i = Time::new(i);
            prop_assert!(
                conservative.dbf(i) >= exact.dbf(i),
                "conservative demand below exact at {}", i
            );
        }
        for test in [
            Box::new(ProcessorDemandTest::new()) as Box<dyn FeasibilityTest>,
            Box::new(QpaTest::new()),
        ] {
            let pessimistic = test.analyze_prepared(&conservative).verdict;
            let reference = test.analyze_prepared(&exact).verdict;
            if pessimistic.is_feasible() {
                prop_assert!(
                    reference.is_feasible(),
                    "{} accepted conservatively but rejects the exact form", test.name()
                );
            }
        }
    }

    /// Candidate-exact transaction verdicts match the exhaustive oracle;
    /// the synchronous conservative decomposition never over-accepts.
    #[test]
    fn transaction_analysis_matches_the_exhaustive_oracle(
        system in arb_transaction_system(),
    ) {
        let oracle = exhaustive_transaction_check(&system);
        prop_assert!(
            oracle.verdict.is_decisive(),
            "small cycles keep the oracle horizon exact"
        );
        for test in [
            Box::new(ProcessorDemandTest::new()) as edf_analysis::BoxedTest,
            Box::new(QpaTest::new()),
        ] {
            prop_assert_eq!(
                analyze_transaction_system(test.as_ref(), &system).verdict,
                oracle.verdict,
                "{} disagrees with the exhaustive oracle on {}", test.name(), &system
            );
        }
        // Synchronous over-approximation: sound, possibly pessimistic.
        let sync_verdict = ProcessorDemandTest::new().analyze_workload(&system).verdict;
        if sync_verdict.is_feasible() {
            prop_assert!(oracle.verdict.is_feasible(), "unsound synchronous acceptance");
        }
    }
}

/// Generator-driven smoke pass: every random arrival-curve task and
/// transaction system from `edf-gen` flows through the full registered
/// suite without panics, and exact tests agree among themselves.
#[test]
fn generated_zoo_workloads_flow_through_the_full_suite() {
    let curve_tasks = ArrivalCurveConfig::new()
        .task_count(6..=6)
        .distance(30..=120)
        .deadline(5..=60)
        .seed(2_005)
        .generate();
    let prepared = PreparedWorkload::new(&curve_tasks);
    let suite = all_tests();
    let reference = ProcessorDemandTest::new().analyze_prepared(&prepared);
    for test in &suite {
        let analysis = test.analyze_prepared(&prepared);
        if test.is_exact() {
            assert_eq!(
                analysis.verdict,
                reference.verdict,
                "{} diverges from the processor-demand baseline",
                test.name()
            );
        } else if analysis.verdict == Verdict::Feasible {
            assert!(
                reference.verdict.is_feasible(),
                "{} over-accepts",
                test.name()
            );
        }
    }

    let system = TransactionConfig::new()
        .transaction_count(2..=2)
        .part_count(1..=3)
        .period(10..=40)
        .seed(2_005)
        .generate_system(TaskSet::new());
    let exact = analyze_transaction_system(&ProcessorDemandTest::new(), &system);
    let qpa = analyze_transaction_system(&QpaTest::new(), &system);
    assert_eq!(exact.verdict, qpa.verdict);
}
