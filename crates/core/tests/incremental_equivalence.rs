//! Property tests of the incremental sensitivity engine's contract: every
//! probe and every search through a [`ScaledView`] is **bit-identical** to
//! the from-scratch path it replaces —
//!
//! * a view probe produces the same prepared state (components, exact
//!   utilization comparison, §4.3 bounds, deadline order) and the same
//!   [`Analysis`] from every registered test as a cold re-preparation;
//! * `breakdown_scaling_workload` and `wcet_slack_workload` equal their
//!   naive [`sensitivity::reference`] implementations — across sporadic
//!   task sets, event streams and mixed systems;
//! * `sensitivity_sweep` equals the per-workload searches.

use edf_analysis::incremental::ScaledView;
use edf_analysis::sensitivity::{
    breakdown_scaling_workload, reference, sensitivity_sweep, wcet_slack, wcet_slack_workload,
};
use edf_analysis::tests::{AllApproximatedTest, ProcessorDemandTest, QpaTest};
use edf_analysis::workload::{MixedSystem, PreparedWorkload};
use edf_analysis::{all_tests, FeasibilityTest};
use edf_model::{EventStream, EventStreamTask, Task, TaskSet, Time};
use proptest::prelude::*;

fn arb_task() -> impl Strategy<Value = Task> {
    (1u64..=20, 1u64..=120, 2u64..=100).prop_filter_map("valid task", |(c, d, t)| {
        Task::from_ticks(c.min(t), d, t).ok()
    })
}

fn arb_set() -> impl Strategy<Value = TaskSet> {
    prop::collection::vec(arb_task(), 1..=6).prop_map(TaskSet::from_tasks)
}

fn arb_stream_task() -> impl Strategy<Value = EventStreamTask> {
    (1u64..=3, 1u64..=6, 20u64..=80, 1u64..=4, 2u64..=25).prop_map(|(burst, inner, outer, c, d)| {
        EventStreamTask::new(
            EventStream::bursty(burst, Time::new(inner), Time::new(outer)),
            Time::new(c),
            Time::new(d),
        )
        .expect("positive parameters")
    })
}

fn arb_mixed() -> impl Strategy<Value = MixedSystem> {
    (arb_set(), prop::collection::vec(arb_stream_task(), 0..=2))
        .prop_map(|(ts, streams)| MixedSystem::new(ts, streams))
}

/// Asserts that a view probe and a cold preparation are observably
/// identical, including the analyses of all registered tests.
fn assert_prepared_identical(view: &PreparedWorkload, cold: &PreparedWorkload) {
    assert_eq!(view.components(), cold.components());
    assert_eq!(view.utilization().to_bits(), cold.utilization().to_bits());
    assert_eq!(
        view.utilization_exceeds_one(),
        cold.utilization_exceeds_one()
    );
    assert_eq!(view.bounds(), cold.bounds());
    assert_eq!(view.deadline_order(), cold.deadline_order());
    for test in all_tests() {
        assert_eq!(
            test.analyze_prepared(view),
            test.analyze_prepared(cold),
            "{} diverges between incremental view and cold preparation",
            test.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Uniform-scaling probes reproduce `with_scaled_wcets` exactly, for
    /// any probe sequence (the searches probe in data-dependent order).
    #[test]
    fn scaling_probes_equal_cold_preparation(
        system in arb_mixed(),
        numers in prop::collection::vec(0u64..=16_000, 1..=8),
    ) {
        let base = PreparedWorkload::new(&system);
        let mut view = ScaledView::new(&base);
        for numer in numers {
            let probed = view.scale_wcets(numer, 1_000);
            let cold = base.with_scaled_wcets(numer, 1_000);
            assert_prepared_identical(probed, &cold);
        }
    }

    /// Breakdown searches through the view equal the re-preparing
    /// reference, on sporadic sets.
    #[test]
    fn breakdown_matches_reference_on_task_sets(ts in arb_set()) {
        for test in [
            Box::new(AllApproximatedTest::new()) as Box<dyn FeasibilityTest>,
            Box::new(QpaTest::new()),
        ] {
            prop_assert_eq!(
                breakdown_scaling_workload(&ts, test.as_ref()),
                reference::breakdown_scaling_workload(&ts, test.as_ref()),
                "{} breakdown diverges on {}", test.name(), ts
            );
        }
    }

    /// ... and on event-stream / mixed systems.
    #[test]
    fn breakdown_matches_reference_on_mixed_systems(system in arb_mixed()) {
        let test = AllApproximatedTest::new();
        prop_assert_eq!(
            breakdown_scaling_workload(&system, &test),
            reference::breakdown_scaling_workload(&system, &test)
        );
    }

    /// Slack searches through the view equal the re-preparing reference
    /// for every component, and the `TaskSet` entry point stays a thin
    /// wrapper over the workload-generic search.
    #[test]
    fn wcet_slack_matches_reference(ts in arb_set()) {
        let test = ProcessorDemandTest::new();
        for index in 0..ts.len() + 1 {
            let incremental = wcet_slack_workload(&ts, index, &test);
            prop_assert_eq!(
                incremental,
                reference::wcet_slack_workload(&ts, index, &test),
                "component {} of {}", index, ts
            );
            prop_assert_eq!(incremental, wcet_slack(&ts, index, &test));
        }
    }

    /// Slack equivalence on mixed systems (stream components included).
    #[test]
    fn wcet_slack_matches_reference_on_mixed_systems(system in arb_mixed()) {
        let test = AllApproximatedTest::new();
        let components = PreparedWorkload::new(&system).components().len();
        for index in 0..components {
            prop_assert_eq!(
                wcet_slack_workload(&system, index, &test),
                reference::wcet_slack_workload(&system, index, &test),
                "component {}", index
            );
        }
    }

    /// The batch front end reports exactly what the individual searches
    /// report.
    #[test]
    fn sweep_matches_individual_searches(
        workloads in prop::collection::vec(arb_set(), 1..=4),
    ) {
        let test = AllApproximatedTest::new();
        let reports = sensitivity_sweep(&workloads, &test);
        prop_assert_eq!(reports.len(), workloads.len());
        for (workload, report) in workloads.iter().zip(&reports) {
            prop_assert_eq!(
                report.breakdown,
                breakdown_scaling_workload(workload, &test)
            );
            prop_assert_eq!(report.component_slack.len(), workload.len());
            for (index, slack) in report.component_slack.iter().enumerate() {
                prop_assert_eq!(*slack, wcet_slack_workload(workload, index, &test));
            }
        }
    }

    /// The slack really is the last feasible inflation for stream
    /// components too: applying it keeps the system accepted, one more
    /// tick does not (unless capped by the headroom).
    #[test]
    fn workload_slack_is_tight(system in arb_mixed(), pick in 0usize..16) {
        let test = ProcessorDemandTest::new();
        let base = PreparedWorkload::new(&system);
        // `arb_mixed` always carries at least one sporadic task.
        let count = base.components().len();
        let index = pick % count;
        if let Some(slack) = wcet_slack_workload(&system, index, &test) {
            let component = base.components()[index];
            let mut view = ScaledView::new(&base);
            let accepted = test
                .analyze_prepared(view.with_component_wcet(index, component.wcet() + slack))
                .verdict
                .is_feasible();
            prop_assert!(accepted, "slack {} not feasible at component {}", slack, index);
            let headroom = match component.period() {
                Some(period) => period.saturating_sub(component.wcet()),
                None => component
                    .first_deadline()
                    .saturating_sub(component.release_offset())
                    .saturating_sub(component.wcet()),
            };
            if slack < headroom {
                let over = test
                    .analyze_prepared(
                        view.with_component_wcet(index, component.wcet() + slack + Time::ONE),
                    )
                    .verdict
                    .is_feasible();
                prop_assert!(!over, "slack {} not maximal at component {}", slack, index);
            }
        }
    }

    /// Regression guard for the removed `.max(Time::ONE)` floor: a zero
    /// scaling through the view yields genuinely zero costs, utilization
    /// and demand (no silent inflation to one tick), on mixed systems
    /// where one stream task spawns several components sharing a cost.
    #[test]
    fn zero_scaling_probes_are_truly_zero(system in arb_mixed()) {
        let base = PreparedWorkload::new(&system);
        let mut view = ScaledView::new(&base);
        let zeroed = view.scale_wcets(0, 1_000);
        prop_assert!(zeroed.components().iter().all(|c| c.wcet().is_zero()));
        prop_assert_eq!(zeroed.utilization(), 0.0);
        prop_assert_eq!(zeroed.dbf(Time::new(100_000)), Time::ZERO);
    }
}
