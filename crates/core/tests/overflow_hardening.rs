//! Overflow hardening: workloads with parameters at or near `u64::MAX`
//! must never panic, wrap, or produce an unsound verdict anywhere in the
//! pipeline — bound computation (the period-lcm chain saturates to
//! `None`), exact rational utilization sums, demand queries at
//! `Time::MAX`, capped anytime analysis, and the incremental edit path.
//!
//! The soundness contract under saturation is asymmetric: a decisive
//! verdict must still be *correct* (decisive answers from the capped
//! test are exact), while `Unknown` is always acceptable.  These tests
//! therefore pin crash-freedom everywhere and decisiveness only where
//! the ground truth is analytically obvious (`U > 1` is infeasible; a
//! lone component with `C = D = T` is feasible).

use edf_analysis::bounds::{
    baruah_components, busy_period_components, george_components, hyperperiod_components,
    BoundRefresher, FeasibilityBounds,
};
use edf_analysis::incremental::EditView;
use edf_analysis::kernel::AnalysisScratch;
use edf_analysis::tests::{AllApproximatedTest, DensityTest, LiuLaylandTest};
use edf_analysis::workload::DemandComponent;
use edf_analysis::{FeasibilityTest, PreparedWorkload, Verdict};
use edf_model::Time;
use proptest::prelude::*;

/// `2^63` and `2^63 - 1` are coprime, so their lcm (`~2^126`) overflows
/// any `u64` chain: the hyperperiod must saturate to `None`, never wrap.
const HUGE_A: u64 = 1 << 63;
const HUGE_B: u64 = (1 << 63) - 1;

fn huge(wcet: u64, deadline: u64, period: u64) -> DemandComponent {
    DemandComponent::periodic(Time::new(wcet), Time::new(deadline), Time::new(period))
}

#[test]
fn period_lcm_saturates_to_none_instead_of_wrapping() {
    let components = vec![huge(1, HUGE_A, HUGE_A), huge(1, HUGE_B, HUGE_B)];
    // A wrapped lcm would come out tiny and produce a (dangerously small)
    // bogus hyperperiod; saturation must report "no bound" instead.
    assert_eq!(hyperperiod_components(&components), None);
    // The other bound families must also survive the magnitudes (they are
    // free to answer None; they must not panic or wrap below max D).
    for bound in [
        baruah_components(&components),
        george_components(&components),
        busy_period_components(&components),
    ]
    .into_iter()
    .flatten()
    {
        assert!(bound >= Time::new(1), "degenerate bound {bound:?}");
    }
    let bounds = FeasibilityBounds::for_components(&components);
    let _ = bounds.analysis_horizon();
}

#[test]
fn bound_refresher_survives_huge_periods_across_wcet_refreshes() {
    // The refresher's period-lcm chain is saturated (coprime huge
    // periods); WCET perturbations — the `refresh` contract — must keep
    // agreeing bit-for-bit with a cold computation, from near-zero cost
    // through the overloaded regime (`U` near 2) and back.
    let base = vec![huge(1, HUGE_A, HUGE_A), huge(1, HUGE_B, HUGE_B)];
    let mut refresher = BoundRefresher::new(&base);
    for wcet in [1u64, 1 << 40, HUGE_B, 1] {
        let perturbed = vec![huge(wcet, HUGE_A, HUGE_A), huge(wcet, HUGE_B, HUGE_B)];
        let refreshed = refresher.refresh(&perturbed);
        let cold = FeasibilityBounds::for_components(&perturbed);
        assert_eq!(
            refreshed.analysis_horizon(),
            cold.analysis_horizon(),
            "wcet {wcet}"
        );
    }
}

#[test]
fn utilization_overload_near_max_is_detected_exactly() {
    // Two components each with C = T = u64::MAX: U = 2 exactly.  The
    // rational sum must overflow-safely conclude U > 1, and every
    // utilization-based test must answer a decisive (exact) Infeasible.
    let components = vec![
        huge(u64::MAX, u64::MAX, u64::MAX),
        huge(u64::MAX, u64::MAX, u64::MAX),
    ];
    let prepared = PreparedWorkload::from_components(components);
    assert!(prepared.utilization_exceeds_one());
    assert_eq!(
        LiuLaylandTest::new().analyze_prepared(&prepared).verdict,
        Verdict::Infeasible
    );
    assert_eq!(
        AllApproximatedTest::new()
            .with_max_level(2)
            .analyze_prepared(&prepared)
            .verdict,
        Verdict::Infeasible
    );
}

#[test]
fn lone_saturated_component_is_feasible_and_queryable_at_time_max() {
    // C = D = T = u64::MAX: dbf(t) <= t for every t, so the workload is
    // feasible, U = 1 exactly, and demand at Time::MAX must not wrap.
    let prepared = PreparedWorkload::from_components(vec![huge(u64::MAX, u64::MAX, u64::MAX)]);
    assert!(!prepared.utilization_exceeds_one());
    assert_eq!(prepared.dbf(Time::MAX), Time::MAX);
    assert_eq!(prepared.dbf(Time::new(u64::MAX - 1)), Time::ZERO);
    let analysis = AllApproximatedTest::new().analyze_prepared(&prepared);
    assert_eq!(analysis.verdict, Verdict::Feasible);
}

#[test]
fn tiny_utilization_with_huge_coprime_periods_is_decided_without_a_bound() {
    // Density is minuscule but the hyperperiod overflows: the sufficient
    // tests must still accept from the utilization/density side alone.
    let components = vec![huge(1, HUGE_A, HUGE_A), huge(1, HUGE_B, HUGE_B)];
    let prepared = PreparedWorkload::from_components(components);
    assert!(!prepared.utilization_exceeds_one());
    assert_eq!(
        DensityTest::new().analyze_prepared(&prepared).verdict,
        Verdict::Feasible
    );
}

#[test]
fn edit_view_survives_saturated_components() {
    let mut scratch = AnalysisScratch::new();
    let base = PreparedWorkload::from_components(vec![huge(1, 9, 10)]);
    let mut view = EditView::new(&base);
    let index = view.insert_component(huge(u64::MAX, u64::MAX, u64::MAX));
    let capped = AllApproximatedTest::new().with_max_level(4);
    let verdict = capped
        .analyze_prepared_with(view.prepared(), &mut scratch)
        .verdict;
    // Aggregate demand exceeds u64::MAX in some intervals; a decisive
    // answer must be Infeasible (the combined U > 1), Unknown is fine.
    assert_ne!(verdict, Verdict::Feasible);
    view.remove_component(index);
    view.commit();
    let verdict = capped
        .analyze_prepared_with(view.prepared(), &mut scratch)
        .verdict;
    assert_eq!(verdict, Verdict::Feasible);
}

/// Near-`u64::MAX` parameter soup: values drawn from the top of the
/// range mixed with small ones.  Nothing may panic, and any decisive
/// verdict must be consistent with the exact `U > 1` overload check.
fn arb_extreme_component() -> impl Strategy<Value = DemandComponent> {
    let extreme = prop_oneof![
        (u64::MAX - 8)..=u64::MAX,
        1u64..=4u64,
        HUGE_A..=HUGE_A,
        HUGE_B..=HUGE_B,
    ];
    (extreme.clone(), extreme.clone(), extreme).prop_map(|(c, d, t)| {
        let period = t.max(1);
        huge(c.min(period).max(1), d.max(1), period)
    })
}

proptest! {
    #[test]
    fn extreme_parameters_never_panic_and_stay_sound(
        components in prop::collection::vec(arb_extreme_component(), 1..=6),
    ) {
        let bounds = FeasibilityBounds::for_components(&components);
        let _ = bounds.analysis_horizon();
        let prepared = PreparedWorkload::from_components(components);
        let overloaded = prepared.utilization_exceeds_one();
        let mut scratch = AnalysisScratch::new();
        let analysis = AllApproximatedTest::new().with_max_level(4)
            .analyze_prepared_with(&prepared, &mut scratch);
        match analysis.verdict {
            // Decisive capped verdicts are exact, so they must agree with
            // the independent overload oracle.
            Verdict::Feasible => prop_assert!(!overloaded),
            Verdict::Infeasible => {
                // Overload is one road to infeasibility, not the only
                // one; a miss here must come from a real demand overrun.
                if !overloaded {
                    let overload = analysis.overload.expect("infeasible needs a witness");
                    prop_assert!(
                        prepared.dbf(overload.interval) > overload.interval,
                        "witness {overload:?}"
                    );
                }
            }
            Verdict::Unknown => {}
        }
        // Demand queries at the extreme of the time axis never wrap into
        // small values that would fake feasibility.
        let _ = prepared.dbf(Time::MAX);
        let _ = prepared.rbf(Time::MAX);
    }
}
