//! Property tests of the deterministic work-budget layer's contract:
//!
//! * an **unlimited** budget is bit-identical to the un-budgeted code
//!   paths (the budget is pure metering until it caps);
//! * budgets are **monotone**: once a budget produces a decisive verdict,
//!   every larger budget — unlimited included — produces the *identical*
//!   analysis (a bigger allowance can only move the exhaustion point
//!   later, never change the answer before it);
//! * **exhaustion is honest**: a refused charge always unwinds to
//!   [`Verdict::Unknown`] carrying a [`Progress`] record whose spend
//!   matches the budget's own counter, and a non-exhausted run never
//!   carries one;
//! * **batched ≡ sequential**: [`batch::analyze_many_budgeted`] equals
//!   [`batch::analyze_many_serial_budgeted`] bit for bit, exhaustion
//!   points included, for any worker split;
//! * **overload stays exact**: a workload with `U > 1` answers
//!   [`Verdict::Infeasible`] under *any* budget, zero included — the
//!   exact rational utilization comparison and the bounds fix-point
//!   cut-off are free checks, so degradation never costs the service the
//!   cheap certain rejections (the regression guard for the bounds
//!   budget unification).

use edf_analysis::batch;
use edf_analysis::budget::{Progress, WorkBudget};
use edf_analysis::tests::{AllApproximatedTest, ProcessorDemandTest, QpaTest};
use edf_analysis::workload::PreparedWorkload;
use edf_analysis::{all_tests, Analysis, AnalysisScratch, BoxedTest, Verdict};
use edf_model::{Task, TaskSet, Time};
use proptest::prelude::*;

fn arb_task() -> impl Strategy<Value = Task> {
    (1u64..=50, 1u64..=500, 2u64..=400).prop_filter_map("valid task", |(c, d, t)| {
        Task::from_ticks(c.min(t), d, t).ok()
    })
}

fn arb_set() -> impl Strategy<Value = TaskSet> {
    prop::collection::vec(arb_task(), 1..=10).prop_map(TaskSet::from_tasks)
}

/// Task sets whose exact utilization exceeds one (no `c.min(t)` clamp, so
/// single tasks can already overload).
fn arb_overloaded_set() -> impl Strategy<Value = TaskSet> {
    prop::collection::vec(
        (1u64..=60, 1u64..=100, 2u64..=50)
            .prop_filter_map("valid task", |(c, d, t)| Task::from_ticks(c, d, t).ok()),
        1..=6,
    )
    .prop_map(TaskSet::from_tasks)
    .prop_filter("exceeds one", TaskSet::utilization_exceeds_one)
}

/// The exact tests with charging loops in every phase the budget meters
/// (demand walk, QPA descent, refinement frontier, bounds fix points).
fn charging_suite() -> Vec<BoxedTest> {
    vec![
        Box::new(ProcessorDemandTest::new()),
        Box::new(QpaTest::new()),
        Box::new(AllApproximatedTest::new()),
    ]
}

/// Runs `test` on `prepared` under `budget`, returning the analysis and
/// the budget as it came back out of the scratch.
fn run_budgeted(
    test: &BoxedTest,
    prepared: &PreparedWorkload,
    scratch: &mut AnalysisScratch,
    budget: WorkBudget,
) -> (Analysis, WorkBudget) {
    scratch.set_budget(budget);
    let analysis = test.analyze_prepared_with(prepared, scratch);
    (analysis, scratch.take_budget())
}

proptest! {
    /// An unlimited budget never alters an analysis: same verdict, same
    /// iterations, same witnesses, no progress record — only the spent
    /// counter advances.
    #[test]
    fn unlimited_budget_is_bit_identical_to_unbudgeted(ts in arb_set()) {
        let prepared = PreparedWorkload::new(&ts);
        let mut scratch = AnalysisScratch::new();
        for test in all_tests() {
            let plain = test.analyze_prepared(&prepared);
            let (metered, budget) =
                run_budgeted(&test, &prepared, &mut scratch, WorkBudget::unlimited());
            prop_assert_eq!(&metered, &plain, "{} diverged under metering", test.name());
            prop_assert!(!budget.is_exhausted());
            prop_assert!(metered.progress.is_none());
        }
    }

    /// Once decisive, always the same: for every budget on a doubling
    /// grid, a decisive verdict at budget `B` is reproduced identically
    /// at every `B' ≥ B` and by the unlimited run.
    #[test]
    fn decisive_verdicts_are_budget_monotone(ts in arb_set()) {
        let prepared = PreparedWorkload::new(&ts);
        let mut scratch = AnalysisScratch::new();
        for test in charging_suite() {
            let (full, _) =
                run_budgeted(&test, &prepared, &mut scratch, WorkBudget::unlimited());
            let mut decisive: Option<Analysis> = None;
            let mut units = 0u64;
            loop {
                let (analysis, budget) =
                    run_budgeted(&test, &prepared, &mut scratch, WorkBudget::limited(units));
                if let Some(first) = &decisive {
                    prop_assert_eq!(
                        &analysis, first,
                        "{}: decisive answer changed between budgets", test.name()
                    );
                } else if analysis.verdict.is_decisive() {
                    prop_assert!(!budget.is_exhausted());
                    decisive = Some(analysis);
                }
                if !budget.is_exhausted() {
                    // The whole analysis fit: larger budgets charge the
                    // same work, nothing further to probe.
                    break;
                }
                units = if units == 0 { 1 } else { units * 2 };
            }
            let reached = decisive.expect("an uncapped budget always decides");
            prop_assert_eq!(&reached, &full, "{}: grid limit disagrees", test.name());
        }
    }

    /// Exhaustion is honest and self-describing: `Unknown`, with a
    /// progress record whose spend equals the budget's counter; a run
    /// that fit carries no record at all.
    #[test]
    fn exhaustion_answers_unknown_with_progress(
        ts in arb_set(),
        units in 0u64..200,
    ) {
        let prepared = PreparedWorkload::new(&ts);
        let mut scratch = AnalysisScratch::new();
        for test in charging_suite() {
            let (analysis, budget) =
                run_budgeted(&test, &prepared, &mut scratch, WorkBudget::limited(units));
            if budget.is_exhausted() {
                prop_assert_eq!(analysis.verdict, Verdict::Unknown);
                let progress: Progress =
                    analysis.progress.expect("exhaustion carries progress");
                prop_assert_eq!(progress.units_spent, budget.spent());
                prop_assert!(progress.units_spent > units, "spend includes the refusal");
            } else {
                prop_assert!(analysis.progress.is_none());
                prop_assert!(budget.spent() <= units);
            }
        }
    }

    /// The batch front end under per-workload budgets equals a serial
    /// loop bit for bit — exhaustion points, progress records and all —
    /// whatever the worker split.
    #[test]
    fn batched_budgets_equal_sequential_budgets(
        sets in prop::collection::vec(arb_set(), 1..=8),
        units in 0u64..5_000,
    ) {
        let tests = charging_suite();
        let parallel = batch::analyze_many_budgeted(&sets, &tests, units);
        let serial = batch::analyze_many_serial_budgeted(&sets, &tests, units);
        prop_assert_eq!(parallel, serial);
    }

    /// The bounds-unification regression guard: `U > 1` is answered
    /// `Infeasible` under any budget — the exact utilization comparison
    /// and the bounds cut-off cost nothing — so overloaded sets are
    /// rejected exactly even by a fully-shedding service.
    #[test]
    fn overload_is_infeasible_under_any_budget(
        ts in arb_overloaded_set(),
        units in 0u64..50,
    ) {
        let prepared = PreparedWorkload::new(&ts);
        let mut scratch = AnalysisScratch::new();
        for test in charging_suite() {
            for budget in [WorkBudget::limited(0), WorkBudget::limited(units)] {
                let (analysis, _) = run_budgeted(&test, &prepared, &mut scratch, budget);
                prop_assert_eq!(
                    analysis.verdict,
                    Verdict::Infeasible,
                    "{}: overload must stay exact under a budget of {} unit(s)",
                    test.name(),
                    budget.limit()
                );
            }
        }
    }
}

/// A zero budget refuses the first charge of every charging loop — the
/// pinned anchor for the grid the proptests walk.
#[test]
fn zero_budget_exhausts_non_trivial_workloads() {
    let ts = TaskSet::from_tasks(vec![
        Task::new(Time::new(3), Time::new(4), Time::new(10)).unwrap(),
        Task::new(Time::new(4), Time::new(6), Time::new(10)).unwrap(),
        Task::new(Time::new(2), Time::new(5), Time::new(12)).unwrap(),
    ]);
    let prepared = PreparedWorkload::new(&ts);
    let mut scratch = AnalysisScratch::new();
    for test in charging_suite() {
        let (analysis, budget) =
            run_budgeted(&test, &prepared, &mut scratch, WorkBudget::limited(0));
        assert!(budget.is_exhausted(), "{}", test.name());
        assert_eq!(analysis.verdict, Verdict::Unknown, "{}", test.name());
        assert!(analysis.progress.is_some(), "{}", test.name());
    }
}
