//! Property tests of the structural-edit view's contract: any sequence of
//! [`EditView`] inserts, removals and replacements — interleaved with
//! [`ScaledView`] WCET probes over the intermediate states and with
//! commit/revert decisions — produces prepared state and analyses
//! **bit-identical** to a cold preparation of the edited component list,
//! across sporadic task sets, event streams and mixed systems.
//!
//! This is the admission-control loop's correctness argument: the
//! `edf-serve` admit / evict / what-if primitives are exactly these edit
//! sequences, so delta re-analysis through the view family can never
//! drift from the from-scratch answer.

use edf_analysis::all_tests;
use edf_analysis::incremental::{EditView, ScaledView, WorkloadView};
use edf_analysis::workload::{DemandComponent, MixedSystem, PreparedWorkload};
use edf_model::{EventStream, EventStreamTask, Task, TaskSet, Time};
use proptest::prelude::*;

fn arb_task() -> impl Strategy<Value = Task> {
    (1u64..=20, 1u64..=120, 2u64..=100).prop_filter_map("valid task", |(c, d, t)| {
        Task::from_ticks(c.min(t), d, t).ok()
    })
}

fn arb_set() -> impl Strategy<Value = TaskSet> {
    prop::collection::vec(arb_task(), 1..=6).prop_map(TaskSet::from_tasks)
}

fn arb_stream_task() -> impl Strategy<Value = EventStreamTask> {
    (1u64..=3, 1u64..=6, 20u64..=80, 1u64..=4, 2u64..=25).prop_map(|(burst, inner, outer, c, d)| {
        EventStreamTask::new(
            EventStream::bursty(burst, Time::new(inner), Time::new(outer)),
            Time::new(c),
            Time::new(d),
        )
        .expect("positive parameters")
    })
}

fn arb_mixed() -> impl Strategy<Value = MixedSystem> {
    (arb_set(), prop::collection::vec(arb_stream_task(), 0..=2))
        .prop_map(|(ts, streams)| MixedSystem::new(ts, streams))
}

/// An arbitrary demand component: periodic (cost capped by the period,
/// mirroring task validation) or one-shot with a release offset.  (The
/// offline proptest shim's `prop_oneof!` is homogeneous, so the variants
/// share one tuple strategy with a discriminant.)
fn arb_component() -> impl Strategy<Value = DemandComponent> {
    (0u8..=1, 1u64..=10, 1u64..=60, 2u64..=80).prop_map(|(kind, c, d, x)| {
        if kind == 0 {
            DemandComponent::periodic(Time::new(c.min(x)), Time::new(d), Time::new(x))
        } else {
            DemandComponent::one_shot(Time::new(c.min(6)), Time::new(d.min(30)), Time::new(x % 21))
        }
    })
}

/// One step of an edit sequence.  Index-style operands are selectors
/// reduced modulo the live component count at application time, so every
/// generated sequence is valid against every base workload.
#[derive(Debug, Clone)]
enum EditStep {
    Insert(DemandComponent),
    Remove(usize),
    Replace(usize, DemandComponent),
    /// A `ScaledView` WCET probe over the finalized intermediate state
    /// (the sensitivity-search-inside-an-admission-loop interleaving).
    Probe(u64),
}

fn arb_step() -> impl Strategy<Value = EditStep> {
    (0u8..=7, arb_component(), 0usize..64, 0u64..=4_000).prop_map(
        |(kind, component, selector, numer)| match kind {
            // Inserts weighted up so sequences tend to grow past the base.
            0..=2 => EditStep::Insert(component),
            3 | 4 => EditStep::Remove(selector),
            5 | 6 => EditStep::Replace(selector, component),
            _ => EditStep::Probe(numer),
        },
    )
}

fn arb_steps() -> impl Strategy<Value = Vec<EditStep>> {
    prop::collection::vec(arb_step(), 1..=12)
}

/// Asserts that the view's finalized state and a cold preparation of the
/// same component list are observably identical, including the analyses
/// of every registered test.  (`task_count` is intentionally exempt: the
/// view tracks the source workload's count across edits, while a cold
/// [`PreparedWorkload::from_components`] has no source workload — no
/// analysis reads it.)
fn assert_prepared_identical(view: &PreparedWorkload, cold: &PreparedWorkload) {
    assert_eq!(view.components(), cold.components());
    assert_eq!(view.utilization().to_bits(), cold.utilization().to_bits());
    assert_eq!(
        view.utilization_exceeds_one(),
        cold.utilization_exceeds_one()
    );
    assert_eq!(view.bounds(), cold.bounds());
    assert_eq!(view.deadline_order(), cold.deadline_order());
    for test in all_tests() {
        assert_eq!(
            test.analyze_prepared(view),
            test.analyze_prepared(cold),
            "{} diverges between edit view and cold preparation",
            test.name()
        );
    }
}

/// Applies `steps` to an [`EditView`] over `base` while mirroring the
/// edits in a plain component vector, checking bit-identity with the cold
/// preparation of the mirror after every finalize.
fn check_edit_sequence(base: &PreparedWorkload, steps: Vec<EditStep>) {
    let mut view = EditView::new(base);
    let mut mirror: Vec<DemandComponent> = base.components().to_vec();
    for step in steps {
        match step {
            EditStep::Insert(component) => {
                let index = view.insert_component(component);
                assert_eq!(index, mirror.len());
                mirror.push(component);
            }
            EditStep::Remove(selector) => {
                if mirror.is_empty() {
                    continue;
                }
                let index = selector % mirror.len();
                assert_eq!(view.remove_component(index), mirror.remove(index));
            }
            EditStep::Replace(selector, component) => {
                if mirror.is_empty() {
                    continue;
                }
                let index = selector % mirror.len();
                assert_eq!(view.replace_component(index, component), mirror[index]);
                mirror[index] = component;
            }
            EditStep::Probe(numer) => {
                let prepared = view.prepared();
                let mut scaled = ScaledView::new(prepared);
                let probed = scaled.scale_wcets(numer, 1_000);
                let cold = prepared.with_scaled_wcets(numer, 1_000);
                assert_prepared_identical(probed, &cold);
            }
        }
        let cold = PreparedWorkload::from_components(mirror.clone());
        assert_prepared_identical(view.prepared(), &cold);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Edit sequences over sporadic task sets are bit-identical to cold
    /// preparation after every step.
    #[test]
    fn edits_match_cold_preparation_on_task_sets(
        ts in arb_set(),
        steps in arb_steps(),
    ) {
        check_edit_sequence(&PreparedWorkload::new(&ts), steps);
    }

    /// ... and over event-stream workloads.
    #[test]
    fn edits_match_cold_preparation_on_event_streams(
        stream in arb_stream_task(),
        steps in arb_steps(),
    ) {
        check_edit_sequence(&PreparedWorkload::new(&stream), steps);
    }

    /// ... and over mixed systems.
    #[test]
    fn edits_match_cold_preparation_on_mixed_systems(
        system in arb_mixed(),
        steps in arb_steps(),
    ) {
        check_edit_sequence(&PreparedWorkload::new(&system), steps);
    }

    /// ... and growing out of an empty system, the admission service's
    /// cold-start path.
    #[test]
    fn edits_match_cold_preparation_from_empty(steps in arb_steps()) {
        check_edit_sequence(&PreparedWorkload::from_components(Vec::new()), steps);
    }

    /// Revert rolls any uncommitted suffix back to the last commit point
    /// exactly — the state after `revert` is bit-identical to a cold
    /// preparation of the committed components, no matter where the
    /// commit/revert boundary falls or whether the suffix was finalized.
    #[test]
    fn revert_restores_the_commit_point(
        system in arb_mixed(),
        steps in arb_steps(),
        boundary in 0usize..12,
        finalize_before_revert in 0u8..=1,
    ) {
        let base = PreparedWorkload::new(&system);
        let mut view = EditView::new(&base);
        let mut mirror: Vec<DemandComponent> = base.components().to_vec();
        let boundary = boundary.min(steps.len());
        for (position, step) in steps.into_iter().enumerate() {
            match step {
                EditStep::Insert(component) => {
                    view.insert_component(component);
                    if position < boundary {
                        mirror.push(component);
                    }
                }
                EditStep::Remove(selector) => {
                    let count = view.components().len();
                    if count > 0 {
                        let index = selector % count;
                        view.remove_component(index);
                        if position < boundary {
                            mirror.remove(index);
                        }
                    }
                }
                EditStep::Replace(selector, component) => {
                    let count = view.components().len();
                    if count > 0 {
                        let index = selector % count;
                        view.replace_component(index, component);
                        if position < boundary {
                            mirror[index] = component;
                        }
                    }
                }
                EditStep::Probe(_) => {}
            }
            if position + 1 == boundary {
                view.prepared();
                view.commit();
            }
        }
        if finalize_before_revert == 1 {
            view.prepared();
        }
        view.revert();
        prop_assert_eq!(view.components(), mirror.as_slice());
        let cold = PreparedWorkload::from_components(mirror.clone());
        assert_prepared_identical(view.prepared(), &cold);
    }
}
