//! Property-based tests of the central claims of the paper:
//!
//! * the dynamic-error and all-approximated tests are **exact** — they agree
//!   with the processor demand criterion (and QPA) on every task set;
//! * Devi's test is equivalent to `SuperPos(1)` (Lemma 2);
//! * the superposition tests form a monotone hierarchy of sufficient tests;
//! * every sufficient acceptance implies exact feasibility.

use edf_analysis::demand::dbf_set;
use edf_analysis::event_stream_analysis::MixedSystem;
use edf_analysis::exhaustive::exhaustive_check;
use edf_analysis::sensitivity::{breakdown_scaling_exact, wcet_slack};
use edf_analysis::tests::{
    AllApproximatedTest, DensityTest, DeviTest, DynamicErrorTest, LiuLaylandTest,
    ProcessorDemandTest, QpaTest, RevisionOrder, SuperpositionTest,
};
use edf_analysis::{FeasibilityTest, Verdict};
use edf_model::{Task, TaskSet, Time};
use proptest::prelude::*;

/// Brute-force reference: checks `dbf(I) ≤ I` at every integer interval up
/// to the hyperperiod plus the largest deadline (a valid horizon for every
/// `U ≤ 1` set).  Only usable for small parameters, which the strategies
/// below guarantee.
fn brute_force_feasible(ts: &TaskSet) -> bool {
    if ts.is_empty() {
        return true;
    }
    if ts.utilization_exceeds_one() {
        return false;
    }
    let horizon = ts
        .hyperperiod()
        .and_then(|h| h.checked_add(ts.max_deadline().unwrap_or(Time::ZERO)))
        .expect("small parameters cannot overflow");
    (1..=horizon.as_u64()).all(|i| dbf_set(ts, Time::new(i)) <= Time::new(i))
}

/// Small tasks: periods up to 24 keep the brute-force hyperperiod tractable.
fn arb_small_task() -> impl Strategy<Value = Task> {
    (1u64..=6, 1u64..=30, 2u64..=24).prop_filter_map("valid task", |(c, d, t)| {
        Task::from_ticks(c.min(t), d, t).ok()
    })
}

fn arb_small_set() -> impl Strategy<Value = TaskSet> {
    prop::collection::vec(arb_small_task(), 1..=5).prop_map(TaskSet::from_tasks)
}

/// Larger tasks for agreement checks that do not need brute force.
fn arb_medium_task() -> impl Strategy<Value = Task> {
    (1u64..=50, 1u64..=500, 2u64..=400).prop_filter_map("valid task", |(c, d, t)| {
        Task::from_ticks(c.min(t), d, t).ok()
    })
}

fn arb_medium_set() -> impl Strategy<Value = TaskSet> {
    prop::collection::vec(arb_medium_task(), 1..=10).prop_map(TaskSet::from_tasks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The headline claim: the new tests are exact.
    #[test]
    fn new_tests_agree_with_brute_force(ts in arb_small_set()) {
        let reference = brute_force_feasible(&ts);
        let pda = ProcessorDemandTest::new().analyze(&ts);
        let qpa = QpaTest::new().analyze(&ts);
        let dynamic = DynamicErrorTest::new().analyze(&ts);
        let all_approx = AllApproximatedTest::new().analyze(&ts);

        prop_assert_eq!(pda.verdict.is_feasible(), reference, "processor demand vs brute force on {}", ts);
        prop_assert_eq!(qpa.verdict.is_feasible(), reference, "qpa vs brute force on {}", ts);
        prop_assert_eq!(dynamic.verdict.is_feasible(), reference, "dynamic-error vs brute force on {}", ts);
        prop_assert_eq!(all_approx.verdict.is_feasible(), reference, "all-approximated vs brute force on {}", ts);
        prop_assert!(pda.verdict.is_decisive());
        prop_assert!(dynamic.verdict.is_decisive());
        prop_assert!(all_approx.verdict.is_decisive());
    }

    /// The exact tests also agree on sets too large for brute force.
    #[test]
    fn exact_tests_agree_pairwise(ts in arb_medium_set()) {
        let pda = ProcessorDemandTest::new().analyze(&ts).verdict;
        let qpa = QpaTest::new().analyze(&ts).verdict;
        let dynamic = DynamicErrorTest::new().analyze(&ts).verdict;
        let all_approx = AllApproximatedTest::new().analyze(&ts).verdict;
        prop_assert_eq!(pda, qpa, "qpa disagrees on {}", ts);
        prop_assert_eq!(pda, dynamic, "dynamic-error disagrees on {}", ts);
        prop_assert_eq!(pda, all_approx, "all-approximated disagrees on {}", ts);
    }

    /// Lemma 2: Devi's test and SuperPos(1) accept exactly the same sets.
    ///
    /// The equivalence proof applies to the constrained-deadline model
    /// (`D ≤ T`) the paper analyses; for `D > T` Devi's formula is strictly
    /// more pessimistic than the superposition, so only the implication
    /// "Devi accepts ⇒ SuperPos(1) accepts" survives.
    #[test]
    fn devi_equals_superpos_one(ts in arb_medium_set()) {
        let devi = DeviTest::new().analyze(&ts).verdict;
        let superpos1 = SuperpositionTest::new(1).analyze(&ts).verdict;
        if ts.all_constrained_or_implicit() {
            prop_assert_eq!(devi, superpos1, "Devi and SuperPos(1) diverge on {}", ts);
        } else if devi.is_feasible() {
            prop_assert!(superpos1.is_feasible(), "Devi accepted but SuperPos(1) rejected {}", ts);
        }
    }

    /// The superposition hierarchy is monotone: a level-x acceptance is kept
    /// by level x+1, and any acceptance implies exact feasibility.
    #[test]
    fn superposition_hierarchy_is_monotone_and_sound(ts in arb_medium_set()) {
        let exact = ProcessorDemandTest::new().analyze(&ts).verdict;
        let mut accepted_before = false;
        for level in 1..=8u64 {
            let verdict = SuperpositionTest::new(level).analyze(&ts).verdict;
            if accepted_before {
                prop_assert!(
                    verdict.is_feasible(),
                    "level {} lost an acceptance of a lower level on {}", level, ts
                );
            }
            if verdict.is_feasible() {
                accepted_before = true;
                prop_assert!(exact.is_feasible(), "unsound acceptance at level {} on {}", level, ts);
            }
            if verdict.is_infeasible() {
                prop_assert!(exact.is_infeasible());
            }
        }
    }

    /// Every sufficient test only accepts genuinely feasible sets.
    #[test]
    fn sufficient_tests_are_sound(ts in arb_small_set()) {
        let reference = brute_force_feasible(&ts);
        for test in [
            Box::new(LiuLaylandTest::new()) as Box<dyn FeasibilityTest>,
            Box::new(DensityTest::new()),
            Box::new(DeviTest::new()),
            Box::new(SuperpositionTest::new(2)),
            Box::new(SuperpositionTest::new(5)),
        ] {
            let verdict = test.analyze(&ts).verdict;
            if verdict.is_feasible() {
                prop_assert!(reference, "{} wrongly accepted {}", test.name(), ts);
            }
            if verdict.is_infeasible() {
                prop_assert!(!reference, "{} wrongly rejected {}", test.name(), ts);
            }
        }
    }

    /// The all-approximated test stays exact under every revision order.
    #[test]
    fn revision_orders_stay_exact(ts in arb_small_set()) {
        let reference = brute_force_feasible(&ts);
        for order in [RevisionOrder::Fifo, RevisionOrder::LargestError, RevisionOrder::LargestUtilization] {
            let verdict = AllApproximatedTest::with_revision_order(order).analyze(&ts).verdict;
            prop_assert_eq!(verdict.is_feasible(), reference, "order {:?} on {}", order, ts);
        }
    }

    /// Iteration counts are positive whenever a comparison happened and the
    /// examined intervals never exceed the hyperperiod-based horizon.
    #[test]
    fn iteration_accounting_is_consistent(ts in arb_medium_set()) {
        for test in [
            Box::new(ProcessorDemandTest::new()) as Box<dyn FeasibilityTest>,
            Box::new(DynamicErrorTest::new()),
            Box::new(AllApproximatedTest::new()),
            Box::new(QpaTest::new()),
        ] {
            let analysis = test.analyze(&ts);
            if let Some(max) = analysis.max_examined_interval {
                prop_assert!(analysis.iterations > 0);
                prop_assert!(max > Time::ZERO);
            }
            if analysis.verdict == Verdict::Infeasible {
                if let Some(overload) = &analysis.overload {
                    prop_assert!(overload.demand > overload.interval);
                }
            }
        }
    }

    /// Devi acceptance implies the new tests accept with at most one
    /// comparison per task (the "comparable effort" claim of the paper).
    #[test]
    fn devi_acceptance_bounds_new_test_effort(ts in arb_medium_set()) {
        let devi = DeviTest::new().analyze(&ts);
        if devi.verdict.is_feasible() {
            let dynamic = DynamicErrorTest::new().analyze(&ts);
            let all_approx = AllApproximatedTest::new().analyze(&ts);
            prop_assert!(dynamic.verdict.is_feasible());
            prop_assert!(all_approx.verdict.is_feasible());
            prop_assert!(dynamic.iterations <= ts.len() as u64);
            prop_assert!(all_approx.iterations <= ts.len() as u64);
        }
    }

    /// The naive exhaustive oracle agrees with the fast exact tests.
    #[test]
    fn exhaustive_oracle_agrees_with_fast_tests(ts in arb_small_set()) {
        let oracle = exhaustive_check(&ts).verdict;
        if oracle.is_decisive() {
            prop_assert_eq!(oracle, ProcessorDemandTest::new().analyze(&ts).verdict);
            prop_assert_eq!(oracle, AllApproximatedTest::new().analyze(&ts).verdict);
        }
    }

    /// Breakdown scaling never reports a factor whose application breaks
    /// feasibility, and the factor is at least 1 for feasible sets.
    #[test]
    fn breakdown_scaling_is_consistent(ts in arb_small_set()) {
        match breakdown_scaling_exact(&ts) {
            Some(result) => {
                prop_assert!(result.factor >= 1.0);
                prop_assert!(result.utilization_at_breakdown <= 1.0 + 1e-9);
                prop_assert!(ProcessorDemandTest::new().analyze(&ts).verdict.is_feasible());
            }
            None => {
                prop_assert!(!ProcessorDemandTest::new().analyze(&ts).verdict.is_feasible()
                    || ts.is_empty());
            }
        }
    }

    /// The per-task WCET slack really is the last feasible inflation: adding
    /// it keeps the set feasible, adding one more tick does not.
    #[test]
    fn wcet_slack_is_tight(ts in arb_small_set(), pick in 0usize..5) {
        let index = pick % ts.len();
        let test = ProcessorDemandTest::new();
        if let Some(slack) = wcet_slack(&ts, index, &test) {
            let inflate = |extra: u64| -> TaskSet {
                ts.iter()
                    .enumerate()
                    .map(|(i, task)| {
                        if i == index {
                            let wcet = (task.wcet() + Time::new(extra)).min(task.period());
                            Task::new(wcet, task.deadline(), task.period()).unwrap()
                        } else {
                            task.clone()
                        }
                    })
                    .collect()
            };
            prop_assert!(test.analyze(&inflate(slack.as_u64())).verdict.is_feasible());
            let headroom = ts[index].period() - ts[index].wcet();
            if slack < headroom {
                prop_assert!(!test.analyze(&inflate(slack.as_u64() + 1)).verdict.is_feasible());
            }
        }
    }

    /// A mixed system whose event-stream part is purely periodic gives the
    /// same verdict as the equivalent sporadic task set.
    #[test]
    fn mixed_system_matches_sporadic_equivalent(ts in arb_small_set(), c in 1u64..5, d in 1u64..30, period in 2u64..25) {
        let stream_task = edf_model::EventStreamTask::new(
            edf_model::EventStream::periodic(Time::new(period)),
            Time::new(c.min(period)),
            Time::new(d),
        ).unwrap();
        let mut as_sporadic = ts.clone();
        as_sporadic.push(stream_task.to_sporadic().unwrap());
        let mixed = MixedSystem::new(ts, vec![stream_task]);
        let mixed_verdict = mixed.analyze().verdict;
        let sporadic_verdict = ProcessorDemandTest::new().analyze(&as_sporadic).verdict;
        if mixed_verdict.is_decisive() && sporadic_verdict.is_decisive() {
            prop_assert_eq!(mixed_verdict, sporadic_verdict);
        }
    }
}

// ---------------------------------------------------------------------------
// Workload-model equivalence (the `Workload` refactor's contract).
// ---------------------------------------------------------------------------

use edf_analysis::tests::AllApproximatedTest as AaTest;
use edf_analysis::workload::PreparedWorkload;
use edf_model::{EventStream, EventStreamTask};

/// Re-expresses a sporadic task set as periodic event-stream tasks.
fn as_event_streams(ts: &TaskSet) -> Vec<EventStreamTask> {
    ts.iter()
        .map(|task| {
            EventStreamTask::new(
                EventStream::periodic(task.period()),
                task.wcet(),
                task.deadline(),
            )
            .expect("valid task parameters")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// A strictly periodic event-stream workload gets the same verdict and
    /// the same dbf values as the equivalent sporadic task set under every
    /// exact test.
    #[test]
    fn periodic_streams_equal_sporadic_tasks_under_every_exact_test(ts in arb_medium_set()) {
        let streams = as_event_streams(&ts);
        let stream_workload = PreparedWorkload::new(&streams);
        let sporadic_workload = PreparedWorkload::new(&ts);
        for i in (0..500u64).step_by(11) {
            let i = Time::new(i);
            prop_assert_eq!(
                stream_workload.dbf(i),
                dbf_set(&ts, i),
                "dbf mismatch at {} on {}", i, ts
            );
        }
        for test in [
            Box::new(ProcessorDemandTest::new()) as Box<dyn FeasibilityTest>,
            Box::new(QpaTest::new()),
            Box::new(DynamicErrorTest::new()),
            Box::new(AaTest::new()),
        ] {
            let sporadic = test.analyze_prepared(&sporadic_workload).verdict;
            let stream = test.analyze_prepared(&stream_workload).verdict;
            prop_assert_eq!(
                sporadic, stream,
                "{} disagrees between models on {}", test.name(), ts
            );
        }
    }

    /// dbf/rbf monotonicity (and dbf ≤ rbf domination) for mixed systems
    /// combining sporadic background load with a bursty stream.
    #[test]
    fn mixed_system_dbf_rbf_monotone(
        ts in arb_small_set(),
        burst_len in 1u64..4,
        inner in 1u64..8,
        outer in 10u64..60,
        c in 1u64..4,
        d in 1u64..20,
    ) {
        let stream = EventStreamTask::new(
            EventStream::bursty(burst_len, Time::new(inner), Time::new(outer)),
            Time::new(c),
            Time::new(d),
        ).unwrap();
        let mixed = MixedSystem::new(ts, vec![stream]);
        let prepared = PreparedWorkload::new(&mixed);
        let mut last_dbf = Time::ZERO;
        let mut last_rbf = Time::ZERO;
        for i in 0..200u64 {
            let i = Time::new(i);
            let dbf = prepared.dbf(i);
            let rbf = prepared.rbf(i);
            prop_assert!(dbf >= last_dbf, "dbf not monotone at {}", i);
            prop_assert!(rbf >= last_rbf, "rbf not monotone at {}", i);
            prop_assert!(dbf <= rbf, "dbf exceeds rbf at {}", i);
            last_dbf = dbf;
            last_rbf = rbf;
        }
    }

    /// The exact tests agree with each other on event-stream workloads
    /// reached through the common path (not just on task sets).
    #[test]
    fn exact_tests_agree_on_stream_workloads(
        ts in arb_small_set(),
        burst_len in 1u64..3,
        inner in 1u64..6,
        outer in 8u64..40,
        c in 1u64..3,
        d in 1u64..15,
    ) {
        let stream = EventStreamTask::new(
            EventStream::bursty(burst_len, Time::new(inner), Time::new(outer)),
            Time::new(c),
            Time::new(d),
        ).unwrap();
        let mixed = MixedSystem::new(ts, vec![stream]);
        let prepared = PreparedWorkload::new(&mixed);
        let reference = ProcessorDemandTest::new().analyze_prepared(&prepared).verdict;
        for test in [
            Box::new(QpaTest::new()) as Box<dyn FeasibilityTest>,
            Box::new(DynamicErrorTest::new()),
            Box::new(AaTest::new()),
        ] {
            let verdict = test.analyze_prepared(&prepared).verdict;
            prop_assert_eq!(
                verdict, reference,
                "{} disagrees on a mixed system", test.name()
            );
        }
    }
}
