//! Property tests of the candidate engine's contract: the full engine
//! (dominance pruning + density screen + Gray-code incremental swaps +
//! parallel early-exit sweep) produces verdicts identical to the retained
//! naive reference and to the exhaustive oracle, its infeasibility
//! witnesses are genuine (replaying the witnessing combination from a cold
//! preparation reproduces the overload bit for bit), the Gray-code
//! enumeration covers the exact product in unit steps and unranks
//! consistently, and [`CandidateView`] swap sequences leave prepared state
//! bit-identical to cold preparation.

use edf_analysis::candidates::{self, CandidateView, EngineConfig, MixedRadixGray};
use edf_analysis::tests::{DeviTest, ProcessorDemandTest, QpaTest};
use edf_analysis::transactions::{
    analyze_transaction_system, combination_components, exhaustive_transaction_check,
};
use edf_analysis::workload::PreparedWorkload;
use edf_analysis::{BoxedTest, Verdict};
use edf_model::{Task, TaskSet, Time, Transaction, TransactionPart, TransactionSystem};
use proptest::prelude::*;

fn arb_task() -> impl Strategy<Value = Task> {
    (1u64..=4, 1u64..=40, 4u64..=40).prop_filter_map("valid task", |(c, d, t)| {
        Task::from_ticks(c.min(t), d, t).ok()
    })
}

fn arb_transaction() -> impl Strategy<Value = Transaction> {
    (
        12u64..=48,
        prop::collection::vec((0u64..=47, 1u64..=4, 1u64..=20), 1..=3),
    )
        .prop_filter_map("valid transaction", |(period, parts)| {
            let parts: Vec<TransactionPart> = parts
                .into_iter()
                .map(|(o, c, d)| {
                    TransactionPart::new(Time::new(o % period), Time::new(c), Time::new(d))
                })
                .collect();
            Transaction::new(Time::new(period), parts).ok()
        })
}

/// Systems with a few transactions — products up to 27 combinations, small
/// enough for the naive reference and (with the bounded periods) for the
/// exhaustive oracle's horizon to stay exact.
fn arb_system() -> impl Strategy<Value = TransactionSystem> {
    (
        prop::collection::vec(arb_task(), 0..=2),
        prop::collection::vec(arb_transaction(), 1..=3),
    )
        .prop_map(|(sporadic, transactions)| {
            TransactionSystem::new(TaskSet::from_tasks(sporadic), transactions)
        })
}

/// The suite of the acceptance criteria: two exact tests plus a sufficient
/// one (which exercises the engine's prune/screen bypass).
fn suite() -> Vec<BoxedTest> {
    vec![
        Box::new(QpaTest::new()),
        Box::new(ProcessorDemandTest::new()),
        Box::new(DeviTest::new()),
    ]
}

/// Replays `choice` from a cold preparation and asserts it reproduces the
/// engine's reported overload exactly.
fn assert_witness_genuine(
    test: &BoxedTest,
    system: &TransactionSystem,
    run: &candidates::CandidateAnalysis,
) {
    if let Some(choice) = &run.witness_choice {
        let cold = PreparedWorkload::from_components(combination_components(system, choice));
        let replay = test.analyze_prepared(&cold);
        assert_eq!(replay.verdict, Verdict::Infeasible, "witness combination");
        assert_eq!(replay.overload, run.analysis.overload, "witness overload");
    } else {
        assert!(!run.analysis.verdict.is_infeasible(), "witness missing");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine's verdict equals the naive reference's for exact and
    /// sufficient tests alike, and both sides' witnesses are genuine.
    #[test]
    fn engine_matches_reference_and_witnesses_are_genuine(system in arb_system()) {
        for test in suite() {
            let engine = candidates::analyze(test.as_ref(), &system);
            let naive = candidates::reference(test.as_ref(), &system);
            prop_assert_eq!(
                engine.analysis.verdict,
                naive.analysis.verdict,
                "{} diverges from the reference on {}", test.name(), &system
            );
            prop_assert_eq!(
                analyze_transaction_system(test.as_ref(), &system).verdict,
                engine.analysis.verdict,
                "front end out of sync with the engine"
            );
            prop_assert!(engine.stats.pruned_product <= engine.stats.candidate_product);
            prop_assert!(
                u128::from(engine.stats.combinations_examined) <= engine.stats.pruned_product
            );
            assert_witness_genuine(&test, &system, &engine);
            assert_witness_genuine(&test, &system, &naive);
        }
    }

    /// Exact engine verdicts equal the independent exhaustive oracle.
    #[test]
    fn engine_matches_the_exhaustive_oracle(system in arb_system()) {
        let oracle = exhaustive_transaction_check(&system);
        prop_assert!(
            oracle.verdict.is_decisive(),
            "small cycles keep the oracle horizon exact"
        );
        for test in [
            Box::new(QpaTest::new()) as BoxedTest,
            Box::new(ProcessorDemandTest::new()),
        ] {
            prop_assert_eq!(
                candidates::analyze(test.as_ref(), &system).analysis.verdict,
                oracle.verdict,
                "{} disagrees with the exhaustive oracle on {}", test.name(), &system
            );
        }
    }

    /// Neither dominance pruning, the density screen, nor the parallel
    /// fan-out changes a verdict relative to the all-off configuration.
    #[test]
    fn engine_knobs_preserve_verdicts(system in arb_system()) {
        let test = QpaTest::new();
        let baseline = candidates::analyze_with(
            &test,
            &system,
            &EngineConfig { prune: false, screen: false, parallel: false },
        );
        for prune in [false, true] {
            for screen in [false, true] {
                for parallel in [false, true] {
                    let config = EngineConfig { prune, screen, parallel };
                    let run = candidates::analyze_with(&test, &system, &config);
                    prop_assert_eq!(
                        run.analysis.verdict,
                        baseline.analysis.verdict,
                        "verdict changed under {:?} on {}", config, &system
                    );
                    prop_assert!(run.stats.pruned_product <= run.stats.candidate_product);
                }
            }
        }
    }

    /// The Gray sequence enumerates the exact mixed-radix product: every
    /// combination exactly once, adjacent combinations differing in one
    /// digit by one.
    #[test]
    fn gray_code_covers_the_exact_product(
        radices in prop::collection::vec(1usize..=5, 1..=5),
    ) {
        let product: usize = radices.iter().product();
        let mut gray = MixedRadixGray::new(&radices);
        prop_assert_eq!(gray.total(), product as u128);
        let mut seen = vec![gray.digits().to_vec()];
        while let Some(changed) = gray.advance() {
            let previous = &seen[seen.len() - 1];
            let current = gray.digits().to_vec();
            for (i, (&was, &is)) in previous.iter().zip(&current).enumerate() {
                if i == changed {
                    prop_assert_eq!(was.abs_diff(is), 1, "changed digit steps by one");
                } else {
                    prop_assert_eq!(was, is, "untouched digit moved");
                }
            }
            seen.push(current);
        }
        prop_assert_eq!(seen.len(), product);
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), product, "a combination repeated");
    }

    /// Unranked chunks concatenate to the full sequence — the property the
    /// parallel sweep's range split relies on.
    #[test]
    fn gray_chunks_concatenate_to_the_full_sequence(
        radices in prop::collection::vec(1usize..=4, 1..=4),
        chunk_len in 1u64..=7,
    ) {
        let mut gray = MixedRadixGray::new(&radices);
        let mut full = vec![gray.digits().to_vec()];
        while gray.advance().is_some() {
            full.push(gray.digits().to_vec());
        }
        let mut walked = Vec::new();
        let mut start = 0u128;
        while start < full.len() as u128 {
            let end = (start + u128::from(chunk_len)).min(full.len() as u128);
            let mut chunk = MixedRadixGray::at_rank(&radices, start);
            prop_assert_eq!(chunk.rank(), start);
            walked.push(chunk.digits().to_vec());
            for _ in start + 1..end {
                prop_assert!(chunk.advance().is_some(), "sequence ended early");
                walked.push(chunk.digits().to_vec());
            }
            start = end;
        }
        prop_assert_eq!(walked, full);
    }

    /// A [`CandidateView`] is bit-identical to a cold preparation after an
    /// arbitrary swap sequence: components, deadline order, §4.3 bounds,
    /// cached utilization bits, and the analyses of exact tests.
    #[test]
    fn candidate_view_matches_cold_preparation(
        system in arb_system(),
        swaps in prop::collection::vec((0usize..8, 0usize..8), 1..=10),
    ) {
        let mut view = CandidateView::new(&system);
        let mut choice = vec![0usize; system.transactions().len()];
        for (transaction, candidate) in swaps {
            let transaction = transaction % system.transactions().len();
            let candidate = candidate % system.transactions()[transaction].candidate_count();
            choice[transaction] = candidate;
            view.set_candidate(transaction, candidate);
            let cold =
                PreparedWorkload::from_components(combination_components(&system, &choice));
            let probed = view.prepared();
            prop_assert_eq!(probed.components(), cold.components());
            prop_assert_eq!(probed.deadline_order(), cold.deadline_order());
            prop_assert_eq!(probed.bounds(), cold.bounds());
            prop_assert_eq!(
                probed.utilization().to_bits(),
                cold.utilization().to_bits()
            );
            prop_assert_eq!(
                probed.utilization_exceeds_one(),
                cold.utilization_exceeds_one()
            );
            for test in [
                Box::new(QpaTest::new()) as BoxedTest,
                Box::new(ProcessorDemandTest::new()),
            ] {
                prop_assert_eq!(
                    test.analyze_prepared(probed),
                    test.analyze_prepared(&cold),
                    "{} diverges between view and cold preparation", test.name()
                );
            }
        }
    }

    /// Lazy swaps (no finalize in between, the screened-combination
    /// pattern) coalesce correctly: only the last candidate per
    /// transaction matters.
    #[test]
    fn deferred_swaps_coalesce(
        system in arb_system(),
        swaps in prop::collection::vec((0usize..8, 0usize..8), 2..=6),
    ) {
        let mut view = CandidateView::new(&system);
        let mut choice = vec![0usize; system.transactions().len()];
        for (transaction, candidate) in swaps {
            let transaction = transaction % system.transactions().len();
            let candidate = candidate % system.transactions()[transaction].candidate_count();
            choice[transaction] = candidate;
            view.set_candidate(transaction, candidate);
        }
        let cold = PreparedWorkload::from_components(combination_components(&system, &choice));
        let probed = view.prepared();
        prop_assert_eq!(probed.components(), cold.components());
        prop_assert_eq!(probed.deadline_order(), cold.deadline_order());
        prop_assert_eq!(probed.bounds(), cold.bounds());
    }
}
