//! Property tests of the refinement engine's contract: the shared
//! `refine` engine behind [`DynamicErrorTest`] and [`AllApproximatedTest`]
//! (flat frontier queue, incremental comparison aggregates, screened
//! comparisons, batched withdrawals) is **bit-identical** to the retained
//! [`refine::reference`] implementations — verdicts, iteration counts,
//! examined intervals and overload witnesses — across sporadic task sets,
//! event streams, mixed systems and arrival curves, under every test knob
//! (`LevelGrowth`, `RevisionOrder`, `with_initial_level`, `with_max_level`
//! / `from_target_error`), on the kernel demand path and the scalar
//! oracle alike.

use edf_analysis::kernel::AnalysisScratch;
use edf_analysis::refine::reference;
use edf_analysis::tests::{AllApproximatedTest, DynamicErrorTest, LevelGrowth, RevisionOrder};
use edf_analysis::workload::{MixedSystem, PreparedWorkload, Workload};
use edf_analysis::FeasibilityTest;
use edf_model::{
    AffineSegment, ArrivalCurve, ArrivalCurveTask, EventStream, EventStreamTask, Task, TaskSet,
    Time,
};
use proptest::prelude::*;

fn arb_task() -> impl Strategy<Value = Task> {
    (1u64..=20, 1u64..=120, 2u64..=100).prop_filter_map("valid task", |(c, d, t)| {
        Task::from_ticks(c.min(t), d, t).ok()
    })
}

fn arb_set() -> impl Strategy<Value = TaskSet> {
    prop::collection::vec(arb_task(), 1..=6).prop_map(TaskSet::from_tasks)
}

fn arb_stream_task() -> impl Strategy<Value = EventStreamTask> {
    (1u64..=3, 1u64..=6, 20u64..=80, 1u64..=4, 2u64..=25).prop_map(|(burst, inner, outer, c, d)| {
        EventStreamTask::new(
            EventStream::bursty(burst, Time::new(inner), Time::new(outer)),
            Time::new(c),
            Time::new(d),
        )
        .expect("positive parameters")
    })
}

fn arb_mixed() -> impl Strategy<Value = MixedSystem> {
    (arb_set(), prop::collection::vec(arb_stream_task(), 0..=2))
        .prop_map(|(ts, streams)| MixedSystem::new(ts, streams))
}

fn arb_curve_task() -> impl Strategy<Value = ArrivalCurveTask> {
    (1u64..=4, 5u64..=60, 1u64..=4, 2u64..=25, 0u64..=1).prop_filter_map(
        "valid curve task",
        |(burst, distance, c, d, conservative)| {
            let conservative = conservative == 1;
            let curve = ArrivalCurve::from_affine_segments(&[AffineSegment::new(
                burst,
                Time::new(distance),
            )])
            .ok()?;
            let task = ArrivalCurveTask::new(curve, Time::new(c), Time::new(d)).ok()?;
            Some(if conservative {
                task.conservative()
            } else {
                task
            })
        },
    )
}

/// Every dynamic-error knob combination the engine must reproduce:
/// both growth strategies, shifted initial levels, hard level limits and
/// target-error-derived limits.
fn dynamic_error_knobs() -> Vec<DynamicErrorTest> {
    let mut knobs = Vec::new();
    for growth in [LevelGrowth::Double, LevelGrowth::Increment] {
        knobs.push(DynamicErrorTest::new().with_growth(growth));
        knobs.push(
            DynamicErrorTest::new()
                .with_growth(growth)
                .with_initial_level(3),
        );
        for limit in [1, 2, 7] {
            knobs.push(
                DynamicErrorTest::new()
                    .with_growth(growth)
                    .with_max_level(limit),
            );
        }
    }
    for epsilon in [1.0, 0.3, 0.05] {
        knobs.push(DynamicErrorTest::from_target_error(epsilon));
    }
    knobs
}

/// Every all-approximated knob combination: the three revision orders,
/// crossed with unbounded, hard-limited and target-error-derived
/// refinement limits.
fn all_approximated_knobs() -> Vec<AllApproximatedTest> {
    let mut knobs = Vec::new();
    for order in [
        RevisionOrder::Fifo,
        RevisionOrder::LargestError,
        RevisionOrder::LargestUtilization,
    ] {
        knobs.push(AllApproximatedTest::with_revision_order(order));
        for limit in [1, 2, 7] {
            knobs.push(AllApproximatedTest::with_revision_order(order).with_max_level(limit));
        }
    }
    for epsilon in [1.0, 0.3, 0.05] {
        knobs.push(AllApproximatedTest::from_target_error(epsilon));
    }
    knobs
}

/// Runs every knob combination of both refining tests on one prepared
/// workload, comparing the engine's raw analysis (`analyze_demand`)
/// against the retained reference loop — whole [`Analysis`] values, so
/// verdict, iteration count, max examined interval and overload witness
/// must all match bit for bit.
///
/// [`Analysis`]: edf_analysis::Analysis
fn assert_engine_equals_reference(prepared: &PreparedWorkload) {
    let mut scratch = AnalysisScratch::new();
    for test in dynamic_error_knobs() {
        let engine = test.analyze_demand(prepared, &mut scratch);
        let reference = reference::dynamic_error(&test, prepared, &mut scratch);
        assert_eq!(engine, reference, "dynamic-error {test:?} diverges");
    }
    for test in all_approximated_knobs() {
        let engine = test.analyze_demand(prepared, &mut scratch);
        let reference = reference::all_approximated(&test, prepared, &mut scratch);
        assert_eq!(engine, reference, "all-approximated {test:?} diverges");
    }
}

/// [`assert_engine_equals_reference`] on the kernel-backed preparation
/// and on the scalar-reference oracle (the engine's reciprocal gathering
/// takes a different path on each).
fn assert_engine_equals_reference_both_paths<W: Workload + ?Sized>(workload: &W) {
    let kernel = PreparedWorkload::new(workload);
    assert_engine_equals_reference(&kernel);
    assert_engine_equals_reference(&kernel.scalar_reference());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine-vs-reference equivalence on sporadic task sets.
    #[test]
    fn refining_tests_match_reference_on_task_sets(ts in arb_set()) {
        assert_engine_equals_reference_both_paths(&ts);
    }

    /// ... on event-stream tasks.
    #[test]
    fn refining_tests_match_reference_on_event_streams(task in arb_stream_task()) {
        assert_engine_equals_reference_both_paths(&task);
    }

    /// ... on mixed systems (periodic + offset + one-shot components in
    /// one frontier).
    #[test]
    fn refining_tests_match_reference_on_mixed_systems(system in arb_mixed()) {
        assert_engine_equals_reference_both_paths(&system);
    }

    /// ... on arrival-curve tasks (exact and conservative decompositions;
    /// the conservative mode exercises one-shot components, which the
    /// frontier steps without reciprocals).
    #[test]
    fn refining_tests_match_reference_on_arrival_curves(task in arb_curve_task()) {
        assert_engine_equals_reference_both_paths(&task);
    }

    /// Scratch reuse across engine and reference runs never changes a
    /// result: interleaving both implementations through one scratch
    /// arena equals fresh-scratch analyses.
    #[test]
    fn engine_scratch_reuse_is_observationally_pure(
        systems in prop::collection::vec(arb_mixed(), 1..=3),
    ) {
        let mut scratch = AnalysisScratch::new();
        for system in &systems {
            let prepared = PreparedWorkload::new(system);
            let dynamic = DynamicErrorTest::new();
            let all = AllApproximatedTest::new();
            prop_assert_eq!(
                dynamic.analyze_demand(&prepared, &mut scratch),
                dynamic.analyze_demand(&prepared, &mut AnalysisScratch::new()),
            );
            prop_assert_eq!(
                all.analyze_demand(&prepared, &mut scratch),
                all.analyze_demand(&prepared, &mut AnalysisScratch::new()),
            );
        }
    }
}

/// Deterministic spot check: an infeasible set's overload witness (the
/// exact interval and demand of the failing comparison) survives the
/// engine restructuring exactly, for both refining tests.
#[test]
fn overload_witnesses_are_preserved() {
    let ts = TaskSet::from_tasks(vec![
        Task::from_ticks(3, 4, 10).unwrap(),
        Task::from_ticks(4, 6, 10).unwrap(),
        Task::from_ticks(2, 5, 12).unwrap(),
    ]);
    let prepared = PreparedWorkload::new(&ts);
    let mut scratch = AnalysisScratch::new();

    let dynamic = DynamicErrorTest::new();
    let engine = dynamic.analyze_demand(&prepared, &mut scratch);
    let reference = reference::dynamic_error(&dynamic, &prepared, &mut scratch);
    assert_eq!(engine, reference);
    let witness = engine.overload.expect("infeasible set has a witness");
    assert!(witness.demand > witness.interval);

    let all = AllApproximatedTest::new();
    let engine = all.analyze_demand(&prepared, &mut scratch);
    let reference = reference::all_approximated(&all, &prepared, &mut scratch);
    assert_eq!(engine, reference);
    let witness = engine.overload.expect("infeasible set has a witness");
    assert!(witness.demand > witness.interval);
}
