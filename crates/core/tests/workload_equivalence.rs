//! Workload-model equivalence and oracle cross-validation.
//!
//! The tentpole claim of the `Workload` refactor is that every exact test
//! gives the *same* answer no matter how a workload is expressed:
//!
//! * a strictly periodic event stream is interchangeable with the
//!   equivalent sporadic task set under every test;
//! * event-stream and mixed systems get exact verdicts through the common
//!   path, cross-validated against the exhaustive oracle;
//! * `dbf`/`rbf` monotonicity invariants hold for mixed systems.

use edf_analysis::exhaustive::{exhaustive_check_prepared_up_to, exhaustive_check_workload};
use edf_analysis::tests::{AllApproximatedTest, DynamicErrorTest, ProcessorDemandTest, QpaTest};
use edf_analysis::workload::{MixedSystem, PreparedWorkload};
use edf_analysis::{FeasibilityTest, Verdict};
use edf_model::{literature, EventStream, EventStreamTask, Task, TaskSet, Time};

fn exact_tests() -> Vec<Box<dyn FeasibilityTest>> {
    vec![
        Box::new(ProcessorDemandTest::new()),
        Box::new(QpaTest::new()),
        Box::new(DynamicErrorTest::new()),
        Box::new(AllApproximatedTest::new()),
    ]
}

/// Re-expresses a sporadic task set as a collection of periodic
/// event-stream tasks (tuple `(T, 0)`, cost `C`, deadline `D`).
fn as_event_streams(ts: &TaskSet) -> Vec<EventStreamTask> {
    ts.iter()
        .map(|task| {
            EventStreamTask::new(
                EventStream::periodic(task.period()),
                task.wcet(),
                task.deadline(),
            )
            .expect("valid task parameters")
        })
        .collect()
}

/// Every literature set, expressed as an event-stream workload, gets the
/// same verdict and the same dbf as its sporadic form under every exact
/// test — and both agree with the exhaustive oracle.
#[test]
fn literature_sets_are_model_invariant_and_oracle_consistent() {
    let systems = literature::all();
    assert!(systems.len() >= 3, "need at least 3 literature systems");
    for (name, ts) in systems {
        let streams = as_event_streams(&ts);
        let as_stream_workload = PreparedWorkload::new(&streams);
        let as_task_set = PreparedWorkload::new(&ts);

        // Identical demand in both representations.
        for i in (0..2_000u64).step_by(13) {
            let i = Time::new(i);
            assert_eq!(
                as_stream_workload.dbf(i),
                as_task_set.dbf(i),
                "{name}: dbf mismatch at {i}"
            );
        }

        // Identical verdicts under every exact test.
        for test in exact_tests() {
            let sporadic = test.analyze_prepared(&as_task_set);
            let stream = test.analyze_prepared(&as_stream_workload);
            assert_eq!(
                sporadic.verdict,
                stream.verdict,
                "{name}: {} disagrees between models",
                test.name()
            );
            assert!(sporadic.verdict.is_decisive(), "{name}: {}", test.name());
        }

        // Cross-validated against the exhaustive oracle.
        let oracle = exhaustive_check_workload(&streams);
        if oracle.verdict.is_decisive() {
            assert_eq!(
                oracle.verdict,
                ProcessorDemandTest::new()
                    .analyze_prepared(&as_stream_workload)
                    .verdict,
                "{name}: oracle disagrees"
            );
        }
    }
}

/// Genuinely bursty example systems (no sporadic equivalent): every exact
/// test agrees with the exhaustive oracle over the full hyperperiod-based
/// horizon.
#[test]
fn bursty_example_systems_match_the_exhaustive_oracle() {
    let burst = |count, inner, outer, c, d| {
        EventStreamTask::new(
            EventStream::bursty(count, Time::new(inner), Time::new(outer)),
            Time::new(c),
            Time::new(d),
        )
        .expect("valid event stream task")
    };
    let t = |c, d, p| Task::from_ticks(c, d, p).expect("valid task");

    let systems: Vec<(&str, MixedSystem)> = vec![
        (
            "sparse burst over background",
            MixedSystem::new(
                TaskSet::from_tasks(vec![t(2, 8, 10), t(5, 35, 40)]),
                vec![burst(4, 5, 200, 3, 30)],
            ),
        ),
        (
            "dense burst (infeasible)",
            MixedSystem::new(
                TaskSet::from_tasks(vec![t(6, 10, 10)]),
                vec![burst(3, 1, 100, 10, 25)],
            ),
        ),
        (
            "two interleaved bursts",
            MixedSystem::new(
                TaskSet::from_tasks(vec![t(1, 5, 20)]),
                vec![burst(2, 3, 50, 2, 10), burst(2, 7, 80, 1, 15)],
            ),
        ),
        (
            "pure stream system",
            MixedSystem::new(
                TaskSet::new(),
                vec![burst(3, 4, 60, 2, 12), burst(1, 1, 25, 1, 6)],
            ),
        ),
    ];
    assert!(systems.len() >= 3);

    for (name, system) in systems {
        let prepared = PreparedWorkload::new(&system);
        let oracle = exhaustive_check_workload(&system);
        assert!(
            oracle.verdict.is_decisive(),
            "{name}: oracle horizon should be exact for these cycles"
        );
        for test in exact_tests() {
            let analysis = test.analyze_prepared(&prepared);
            assert_eq!(
                analysis.verdict,
                oracle.verdict,
                "{name}: {} disagrees with the exhaustive oracle",
                test.name()
            );
            // Infeasibility witnesses must be genuine violations.
            if let Some(overload) = &analysis.overload {
                assert_eq!(prepared.dbf(overload.interval), overload.demand, "{name}");
                assert!(overload.demand > overload.interval, "{name}");
            }
        }
    }
}

/// The prepared-state cache never changes answers: analyzing through a
/// shared `PreparedWorkload` equals analyzing fresh each time.
#[test]
fn shared_preparation_is_transparent() {
    let system = MixedSystem::new(
        TaskSet::from_tasks(vec![Task::from_ticks(2, 8, 10).unwrap()]),
        vec![EventStreamTask::new(
            EventStream::bursty(3, Time::new(5), Time::new(100)),
            Time::new(4),
            Time::new(20),
        )
        .unwrap()],
    );
    let shared = PreparedWorkload::new(&system);
    for test in exact_tests() {
        assert_eq!(
            test.analyze_prepared(&shared),
            test.analyze_workload(&system),
            "{} changes under prepared-state sharing",
            test.name()
        );
    }
}

/// Mixed-system invariants: dbf and rbf are monotone, dbf never exceeds
/// rbf, and the exhaustive oracle on a truncated horizon is conservative.
#[test]
fn mixed_system_dbf_rbf_invariants() {
    let system = MixedSystem::new(
        TaskSet::from_tasks(vec![
            Task::from_ticks(1, 4, 9).unwrap(),
            Task::from_ticks(2, 11, 17).unwrap(),
        ]),
        vec![EventStreamTask::new(
            EventStream::bursty(3, Time::new(2), Time::new(40)),
            Time::new(1),
            Time::new(7),
        )
        .unwrap()],
    );
    let prepared = PreparedWorkload::new(&system);
    let mut last_dbf = Time::ZERO;
    let mut last_rbf = Time::ZERO;
    for i in 0..500u64 {
        let i = Time::new(i);
        let dbf = prepared.dbf(i);
        let rbf = prepared.rbf(i);
        assert!(dbf >= last_dbf, "dbf not monotone at {i}");
        assert!(rbf >= last_rbf, "rbf not monotone at {i}");
        assert!(dbf <= rbf, "dbf exceeds rbf at {i}");
        last_dbf = dbf;
        last_rbf = rbf;
    }
    // Truncated oracle stays conservative (Unknown, never Feasible).
    let truncated = exhaustive_check_prepared_up_to(&prepared, Time::new(20), false);
    assert_eq!(truncated.verdict, Verdict::Unknown);
}
