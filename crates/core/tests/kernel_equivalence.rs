//! Property tests of the columnar demand kernel's contract: every analysis
//! through the kernel path is **bit-identical** to the retained scalar
//! reference — verdicts, iteration counts, examined intervals and overload
//! witnesses — and the kernel primitives (`dbf`, `last_deadline_below`,
//! the combined QPA step, the loser-tree event merge) equal the scalar
//! folds and the heap merge they replaced.  Covered workload families:
//! sporadic task sets, event streams, mixed systems, arrival curves
//! (exact and conservative) and transaction systems, plus
//! `ScaledView`-over-kernel probes against cold preparations and the
//! allocation-free batch path against per-workload preparation.

use edf_analysis::batch::{analyze_many_serial, BoxedTest};
use edf_analysis::incremental::ScaledView;
use edf_analysis::kernel::{reference, AnalysisScratch};
use edf_analysis::workload::{DemandComponent, MixedSystem, PreparedWorkload, Workload};
use edf_analysis::{all_tests, FeasibilityTest};
use edf_model::{
    AffineSegment, ArrivalCurve, ArrivalCurveTask, EventStream, EventStreamTask, Task, TaskSet,
    Time, Transaction, TransactionPart, TransactionSystem,
};
use proptest::prelude::*;

fn arb_task() -> impl Strategy<Value = Task> {
    (1u64..=20, 1u64..=120, 2u64..=100).prop_filter_map("valid task", |(c, d, t)| {
        Task::from_ticks(c.min(t), d, t).ok()
    })
}

fn arb_set() -> impl Strategy<Value = TaskSet> {
    prop::collection::vec(arb_task(), 1..=6).prop_map(TaskSet::from_tasks)
}

fn arb_stream_task() -> impl Strategy<Value = EventStreamTask> {
    (1u64..=3, 1u64..=6, 20u64..=80, 1u64..=4, 2u64..=25).prop_map(|(burst, inner, outer, c, d)| {
        EventStreamTask::new(
            EventStream::bursty(burst, Time::new(inner), Time::new(outer)),
            Time::new(c),
            Time::new(d),
        )
        .expect("positive parameters")
    })
}

fn arb_mixed() -> impl Strategy<Value = MixedSystem> {
    (arb_set(), prop::collection::vec(arb_stream_task(), 0..=2))
        .prop_map(|(ts, streams)| MixedSystem::new(ts, streams))
}

fn arb_curve_task() -> impl Strategy<Value = ArrivalCurveTask> {
    (1u64..=4, 5u64..=60, 1u64..=4, 2u64..=25, 0u64..=1).prop_filter_map(
        "valid curve task",
        |(burst, distance, c, d, conservative)| {
            let conservative = conservative == 1;
            let curve = ArrivalCurve::from_affine_segments(&[AffineSegment::new(
                burst,
                Time::new(distance),
            )])
            .ok()?;
            let task = ArrivalCurveTask::new(curve, Time::new(c), Time::new(d)).ok()?;
            Some(if conservative {
                task.conservative()
            } else {
                task
            })
        },
    )
}

/// Largest narrow-column value: the `u32` narrowing/promotion boundary.
const NEAR_32: u64 = u32::MAX as u64;

/// A parameter value either well inside the narrow (`u32`) range or
/// straddling its upper boundary.
fn arb_straddle_value() -> impl Strategy<Value = u64> {
    prop_oneof![1u64..=120, (NEAR_32 - 40)..=(NEAR_32 + 40)]
}

/// Raw component lists whose deadlines, periods and costs straddle
/// `u32::MAX` in every combination — the narrowing gate's boundary family
/// (generator-backed workload models never reach these magnitudes).
fn arb_straddle_components() -> impl Strategy<Value = Vec<DemandComponent>> {
    prop::collection::vec(
        (
            arb_straddle_value(),
            arb_straddle_value(),
            arb_straddle_value(),
            0u8..3,
        ),
        1..=6,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|(wcet, deadline, period, kind)| match kind {
                0 => DemandComponent::one_shot(Time::new(wcet), Time::new(deadline), Time::ZERO),
                1 => DemandComponent::periodic(
                    Time::new(wcet.min(period)),
                    Time::new(deadline),
                    Time::new(period),
                ),
                _ => DemandComponent::periodic_from(
                    Time::new(wcet.min(period)),
                    Time::new(deadline),
                    Time::new(period),
                    Time::new(wcet % 97),
                ),
            })
            .collect()
    })
}

/// Probe intervals for the straddle family: a dense low range, the
/// `u32::MAX` neighbourhood (both sides of the narrow interval gate), and
/// the neighbourhood of every component deadline and first period step.
fn straddle_probes(prepared: &PreparedWorkload) -> Vec<Time> {
    let mut probes: Vec<u64> = (0..=64).collect();
    probes.extend([NEAR_32 - 1, NEAR_32, NEAR_32 + 1, 2 * NEAR_32 + 17]);
    for component in prepared.components() {
        let d = component.first_deadline().as_u64();
        probes.extend([d.saturating_sub(1), d, d + 1, d.saturating_add(NEAR_32)]);
        if let Some(p) = component.period() {
            let p = p.as_u64();
            probes.extend([d + p - 1, d + p, d + p + 1, d.saturating_add(3 * p)]);
        }
    }
    probes.into_iter().map(Time::new).collect()
}

fn arb_transaction_system() -> impl Strategy<Value = TransactionSystem> {
    (
        prop::collection::vec(arb_task(), 0..=2),
        prop::collection::vec((0u64..=20, 1u64..=5, 1u64..=25), 1..=3),
        30u64..=60,
    )
        .prop_filter_map("valid transaction", |(sporadic, parts, period)| {
            let parts: Vec<TransactionPart> = parts
                .into_iter()
                .map(|(o, c, d)| {
                    TransactionPart::new(Time::new(o % period), Time::new(c), Time::new(d))
                })
                .collect();
            let transaction = Transaction::new(Time::new(period), parts).ok()?;
            Some(TransactionSystem::new(
                TaskSet::from_tasks(sporadic),
                vec![transaction],
            ))
        })
}

/// Runs every registered test on the kernel-backed preparation and on the
/// scalar-reference oracle, asserting bit-identical analyses (verdict,
/// iteration count, max examined interval, overload witness), plus
/// batched-vs-repeated `dbf` equality on both paths.
fn assert_kernel_equals_scalar<W: Workload + ?Sized>(workload: &W) {
    let kernel = PreparedWorkload::new(workload);
    let scalar = kernel.scalar_reference();
    for test in all_tests() {
        assert_eq!(
            test.analyze_prepared(&kernel),
            test.analyze_prepared(&scalar),
            "{} diverges between kernel and scalar demand paths",
            test.name()
        );
    }
    assert_dbf_many_equals_repeated(&kernel, &scalar);
}

/// Asserts `dbf_many` (column-major interval blocks) bit-identical to
/// one-interval-at-a-time evaluation, on the kernel path and the scalar
/// oracle alike, over a dense probe range.
fn assert_dbf_many_equals_repeated(kernel: &PreparedWorkload, scalar: &PreparedWorkload) {
    let horizon = kernel
        .analysis_horizon()
        .unwrap_or(Time::new(200))
        .min(Time::new(300));
    // +2 past the horizon leaves a non-full remainder block.
    let probes: Vec<Time> = (0..=horizon.as_u64() + 2).map(Time::new).collect();
    let repeated: Vec<Time> = probes.iter().map(|&i| scalar.dbf(i)).collect();
    let mut batched = Vec::new();
    kernel.dbf_many(&probes, &mut batched);
    assert_eq!(batched, repeated, "kernel dbf_many vs repeated scalar dbf");
    scalar.dbf_many(&probes, &mut batched);
    assert_eq!(batched, repeated, "scalar dbf_many vs repeated scalar dbf");
}

/// Asserts the kernel primitives equal the scalar folds over a dense
/// interval range plus the exact analysis horizon neighbourhood.
fn assert_primitives_equal(prepared: &PreparedWorkload) {
    let scalar = prepared.scalar_reference();
    let horizon = prepared
        .analysis_horizon()
        .unwrap_or(Time::new(200))
        .min(Time::new(400));
    for i in 0..=horizon.as_u64() + 2 {
        let i = Time::new(i);
        assert_eq!(prepared.dbf(i), scalar.dbf(i), "dbf at {i}");
        assert_eq!(
            prepared.last_deadline_below(i),
            scalar.last_deadline_below(i),
            "last_deadline_below at {i}"
        );
        let (demand, predecessor) = prepared.demand_and_predecessor(i);
        assert_eq!(demand, scalar.dbf(i), "combined demand at {i}");
        assert_eq!(
            predecessor,
            scalar.last_deadline_below(i),
            "combined predecessor at {i}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Kernel primitives equal the scalar folds on mixed systems (the
    /// richest single decomposition: periodic + offset + one-shot mix).
    #[test]
    fn primitives_match_scalar_on_mixed_systems(system in arb_mixed()) {
        assert_primitives_equal(&PreparedWorkload::new(&system));
    }

    /// The loser-tree merge yields exactly the heap merge's event
    /// sequence, per-job ties in component order included.
    #[test]
    fn loser_tree_merge_equals_heap_merge(system in arb_mixed(), horizon in 1u64..=400) {
        let prepared = PreparedWorkload::new(&system);
        let horizon = Time::new(horizon);
        let tree: Vec<(Time, usize)> = prepared
            .demand_events(horizon)
            .map(|e| (e.interval, e.component))
            .collect();
        let heap: Vec<(Time, usize)> =
            reference::demand_events(prepared.components(), horizon)
                .map(|e| (e.interval, e.component))
                .collect();
        prop_assert_eq!(tree, heap);
    }

    /// Full-analysis equivalence on sporadic task sets.
    #[test]
    fn analyses_match_on_task_sets(ts in arb_set()) {
        assert_kernel_equals_scalar(&ts);
    }

    /// ... on event-stream tasks.
    #[test]
    fn analyses_match_on_event_streams(task in arb_stream_task()) {
        assert_kernel_equals_scalar(&task);
    }

    /// ... on mixed systems.
    #[test]
    fn analyses_match_on_mixed_systems(system in arb_mixed()) {
        assert_kernel_equals_scalar(&system);
    }

    /// ... on arrival-curve tasks (exact and conservative decompositions;
    /// the conservative mode exercises the one-shot prefix-sum columns).
    #[test]
    fn analyses_match_on_arrival_curves(task in arb_curve_task()) {
        assert_kernel_equals_scalar(&task);
    }

    /// ... on transaction systems (synchronous-conservative reduction).
    #[test]
    fn analyses_match_on_transaction_systems(system in arb_transaction_system()) {
        assert_kernel_equals_scalar(&system);
    }

    /// Scratch reuse never changes a result: analyzing many workloads
    /// through one scratch arena equals fresh-scratch analyses.
    #[test]
    fn scratch_reuse_is_observationally_pure(
        systems in prop::collection::vec(arb_mixed(), 1..=4),
    ) {
        let suite = all_tests();
        let mut scratch = AnalysisScratch::new();
        for system in &systems {
            let prepared = PreparedWorkload::new(system);
            for test in &suite {
                prop_assert_eq!(
                    test.analyze_prepared_with(&prepared, &mut scratch),
                    test.analyze_prepared(&prepared),
                    "{} diverges under scratch reuse", test.name()
                );
            }
        }
    }

    /// The allocation-free batch path (recycled preparation + per-worker
    /// scratch) equals per-workload preparation.
    #[test]
    fn recycled_batch_preparation_matches_fresh(
        workloads in prop::collection::vec(arb_set(), 1..=5),
    ) {
        let tests: Vec<BoxedTest> = all_tests();
        let batch = analyze_many_serial(&workloads, &tests);
        for (i, workload) in workloads.iter().enumerate() {
            let prepared = PreparedWorkload::new(workload);
            for (j, test) in tests.iter().enumerate() {
                prop_assert_eq!(
                    &batch[i][j],
                    &test.analyze_prepared(&prepared),
                    "workload {} test {}", i, j
                );
            }
        }
    }

    /// `ScaledView` probes over the kernel equal cold preparations of the
    /// same scaled components — including interleaved overload scalings
    /// (bounds skipped) and the kernel's rewritten one-shot prefix sums.
    #[test]
    fn scaled_view_over_kernel_matches_cold_preparation(
        system in arb_mixed(),
        numers in prop::collection::vec(0u64..=16_000, 1..=6),
    ) {
        let base = PreparedWorkload::new(&system);
        // Touch the kernel before probing so every probe rewrites live
        // columns rather than building fresh ones.
        let _ = base.dbf(Time::new(1));
        let mut view = ScaledView::new(&base);
        for numer in numers {
            let probed = view.scale_wcets(numer, 1_000);
            let cold = base.with_scaled_wcets(numer, 1_000);
            prop_assert_eq!(probed.components(), cold.components());
            let horizon = cold.analysis_horizon().unwrap_or(Time::new(120)).min(Time::new(240));
            for i in 0..=horizon.as_u64() {
                let i = Time::new(i);
                prop_assert_eq!(probed.dbf(i), cold.dbf(i), "dbf at {}", i);
                prop_assert_eq!(
                    probed.last_deadline_below(i),
                    cold.last_deadline_below(i),
                    "predecessor at {}", i
                );
            }
            for test in all_tests() {
                prop_assert_eq!(
                    test.analyze_prepared(probed),
                    test.analyze_prepared(&cold),
                    "{} diverges between view-over-kernel and cold preparation",
                    test.name()
                );
            }
        }
    }

    /// Columns straddling the `u32` narrowing boundary: every combination
    /// of narrow/wide deadlines, periods and costs answers every primitive
    /// — `dbf`, `last_deadline_below`, the fused QPA step, batched
    /// `dbf_many` — bit-identically to the scalar oracle, on probe
    /// intervals on both sides of the narrow interval gate.
    #[test]
    fn straddling_u32_columns_match_scalar(components in arb_straddle_components()) {
        let prepared = PreparedWorkload::from_components(components);
        let scalar = prepared.scalar_reference();
        let probes = straddle_probes(&prepared);
        for &i in &probes {
            prop_assert_eq!(prepared.dbf(i), scalar.dbf(i), "dbf at {}", i);
            prop_assert_eq!(
                prepared.last_deadline_below(i),
                scalar.last_deadline_below(i),
                "predecessor at {}", i
            );
            let (demand, predecessor) = prepared.demand_and_predecessor(i);
            prop_assert_eq!(demand, scalar.dbf(i), "combined demand at {}", i);
            prop_assert_eq!(
                predecessor,
                scalar.last_deadline_below(i),
                "combined predecessor at {}", i
            );
        }
        let repeated: Vec<Time> = probes.iter().map(|&i| scalar.dbf(i)).collect();
        let mut batched = Vec::new();
        prepared.dbf_many(&probes, &mut batched);
        prop_assert_eq!(batched, repeated);
    }

    /// Mid-`ScaledView` narrow demotion and promotion: probing a
    /// wide-period component's cost across the `u32::MAX` boundary — above
    /// (the kernel demotes to the wide columns in place), back below (the
    /// probe-boundary refresh re-narrows) — always equals a cold
    /// preparation of the same components, full analyses included.
    #[test]
    fn narrow_promotion_mid_scaled_view_matches_cold(
        ts in arb_set(),
        wcets in prop::collection::vec(
            prop_oneof![1u64..=1_000, (NEAR_32 - 2)..=(NEAR_32 + 1_000)],
            1..=5,
        ),
    ) {
        let wide_period = 4 * NEAR_32;
        let mut components = ts.demand_components();
        components.push(DemandComponent::periodic(
            Time::new(5),
            Time::new(40),
            Time::new(wide_period),
        ));
        let wide_idx = components.len() - 1;
        let base = PreparedWorkload::from_components(components.clone());
        // Touch the kernel so every probe rewrites live narrow columns.
        let _ = base.dbf(Time::new(1));
        let mut view = ScaledView::new(&base);
        let suite = all_tests();
        for wcet in wcets {
            let probed = view.with_component_wcet(wide_idx, Time::new(wcet));
            let mut cold_components = components.clone();
            cold_components[wide_idx] = DemandComponent::periodic(
                Time::new(wcet.min(wide_period)),
                Time::new(40),
                Time::new(wide_period),
            );
            let cold = PreparedWorkload::from_components(cold_components);
            prop_assert_eq!(probed.components(), cold.components());
            for i in (0..=120).chain([NEAR_32 - 1, NEAR_32, NEAR_32 + 40, NEAR_32 + 41]) {
                let i = Time::new(i);
                prop_assert_eq!(probed.dbf(i), cold.dbf(i), "dbf at {}", i);
                prop_assert_eq!(
                    probed.last_deadline_below(i),
                    cold.last_deadline_below(i),
                    "predecessor at {}", i
                );
            }
            for test in &suite {
                prop_assert_eq!(
                    test.analyze_prepared(probed),
                    test.analyze_prepared(&cold),
                    "{} diverges between demoted/promoted view and cold preparation",
                    test.name()
                );
            }
        }
    }

    /// A `ScaledView` over the scalar oracle runs entirely on the scalar
    /// path and still equals the kernel view — whole probe sequences
    /// compare equal end to end.
    #[test]
    fn scalar_view_probes_match_kernel_view_probes(
        system in arb_mixed(),
        numers in prop::collection::vec(0u64..=8_000, 1..=4),
    ) {
        let kernel_base = PreparedWorkload::new(&system);
        let scalar_base = kernel_base.scalar_reference();
        let mut kernel_view = ScaledView::new(&kernel_base);
        let mut scalar_view = ScaledView::new(&scalar_base);
        let suite = all_tests();
        for numer in numers {
            let kernel_probe = kernel_view.scale_wcets(numer, 1_000);
            let scalar_probe = scalar_view.scale_wcets(numer, 1_000);
            for test in &suite {
                prop_assert_eq!(
                    test.analyze_prepared(kernel_probe),
                    test.analyze_prepared(scalar_probe),
                    "{} diverges between kernel and scalar views", test.name()
                );
            }
        }
    }
}

/// Deterministic spot check: the overload witness survives the kernel
/// rebuild exactly (interval and demand), for both the event-walking and
/// the QPA-style exact tests.
#[test]
fn overload_witnesses_are_preserved() {
    use edf_analysis::tests::{ProcessorDemandTest, QpaTest};

    let ts = TaskSet::from_tasks(vec![
        Task::from_ticks(3, 4, 10).unwrap(),
        Task::from_ticks(4, 6, 10).unwrap(),
        Task::from_ticks(2, 5, 12).unwrap(),
    ]);
    let kernel = PreparedWorkload::new(&ts);
    let scalar = kernel.scalar_reference();
    for test in [
        Box::new(ProcessorDemandTest::new()) as Box<dyn FeasibilityTest>,
        Box::new(QpaTest::new()),
    ] {
        let a = test.analyze_prepared(&kernel);
        let b = test.analyze_prepared(&scalar);
        assert_eq!(a, b, "{}", test.name());
        let witness = a.overload.expect("infeasible set has a witness");
        assert!(witness.demand > witness.interval);
    }
}
