//! Deterministic work budgets: cooperative cancellation for the analysis
//! loops.
//!
//! The paper's exact tests are worst-case unbounded in practice — the
//! number of test intervals explodes with utilization and period spread —
//! so a service built on them needs a way to interrupt a runaway analysis
//! *mid-loop*.  Wall-clock deadlines can do that, but the resulting
//! degradation behavior is irreproducible: whether a request is shed
//! depends on machine speed and scheduling jitter, which makes load
//! shedding impossible to property-test or fault-inject deterministically.
//!
//! [`WorkBudget`] replaces the clock with a count of **deterministic work
//! units** — demand-merge events consumed, QPA descent iterations,
//! refinement-frontier comparison steps, candidate combinations, bounds
//! fix-point iterations.  Every long-running loop in the crate charges one
//! unit per step at a cheap checkpoint (one saturating add and one compare)
//! and, when the budget is exhausted, unwinds cleanly to an honest
//! [`Verdict::Unknown`](crate::Verdict::Unknown) carrying a [`Progress`]
//! record of how far the analysis got.  Two runs with the same workload
//! and the same budget always stop at the same step with the same answer.
//!
//! The budget travels in [`AnalysisScratch`](crate::AnalysisScratch)
//! (every budget-aware loop already receives the scratch): install one
//! with [`AnalysisScratch::set_budget`](crate::AnalysisScratch::set_budget),
//! run any analysis, then inspect
//! [`Analysis::progress`](crate::Analysis::progress) — `Some` if and only
//! if the budget ran out — and recover the spent count with
//! [`AnalysisScratch::take_budget`](crate::AnalysisScratch::take_budget).
//! The default budget is [`WorkBudget::unlimited`], under which every
//! analysis is bit-identical to the un-budgeted code paths.
//!
//! # Examples
//!
//! ```
//! use edf_analysis::budget::WorkBudget;
//! use edf_analysis::tests::ProcessorDemandTest;
//! use edf_analysis::workload::PreparedWorkload;
//! use edf_analysis::{AnalysisScratch, FeasibilityTest};
//! use edf_model::{Task, TaskSet, Time};
//!
//! # fn main() -> Result<(), edf_model::TaskError> {
//! let ts = TaskSet::from_tasks(vec![
//!     Task::new(Time::new(3), Time::new(4), Time::new(10))?,
//!     Task::new(Time::new(4), Time::new(6), Time::new(10))?,
//!     Task::new(Time::new(2), Time::new(5), Time::new(12))?,
//! ]);
//! let prepared = PreparedWorkload::new(&ts);
//! let mut scratch = AnalysisScratch::new();
//!
//! // Two units are not enough to walk this workload's demand events.
//! scratch.set_budget(WorkBudget::limited(2));
//! let analysis = ProcessorDemandTest::new().analyze_prepared_with(&prepared, &mut scratch);
//! let progress = analysis.progress.expect("budget must exhaust");
//! assert!(analysis.verdict.is_unknown());
//! assert!(progress.units_spent >= 2);
//!
//! // An unlimited budget reproduces the plain analysis bit-for-bit.
//! scratch.set_budget(WorkBudget::unlimited());
//! let full = ProcessorDemandTest::new().analyze_prepared_with(&prepared, &mut scratch);
//! assert_eq!(full, ProcessorDemandTest::new().analyze_prepared(&prepared));
//! # Ok(())
//! # }
//! ```

use std::fmt;

use edf_model::Time;

/// A deterministic work budget: a limit on the number of work units an
/// analysis may consume before it must stop and answer
/// [`Verdict::Unknown`](crate::Verdict::Unknown).
///
/// A unit is one checkpointed loop step — see the [module docs](self) for
/// the exact loops that charge.  The token is a plain counter pair, so
/// copying it out of a scratch, threading it through a loop as a local,
/// and storing it back is free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkBudget {
    limit: u64,
    spent: u64,
}

impl WorkBudget {
    /// A budget that never exhausts.  Analyses run under an unlimited
    /// budget are bit-identical to the un-budgeted code paths (the spent
    /// counter still advances, which is how callers can *measure* work
    /// without capping it).
    #[must_use]
    pub const fn unlimited() -> Self {
        WorkBudget {
            limit: u64::MAX,
            spent: 0,
        }
    }

    /// A budget of exactly `units` work units.
    #[must_use]
    pub const fn limited(units: u64) -> Self {
        WorkBudget {
            limit: units,
            spent: 0,
        }
    }

    /// Charges `units` units and reports whether the budget still holds.
    ///
    /// Returns `false` once total spend exceeds the limit; the caller must
    /// then stop **before** performing the step it was about to charge
    /// for.  This is the per-iteration checkpoint, kept to one saturating
    /// add and one compare so hot loops can afford it.
    #[inline]
    #[must_use]
    pub fn charge(&mut self, units: u64) -> bool {
        self.spent = self.spent.saturating_add(units);
        self.spent <= self.limit
    }

    /// The configured limit (`u64::MAX` for [`WorkBudget::unlimited`]).
    #[must_use]
    pub const fn limit(&self) -> u64 {
        self.limit
    }

    /// Units charged so far (including the charge that exhausted the
    /// budget, if any).
    #[must_use]
    pub const fn spent(&self) -> u64 {
        self.spent
    }

    /// Units left before exhaustion.
    #[must_use]
    pub const fn remaining(&self) -> u64 {
        self.limit.saturating_sub(self.spent)
    }

    /// `true` once a [`WorkBudget::charge`] has been refused.
    #[must_use]
    pub const fn is_exhausted(&self) -> bool {
        self.spent > self.limit
    }
}

impl Default for WorkBudget {
    /// The default budget is unlimited — scratch reuse without
    /// [`set_budget`](crate::AnalysisScratch::set_budget) never caps work.
    fn default() -> Self {
        WorkBudget::unlimited()
    }
}

/// The analysis phase a budget-exhausted run had reached; coarse, but
/// enough to tell "never got past the feasibility bounds" from "was deep
/// in the refinement loop".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProgressPhase {
    /// Computing the §4.3 feasibility bounds (busy-period fix point or
    /// bound search) before any test interval was examined.
    Bounds,
    /// Walking the merged demand events of the processor demand test.
    DemandWalk,
    /// QPA's downward descent from the initial upper bound.
    QpaDescent,
    /// The refining tests' frontier loop (dynamic-error or
    /// all-approximated).
    Refinement,
    /// The candidate-product sweep of the transaction analysis.
    CandidateSweep,
}

impl fmt::Display for ProgressPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ProgressPhase::Bounds => "bounds",
            ProgressPhase::DemandWalk => "demand-walk",
            ProgressPhase::QpaDescent => "qpa-descent",
            ProgressPhase::Refinement => "refinement",
            ProgressPhase::CandidateSweep => "candidate-sweep",
        };
        f.write_str(name)
    }
}

/// What a budget-exhausted analysis managed to establish before it was
/// cancelled — attached to [`Analysis::progress`](crate::Analysis::progress)
/// **only** when a [`WorkBudget`] ran out, so equality of budgeted and
/// un-budgeted results keeps meaning "same answer, same work".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Work units charged before the analysis stopped (includes the
    /// refused charge).
    pub units_spent: u64,
    /// The loop the analysis was cancelled in.
    pub phase: ProgressPhase,
    /// The largest test interval certified violation-free before the
    /// cancellation: every examined interval `≤` this one had
    /// `demand ≤ interval`.  `None` when no interval comparison had
    /// completed (or the phase, like QPA's descent, certifies downward
    /// rather than upward).
    pub certified_interval: Option<Time>,
    /// The highest approximation level fully answered before exhaustion,
    /// when the run was a level-escalation ladder (the service's budgeted
    /// mode); `None` for single-level runs.
    pub bounded_level: Option<u64>,
}

impl fmt::Display for Progress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "budget exhausted after {} unit(s) in {}",
            self.units_spent, self.phase
        )?;
        if let Some(interval) = self.certified_interval {
            write!(f, ", certified ≤ {interval}")?;
        }
        if let Some(level) = self.bounded_level {
            write!(f, ", bounded level {level}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let mut budget = WorkBudget::unlimited();
        for _ in 0..1000 {
            assert!(budget.charge(u64::MAX / 2));
        }
        assert!(!budget.is_exhausted());
        assert_eq!(budget.spent(), u64::MAX);
        assert_eq!(budget.remaining(), 0);
    }

    #[test]
    fn limited_exhausts_at_the_boundary() {
        let mut budget = WorkBudget::limited(3);
        assert!(budget.charge(1));
        assert!(budget.charge(1));
        assert!(budget.charge(1));
        assert!(!budget.is_exhausted());
        assert_eq!(budget.remaining(), 0);
        assert!(!budget.charge(1));
        assert!(budget.is_exhausted());
        assert_eq!(budget.spent(), 4);
    }

    #[test]
    fn zero_budget_refuses_the_first_charge() {
        let mut budget = WorkBudget::limited(0);
        assert!(!budget.charge(1));
        assert!(budget.is_exhausted());
    }

    #[test]
    fn progress_display_is_readable() {
        let progress = Progress {
            units_spent: 42,
            phase: ProgressPhase::Refinement,
            certified_interval: Some(Time::new(99)),
            bounded_level: Some(4),
        };
        let text = progress.to_string();
        assert!(text.contains("42 unit(s)"));
        assert!(text.contains("refinement"));
        assert!(text.contains("99"));
        assert!(text.contains("level 4"));
    }
}
