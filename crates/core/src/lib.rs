//! # `edf-analysis` — fast exact EDF feasibility tests
//!
//! A Rust implementation of the feasibility analysis framework of
//!
//! > K. Albers, F. Slomka. *Efficient Feasibility Analysis for Real-Time
//! > Systems with EDF Scheduling.* DATE 2005.
//!
//! The crate answers the question "does a sporadic task set meet all of its
//! deadlines on a uniprocessor under preemptive EDF?" and offers the whole
//! spectrum of tests the paper discusses, all behind the common
//! [`FeasibilityTest`] trait:
//!
//! * classic sufficient tests — [`tests::LiuLaylandTest`],
//!   [`tests::DensityTest`], [`tests::DeviTest`];
//! * the exact but slow baseline — [`tests::ProcessorDemandTest`]
//!   (plus [`tests::QpaTest`] as a newer exact baseline);
//! * the adjustable sufficient superposition test —
//!   [`tests::SuperpositionTest`];
//! * the paper's two **new exact tests** — [`tests::DynamicErrorTest`] and
//!   [`tests::AllApproximatedTest`] — which accept exactly the same task
//!   sets as the processor demand test while examining orders of magnitude
//!   fewer test intervals on hard (high-utilization, wide period spread)
//!   inputs.
//!
//! Supporting modules expose the building blocks: the demand bound function
//! ([`demand`]), the superposition approximation ([`superposition`]), the
//! feasibility bounds of §4.3 ([`bounds`]) and exact rational helpers
//! ([`arith`]).  On top of the exact tests, [`sensitivity`] answers
//! breakdown-utilization and WCET-slack questions, [`event_stream_analysis`]
//! extends the analysis to Gresser event streams (the "advanced task model"
//! of §2), and [`exhaustive`] provides a naive reference oracle for
//! validation.
//!
//! # Quick start
//!
//! ```
//! use edf_analysis::tests::{AllApproximatedTest, DeviTest, ProcessorDemandTest};
//! use edf_analysis::{FeasibilityTest, Verdict};
//! use edf_model::{Task, TaskSet, Time};
//!
//! # fn main() -> Result<(), edf_model::TaskError> {
//! // A feasible set that the sufficient test by Devi cannot accept.
//! let ts = TaskSet::from_tasks(vec![
//!     Task::new(Time::new(1), Time::new(2), Time::new(10))?,
//!     Task::new(Time::new(2), Time::new(3), Time::new(10))?,
//!     Task::new(Time::new(5), Time::new(9), Time::new(10))?,
//! ]);
//!
//! assert_eq!(DeviTest::new().analyze(&ts).verdict, Verdict::Unknown);
//!
//! let exact = AllApproximatedTest::new().analyze(&ts);
//! assert_eq!(exact.verdict, Verdict::Feasible);
//!
//! // Same verdict as the exact processor demand baseline.  On large,
//! // highly utilized task sets the new test examines orders of magnitude
//! // fewer intervals (see the `edf-experiments` crate).
//! let baseline = ProcessorDemandTest::new().analyze(&ts);
//! assert_eq!(baseline.verdict, Verdict::Feasible);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analysis;
pub mod arith;
pub mod bounds;
pub mod demand;
pub mod event_stream_analysis;
pub mod exhaustive;
pub mod sensitivity;
pub mod superposition;
pub mod tests;

pub use analysis::{Analysis, DemandOverload, FeasibilityTest, Verdict};

/// A ready-made collection of every test in the crate, boxed behind the
/// [`FeasibilityTest`] trait — convenient for experiment harnesses that
/// want to run "everything" on a task set.
///
/// The superposition tests are instantiated at the levels used in Figure 1
/// of the paper (2 through 10).
#[must_use]
pub fn all_tests() -> Vec<Box<dyn FeasibilityTest>> {
    let mut suite: Vec<Box<dyn FeasibilityTest>> = vec![
        Box::new(tests::LiuLaylandTest::new()),
        Box::new(tests::DensityTest::new()),
        Box::new(tests::DeviTest::new()),
        Box::new(tests::ProcessorDemandTest::new()),
        Box::new(tests::QpaTest::new()),
        Box::new(tests::DynamicErrorTest::new()),
        Box::new(tests::AllApproximatedTest::new()),
    ];
    for level in 2..=10 {
        suite.push(Box::new(tests::SuperpositionTest::new(level)));
    }
    suite
}

#[cfg(test)]
mod crate_tests {
    use super::*;
    use edf_model::{Task, TaskSet, Time};

    #[test]
    fn all_tests_runs_every_test() {
        let ts = TaskSet::from_tasks(vec![
            Task::from_ticks(1, 8, 8).unwrap(),
            Task::from_ticks(2, 16, 16).unwrap(),
        ]);
        let suite = all_tests();
        assert_eq!(suite.len(), 7 + 9);
        for test in &suite {
            let analysis = test.analyze(&ts);
            assert!(
                analysis.verdict.is_feasible(),
                "{} should accept the easy set",
                test.name()
            );
        }
    }

    #[test]
    fn exact_tests_are_flagged() {
        let suite = all_tests();
        let exact: Vec<String> = suite
            .iter()
            .filter(|t| t.is_exact())
            .map(|t| t.name().to_owned())
            .collect();
        assert!(exact.iter().any(|n| n == "processor-demand"));
        assert!(exact.iter().any(|n| n == "qpa"));
        assert!(exact.iter().any(|n| n == "dynamic-error"));
        assert!(exact.iter().any(|n| n == "all-approximated"));
        assert!(!exact.iter().any(|n| n == "devi"));
    }

    #[test]
    fn send_sync_bounds() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Analysis>();
        assert_send_sync::<Verdict>();
        assert_send_sync::<tests::AllApproximatedTest>();
        assert_send_sync::<tests::DynamicErrorTest>();
        assert_send_sync::<Time>();
    }
}
