//! # `edf-analysis` — fast exact EDF feasibility tests
//!
//! A Rust implementation of the feasibility analysis framework of
//!
//! > K. Albers, F. Slomka. *Efficient Feasibility Analysis for Real-Time
//! > Systems with EDF Scheduling.* DATE 2005.
//!
//! The crate answers the question "does this workload meet all of its
//! deadlines on a uniprocessor under preemptive EDF?" for **any demand
//! characterized workload** — sporadic task sets, Gresser event streams,
//! real-time-calculus arrival curves, offset transactions, and mixed
//! systems — behind two central abstractions:
//!
//! * [`workload::Workload`] — the demand interface (`dbf`, `rbf`,
//!   utilization, demand change points).  Every workload decomposes into
//!   elementary [`workload::DemandComponent`]s, which is how the paper's
//!   §3.6 observation ("the extension for the event stream model is easy")
//!   becomes structural: an event-stream tuple *is* a component, so every
//!   test below runs on event streams unchanged and stays exact;
//! * [`FeasibilityTest`] — the test interface.  Tests consume a
//!   [`workload::PreparedWorkload`], a cached snapshot (components, exact
//!   `U > 1` comparison, §4.3 feasibility bounds, deadline ordering)
//!   computed once and shared across a whole test suite.
//!
//! The implemented spectrum, all registered in [`registered_tests`]:
//!
//! * classic sufficient tests — [`tests::LiuLaylandTest`],
//!   [`tests::DensityTest`], [`tests::DeviTest`];
//! * the exact but slow baseline — [`tests::ProcessorDemandTest`]
//!   (plus [`tests::QpaTest`] as a newer exact baseline);
//! * the adjustable sufficient superposition test —
//!   [`tests::SuperpositionTest`];
//! * the paper's two **new exact tests** — [`tests::DynamicErrorTest`] and
//!   [`tests::AllApproximatedTest`] — which accept exactly the same
//!   workloads as the processor demand test while examining orders of
//!   magnitude fewer test intervals on hard (high-utilization, wide period
//!   spread) inputs.
//!
//! Supporting modules expose the building blocks: the demand bound
//! function ([`demand`]), the superposition approximation
//! ([`superposition`]), the feasibility bounds of §4.3 ([`bounds`]) and
//! exact rational helpers ([`arith`]).  On top of the exact tests,
//! [`sensitivity`] answers breakdown-utilization and WCET-slack questions
//! through the [`incremental`] engine ([`ScaledView`] probes WCET
//! perturbations of one prepared workload without re-preparation),
//! [`batch`] fans a workload batch out across the CPU cores with one
//! shared preparation per workload, [`transactions`] analyzes
//! offset-transaction systems through the [`candidates`] engine
//! (dominance-pruned critical-instant candidates, Gray-code incremental
//! re-preparation, parallel early-exit sweep),
//! [`event_stream_analysis`] keeps the compatibility surface of the former
//! bespoke event-stream loop, and [`exhaustive`] provides a naive
//! reference oracle for validation.
//!
//! # Quick start
//!
//! ```
//! use edf_analysis::tests::{AllApproximatedTest, DeviTest, ProcessorDemandTest};
//! use edf_analysis::{FeasibilityTest, Verdict};
//! use edf_model::{Task, TaskSet, Time};
//!
//! # fn main() -> Result<(), edf_model::TaskError> {
//! // A feasible set that the sufficient test by Devi cannot accept.
//! let ts = TaskSet::from_tasks(vec![
//!     Task::new(Time::new(1), Time::new(2), Time::new(10))?,
//!     Task::new(Time::new(2), Time::new(3), Time::new(10))?,
//!     Task::new(Time::new(5), Time::new(9), Time::new(10))?,
//! ]);
//!
//! assert_eq!(DeviTest::new().analyze(&ts).verdict, Verdict::Unknown);
//!
//! let exact = AllApproximatedTest::new().analyze(&ts);
//! assert_eq!(exact.verdict, Verdict::Feasible);
//!
//! // Same verdict as the exact processor demand baseline.  On large,
//! // highly utilized task sets the new test examines orders of magnitude
//! // fewer intervals (see the `edf-experiments` crate).
//! let baseline = ProcessorDemandTest::new().analyze(&ts);
//! assert_eq!(baseline.verdict, Verdict::Feasible);
//! # Ok(())
//! # }
//! ```
//!
//! # Beyond sporadic tasks
//!
//! ```
//! use edf_analysis::tests::DynamicErrorTest;
//! use edf_analysis::workload::{MixedSystem, PreparedWorkload};
//! use edf_analysis::{FeasibilityTest, Verdict};
//! use edf_model::{EventStream, EventStreamTask, Task, TaskSet, Time};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = MixedSystem::new(
//!     TaskSet::from_tasks(vec![Task::new(Time::new(2), Time::new(8), Time::new(10))?]),
//!     vec![EventStreamTask::new(
//!         EventStream::bursty(3, Time::new(5), Time::new(100)),
//!         Time::new(4),
//!         Time::new(20),
//!     )?],
//! );
//! // Prepare once, analyze with anything — here the paper's dynamic-error
//! // exact test, directly on the bursty event-stream system.
//! let prepared = PreparedWorkload::new(&system);
//! assert_eq!(
//!     DynamicErrorTest::new().analyze_prepared(&prepared).verdict,
//!     Verdict::Feasible
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analysis;
pub mod arith;
pub mod batch;
pub mod bounds;
pub mod budget;
pub mod candidates;
pub mod demand;
pub mod event_stream_analysis;
pub mod exhaustive;
pub mod incremental;
pub mod kernel;
pub mod refine;
pub mod sensitivity;
pub mod superposition;
pub mod tests;
pub mod transactions;
pub mod workload;

pub use analysis::{Analysis, DemandOverload, FeasibilityTest, Verdict};
pub use batch::BoxedTest;
pub use budget::{Progress, ProgressPhase, WorkBudget};
pub use incremental::{EditView, ScaledView, WorkloadView};
pub use kernel::AnalysisScratch;
pub use workload::{MixedSystem, PreparedWorkload, Workload};

/// One entry of the test registry: the test's canonical name and its
/// constructor.
#[derive(Debug, Clone, Copy)]
pub struct TestRegistration {
    /// Canonical name, equal to
    /// [`FeasibilityTest::name`] of the constructed test.
    pub name: &'static str,
    /// Builds a fresh boxed instance of the test.
    pub build: fn() -> BoxedTest,
}

/// A `(name, constructor)` registry row.
type RegistryRow = (&'static str, fn() -> BoxedTest);

/// The registry, as one constant table: `(name, constructor)` in
/// presentation order.  This is the **single source of truth** — the
/// superposition levels of Figure 1 are the `superpos(…)` rows, and
/// [`SUPERPOSITION_SUITE_LEVELS`] is derived from (not feeding) it.
const TEST_REGISTRY: [RegistryRow; 16] = [
    ("liu-layland", || Box::new(tests::LiuLaylandTest::new())),
    ("density", || Box::new(tests::DensityTest::new())),
    ("devi", || Box::new(tests::DeviTest::new())),
    ("processor-demand", || {
        Box::new(tests::ProcessorDemandTest::new())
    }),
    ("qpa", || Box::new(tests::QpaTest::new())),
    ("dynamic-error", || Box::new(tests::DynamicErrorTest::new())),
    ("all-approximated", || {
        Box::new(tests::AllApproximatedTest::new())
    }),
    ("superpos(2)", || Box::new(tests::SuperpositionTest::new(2))),
    ("superpos(3)", || Box::new(tests::SuperpositionTest::new(3))),
    ("superpos(4)", || Box::new(tests::SuperpositionTest::new(4))),
    ("superpos(5)", || Box::new(tests::SuperpositionTest::new(5))),
    ("superpos(6)", || Box::new(tests::SuperpositionTest::new(6))),
    ("superpos(7)", || Box::new(tests::SuperpositionTest::new(7))),
    ("superpos(8)", || Box::new(tests::SuperpositionTest::new(8))),
    ("superpos(9)", || Box::new(tests::SuperpositionTest::new(9))),
    ("superpos(10)", || {
        Box::new(tests::SuperpositionTest::new(10))
    }),
];

/// The approximation levels instantiated for the superposition test family
/// in [`all_tests`] (the levels of Figure 1 of the paper).  To change the
/// suite, edit the `superpos(…)` rows of the registry table — this range
/// follows along.
pub const SUPERPOSITION_SUITE_LEVELS: std::ops::RangeInclusive<u64> = 2..=10;

/// The registry of every test in the crate, in presentation order — the
/// single source of truth behind [`all_tests`], so adding a test here is
/// all it takes for the experiment harnesses (and the suite-size
/// assertions) to pick it up.
#[must_use]
pub fn registered_tests() -> Vec<TestRegistration> {
    TEST_REGISTRY
        .iter()
        .map(|&(name, build)| TestRegistration { name, build })
        .collect()
}

/// A ready-made collection of every registered test, boxed behind the
/// [`FeasibilityTest`] trait — convenient for experiment harnesses and the
/// [`batch`] front end.
///
/// The superposition tests are instantiated at the levels used in Figure 1
/// of the paper ([`SUPERPOSITION_SUITE_LEVELS`]).
#[must_use]
pub fn all_tests() -> Vec<BoxedTest> {
    registered_tests()
        .into_iter()
        .map(|entry| (entry.build)())
        .collect()
}

#[cfg(test)]
mod crate_tests {
    use super::*;
    use edf_model::{Task, TaskSet, Time};

    #[test]
    fn all_tests_runs_every_registered_test() {
        let ts = TaskSet::from_tasks(vec![
            Task::from_ticks(1, 8, 8).unwrap(),
            Task::from_ticks(2, 16, 16).unwrap(),
        ]);
        let suite = all_tests();
        // The expected size derives from the registry itself — adding a
        // test to `registered_tests` can never silently desynchronize this.
        assert_eq!(suite.len(), registered_tests().len());
        for test in &suite {
            let analysis = test.analyze(&ts);
            assert!(
                analysis.verdict.is_feasible(),
                "{} should accept the easy set",
                test.name()
            );
        }
    }

    #[test]
    fn superposition_levels_constant_matches_the_registry_rows() {
        let expected: Vec<String> = SUPERPOSITION_SUITE_LEVELS
            .map(|level| format!("superpos({level})"))
            .collect();
        let actual: Vec<&str> = registered_tests()
            .iter()
            .map(|e| e.name)
            .filter(|n| n.starts_with("superpos("))
            .collect();
        assert_eq!(actual, expected, "SUPERPOSITION_SUITE_LEVELS out of sync");
    }

    #[test]
    fn registry_names_match_test_names_and_are_unique() {
        let registry = registered_tests();
        for entry in &registry {
            assert_eq!(
                (entry.build)().name(),
                entry.name,
                "registry name out of sync"
            );
        }
        let mut names: Vec<&str> = registry.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), registry.len(), "duplicate registry names");
    }

    #[test]
    fn exact_tests_are_flagged() {
        let suite = all_tests();
        let exact: Vec<String> = suite
            .iter()
            .filter(|t| t.is_exact())
            .map(|t| t.name().to_owned())
            .collect();
        assert!(exact.iter().any(|n| n == "processor-demand"));
        assert!(exact.iter().any(|n| n == "qpa"));
        assert!(exact.iter().any(|n| n == "dynamic-error"));
        assert!(exact.iter().any(|n| n == "all-approximated"));
        assert!(!exact.iter().any(|n| n == "devi"));
    }

    #[test]
    fn send_sync_bounds() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Analysis>();
        assert_send_sync::<Verdict>();
        assert_send_sync::<tests::AllApproximatedTest>();
        assert_send_sync::<tests::DynamicErrorTest>();
        assert_send_sync::<PreparedWorkload>();
        assert_send_sync::<Time>();
    }
}
