//! Exhaustive reference checking of the processor demand criterion.
//!
//! [`exhaustive_check`] evaluates `dbf(I, Γ) ≤ I` at **every** integer
//! interval up to a horizon, without any of the accelerations of the real
//! tests (deadline enumeration, approximation, bounds).  It is deliberately
//! naive — `O(horizon · n)` — and exists as an independent oracle for the
//! test-suite and for debugging: any disagreement between a fast test and
//! this function on a small task set pinpoints a bug immediately.

use edf_model::{TaskSet, Time};

use crate::analysis::{Analysis, DemandOverload, IterationCounter, Verdict};
use crate::bounds::hyperperiod_components;
use crate::workload::{PreparedWorkload, Workload};

/// Default cap on the exhaustive horizon (ticks).
const DEFAULT_HORIZON_CAP: u64 = 1 << 22;

/// Exhaustively checks the processor demand criterion for every integer
/// interval `1 ..= horizon`, where `horizon` is `hyperperiod + max deadline`
/// capped at `2²²` ticks (pass an explicit horizon via
/// [`exhaustive_check_up_to`] to override).
///
/// The verdict is exact whenever the natural horizon fits under the cap, and
/// [`Verdict::Unknown`] otherwise (unless a violation is found below the
/// cap, which is always conclusive).
///
/// # Examples
///
/// ```
/// use edf_analysis::exhaustive::exhaustive_check;
/// use edf_analysis::Verdict;
/// use edf_model::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let ts = TaskSet::from_tasks(vec![
///     Task::new(Time::new(1), Time::new(2), Time::new(4))?,
///     Task::new(Time::new(2), Time::new(6), Time::new(8))?,
/// ]);
/// assert_eq!(exhaustive_check(&ts).verdict, Verdict::Feasible);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn exhaustive_check(task_set: &TaskSet) -> Analysis {
    exhaustive_check_workload(task_set)
}

/// [`exhaustive_check`] for any demand-characterized workload: the natural
/// horizon is the component hyperperiod bound (`lcm` of the cycles plus the
/// largest first deadline), capped at `2²²` ticks.
#[must_use]
pub fn exhaustive_check_workload(workload: &(impl Workload + ?Sized)) -> Analysis {
    let prepared = PreparedWorkload::new(workload);
    let natural = hyperperiod_components(prepared.components());
    match natural {
        Some(h) if h.as_u64() <= DEFAULT_HORIZON_CAP => {
            exhaustive_check_prepared_up_to(&prepared, h, true)
        }
        _ => exhaustive_check_prepared_up_to(&prepared, Time::new(DEFAULT_HORIZON_CAP), false),
    }
}

/// Exhaustively checks the processor demand criterion for every integer
/// interval `1 ..= horizon`.
///
/// `horizon_is_exact` states whether the caller guarantees that the horizon
/// covers every possible violation (e.g. it is the hyperperiod plus the
/// largest deadline, or a valid feasibility bound); only then can the
/// function answer [`Verdict::Feasible`].
#[must_use]
pub fn exhaustive_check_up_to(
    task_set: &TaskSet,
    horizon: Time,
    horizon_is_exact: bool,
) -> Analysis {
    exhaustive_check_prepared_up_to(&PreparedWorkload::new(task_set), horizon, horizon_is_exact)
}

/// [`exhaustive_check_up_to`] on a prepared workload.
#[must_use]
pub fn exhaustive_check_prepared_up_to(
    workload: &PreparedWorkload,
    horizon: Time,
    horizon_is_exact: bool,
) -> Analysis {
    if workload.is_empty() {
        return Analysis::trivial(Verdict::Feasible);
    }
    // Mirrors `FeasibilityTest::analyze_prepared`: rejecting an
    // over-approximated decomposition proves nothing about the workload —
    // except through `U > 1` when the utilization is preserved.
    let reject = if workload.demand_is_exact() {
        Verdict::Infeasible
    } else {
        Verdict::Unknown
    };
    if workload.utilization_exceeds_one() {
        return Analysis::trivial(if workload.utilization_is_exact() {
            Verdict::Infeasible
        } else {
            reject
        });
    }
    let mut counter = IterationCounter::new();
    // The whole probe set is known upfront (every integer interval), so
    // the sweep runs through the batched `dbf_many` entry point: each
    // batch is evaluated column-major over the kernel columns, then
    // scanned in order — recording and comparing exactly as the former
    // one-interval-at-a-time loop did, first violation included.
    const SWEEP_BATCH: u64 = 64;
    let mut intervals = Vec::with_capacity(SWEEP_BATCH as usize);
    let mut demands = Vec::with_capacity(SWEEP_BATCH as usize);
    let mut next = 1u64;
    while next <= horizon.as_u64() {
        let last = horizon.as_u64().min(next + SWEEP_BATCH - 1);
        intervals.clear();
        intervals.extend((next..=last).map(Time::new));
        workload.dbf_many(&intervals, &mut demands);
        for (&interval, &demand) in intervals.iter().zip(&demands) {
            counter.record(interval);
            if demand > interval {
                let overload =
                    (reject == Verdict::Infeasible).then_some(DemandOverload { interval, demand });
                return counter.finish(reject, overload);
            }
        }
        next = last + 1;
    }
    let verdict = if horizon_is_exact {
        Verdict::Feasible
    } else {
        Verdict::Unknown
    };
    counter.finish(verdict, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::ProcessorDemandTest;
    use crate::FeasibilityTest;
    use edf_model::Task;

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    #[test]
    fn matches_processor_demand_on_small_sets() {
        let sets = vec![
            TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]),
            TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]),
            TaskSet::from_tasks(vec![t(1, 2, 2), t(2, 4, 4)]),
            TaskSet::from_tasks(vec![t(5, 3, 10)]),
        ];
        for ts in sets {
            assert_eq!(
                exhaustive_check(&ts).verdict,
                ProcessorDemandTest::new().analyze(&ts).verdict,
                "disagreement on {ts}"
            );
        }
    }

    #[test]
    fn reports_the_earliest_violation() {
        let ts = TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]);
        let analysis = exhaustive_check(&ts);
        assert_eq!(analysis.verdict, Verdict::Infeasible);
        assert_eq!(analysis.overload.unwrap().interval, Time::new(6));
    }

    #[test]
    fn bounded_horizon_is_inconclusive_when_nothing_is_found() {
        let ts = TaskSet::from_tasks(vec![t(1, 5, 10)]);
        let analysis = exhaustive_check_up_to(&ts, Time::new(50), false);
        assert_eq!(analysis.verdict, Verdict::Unknown);
        assert_eq!(analysis.iterations, 50);
        let exact = exhaustive_check_up_to(&ts, Time::new(50), true);
        assert_eq!(exact.verdict, Verdict::Feasible);
    }

    #[test]
    fn huge_hyperperiods_fall_back_to_the_cap() {
        let ts = TaskSet::from_tasks(vec![t(1, 999_983, 999_983), t(1, 1_000_003, 1_000_003)]);
        let analysis = exhaustive_check(&ts);
        // No violation below the cap, but the cap is not a valid bound.
        assert_eq!(analysis.verdict, Verdict::Unknown);
    }

    #[test]
    fn trivial_paths() {
        assert_eq!(exhaustive_check(&TaskSet::new()).verdict, Verdict::Feasible);
        let over = TaskSet::from_tasks(vec![t(9, 9, 10), t(9, 9, 10)]);
        assert_eq!(exhaustive_check(&over).verdict, Verdict::Infeasible);
    }
}
