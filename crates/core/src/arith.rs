//! Exact arithmetic helpers for feasibility comparisons.
//!
//! The exact tests of this crate work on integer [`Time`] values, so the
//! demand bound function itself never needs rationals.  Two places do need
//! real-valued comparisons, however:
//!
//! * the utilization condition `U = Σ Cᵢ/Tᵢ ≤ 1`, and
//! * Devi's sufficient condition (a sum of per-task fractions compared
//!   against an integer deadline).
//!
//! Both are sums of non-negative fractions with small denominators (the
//! task periods).  [`FracSum`] accumulates such a sum exactly in `u128`
//! (numerator over a running least common multiple, reduced after every
//! step) and compares it against integers.  If an intermediate value would
//! overflow, the comparison degrades *conservatively*: it reports
//! "greater" when unsure, so a sufficient test can only become more
//! pessimistic, never unsound.  With realistic task parameters (periods up
//! to 2³², a few hundred tasks) the fallback is unreachable in practice;
//! the unit tests construct artificial overflow cases to pin the behaviour
//! down.
//!
//! [`Time`]: edf_model::Time

use core::cmp::Ordering;
use core::fmt;

/// Greatest common divisor of two `u128` values (Euclid).
///
/// `gcd(0, x) == x` by convention.
#[must_use]
pub fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Ceiling division `⌈a / b⌉` in `u128`.
///
/// # Panics
///
/// Panics if `b` is zero.
#[must_use]
pub fn ceil_div_u128(a: u128, b: u128) -> u128 {
    assert!(b != 0, "division by zero");
    a.div_ceil(b)
}

/// `(a / b, a % b)` with a fast path through hardware 64-bit division when
/// both operands fit in `u64` — the overwhelmingly common case in the hot
/// demand comparisons, where a full software `u128` division costs several
/// times more.
#[inline]
pub(crate) fn divmod_u128(a: u128, b: u128) -> (u128, u128) {
    match (u64::try_from(a), u64::try_from(b)) {
        (Ok(a64), Ok(b64)) => (u128::from(a64 / b64), u128::from(a64 % b64)),
        _ => (a / b, a % b),
    }
}

/// Precomputed reciprocal for exact division by a fixed `u64` divisor
/// (Granlund–Montgomery/Lemire): with `c = ⌈2¹²⁸ / d⌉`,
/// `⌊n / d⌋ = ⌊c·n / 2¹²⁸⌋` holds for **every** `n < 2⁶⁴` and `d ≥ 2`
/// (`F = 128 ≥ N + log₂ d` with `N = 64`).  Divisor 1 is the `hi == 0`
/// sentinel (for every real `d ≥ 2`, `c ≥ 2⁶⁴` so `hi ≥ 1`).
///
/// The demand kernel stores one reciprocal per periodic column and the
/// superposition machinery one per [`ApproxTerm`](crate::superposition::ApproxTerm)
/// — periods never change under WCET rewrites, so every hot demand query
/// replaces its hardware division with two widening multiplies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Reciprocal {
    hi: u64,
    lo: u64,
}

impl Reciprocal {
    /// Builds the reciprocal of `divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero (a zero period is invalid input; the
    /// plain division paths panic on such input too).
    pub(crate) fn new(divisor: u64) -> Self {
        assert!(divisor != 0, "divisor must be positive");
        if divisor == 1 {
            return Reciprocal { hi: 0, lo: 0 };
        }
        let c = u128::MAX / u128::from(divisor) + 1;
        Reciprocal {
            hi: (c >> 64) as u64,
            lo: c as u64,
        }
    }

    /// The pre-divided term `(⌊num/d⌋, num mod d, d)` for the divisor `d`
    /// this reciprocal was built from — the input shape of
    /// [`fracs_parts_le_integer_iter`] — going through the reciprocal
    /// whenever the numerator fits `u64` (virtually always) and falling
    /// back to plain `u128` division otherwise.  `den` must equal the
    /// construction divisor.
    #[inline]
    pub(crate) fn divided_parts(self, num: u128, den: u64) -> (u128, u128, u128) {
        if let Ok(n64) = u64::try_from(num) {
            let q = self.divide(n64);
            (u128::from(q), u128::from(n64 - q * den), u128::from(den))
        } else {
            let den = u128::from(den);
            (num / den, num % den, den)
        }
    }

    /// `⌈num / d⌉` for the divisor `d` this reciprocal was built from,
    /// computed through the reciprocal whenever `num` fits `u64`
    /// (virtually always) and through plain `u128` division otherwise —
    /// bit-identical to [`ceil_div_u128`]`(num, d)` for every input.
    ///
    /// This is the ceiling counterpart of [`Reciprocal::divided_parts`]:
    /// the superposition helpers evaluate the linear approximation part
    /// `⌈C·δ/T⌉` once per live term of a failing comparison (the
    /// `LargestError` revision scan), and the cached reciprocal turns that
    /// per-term hardware `u128` division into two widening multiplies.
    /// `den` must equal the construction divisor.
    #[inline]
    pub(crate) fn ceil_divide(self, num: u128, den: u64) -> u128 {
        if let Ok(n64) = u64::try_from(num) {
            let q = self.divide(n64);
            u128::from(q) + u128::from(q * den != n64)
        } else {
            ceil_div_u128(num, u128::from(den))
        }
    }

    /// `⌊n / d⌋` for the divisor this reciprocal was built from.
    #[inline]
    pub(crate) fn divide(self, n: u64) -> u64 {
        if self.hi == 0 {
            // Divisor 1.
            return n;
        }
        // High 128 bits of the 192-bit product c·n: the carries out of the
        // low limb never overflow (hi·n ≤ 2¹²⁸ − 2⁶⁵ + 1, plus < 2⁶⁴).
        let low_carry = (u128::from(self.lo) * u128::from(n)) >> 64;
        let high = u128::from(self.hi) * u128::from(n);
        ((high + low_carry) >> 64) as u64
    }

    /// The width-narrowed form of this reciprocal, valid whenever the
    /// construction divisor fits `u32` — division-free via the nested
    /// ceiling identity `⌈⌈2¹²⁸/d⌉ / 2⁶⁴⌉ = ⌈2⁶⁴/d⌉` (for `d ≥ 2`), i.e.
    /// `magic = hi + (lo != 0)`.  The divisor-1 sentinel (`hi == lo == 0`)
    /// maps onto [`Reciprocal32`]'s `magic == 0` sentinel consistently.
    /// The caller is responsible for the `d ≤ u32::MAX` gate; the batch
    /// rebuild paths use this to derive the narrow column from the cached
    /// wide reciprocals without re-dividing.
    #[inline]
    pub(crate) fn narrowed(self) -> Reciprocal32 {
        Reciprocal32 {
            magic: self.hi + u64::from(self.lo != 0),
        }
    }
}

/// Width-narrowed [`Reciprocal`] for `u32` divisors: with
/// `m = ⌈2⁶⁴ / d⌉`, `⌊n / d⌋ = ⌊m·n / 2⁶⁴⌋` holds for every `n < 2³²` and
/// `d ∈ [2, 2³²)` (`F = 64 ≥ N + log₂ d` with `N = 32`).  Divisor 1 is the
/// `magic == 0` sentinel (every real `d ≥ 2` has `m ≥ 2³² + 1 > 0`; `d = 1`
/// would need `m = 2⁶⁴`, which wraps to 0 — the sentinel *is* the wrap).
///
/// This is the reciprocal the kernel's narrow (`u32` shadow-column) demand
/// loops run on: one widening 64×64→128 multiply per element instead of the
/// wide path's two, and a quarter of the wide reciprocal's column traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Reciprocal32 {
    magic: u64,
}

impl Reciprocal32 {
    /// Builds the narrowed reciprocal of `divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[cfg(test)]
    pub(crate) fn new(divisor: u32) -> Self {
        assert!(divisor != 0, "divisor must be positive");
        if divisor == 1 {
            return Reciprocal32 { magic: 0 };
        }
        Reciprocal32 {
            magic: u64::MAX / u64::from(divisor) + 1,
        }
    }

    /// `⌊n / d⌋` for the `u32` divisor this reciprocal was built from,
    /// widened to `u64` for the caller's accumulation.  Branch-free: both
    /// the multiply path and the sentinel path are computed and selected,
    /// which keeps the kernel's chunked loops free of per-element branches.
    #[inline]
    pub(crate) fn divide(self, n: u32) -> u64 {
        let wide = ((u128::from(self.magic) * u128::from(n)) >> 64) as u64;
        if self.magic == 0 {
            u64::from(n)
        } else {
            wide
        }
    }
}

/// A non-negative rational number `num/den` stored in `u128`.
///
/// Construction reduces the fraction; arithmetic is checked and returns
/// `None` on overflow so callers can fall back to a conservative path.
///
/// # Examples
///
/// ```
/// use edf_analysis::arith::Ratio;
///
/// let a = Ratio::new(1, 3).unwrap();
/// let b = Ratio::new(1, 6).unwrap();
/// let sum = a.checked_add(b).unwrap();
/// assert_eq!(sum, Ratio::new(1, 2).unwrap());
/// assert!(sum < Ratio::ONE);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ratio {
    num: u128,
    den: u128,
}

impl Ratio {
    /// The value zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The value one.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates a reduced ratio; `None` if `den == 0`.
    #[must_use]
    pub fn new(num: u128, den: u128) -> Option<Ratio> {
        if den == 0 {
            return None;
        }
        if num == 0 {
            return Some(Ratio::ZERO);
        }
        let g = gcd_u128(num, den);
        Some(Ratio {
            num: num / g,
            den: den / g,
        })
    }

    /// Creates a ratio from an integer.
    #[must_use]
    pub fn from_integer(value: u128) -> Ratio {
        Ratio { num: value, den: 1 }
    }

    /// Numerator of the reduced fraction.
    #[must_use]
    pub fn numer(&self) -> u128 {
        self.num
    }

    /// Denominator of the reduced fraction.
    #[must_use]
    pub fn denom(&self) -> u128 {
        self.den
    }

    /// Lossy conversion to `f64`.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, other: Ratio) -> Option<Ratio> {
        let g = gcd_u128(self.den, other.den);
        let lcm = self.den.checked_mul(other.den / g)?;
        let a = self.num.checked_mul(lcm / self.den)?;
        let b = other.num.checked_mul(lcm / other.den)?;
        Ratio::new(a.checked_add(b)?, lcm)
    }

    /// Checked multiplication; `None` on overflow.
    #[must_use]
    pub fn checked_mul(self, other: Ratio) -> Option<Ratio> {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd_u128(self.num, other.den);
        let g2 = gcd_u128(other.num, self.den);
        let num = (self.num / g1).checked_mul(other.num / g2)?;
        let den = (self.den / g2).checked_mul(other.den / g1)?;
        Ratio::new(num, den)
    }

    /// Checked subtraction; `None` on overflow or if the result would be
    /// negative.
    #[must_use]
    pub fn checked_sub(self, other: Ratio) -> Option<Ratio> {
        let g = gcd_u128(self.den, other.den);
        let lcm = self.den.checked_mul(other.den / g)?;
        let a = self.num.checked_mul(lcm / self.den)?;
        let b = other.num.checked_mul(lcm / other.den)?;
        Ratio::new(a.checked_sub(b)?, lcm)
    }

    /// Compares against an integer without overflow where possible;
    /// `None` if the comparison cannot be performed exactly.
    #[must_use]
    pub fn checked_cmp_integer(&self, value: u128) -> Option<Ordering> {
        let rhs = self.den.checked_mul(value)?;
        Some(self.num.cmp(&rhs))
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b; fall back to f64 on (unrealistic)
        // overflow — documented conservative behaviour.
        match (
            self.num.checked_mul(other.den),
            other.num.checked_mul(self.den),
        ) {
            (Some(l), Some(r)) => l.cmp(&r),
            _ => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Result of comparing an exactly accumulated fractional sum against an
/// integer bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundCheck {
    /// The sum is definitely `≤` the bound.
    WithinBound,
    /// The sum is definitely `>` the bound.
    ExceedsBound,
    /// The exact comparison overflowed; the caller must treat this
    /// conservatively (for sufficient tests: as [`BoundCheck::ExceedsBound`]).
    Overflow,
}

impl BoundCheck {
    /// `true` when the sum is certainly within the bound.
    #[must_use]
    pub fn is_within(self) -> bool {
        matches!(self, BoundCheck::WithinBound)
    }
}

/// Exact accumulator for a sum of non-negative fractions `Σ numᵢ/denᵢ`.
///
/// Used by the utilization and Devi tests to compare fractional sums
/// against integer capacities without floating point error.
///
/// # Examples
///
/// ```
/// use edf_analysis::arith::{BoundCheck, FracSum};
///
/// let mut sum = FracSum::new();
/// sum.add(1, 2);
/// sum.add(1, 3);
/// sum.add(1, 6);
/// assert_eq!(sum.cmp_integer(1), BoundCheck::WithinBound);   // exactly 1
/// sum.add(1, 1_000);
/// assert_eq!(sum.cmp_integer(1), BoundCheck::ExceedsBound);
/// ```
#[derive(Debug, Clone)]
pub struct FracSum {
    num: u128,
    den: u128,
    overflowed: bool,
    float_fallback: f64,
}

impl Default for FracSum {
    fn default() -> Self {
        FracSum::new()
    }
}

impl FracSum {
    /// Creates an empty (zero) sum.
    #[must_use]
    pub fn new() -> Self {
        FracSum {
            num: 0,
            den: 1,
            overflowed: false,
            float_fallback: 0.0,
        }
    }

    /// Adds `num/den` to the sum.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn add(&mut self, num: u128, den: u128) {
        assert!(den != 0, "fraction denominator must be positive");
        self.float_fallback += num as f64 / den as f64;
        if self.overflowed {
            return;
        }
        let g = gcd_u128(num, den);
        let (num, den) = (num / g, den / g);
        let g2 = gcd_u128(self.den, den);
        let Some(lcm) = self.den.checked_mul(den / g2) else {
            self.overflowed = true;
            return;
        };
        let Some(a) = self.num.checked_mul(lcm / self.den) else {
            self.overflowed = true;
            return;
        };
        let Some(b) = num.checked_mul(lcm / den) else {
            self.overflowed = true;
            return;
        };
        let Some(total) = a.checked_add(b) else {
            self.overflowed = true;
            return;
        };
        let g3 = gcd_u128(total, lcm);
        self.num = total / g3;
        self.den = lcm / g3;
    }

    /// `true` once the exact representation has overflowed and the
    /// accumulator only tracks the (approximate) floating point value.
    #[must_use]
    pub fn has_overflowed(&self) -> bool {
        self.overflowed
    }

    /// The sum as `f64` (exact value when no overflow occurred, otherwise
    /// the floating point shadow value).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        if self.overflowed {
            self.float_fallback
        } else {
            self.num as f64 / self.den as f64
        }
    }

    /// Exactly compares the sum against the integer `bound`.
    ///
    /// Returns [`BoundCheck::Overflow`] when exactness was lost; callers of
    /// sufficient tests must treat that as "exceeds".
    #[must_use]
    pub fn cmp_integer(&self, bound: u128) -> BoundCheck {
        if self.overflowed {
            return BoundCheck::Overflow;
        }
        match self.den.checked_mul(bound) {
            Some(rhs) if self.num <= rhs => BoundCheck::WithinBound,
            Some(_) => BoundCheck::ExceedsBound,
            None => BoundCheck::Overflow,
        }
    }
}

/// Exactly decides whether `Σ numᵢ/denᵢ ≤ bound` for non-negative fractions,
/// without ever forming the full common denominator.
///
/// The integer parts `⌊numᵢ/denᵢ⌋` are summed first; only the proper
/// remainders (each `< 1`) are left for an exact fractional comparison,
/// which is needed at all only when the remaining slack is smaller than the
/// number of fractional terms.  If even that comparison overflows `u128`,
/// the function falls back to a floating point comparison with a large
/// conservative margin: it may then report `false` ("exceeds") for sums
/// that are in fact barely within the bound, but never the other way
/// around.  Sufficient tests therefore stay sound and the exact tests of
/// this crate stay exact (they refine on "exceeds" until the comparison is
/// purely integral).
///
/// # Panics
///
/// Panics if any denominator is zero.
///
/// # Examples
///
/// ```
/// use edf_analysis::arith::fracs_le_integer;
///
/// // 1/2 + 1/3 + 1/6 == 1
/// assert!(fracs_le_integer(&[(1, 2), (1, 3), (1, 6)], 1));
/// // ... and adding any positive amount exceeds 1.
/// assert!(!fracs_le_integer(&[(1, 2), (1, 3), (1, 6), (1, 1_000)], 1));
/// ```
#[must_use]
pub fn fracs_le_integer(terms: &[(u128, u128)], bound: u128) -> bool {
    fracs_le_integer_iter(terms.iter().copied(), bound)
}

/// Iterator form of [`fracs_le_integer`]: decides `Σ numᵢ/denᵢ ≤ bound`
/// without materializing the terms in a slice first (and without any heap
/// allocation), which is what the hot bound-refresh paths of
/// [`crate::bounds`] rely on — a feasibility-bound binary search evaluates
/// this comparison dozens of times per probe.  The iterator must be
/// `Clone`: the exact rational accumulation over the remainders is only
/// performed (on a second pass) when the first pass cannot already decide
/// the comparison from the integer parts alone.
///
/// # Panics
///
/// Panics if any denominator is zero.
#[must_use]
pub fn fracs_le_integer_iter(
    terms: impl Iterator<Item = (u128, u128)> + Clone,
    bound: u128,
) -> bool {
    fracs_parts_le_integer_iter(
        terms.map(|(num, den)| {
            assert!(den != 0, "fraction denominator must be positive");
            let (quotient, remainder) = divmod_u128(num, den);
            (quotient, remainder, den)
        }),
        bound,
    )
}

/// [`fracs_le_integer_iter`] over **pre-divided** terms
/// `(⌊numᵢ/denᵢ⌋, numᵢ mod denᵢ, denᵢ)` — the form the hot demand
/// comparisons produce directly from precomputed period reciprocals
/// ([`Reciprocal`]), skipping the per-term hardware division entirely.
/// Decision logic and conservative-overflow behaviour are identical to the
/// `(num, den)` form.
pub(crate) fn fracs_parts_le_integer_iter(
    parts: impl Iterator<Item = (u128, u128, u128)> + Clone,
    bound: u128,
) -> bool {
    let mut integer_total: u128 = 0;
    let mut remainder_count: u128 = 0;
    for (quotient, remainder, _) in parts.clone() {
        match integer_total.checked_add(quotient) {
            Some(total) => integer_total = total,
            // Astronomically large sum: certainly exceeds any realistic bound.
            None => return false,
        }
        if integer_total > bound {
            return false;
        }
        if remainder != 0 {
            remainder_count += 1;
        }
    }
    let slack = bound - integer_total;
    // Each remainder is strictly below 1, so the sum is below the count and
    // the exact accumulated comparison is only needed when the slack is
    // smaller than that.
    if slack >= remainder_count {
        return true;
    }
    // Floating-point screen with a **proven** error margin before the
    // expensive exact rational accumulation.  Each `r/den` lies in [0, 1)
    // with relative division error ≤ 2⁻⁵³, and summing k ≤ 2²⁰ such terms
    // accumulates at most k²·2⁻⁵² < 2⁻¹² absolute error — far below the
    // 1e-3 margin — so any decision taken here is mathematically certain
    // and only the (rare) comparisons within ±1e-3 of the integer slack
    // fall through to `FracSum`.  The hot callers hit this constantly:
    // every demand comparison of the refining tests and every `U > 1`
    // check sits right at such a boundary.
    const FLOAT_SCREEN_MARGIN: f64 = 1e-3;
    if remainder_count <= 1 << 20 {
        let mut float_sum = 0.0f64;
        for (_, r, den) in parts.clone() {
            if r != 0 {
                float_sum += r as f64 / den as f64;
            }
        }
        // `slack < remainder_count ≤ 2²⁰` is exactly representable.
        let slack_f = slack as f64;
        if float_sum + FLOAT_SCREEN_MARGIN <= slack_f {
            return true;
        }
        if float_sum - FLOAT_SCREEN_MARGIN > slack_f {
            return false;
        }
    }
    let mut sum = FracSum::new();
    for (_, r, den) in parts {
        if r != 0 {
            sum.add(r, den);
        }
    }
    match sum.cmp_integer(slack) {
        BoundCheck::WithinBound => true,
        BoundCheck::ExceedsBound => false,
        BoundCheck::Overflow => {
            // Conservative floating point fallback with a wide margin.
            sum.to_f64() <= slack as f64 - 1e-6
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reciprocal32_divides_exactly_on_boundary_values() {
        let ns = [
            0u32,
            1,
            2,
            3,
            6,
            7,
            1_000_000,
            u32::MAX - 1,
            u32::MAX,
            (1 << 31) - 1,
            1 << 31,
        ];
        let ds = [
            1u32,
            2,
            3,
            5,
            7,
            64,
            255,
            256,
            999_999_937,
            (1 << 31) - 1,
            1 << 31,
            u32::MAX - 1,
            u32::MAX,
        ];
        for &d in &ds {
            let rcp = Reciprocal32::new(d);
            for &n in &ns {
                assert_eq!(
                    rcp.divide(n),
                    u64::from(n) / u64::from(d),
                    "{n} / {d} through the narrowed reciprocal"
                );
            }
        }
    }

    #[test]
    fn narrowed_reciprocal_equals_direct_construction() {
        // The division-free derivation from the wide reciprocal must match
        // the directly constructed magic for every `u32` divisor, sentinel
        // included — powers of two make `lo == 0` (exact ⌈2¹²⁸/d⌉), odd
        // divisors make `lo != 0`, covering both carry branches.
        let ds = [
            1u32,
            2,
            3,
            4,
            7,
            10,
            255,
            256,
            1 << 16,
            999_999_937,
            (1 << 31) - 1,
            1 << 31,
            u32::MAX,
        ];
        for &d in &ds {
            assert_eq!(
                Reciprocal::new(u64::from(d)).narrowed(),
                Reciprocal32::new(d),
                "narrowed({d})"
            );
        }
    }

    #[test]
    fn reciprocal_ceil_divide_matches_plain_ceiling_at_the_u64_boundary() {
        // Numerators straddling the `u64::MAX` fast-path gate in every
        // combination with exact-multiple and off-by-one remainders: the
        // reciprocal route and the plain `u128` ceiling must agree bit for
        // bit on both sides of the boundary.
        let ds = [1u64, 2, 3, 7, 10, 255, 1 << 20, u32::MAX as u64, u64::MAX];
        let boundary = u128::from(u64::MAX);
        for &d in &ds {
            let rcp = Reciprocal::new(d);
            let ns = [
                0u128,
                1,
                u128::from(d),
                u128::from(d) + 1,
                3 * u128::from(d) + u128::from(d / 2),
                boundary - 1,
                boundary,
                boundary + 1,
                boundary + u128::from(d),
                boundary * u128::from(d.max(2)),
                u128::MAX,
            ];
            for &n in &ns {
                assert_eq!(
                    rcp.ceil_divide(n, d),
                    ceil_div_u128(n, u128::from(d)),
                    "⌈{n} / {d}⌉ through the reciprocal"
                );
            }
        }
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd_u128(12, 18), 6);
        assert_eq!(gcd_u128(0, 7), 7);
        assert_eq!(gcd_u128(7, 0), 7);
        assert_eq!(gcd_u128(1, 1), 1);
        assert_eq!(gcd_u128(u128::MAX, u128::MAX), u128::MAX);
    }

    #[test]
    fn ceil_div_basics() {
        assert_eq!(ceil_div_u128(0, 5), 0);
        assert_eq!(ceil_div_u128(10, 5), 2);
        assert_eq!(ceil_div_u128(11, 5), 3);
    }

    #[test]
    #[should_panic]
    fn ceil_div_by_zero_panics() {
        let _ = ceil_div_u128(1, 0);
    }

    #[test]
    fn ratio_construction_and_reduction() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(0, 7).unwrap(), Ratio::ZERO);
        assert_eq!(Ratio::new(5, 0), None);
        assert_eq!(Ratio::from_integer(3).numer(), 3);
        assert_eq!(Ratio::from_integer(3).denom(), 1);
        assert_eq!(Ratio::new(6, 3).unwrap().to_string(), "2");
        assert_eq!(Ratio::new(3, 6).unwrap().to_string(), "1/2");
    }

    #[test]
    fn ratio_arithmetic() {
        let third = Ratio::new(1, 3).unwrap();
        let sixth = Ratio::new(1, 6).unwrap();
        assert_eq!(third.checked_add(sixth), Ratio::new(1, 2));
        assert_eq!(third.checked_mul(sixth), Ratio::new(1, 18));
        assert_eq!(third.checked_sub(sixth), Ratio::new(1, 6));
        assert_eq!(sixth.checked_sub(third), None, "negative result rejected");
        assert!((third.to_f64() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn ratio_ordering() {
        let a = Ratio::new(2, 3).unwrap();
        let b = Ratio::new(3, 4).unwrap();
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert_eq!(a.checked_cmp_integer(1), Some(Ordering::Less));
        assert_eq!(
            Ratio::from_integer(2).checked_cmp_integer(2),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Ratio::from_integer(3).checked_cmp_integer(2),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn ratio_overflow_paths() {
        let huge = Ratio::new(u128::MAX, 1).unwrap();
        assert_eq!(huge.checked_add(Ratio::ONE), None);
        assert_eq!(huge.checked_mul(huge), None);
        assert_eq!(huge.checked_cmp_integer(1), Some(Ordering::Greater));
        let tiny = Ratio::new(1, u128::MAX).unwrap();
        assert_eq!(
            tiny.checked_cmp_integer(u128::MAX),
            None,
            "den * value overflows"
        );
    }

    #[test]
    fn frac_sum_exact_boundaries() {
        let mut sum = FracSum::new();
        sum.add(1, 2);
        sum.add(1, 3);
        sum.add(1, 6);
        assert_eq!(sum.cmp_integer(1), BoundCheck::WithinBound);
        assert!(!sum.has_overflowed());
        assert!((sum.to_f64() - 1.0).abs() < 1e-15);
        sum.add(1, 1_000_000);
        assert_eq!(sum.cmp_integer(1), BoundCheck::ExceedsBound);
        assert_eq!(sum.cmp_integer(2), BoundCheck::WithinBound);
    }

    #[test]
    fn frac_sum_zero_and_default() {
        let sum = FracSum::default();
        assert_eq!(sum.cmp_integer(0), BoundCheck::WithinBound);
        assert_eq!(sum.to_f64(), 0.0);
    }

    #[test]
    fn frac_sum_overflow_is_conservative() {
        let mut sum = FracSum::new();
        // Two coprime, enormous denominators force the lcm over u128.
        sum.add(1, u128::MAX - 1);
        sum.add(1, u128::MAX - 4);
        assert!(sum.has_overflowed());
        assert_eq!(sum.cmp_integer(1), BoundCheck::Overflow);
        assert!(!BoundCheck::Overflow.is_within());
        assert!(sum.to_f64() >= 0.0);
    }

    #[test]
    #[should_panic]
    fn frac_sum_zero_denominator_panics() {
        let mut sum = FracSum::new();
        sum.add(1, 0);
    }

    #[test]
    fn bound_check_predicates() {
        assert!(BoundCheck::WithinBound.is_within());
        assert!(!BoundCheck::ExceedsBound.is_within());
    }

    #[test]
    fn fracs_le_integer_exact_boundary() {
        assert!(fracs_le_integer(&[(1, 2), (1, 3), (1, 6)], 1));
        assert!(!fracs_le_integer(
            &[(1, 2), (1, 3), (1, 6), (1, 1_000_000)],
            1
        ));
        assert!(fracs_le_integer(&[], 0));
        assert!(fracs_le_integer(&[(0, 5)], 0));
        assert!(!fracs_le_integer(&[(1, 5)], 0));
        assert!(fracs_le_integer(&[(5, 5)], 1));
        assert!(!fracs_le_integer(&[(6, 5)], 1));
    }

    #[test]
    fn fracs_le_integer_improper_fractions() {
        // 7/2 + 9/4 = 5.75
        assert!(fracs_le_integer(&[(7, 2), (9, 4)], 6));
        assert!(!fracs_le_integer(&[(7, 2), (9, 4)], 5));
        // Slack far above the number of terms short-circuits.
        assert!(fracs_le_integer(&[(1, 3), (1, 7), (1, 11)], 100));
    }

    #[test]
    fn fracs_le_integer_many_coprime_denominators() {
        // 40 distinct primes as denominators: the naive lcm overflows u128,
        // the remainder-based path must still answer exactly.
        let primes: [u128; 40] = [
            2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83,
            89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173,
        ];
        // Σ (p-1)/p for 40 primes ≈ 40 - Σ1/p ≈ 38.6
        let terms: Vec<(u128, u128)> = primes.iter().map(|&p| (p - 1, p)).collect();
        assert!(fracs_le_integer(&terms, 39));
        assert!(!fracs_le_integer(&terms, 38));
    }

    #[test]
    fn fracs_le_integer_huge_values_are_conservative() {
        // Overflow of the integer part: conservatively reported as exceeding.
        assert!(!fracs_le_integer(
            &[(u128::MAX, 1), (u128::MAX, 1)],
            u128::MAX
        ));
    }

    #[test]
    #[should_panic]
    fn fracs_le_integer_zero_denominator_panics() {
        let _ = fracs_le_integer(&[(1, 0)], 1);
    }

    #[test]
    fn frac_sum_many_small_fractions() {
        // Σ 1/k for k=2..50 compared against its known floor.
        let mut sum = FracSum::new();
        for k in 2u128..=50 {
            sum.add(1, k);
        }
        assert!(!sum.has_overflowed());
        // Harmonic(50) - 1 ≈ 3.499
        assert_eq!(sum.cmp_integer(3), BoundCheck::ExceedsBound);
        assert_eq!(sum.cmp_integer(4), BoundCheck::WithinBound);
    }
}
