//! Incremental re-analysis: scale-aware prepared-workload views.
//!
//! The point of the paper is an exact feasibility test cheap enough to run
//! *inside a search loop* — and a search loop perturbs one workload over
//! and over, changing nothing but the execution costs.  Re-running
//! [`PreparedWorkload::new`] (or
//! [`PreparedWorkload::with_scaled_wcets`]) per probe therefore throws
//! away state that is valid for every probe:
//!
//! * the **component vector layout** — probes rewrite the cost column in
//!   place instead of reallocating; since the columnar-kernel rebuild
//!   this is literally a column write into the scratch preparation's
//!   [`DemandKernel`](crate::kernel::DemandKernel) (deadline, period and
//!   sort columns are scale-invariant and never move);
//! * the **deadline order** — periods, deadlines and offsets do not move
//!   under WCET changes, so the sorted order computed once for the base
//!   workload is seeded into the view and shared by every probe;
//! * the **scale-invariant half of the §4.3 feasibility bounds** — the
//!   hyperperiod bound is WCET-free and the structural aggregates of the
//!   Baruah/George/busy-period bounds are fixed, so a
//!   [`BoundRefresher`] re-derives the bounds from cached aggregates and
//!   hint-seeded searches instead of from cold (see [`crate::bounds`]).
//!
//! [`ScaledView`] packages all three behind two probe operations:
//! [`ScaledView::scale_wcets`] (uniform scaling — breakdown searches) and
//! [`ScaledView::with_component_wcet`] (a single perturbed component —
//! slack searches).  Every probe returns an ordinary
//! [`&PreparedWorkload`](PreparedWorkload) whose observable state is
//! **bit-identical** to a from-scratch preparation of the same scaled
//! components, so every [`FeasibilityTest`](crate::FeasibilityTest) —
//! and any future consumer of prepared workloads — runs on a view
//! unchanged.  [`crate::sensitivity`] is built on top of this module.
//!
//! # Examples
//!
//! ```
//! use edf_analysis::incremental::ScaledView;
//! use edf_analysis::tests::AllApproximatedTest;
//! use edf_analysis::workload::PreparedWorkload;
//! use edf_analysis::FeasibilityTest;
//! use edf_model::{Task, TaskSet, Time};
//!
//! # fn main() -> Result<(), edf_model::TaskError> {
//! let ts = TaskSet::from_tasks(vec![
//!     Task::new(Time::new(2), Time::new(7), Time::new(10))?,
//!     Task::new(Time::new(3), Time::new(9), Time::new(25))?,
//! ]);
//! let base = PreparedWorkload::new(&ts);
//! let mut view = ScaledView::new(&base);
//! let test = AllApproximatedTest::new();
//! // Probe a range of uniform scalings without re-preparing anything.
//! for numer in [500u64, 1_000, 2_000, 3_000] {
//!     let scaled = view.scale_wcets(numer, 1_000);
//!     let _ = test.analyze_prepared(scaled);
//! }
//! # Ok(())
//! # }
//! ```

use edf_model::Time;

use crate::bounds::BoundRefresher;
use crate::workload::{components_exceed_one, DemandComponent, PreparedWorkload};

/// A re-costable view of a [`PreparedWorkload`]: one scratch preparation,
/// rewritten in place per probe, sharing everything that is invariant
/// under WCET changes with the base workload.
///
/// See the [module documentation](self) for what is shared and why; see
/// [`ScaledView::scale_wcets`] / [`ScaledView::with_component_wcet`] for
/// the probe operations.
#[derive(Debug)]
pub struct ScaledView<'a> {
    base: &'a PreparedWorkload,
    scratch: PreparedWorkload,
    refresher: BoundRefresher,
}

impl<'a> ScaledView<'a> {
    /// Creates a view over `base`.  The scratch preparation starts as an
    /// identical copy; the deadline order is computed once (on the base,
    /// where it is cached for other users too) and shared.
    #[must_use]
    pub fn new(base: &'a PreparedWorkload) -> Self {
        let mut scratch = PreparedWorkload::from_parts(
            base.components().to_vec(),
            base.task_count(),
            base.demand_is_exact(),
            base.utilization_is_exact(),
        );
        scratch.seed_deadline_order(base.deadline_order().to_vec());
        // A view over the scalar-reference oracle probes through the
        // scalar path too, so the kernel-equivalence tests can compare
        // whole search runs.
        scratch.scalar_demand = base.scalar_demand;
        ScaledView {
            refresher: BoundRefresher::new(base.components()),
            base,
            scratch,
        }
    }

    /// The base workload the view scales.
    #[must_use]
    pub fn base(&self) -> &PreparedWorkload {
        self.base
    }

    /// The prepared state of the most recent probe (initially an identical
    /// copy of the base).
    #[must_use]
    pub fn prepared(&self) -> &PreparedWorkload {
        &self.scratch
    }

    /// Probes a uniform scaling: every **base** cost is scaled by
    /// `numer/denom` (semantics of [`DemandComponent::scaled_wcet`] —
    /// successive probes do not compound).  Returns the refreshed prepared
    /// workload, observably identical to
    /// `base.with_scaled_wcets(numer, denom)` but without re-preparation.
    ///
    /// # Panics
    ///
    /// Panics if `denom` is zero.
    pub fn scale_wcets(&mut self, numer: u64, denom: u64) -> &PreparedWorkload {
        assert!(denom > 0, "scaling denominator must be positive");
        for (index, component) in self.base.components().iter().enumerate() {
            self.scratch
                .set_wcet_at(index, component.scaled_wcet(numer, denom));
        }
        self.refresh()
    }

    /// Probes a single-component perturbation: every component keeps its
    /// **base** cost except `index`, which is set to `wcet` (clamped to
    /// the component's period, mirroring [`DemandComponent::scaled_wcet`];
    /// probes do not compound).  This is the `wcet_slack` workhorse.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn with_component_wcet(&mut self, index: usize, wcet: Time) -> &PreparedWorkload {
        let components = self.base.components();
        assert!(index < components.len(), "component index out of range");
        for (i, component) in components.iter().enumerate() {
            self.scratch.set_wcet_at(i, component.wcet());
        }
        self.scratch
            .set_wcet_at(index, components[index].clamp_wcet(wcet));
        self.refresh()
    }

    /// Recomputes the cost-dependent aggregates of the scratch workload in
    /// one linear pass plus the hint-seeded bound refresh.  When the probe
    /// pushes the utilization above one the bounds are skipped entirely
    /// (no test reads them behind the trivial `U > 1` rejection) and left
    /// to the lazy cold path should anyone ask.
    fn refresh(&mut self) -> &PreparedWorkload {
        let components = self.scratch.components();
        let utilization = components.iter().map(DemandComponent::utilization).sum();
        let exceeds_one = components_exceed_one(components);
        let bounds = if exceeds_one {
            None
        } else {
            Some(self.refresher.refresh_with_utilization(components, false))
        };
        self.scratch
            .install_refreshed_state(utilization, exceeds_one, bounds);
        &self.scratch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::{AllApproximatedTest, ProcessorDemandTest, QpaTest};
    use crate::workload::MixedSystem;
    use crate::FeasibilityTest;
    use edf_model::{EventStream, EventStreamTask, Task, TaskSet};

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    fn sample_system() -> MixedSystem {
        MixedSystem::new(
            TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]),
            vec![EventStreamTask::new(
                EventStream::bursty(2, Time::new(4), Time::new(60)),
                Time::new(1),
                Time::new(12),
            )
            .expect("valid stream task")],
        )
    }

    /// Full observable-state comparison between a view probe and a cold
    /// re-preparation.
    fn assert_matches_cold(view: &PreparedWorkload, cold: &PreparedWorkload) {
        assert_eq!(view.components(), cold.components());
        assert_eq!(view.task_count(), cold.task_count());
        assert_eq!(view.utilization().to_bits(), cold.utilization().to_bits());
        assert_eq!(
            view.utilization_exceeds_one(),
            cold.utilization_exceeds_one()
        );
        assert_eq!(view.demand_is_exact(), cold.demand_is_exact());
        assert_eq!(view.utilization_is_exact(), cold.utilization_is_exact());
        assert_eq!(view.bounds(), cold.bounds());
        assert_eq!(view.deadline_order(), cold.deadline_order());
        for test in [
            Box::new(ProcessorDemandTest::new()) as Box<dyn FeasibilityTest>,
            Box::new(QpaTest::new()),
            Box::new(AllApproximatedTest::new()),
        ] {
            assert_eq!(
                test.analyze_prepared(view),
                test.analyze_prepared(cold),
                "{} diverges between view and cold preparation",
                test.name()
            );
        }
    }

    #[test]
    fn scaling_probes_match_cold_preparation() {
        let system = sample_system();
        let base = PreparedWorkload::new(&system);
        let mut view = ScaledView::new(&base);
        // Includes overload scalings (bounds skipped) sandwiched between
        // feasible ones, so stale-bound leakage would be caught.
        for numer in [1_000u64, 500, 2_000, 1_250, 0, 1_000, 4_000, 900] {
            let probed = view.scale_wcets(numer, 1_000);
            let cold = base.with_scaled_wcets(numer, 1_000);
            assert_matches_cold(probed, &cold);
        }
    }

    #[test]
    fn component_probes_match_cold_preparation() {
        let base = PreparedWorkload::new(&sample_system());
        let mut view = ScaledView::new(&base);
        for index in 0..base.components().len() {
            for wcet in [0u64, 1, 3, 7, 100] {
                let probed = view.with_component_wcet(index, Time::new(wcet));
                let mut components = base.components().to_vec();
                let clamped = match components[index].period() {
                    Some(period) => Time::new(wcet).min(period),
                    None => Time::new(wcet),
                };
                components[index].set_wcet(clamped);
                let cold = PreparedWorkload::from_parts(
                    components,
                    base.task_count(),
                    base.demand_is_exact(),
                    base.utilization_is_exact(),
                );
                assert_matches_cold(probed, &cold);
            }
        }
    }

    #[test]
    fn probe_kinds_interleave_without_leakage() {
        let base = PreparedWorkload::new(&sample_system());
        let mut view = ScaledView::new(&base);
        view.scale_wcets(3_000, 1_000);
        // A component probe after a scaling probe starts from base costs,
        // not from the scaled ones.
        let probed = view.with_component_wcet(0, Time::new(2));
        assert_eq!(probed.components()[1], base.components()[1]);
        view.with_component_wcet(2, Time::new(6));
        // And a scaling probe resets the component perturbation.
        let rescaled = view.scale_wcets(1_000, 1_000);
        assert_eq!(rescaled.components(), base.components());
    }

    #[test]
    fn view_accessors_and_empty_workload() {
        let base = PreparedWorkload::new(&TaskSet::new());
        let mut view = ScaledView::new(&base);
        assert!(view.base().is_empty());
        assert!(view.prepared().is_empty());
        assert!(view.scale_wcets(2_000, 1_000).is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_range_component_probe_panics() {
        let base = PreparedWorkload::new(&TaskSet::from_tasks(vec![t(1, 4, 8)]));
        let mut view = ScaledView::new(&base);
        let _ = view.with_component_wcet(1, Time::new(2));
    }
}
