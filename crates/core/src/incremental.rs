//! Incremental re-analysis: scale-aware prepared-workload views.
//!
//! The point of the paper is an exact feasibility test cheap enough to run
//! *inside a search loop* — and a search loop perturbs one workload over
//! and over, changing nothing but the execution costs.  Re-running
//! [`PreparedWorkload::new`] (or
//! [`PreparedWorkload::with_scaled_wcets`]) per probe therefore throws
//! away state that is valid for every probe:
//!
//! * the **component vector layout** — probes rewrite the cost column in
//!   place instead of reallocating; since the columnar-kernel rebuild
//!   this is literally a column write into the scratch preparation's
//!   [`DemandKernel`](crate::kernel::DemandKernel) (deadline, period and
//!   sort columns are scale-invariant and never move);
//! * the **deadline order** — periods, deadlines and offsets do not move
//!   under WCET changes, so the sorted order computed once for the base
//!   workload is seeded into the view and shared by every probe;
//! * the **scale-invariant half of the §4.3 feasibility bounds** — the
//!   hyperperiod bound is WCET-free and the structural aggregates of the
//!   Baruah/George/busy-period bounds are fixed, so a
//!   [`BoundRefresher`] re-derives the bounds from cached aggregates and
//!   hint-seeded searches instead of from cold (see [`crate::bounds`]).
//!
//! [`ScaledView`] packages all three behind two probe operations:
//! [`ScaledView::scale_wcets`] (uniform scaling — breakdown searches) and
//! [`ScaledView::with_component_wcet`] (a single perturbed component —
//! slack searches).  Every probe returns an ordinary
//! [`&PreparedWorkload`](PreparedWorkload) whose observable state is
//! **bit-identical** to a from-scratch preparation of the same scaled
//! components, so every [`FeasibilityTest`](crate::FeasibilityTest) —
//! and any future consumer of prepared workloads — runs on a view
//! unchanged.  [`crate::sensitivity`] is built on top of this module.
//!
//! # The view family
//!
//! Three views share the pattern "one scratch preparation, mutated in
//! place, repaired incrementally", one per axis of change:
//!
//! | view | may mutate | repair path | refresh cost |
//! |------|-----------|-------------|--------------|
//! | [`ScaledView`] | WCETs only | column rewrite + hinted bound refresh | `O(n)` + a few bound predicates |
//! | [`CandidateView`](crate::candidates::CandidateView) | one transaction's offsets/deadlines | merge-of-sorted-runs order repair, in-place kernel rebuild | `O(n)` |
//! | [`EditView`] | the component **set** (insert/remove/replace) | per-edit binary order repair, full aggregate + kernel refresh at finalize | `O(log n)` per edit + `O(n)` per finalize |
//!
//! All three implement [`WorkloadView`] — finalize to a
//! [`&PreparedWorkload`](PreparedWorkload), dirty-tracking, revert — so
//! any registered test drives any view through
//! [`FeasibilityTest::analyze_view`](crate::FeasibilityTest::analyze_view)
//! (or the scratch-reusing
//! [`analyze_view_with`](crate::FeasibilityTest::analyze_view_with)).
//! [`EditView`] is the admission-control member: a long-running service
//! holds one per tenant and answers admit / evict / what-if requests
//! through structural edits plus delta re-analysis instead of cold
//! preparation (see the `edf-serve` crate).
//!
//! # Examples
//!
//! ```
//! use edf_analysis::incremental::ScaledView;
//! use edf_analysis::tests::AllApproximatedTest;
//! use edf_analysis::workload::PreparedWorkload;
//! use edf_analysis::FeasibilityTest;
//! use edf_model::{Task, TaskSet, Time};
//!
//! # fn main() -> Result<(), edf_model::TaskError> {
//! let ts = TaskSet::from_tasks(vec![
//!     Task::new(Time::new(2), Time::new(7), Time::new(10))?,
//!     Task::new(Time::new(3), Time::new(9), Time::new(25))?,
//! ]);
//! let base = PreparedWorkload::new(&ts);
//! let mut view = ScaledView::new(&base);
//! let test = AllApproximatedTest::new();
//! // Probe a range of uniform scalings without re-preparing anything.
//! for numer in [500u64, 1_000, 2_000, 3_000] {
//!     let scaled = view.scale_wcets(numer, 1_000);
//!     let _ = test.analyze_prepared(scaled);
//! }
//! # Ok(())
//! # }
//! ```

use edf_model::Time;

use crate::arith::Reciprocal;
use crate::bounds::BoundRefresher;
use crate::workload::{components_exceed_one, DemandComponent, PreparedWorkload};

/// The common interface of the incremental view family ([`ScaledView`],
/// [`CandidateView`](crate::candidates::CandidateView), [`EditView`]):
/// one scratch [`PreparedWorkload`] mutated in place, finalized on
/// demand, with pending (unfinalized or uncommitted) mutations
/// revertible.
///
/// The trait is object-safe, so
/// [`FeasibilityTest::analyze_view`](crate::FeasibilityTest::analyze_view)
/// accepts `&mut dyn WorkloadView` — every registered test drives every
/// view through one entry point, and the finalized state is always
/// **bit-identical** to a cold preparation of the same component list
/// (property-tested per view in `incremental_equivalence`,
/// `candidate_equivalence` and `edit_equivalence`).
pub trait WorkloadView {
    /// Applies any pending mutations (order repair, kernel rebuild,
    /// bound refresh) and returns the finalized prepared state.
    fn finalize(&mut self) -> &PreparedWorkload;

    /// `true` while mutations are pending that [`WorkloadView::finalize`]
    /// has not yet folded into the prepared state.  Views with eager
    /// repair ([`ScaledView`]) are never dirty.
    fn is_dirty(&self) -> bool;

    /// Discards pending mutations, returning the view to its last stable
    /// state: the base costs for a [`ScaledView`], the last finalized
    /// combination for a
    /// [`CandidateView`](crate::candidates::CandidateView), the last
    /// [`EditView::commit`] point for an [`EditView`].
    fn revert(&mut self);

    /// `true` once the view has been [poisoned](WorkloadView::mark_poisoned):
    /// a panic unwound through a mutation or an analysis of this view, so
    /// its scratch state can no longer be trusted and must be rebuilt from
    /// a known-good source before further use.  The default is `false` —
    /// borrow-based views ([`ScaledView`],
    /// [`CandidateView`](crate::candidates::CandidateView)) live inside
    /// one search call and are simply dropped when a panic unwinds, so
    /// they never observe poisoning.
    fn is_poisoned(&self) -> bool {
        false
    }

    /// Marks the view poisoned (see [`WorkloadView::is_poisoned`]).  A
    /// fault-isolating caller ([`catch_unwind`](std::panic::catch_unwind)
    /// around per-request analysis) calls this when a panic unwinds while
    /// the view's scratch state may be mid-mutation; the owner then
    /// rebuilds the view cold ([`EditView::rebuild_from`]) from its last
    /// committed source of truth.  No-op for views that do not support
    /// poisoning.
    fn mark_poisoned(&mut self) {}
}

/// A re-costable view of a [`PreparedWorkload`]: one scratch preparation,
/// rewritten in place per probe, sharing everything that is invariant
/// under WCET changes with the base workload.
///
/// See the [module documentation](self) for what is shared and why; see
/// [`ScaledView::scale_wcets`] / [`ScaledView::with_component_wcet`] for
/// the probe operations.
#[derive(Debug)]
pub struct ScaledView<'a> {
    base: &'a PreparedWorkload,
    scratch: PreparedWorkload,
    refresher: BoundRefresher,
}

impl<'a> ScaledView<'a> {
    /// Creates a view over `base`.  The scratch preparation starts as an
    /// identical copy; the deadline order is computed once (on the base,
    /// where it is cached for other users too) and shared.
    #[must_use]
    pub fn new(base: &'a PreparedWorkload) -> Self {
        let mut scratch = PreparedWorkload::from_parts(
            base.components().to_vec(),
            base.task_count(),
            base.demand_is_exact(),
            base.utilization_is_exact(),
        );
        scratch.seed_deadline_order(base.deadline_order().to_vec());
        // A view over the scalar-reference oracle probes through the
        // scalar path too, so the kernel-equivalence tests can compare
        // whole search runs.
        scratch.scalar_demand = base.scalar_demand;
        ScaledView {
            refresher: BoundRefresher::new(base.components()),
            base,
            scratch,
        }
    }

    /// The base workload the view scales.
    #[must_use]
    pub fn base(&self) -> &PreparedWorkload {
        self.base
    }

    /// The prepared state of the most recent probe (initially an identical
    /// copy of the base).
    #[must_use]
    pub fn prepared(&self) -> &PreparedWorkload {
        &self.scratch
    }

    /// Probes a uniform scaling: every **base** cost is scaled by
    /// `numer/denom` (semantics of [`DemandComponent::scaled_wcet`] —
    /// successive probes do not compound).  Returns the refreshed prepared
    /// workload, observably identical to
    /// `base.with_scaled_wcets(numer, denom)` but without re-preparation.
    ///
    /// # Panics
    ///
    /// Panics if `denom` is zero.
    pub fn scale_wcets(&mut self, numer: u64, denom: u64) -> &PreparedWorkload {
        assert!(denom > 0, "scaling denominator must be positive");
        for (index, component) in self.base.components().iter().enumerate() {
            self.scratch
                .set_wcet_at(index, component.scaled_wcet(numer, denom));
        }
        self.refresh()
    }

    /// Probes a single-component perturbation: every component keeps its
    /// **base** cost except `index`, which is set to `wcet` (clamped to
    /// the component's period, mirroring [`DemandComponent::scaled_wcet`];
    /// probes do not compound).  This is the `wcet_slack` workhorse.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn with_component_wcet(&mut self, index: usize, wcet: Time) -> &PreparedWorkload {
        let components = self.base.components();
        assert!(index < components.len(), "component index out of range");
        for (i, component) in components.iter().enumerate() {
            self.scratch.set_wcet_at(i, component.wcet());
        }
        self.scratch
            .set_wcet_at(index, components[index].clamp_wcet(wcet));
        self.refresh()
    }

    /// Recomputes the cost-dependent aggregates of the scratch workload in
    /// one linear pass plus the hint-seeded bound refresh.  When the probe
    /// pushes the utilization above one the bounds are skipped entirely
    /// (no test reads them behind the trivial `U > 1` rejection) and left
    /// to the lazy cold path should anyone ask.
    fn refresh(&mut self) -> &PreparedWorkload {
        let components = self.scratch.components();
        let utilization = components.iter().map(DemandComponent::utilization).sum();
        let exceeds_one = components_exceed_one(components);
        let bounds = if exceeds_one {
            None
        } else {
            Some(self.refresher.refresh_with_utilization(components, false))
        };
        self.scratch
            .install_refreshed_state(utilization, exceeds_one, bounds);
        &self.scratch
    }
}

impl WorkloadView for ScaledView<'_> {
    /// The prepared state of the most recent probe — probes repair
    /// eagerly, so there is never pending work to apply.
    fn finalize(&mut self) -> &PreparedWorkload {
        &self.scratch
    }

    fn is_dirty(&self) -> bool {
        false
    }

    /// Restores the base costs (the state the view was created in),
    /// eagerly — equivalent to a `scale_wcets(1, 1)` probe but copying
    /// the base costs verbatim, so components whose base cost exceeds
    /// their period (infeasible inputs kept for honest rejection) survive
    /// the round trip unclamped.
    fn revert(&mut self) {
        for (index, component) in self.base.components().iter().enumerate() {
            self.scratch.set_wcet_at(index, component.wcet());
        }
        self.refresh();
    }
}

/// The inverse of one structural edit, recorded by [`EditView`] for
/// [`EditView::revert`].
#[derive(Debug, Clone, Copy)]
enum EditOp {
    /// Undoes an [`EditView::insert_component`] (which always appends).
    RemoveLast,
    /// Undoes an [`EditView::remove_component`]: re-insert the removed
    /// component at its old index.
    InsertAt(usize, DemandComponent),
    /// Undoes an [`EditView::replace_component`]: write the old component
    /// back.
    WriteAt(usize, DemandComponent),
}

/// A structurally editable prepared workload: insert, remove or replace
/// components of one scratch [`PreparedWorkload`], with the derived state
/// repaired incrementally instead of re-prepared from cold.
///
/// The third member of the view family (see the [module
/// documentation](self)), and the one production admission control needs:
/// where [`ScaledView`] perturbs costs and
/// [`CandidateView`](crate::candidates::CandidateView) re-phases one
/// transaction, `EditView` changes the component **set** itself — the
/// admit / evict / what-if loop of a long-running service.  Unlike the
/// other two it owns its state outright (no borrow of a base workload),
/// so a service can hold thousands of them, one per tenant, indefinitely.
///
/// What is incremental about an edit:
///
/// * the **deadline order** is repaired per edit by binary
///   insertion/removal of the touched index — the degenerate (single-run)
///   case of the [`CandidateView`](crate::candidates::CandidateView)
///   merge-of-sorted-runs repair, `O(log n)` search plus one `memmove`
///   instead of a re-sort;
/// * the **period reciprocals** feeding the kernel columns and the bound
///   searches are recomputed only for the touched index (a 128-bit
///   division each; the untouched ones are copied);
/// * the **kernel columns** are rebuilt in place into their existing
///   allocations
///   ([`DemandKernel::rebuild_with_reciprocals`](crate::kernel::DemandKernel));
/// * the **§4.3 bounds** are re-derived by the crate-internal
///   `BoundRefresher::refresh_edited` — one linear aggregate pass plus
///   hint-seeded searches, the hints carried across edits;
/// * shrinking edits (remove/replace) **reuse the column capacity** —
///   debug assertions pin that an admit/evict cycle never churns the
///   allocator (the `recycled`-style buffer-reuse contract).
///
/// Repair is *lazy*: edits only patch the component vector and the order,
/// and the aggregate/kernel/bound refresh runs once inside
/// [`EditView::prepared`] (or [`WorkloadView::finalize`]), so a burst of
/// edits pays for one refresh.  The finalized state is **bit-identical**
/// to a cold [`PreparedWorkload`] of the same component list
/// (property-tested in `edit_equivalence`).
///
/// Edits accumulate in an undo log until [`EditView::commit`] accepts
/// them or [`EditView::revert`] rolls them back — the admit (analyze,
/// then commit or revert by verdict) and what-if (analyze, always revert)
/// primitives of an admission service.
///
/// # Examples
///
/// ```
/// use edf_analysis::incremental::EditView;
/// use edf_analysis::tests::ProcessorDemandTest;
/// use edf_analysis::workload::{DemandComponent, PreparedWorkload};
/// use edf_analysis::FeasibilityTest;
/// use edf_model::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let base = PreparedWorkload::new(&TaskSet::from_tasks(vec![
///     Task::new(Time::new(2), Time::new(7), Time::new(10))?,
/// ]));
/// let mut view = EditView::new(&base);
/// let test = ProcessorDemandTest::new();
/// // Admit a task: insert, analyze the delta, commit on acceptance.
/// view.insert_component(DemandComponent::periodic(
///     Time::new(3),
///     Time::new(9),
///     Time::new(25),
/// ));
/// if test.analyze_prepared(view.prepared()).is_feasible() {
///     view.commit();
/// } else {
///     use edf_analysis::incremental::WorkloadView;
///     view.revert();
/// }
/// assert_eq!(view.components().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EditView {
    scratch: PreparedWorkload,
    refresher: BoundRefresher,
    /// Per-component period reciprocals, maintained parallel to the
    /// component vector (recomputed only for touched indices).
    reciprocals: Vec<Reciprocal>,
    /// The deadline order under maintenance while dirty (taken out of the
    /// scratch on the first edit, handed back at finalize); empty while
    /// clean.
    order: Vec<usize>,
    /// Source-workload task count, tracked as base ± net structural edits
    /// (metadata only — no analysis reads it).
    task_count: usize,
    /// `true` while the scratch's derived state (aggregates, order,
    /// kernel, bounds) lags behind the component vector.
    dirty: bool,
    /// Inverses of the edits since the last [`EditView::commit`], newest
    /// last.
    undo: Vec<EditOp>,
    /// Set by [`WorkloadView::mark_poisoned`] after a panic unwound
    /// through a mutation or analysis of this view; cleared only by
    /// [`EditView::rebuild_from`].
    poisoned: bool,
}

impl EditView {
    /// Creates an editable copy of `base`.  The scratch starts
    /// bit-identical (the deadline order is computed once on the base,
    /// where it is cached for other users too, and copied).
    #[must_use]
    pub fn new(base: &PreparedWorkload) -> Self {
        let mut scratch = PreparedWorkload::from_parts(
            base.components().to_vec(),
            base.task_count(),
            base.demand_is_exact(),
            base.utilization_is_exact(),
        );
        scratch.seed_deadline_order(base.deadline_order().to_vec());
        // A view over the scalar-reference oracle keeps probing through
        // the scalar path (mirrors `ScaledView::new`).
        scratch.scalar_demand = base.scalar_demand;
        EditView {
            refresher: BoundRefresher::new(base.components()),
            reciprocals: base.components().iter().map(reciprocal_of).collect(),
            order: Vec::new(),
            task_count: base.task_count(),
            dirty: false,
            undo: Vec::new(),
            poisoned: false,
            scratch,
        }
    }

    /// Rebuilds the view cold from `base`, discarding every bit of scratch
    /// state (components, order, undo log, bound caches) and clearing any
    /// [poison](WorkloadView::is_poisoned).  This is the recovery hook a
    /// fault-isolating service uses after a panic unwound through this
    /// view: the base is the tenant's last committed (journal-backed)
    /// state, so one bad request can never leave a corrupted view behind.
    pub fn rebuild_from(&mut self, base: &PreparedWorkload) {
        *self = EditView::new(base);
    }

    /// The current component vector — always up to date, even between an
    /// edit and the finalize (a screening heuristic can read this without
    /// forcing the refresh).
    #[must_use]
    pub fn components(&self) -> &[DemandComponent] {
        self.scratch.components()
    }

    /// Appends `component`, returning its index (stable until a
    /// [`EditView::remove_component`] of a lower index shifts it).
    pub fn insert_component(&mut self, component: DemandComponent) -> usize {
        self.begin_edit();
        let index = self.scratch.components().len();
        self.scratch.insert_component_at(index, component);
        self.reciprocals.push(reciprocal_of(&component));
        self.order_insert_entry(index);
        self.task_count += 1;
        self.undo.push(EditOp::RemoveLast);
        index
    }

    /// Removes and returns the component at `index`; components above it
    /// shift down by one (the deadline order is repaired in place, no
    /// re-sort).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn remove_component(&mut self, index: usize) -> DemandComponent {
        self.begin_edit();
        self.order_remove_entry(index);
        for entry in &mut self.order {
            *entry -= usize::from(*entry > index);
        }
        let removed = self.scratch.remove_component_at(index);
        self.reciprocals.remove(index);
        self.task_count = self.task_count.saturating_sub(1);
        self.undo.push(EditOp::InsertAt(index, removed));
        removed
    }

    /// Replaces the component at `index` wholesale (cost, timing *and*
    /// period may change — contrast
    /// [`ScaledView::with_component_wcet`]), returning the old component.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn replace_component(
        &mut self,
        index: usize,
        component: DemandComponent,
    ) -> DemandComponent {
        let old = self.write_component(index, component);
        self.undo.push(EditOp::WriteAt(index, old));
        old
    }

    /// Whether edits since the last [`EditView::commit`] are pending.
    #[must_use]
    pub fn has_uncommitted_edits(&self) -> bool {
        !self.undo.is_empty()
    }

    /// Accepts the edits since the last commit: [`EditView::revert`] can
    /// no longer roll them back.
    pub fn commit(&mut self) {
        self.undo.clear();
    }

    /// The prepared state of the current component list, applying any
    /// pending repair (aggregate recomputation, order hand-back, in-place
    /// kernel rebuild, hinted bound refresh).  Observably identical to a
    /// cold [`PreparedWorkload`] of the same components.
    ///
    /// # Panics
    ///
    /// Panics if the view is [poisoned](WorkloadView::is_poisoned) — a
    /// poisoned scratch must be rebuilt via [`EditView::rebuild_from`]
    /// before it can be trusted again.
    pub fn prepared(&mut self) -> &PreparedWorkload {
        assert!(
            !self.poisoned,
            "EditView is poisoned (a panic unwound mid-mutation); rebuild_from a committed base"
        );
        if self.dirty {
            self.refresh();
        }
        &self.scratch
    }

    /// The finalized prepared state, without finalizing — the shared-borrow
    /// accessor the batch front end uses to collect one
    /// `&PreparedWorkload` per tenant after finalizing each view.
    ///
    /// # Panics
    ///
    /// Panics if the view is dirty (call [`EditView::prepared`] or
    /// [`WorkloadView::finalize`] first).
    #[must_use]
    pub fn finalized(&self) -> &PreparedWorkload {
        assert!(
            !self.dirty,
            "EditView::finalized requires a finalized view (call prepared() first)"
        );
        &self.scratch
    }

    /// Takes the deadline order into local maintenance on the first edit
    /// of a burst.
    fn begin_edit(&mut self) {
        if !self.dirty {
            self.order = self.scratch.take_deadline_order();
            debug_assert_eq!(self.order.len(), self.scratch.components().len());
            self.dirty = true;
        }
    }

    /// Binary-inserts `index` (whose component is already written) into
    /// the maintained order by its `(first deadline, index)` key.
    fn order_insert_entry(&mut self, index: usize) {
        let components = self.scratch.components();
        let key = (components[index].first_deadline(), index);
        let position = self
            .order
            .partition_point(|&i| (components[i].first_deadline(), i) < key);
        self.order.insert(position, index);
    }

    /// Binary-removes `index` from the maintained order by its current
    /// `(first deadline, index)` key.
    fn order_remove_entry(&mut self, index: usize) {
        let components = self.scratch.components();
        let key = (components[index].first_deadline(), index);
        let position = self
            .order
            .partition_point(|&i| (components[i].first_deadline(), i) < key);
        debug_assert_eq!(self.order[position], index);
        self.order.remove(position);
    }

    /// The shared write path of [`EditView::replace_component`] and the
    /// [`EditOp::WriteAt`] rollback: order out, component + reciprocal
    /// written, order back in under the new key.
    fn write_component(&mut self, index: usize, component: DemandComponent) -> DemandComponent {
        self.begin_edit();
        self.order_remove_entry(index);
        let old = self.scratch.replace_component_at(index, component);
        self.reciprocals[index] = reciprocal_of(&component);
        self.order_insert_entry(index);
        old
    }

    /// Recomputes the cost-and-structure-dependent aggregates and installs
    /// them with the maintained order (one summation pass in component
    /// order for `f64` bit-identity with a cold preparation, one exact
    /// `U > 1` pass, the structural bound refresh, the in-place kernel
    /// rebuild).
    fn refresh(&mut self) {
        let components = self.scratch.components();
        let utilization = components.iter().map(DemandComponent::utilization).sum();
        let exceeds_one = components_exceed_one(components);
        let bounds = (!exceeds_one).then(|| {
            self.refresher
                .refresh_edited(components, false, &self.reciprocals)
        });
        let order = std::mem::take(&mut self.order);
        self.scratch.install_edited_state(
            self.task_count,
            utilization,
            exceeds_one,
            order,
            bounds,
            &self.reciprocals,
        );
        self.dirty = false;
    }
}

impl WorkloadView for EditView {
    fn finalize(&mut self) -> &PreparedWorkload {
        self.prepared()
    }

    fn is_dirty(&self) -> bool {
        self.dirty
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn mark_poisoned(&mut self) {
        self.poisoned = true;
    }

    /// Rolls back every edit since the last [`EditView::commit`] by
    /// replaying the undo log in reverse; the repair runs lazily at the
    /// next finalize.
    fn revert(&mut self) {
        if !self.undo.is_empty() {
            // The edits may already be finalized (admit-then-reject flows
            // analyze before deciding); re-enter edit mode so the order is
            // under local maintenance again.
            self.begin_edit();
        }
        while let Some(op) = self.undo.pop() {
            match op {
                EditOp::RemoveLast => {
                    let index = self.scratch.components().len() - 1;
                    self.order_remove_entry(index);
                    let _ = self.scratch.remove_component_at(index);
                    self.reciprocals.pop();
                    self.task_count = self.task_count.saturating_sub(1);
                }
                EditOp::InsertAt(index, component) => {
                    for entry in &mut self.order {
                        *entry += usize::from(*entry >= index);
                    }
                    self.scratch.insert_component_at(index, component);
                    self.reciprocals.insert(index, reciprocal_of(&component));
                    self.order_insert_entry(index);
                    self.task_count += 1;
                }
                EditOp::WriteAt(index, component) => {
                    self.order_remove_entry(index);
                    let _ = self.scratch.replace_component_at(index, component);
                    self.reciprocals[index] = reciprocal_of(&component);
                    self.order_insert_entry(index);
                }
            }
        }
    }
}

/// The period reciprocal of one component (one-shots use the divisor-1
/// sentinel, matching [`BoundRefresher::new`] and the kernel's cache
/// contract).
fn reciprocal_of(component: &DemandComponent) -> Reciprocal {
    Reciprocal::new(component.period().map_or(1, Time::as_u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::{AllApproximatedTest, ProcessorDemandTest, QpaTest};
    use crate::workload::MixedSystem;
    use crate::FeasibilityTest;
    use edf_model::{EventStream, EventStreamTask, Task, TaskSet};

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    fn sample_system() -> MixedSystem {
        MixedSystem::new(
            TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]),
            vec![EventStreamTask::new(
                EventStream::bursty(2, Time::new(4), Time::new(60)),
                Time::new(1),
                Time::new(12),
            )
            .expect("valid stream task")],
        )
    }

    /// Full observable-state comparison between a view probe and a cold
    /// re-preparation.
    fn assert_matches_cold(view: &PreparedWorkload, cold: &PreparedWorkload) {
        assert_eq!(view.components(), cold.components());
        assert_eq!(view.task_count(), cold.task_count());
        assert_eq!(view.utilization().to_bits(), cold.utilization().to_bits());
        assert_eq!(
            view.utilization_exceeds_one(),
            cold.utilization_exceeds_one()
        );
        assert_eq!(view.demand_is_exact(), cold.demand_is_exact());
        assert_eq!(view.utilization_is_exact(), cold.utilization_is_exact());
        assert_eq!(view.bounds(), cold.bounds());
        assert_eq!(view.deadline_order(), cold.deadline_order());
        for test in [
            Box::new(ProcessorDemandTest::new()) as Box<dyn FeasibilityTest>,
            Box::new(QpaTest::new()),
            Box::new(AllApproximatedTest::new()),
        ] {
            assert_eq!(
                test.analyze_prepared(view),
                test.analyze_prepared(cold),
                "{} diverges between view and cold preparation",
                test.name()
            );
        }
    }

    #[test]
    fn scaling_probes_match_cold_preparation() {
        let system = sample_system();
        let base = PreparedWorkload::new(&system);
        let mut view = ScaledView::new(&base);
        // Includes overload scalings (bounds skipped) sandwiched between
        // feasible ones, so stale-bound leakage would be caught.
        for numer in [1_000u64, 500, 2_000, 1_250, 0, 1_000, 4_000, 900] {
            let probed = view.scale_wcets(numer, 1_000);
            let cold = base.with_scaled_wcets(numer, 1_000);
            assert_matches_cold(probed, &cold);
        }
    }

    #[test]
    fn component_probes_match_cold_preparation() {
        let base = PreparedWorkload::new(&sample_system());
        let mut view = ScaledView::new(&base);
        for index in 0..base.components().len() {
            for wcet in [0u64, 1, 3, 7, 100] {
                let probed = view.with_component_wcet(index, Time::new(wcet));
                let mut components = base.components().to_vec();
                let clamped = match components[index].period() {
                    Some(period) => Time::new(wcet).min(period),
                    None => Time::new(wcet),
                };
                components[index].set_wcet(clamped);
                let cold = PreparedWorkload::from_parts(
                    components,
                    base.task_count(),
                    base.demand_is_exact(),
                    base.utilization_is_exact(),
                );
                assert_matches_cold(probed, &cold);
            }
        }
    }

    #[test]
    fn probe_kinds_interleave_without_leakage() {
        let base = PreparedWorkload::new(&sample_system());
        let mut view = ScaledView::new(&base);
        view.scale_wcets(3_000, 1_000);
        // A component probe after a scaling probe starts from base costs,
        // not from the scaled ones.
        let probed = view.with_component_wcet(0, Time::new(2));
        assert_eq!(probed.components()[1], base.components()[1]);
        view.with_component_wcet(2, Time::new(6));
        // And a scaling probe resets the component perturbation.
        let rescaled = view.scale_wcets(1_000, 1_000);
        assert_eq!(rescaled.components(), base.components());
    }

    #[test]
    fn view_accessors_and_empty_workload() {
        let base = PreparedWorkload::new(&TaskSet::new());
        let mut view = ScaledView::new(&base);
        assert!(view.base().is_empty());
        assert!(view.prepared().is_empty());
        assert!(view.scale_wcets(2_000, 1_000).is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_range_component_probe_panics() {
        let base = PreparedWorkload::new(&TaskSet::from_tasks(vec![t(1, 4, 8)]));
        let mut view = ScaledView::new(&base);
        let _ = view.with_component_wcet(1, Time::new(2));
    }

    #[test]
    fn scaled_view_revert_restores_base_state() {
        let base = PreparedWorkload::new(&sample_system());
        let mut view = ScaledView::new(&base);
        view.scale_wcets(3_000, 1_000);
        assert!(!view.is_dirty());
        view.revert();
        let cold = PreparedWorkload::from_parts(
            base.components().to_vec(),
            base.task_count(),
            base.demand_is_exact(),
            base.utilization_is_exact(),
        );
        assert_matches_cold(view.finalize(), &cold);
    }

    /// Cold preparation of an edit view's current components, carrying the
    /// view's metadata so the full observable state is comparable.
    fn cold_of(view: &mut EditView) -> PreparedWorkload {
        let prepared = view.prepared();
        PreparedWorkload::from_parts(
            prepared.components().to_vec(),
            prepared.task_count(),
            prepared.demand_is_exact(),
            prepared.utilization_is_exact(),
        )
    }

    #[test]
    fn edit_sequence_matches_cold_preparation() {
        let base = PreparedWorkload::new(&sample_system());
        let mut view = EditView::new(&base);
        // Untouched view is already bit-identical.
        let cold = cold_of(&mut view);
        assert_matches_cold(view.prepared(), &cold);
        // Insert a periodic and a one-shot component.
        let count = base.components().len();
        let periodic = DemandComponent::periodic(Time::new(2), Time::new(5), Time::new(30));
        let one_shot = DemandComponent::one_shot(Time::new(1), Time::new(3), Time::new(7));
        assert_eq!(view.insert_component(periodic), count);
        assert_eq!(view.insert_component(one_shot), count + 1);
        let cold = cold_of(&mut view);
        assert_matches_cold(view.prepared(), &cold);
        // Remove from the middle (indices shift), replace with a different
        // period, edit again without an intervening finalize.
        let removed = view.remove_component(1);
        assert_eq!(removed, base.components()[1]);
        let replaced = view.replace_component(
            0,
            DemandComponent::periodic(Time::new(3), Time::new(4), Time::new(11)),
        );
        assert_eq!(replaced, base.components()[0]);
        let cold = cold_of(&mut view);
        assert_matches_cold(view.prepared(), &cold);
        view.commit();
        assert!(!view.has_uncommitted_edits());
    }

    #[test]
    fn edit_revert_rolls_back_to_last_commit() {
        let base = PreparedWorkload::new(&sample_system());
        let mut view = EditView::new(&base);
        let admitted = view.insert_component(DemandComponent::periodic(
            Time::new(1),
            Time::new(9),
            Time::new(40),
        ));
        view.prepared();
        view.commit();
        let committed: Vec<DemandComponent> = view.components().to_vec();
        // A rejected admit: insert, analyze (finalize), then revert.
        view.insert_component(DemandComponent::periodic(
            Time::new(30),
            Time::new(30),
            Time::new(30),
        ));
        assert!(view.prepared().utilization_exceeds_one());
        view.revert();
        assert_eq!(view.components(), committed.as_slice());
        let cold = cold_of(&mut view);
        assert_matches_cold(view.prepared(), &cold);
        // Reverting a mixed uncommitted batch (remove + replace + insert).
        view.remove_component(admitted);
        view.replace_component(
            1,
            DemandComponent::one_shot(Time::new(2), Time::new(6), Time::new(0)),
        );
        view.insert_component(DemandComponent::periodic(
            Time::new(1),
            Time::new(2),
            Time::new(3),
        ));
        view.revert();
        assert_eq!(view.components(), committed.as_slice());
        let cold = cold_of(&mut view);
        assert_matches_cold(view.prepared(), &cold);
        // Revert with nothing pending is a no-op.
        view.revert();
        assert_eq!(view.components(), committed.as_slice());
    }

    #[test]
    fn shrinking_edits_reuse_column_capacity() {
        let base = PreparedWorkload::new(&sample_system());
        let mut view = EditView::new(&base);
        // Grow once, then cycle admit/evict pairs: after the initial
        // growth the component column's capacity must never move again
        // (the `recycled`-style reuse contract; the pub(crate) mutators
        // debug-assert the per-edit half of this).
        for _ in 0..4 {
            view.insert_component(DemandComponent::periodic(
                Time::new(1),
                Time::new(8),
                Time::new(50),
            ));
        }
        view.prepared();
        view.commit();
        let capacity = view.scratch.component_capacity();
        let reciprocal_capacity = view.reciprocals.capacity();
        for round in 0..8 {
            let index = view.insert_component(DemandComponent::periodic(
                Time::new(1 + round % 2),
                Time::new(6),
                Time::new(20),
            ));
            view.prepared();
            view.remove_component(index);
            view.replace_component(
                0,
                DemandComponent::periodic(
                    Time::new(2),
                    Time::new(5 + round),
                    Time::new(10 + round),
                ),
            );
            view.prepared();
            view.commit();
            assert_eq!(view.scratch.component_capacity(), capacity);
            assert_eq!(view.reciprocals.capacity(), reciprocal_capacity);
        }
    }

    #[test]
    fn edit_view_over_scalar_oracle_stays_scalar() {
        let base = PreparedWorkload::new(&sample_system()).scalar_reference();
        let mut view = EditView::new(&base);
        view.insert_component(DemandComponent::periodic(
            Time::new(1),
            Time::new(4),
            Time::new(9),
        ));
        assert!(view.prepared().scalar_demand);
    }

    #[test]
    fn edit_view_from_empty_base_admits() {
        let base = PreparedWorkload::from_components(Vec::new());
        let mut view = EditView::new(&base);
        assert!(view.prepared().is_empty());
        view.insert_component(DemandComponent::periodic(
            Time::new(2),
            Time::new(4),
            Time::new(8),
        ));
        let cold = cold_of(&mut view);
        assert_matches_cold(view.prepared(), &cold);
        assert_eq!(view.prepared().task_count(), 1);
    }

    #[test]
    fn poisoned_view_rebuilds_from_committed_base() {
        let base = PreparedWorkload::new(&sample_system());
        let mut view = EditView::new(&base);
        assert!(!view.is_poisoned());
        // Simulate a panic unwinding mid-edit: the component vector has
        // been mutated but the poison forbids trusting any repair of it.
        view.insert_component(DemandComponent::periodic(
            Time::new(1),
            Time::new(2),
            Time::new(4),
        ));
        view.mark_poisoned();
        assert!(view.is_poisoned());
        view.rebuild_from(&base);
        assert!(!view.is_poisoned());
        let cold = cold_of(&mut view);
        assert_matches_cold(view.prepared(), &cold);
        assert_eq!(view.components(), base.components());
    }

    #[test]
    #[should_panic]
    fn prepared_on_poisoned_view_panics() {
        let base = PreparedWorkload::from_components(Vec::new());
        let mut view = EditView::new(&base);
        view.mark_poisoned();
        let _ = view.prepared();
    }

    #[test]
    #[should_panic]
    fn finalized_on_dirty_view_panics() {
        let base = PreparedWorkload::from_components(Vec::new());
        let mut view = EditView::new(&base);
        view.insert_component(DemandComponent::periodic(
            Time::new(1),
            Time::new(2),
            Time::new(4),
        ));
        let _ = view.finalized();
    }
}
