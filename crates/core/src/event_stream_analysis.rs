//! Demand-based feasibility analysis for event-stream activated systems —
//! the "advanced task model" extension the paper points to in §2 and §3.6.
//!
//! A [`MixedSystem`] combines ordinary sporadic tasks with
//! [`EventStreamTask`]s (Gresser streams: bursty stimuli described by a set
//! of `(cycle, offset)` tuples).  Its demand bound function is simply the
//! sum of the per-component demand bound functions, and the processor
//! demand criterion carries over unchanged: the system is feasible under
//! preemptive EDF if and only if the total demand never exceeds the
//! interval length.
//!
//! The analysis enumerates the (finitely many, per horizon) interval
//! lengths at which the total demand increases and compares demand and
//! capacity there, limited by a George-style feasibility bound derived the
//! same way as in §4.3: `dbf(I) ≤ I·U + G` with a constant `G`, so any
//! violation lies below `G / (1 − U)`.

use edf_model::{EventStreamTask, TaskSet, Time};

use crate::analysis::{Analysis, DemandOverload, IterationCounter, Verdict};
use crate::demand::{dbf_set, DeadlineIter};

/// A system mixing sporadic tasks and event-stream activated tasks.
///
/// # Examples
///
/// ```
/// use edf_analysis::event_stream_analysis::MixedSystem;
/// use edf_analysis::Verdict;
/// use edf_model::{EventStream, EventStreamTask, Task, TaskSet, Time};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sporadic = TaskSet::from_tasks(vec![
///     Task::new(Time::new(2), Time::new(8), Time::new(10))?,
/// ]);
/// let burst = EventStreamTask::new(
///     EventStream::bursty(3, Time::new(5), Time::new(100)),
///     Time::new(4),
///     Time::new(20),
/// )?;
/// let system = MixedSystem::new(sporadic, vec![burst]);
/// assert!(system.utilization() < 1.0);
/// assert_eq!(system.analyze().verdict, Verdict::Feasible);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MixedSystem {
    sporadic: TaskSet,
    stream_tasks: Vec<EventStreamTask>,
}

impl MixedSystem {
    /// Creates a mixed system from its sporadic and event-stream parts.
    #[must_use]
    pub fn new(sporadic: TaskSet, stream_tasks: Vec<EventStreamTask>) -> Self {
        MixedSystem {
            sporadic,
            stream_tasks,
        }
    }

    /// The sporadic part.
    #[must_use]
    pub fn sporadic(&self) -> &TaskSet {
        &self.sporadic
    }

    /// The event-stream part.
    #[must_use]
    pub fn stream_tasks(&self) -> &[EventStreamTask] {
        &self.stream_tasks
    }

    /// Long-run processor utilization of the whole system.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.sporadic.utilization()
            + self
                .stream_tasks
                .iter()
                .map(EventStreamTask::utilization)
                .sum::<f64>()
    }

    /// Total demand bound function of the system.
    #[must_use]
    pub fn demand(&self, interval: Time) -> Time {
        let streams = self
            .stream_tasks
            .iter()
            .fold(Time::ZERO, |acc, t| acc.saturating_add(t.dbf(interval)));
        dbf_set(&self.sporadic, interval).saturating_add(streams)
    }

    /// A valid feasibility bound: any interval violating the processor
    /// demand criterion lies strictly below it.  `None` if the utilization
    /// is too close to (or above) 1 for the bound to be finite.
    ///
    /// Derivation (mirroring §4.3): each sporadic task satisfies
    /// `dbf(I, τ) ≤ I·C/T + C·(1 − D/T)` and each event-stream tuple
    /// `(z, a)` of a task with per-event cost `C` satisfies
    /// `C·η ≤ I·C/z + C`, so `dbf(I) ≤ I·U + G` with the constant `G`
    /// computed below, and `dbf(I) > I` forces `I < G/(1 − U)`.
    #[must_use]
    pub fn feasibility_bound(&self) -> Option<Time> {
        let utilization = self.utilization();
        if utilization >= 1.0 - 1e-9 {
            return None;
        }
        let mut constant = 0.0f64;
        for task in &self.sporadic {
            let slack = 1.0 - task.deadline().min(task.period()).as_f64() / task.period().as_f64();
            constant += task.wcet().as_f64() * slack;
        }
        for stream_task in &self.stream_tasks {
            let tuples = stream_task.stream().tuples().len() as f64;
            constant += stream_task.wcet().as_f64() * tuples;
        }
        // Round up generously; the +1 absorbs the rounding of the division.
        let bound = (constant / (1.0 - utilization)).ceil() + 1.0;
        if bound > u64::MAX as f64 {
            return None;
        }
        Some(Time::new(bound as u64))
    }

    /// All interval lengths `≤ horizon` at which the total demand can
    /// increase (absolute deadlines of sporadic jobs and of stream events),
    /// sorted and de-duplicated.
    #[must_use]
    pub fn change_points(&self, horizon: Time) -> Vec<Time> {
        let mut points: Vec<Time> = DeadlineIter::new(&self.sporadic, horizon)
            .map(|e| e.deadline)
            .collect();
        for stream_task in &self.stream_tasks {
            let deadline = stream_task.deadline();
            if horizon < deadline {
                continue;
            }
            for occurrence in stream_task.stream().change_points(horizon - deadline) {
                points.push(occurrence + deadline);
            }
        }
        points.sort_unstable();
        points.dedup();
        points
    }

    /// Runs the exact processor-demand analysis of the mixed system.
    ///
    /// Returns [`Verdict::Unknown`] when no finite feasibility bound exists
    /// (utilization at or above 1 cannot be handled by the bound used
    /// here — split the system or use the pure sporadic analysis in that
    /// case).
    #[must_use]
    pub fn analyze(&self) -> Analysis {
        if self.sporadic.is_empty() && self.stream_tasks.is_empty() {
            return Analysis::trivial(Verdict::Feasible);
        }
        if self.utilization() > 1.0 + 1e-9 {
            return Analysis::trivial(Verdict::Infeasible);
        }
        let Some(horizon) = self.feasibility_bound() else {
            return Analysis::trivial(Verdict::Unknown);
        };
        self.analyze_up_to(horizon, true)
    }

    /// Runs the processor-demand analysis up to an explicit horizon.
    ///
    /// `horizon_is_exact` states whether the horizon is a valid feasibility
    /// bound (only then can the analysis answer [`Verdict::Feasible`]).
    #[must_use]
    pub fn analyze_up_to(&self, horizon: Time, horizon_is_exact: bool) -> Analysis {
        let mut counter = IterationCounter::new();
        for interval in self.change_points(horizon) {
            counter.record(interval);
            let demand = self.demand(interval);
            if demand > interval {
                return counter.finish(
                    Verdict::Infeasible,
                    Some(DemandOverload { interval, demand }),
                );
            }
        }
        let verdict = if horizon_is_exact {
            Verdict::Feasible
        } else {
            Verdict::Unknown
        };
        counter.finish(verdict, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::ProcessorDemandTest;
    use crate::FeasibilityTest;
    use edf_model::{EventStream, Task};

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    fn burst(count: u64, inner: u64, outer: u64, c: u64, d: u64) -> EventStreamTask {
        EventStreamTask::new(
            EventStream::bursty(count, Time::new(inner), Time::new(outer)),
            Time::new(c),
            Time::new(d),
        )
        .expect("valid event stream task")
    }

    #[test]
    fn purely_sporadic_system_matches_the_sporadic_test() {
        let sets = vec![
            TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]),
            TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]),
            TaskSet::from_tasks(vec![t(2, 7, 10), t(3, 15, 25), t(5, 40, 50)]),
        ];
        for ts in sets {
            let system = MixedSystem::new(ts.clone(), vec![]);
            let expected = ProcessorDemandTest::new().analyze(&ts).verdict;
            assert_eq!(system.analyze().verdict, expected, "on {ts}");
        }
    }

    #[test]
    fn periodic_stream_equals_equivalent_sporadic_task() {
        // A periodic stream task is exactly a sporadic task; both views of
        // the same system must agree.
        let background = TaskSet::from_tasks(vec![t(2, 6, 10), t(3, 12, 20)]);
        let stream = EventStreamTask::new(
            EventStream::periodic(Time::new(25)),
            Time::new(8),
            Time::new(18),
        )
        .unwrap();
        let as_sporadic = {
            let mut ts = background.clone();
            ts.push(stream.to_sporadic().unwrap());
            ts
        };
        let mixed = MixedSystem::new(background, vec![stream]);
        assert_eq!(
            mixed.analyze().verdict,
            ProcessorDemandTest::new().analyze(&as_sporadic).verdict
        );
        for i in (0..200).step_by(7) {
            assert_eq!(
                mixed.demand(Time::new(i)),
                crate::demand::dbf_set(&as_sporadic, Time::new(i)),
                "demand mismatch at {i}"
            );
        }
    }

    #[test]
    fn bursty_load_detected_as_infeasible_when_too_dense() {
        // Background of 60 % plus a burst needing 3*10 time units within 25
        // of its occurrence, every 100: around the burst the demand exceeds
        // the capacity.
        let background = TaskSet::from_tasks(vec![t(6, 10, 10)]);
        let heavy_burst = burst(3, 1, 100, 10, 25);
        let system = MixedSystem::new(background, vec![heavy_burst]);
        let analysis = system.analyze();
        assert_eq!(analysis.verdict, Verdict::Infeasible);
        let witness = analysis.overload.expect("witness");
        assert_eq!(system.demand(witness.interval), witness.demand);
        assert!(witness.demand > witness.interval);
    }

    #[test]
    fn sparse_burst_is_feasible() {
        let background = TaskSet::from_tasks(vec![t(2, 8, 10), t(5, 35, 40)]);
        let sparse_burst = burst(4, 5, 200, 3, 30);
        let system = MixedSystem::new(background, vec![sparse_burst]);
        assert!(system.utilization() < 1.0);
        assert_eq!(system.analyze().verdict, Verdict::Feasible);
    }

    #[test]
    fn overload_and_empty_paths() {
        let empty = MixedSystem::new(TaskSet::new(), vec![]);
        assert_eq!(empty.analyze().verdict, Verdict::Feasible);
        let overloaded = MixedSystem::new(
            TaskSet::from_tasks(vec![t(9, 10, 10)]),
            vec![burst(2, 1, 10, 2, 10)],
        );
        assert!(overloaded.utilization() > 1.0);
        assert_eq!(overloaded.analyze().verdict, Verdict::Infeasible);
        // Utilization exactly ~1: no finite bound, inconclusive.
        let saturated = MixedSystem::new(TaskSet::from_tasks(vec![t(10, 10, 10)]), vec![]);
        assert_eq!(saturated.analyze().verdict, Verdict::Unknown);
    }

    #[test]
    fn change_points_cover_stream_deadlines() {
        let system = MixedSystem::new(
            TaskSet::from_tasks(vec![t(1, 5, 20)]),
            vec![burst(2, 3, 50, 2, 10)],
        );
        let points = system.change_points(Time::new(70));
        // Sporadic deadlines 5, 25, 45, 65; stream events at 0, 3, 50, 53
        // with deadline offset 10 -> 10, 13, 60, 63.
        for expected in [5u64, 25, 45, 65, 10, 13, 60, 63] {
            assert!(points.contains(&Time::new(expected)), "missing {expected}");
        }
        // Sorted and unique.
        for w in points.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn accessors_and_bound() {
        let system = MixedSystem::new(
            TaskSet::from_tasks(vec![t(2, 8, 10)]),
            vec![burst(2, 2, 40, 3, 12)],
        );
        assert_eq!(system.sporadic().len(), 1);
        assert_eq!(system.stream_tasks().len(), 1);
        let bound = system.feasibility_bound().expect("finite bound");
        assert!(bound > Time::ZERO);
        // The bound really is safe: no violation may exist at or beyond it
        // for this feasible system (spot-check a window beyond the bound).
        for i in bound.as_u64()..bound.as_u64() + 50 {
            assert!(system.demand(Time::new(i)) <= Time::new(i));
        }
    }
}
