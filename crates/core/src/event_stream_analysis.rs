//! Compatibility surface for event-stream feasibility analysis.
//!
//! Historically this module carried a bespoke demand loop for
//! [`MixedSystem`]s.  That loop is gone: mixed systems are ordinary
//! [`Workload`](crate::workload::Workload)s now, analyzed by the very same
//! [`ProcessorDemandTest`] (and every other test) as sporadic task sets —
//! the point of §2/§3.6 of the paper.  What remains here are thin
//! convenience wrappers kept for API stability; new code should prefer
//! [`FeasibilityTest::analyze_workload`]
//! with a [`PreparedWorkload`].
//!
//! # Examples
//!
//! ```
//! use edf_analysis::event_stream_analysis::MixedSystem;
//! use edf_analysis::Verdict;
//! use edf_model::{EventStream, EventStreamTask, Task, TaskSet, Time};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sporadic = TaskSet::from_tasks(vec![
//!     Task::new(Time::new(2), Time::new(8), Time::new(10))?,
//! ]);
//! let burst = EventStreamTask::new(
//!     EventStream::bursty(3, Time::new(5), Time::new(100)),
//!     Time::new(4),
//!     Time::new(20),
//! )?;
//! let system = MixedSystem::new(sporadic, vec![burst]);
//! assert!(system.utilization() < 1.0);
//! assert_eq!(system.analyze().verdict, Verdict::Feasible);
//! # Ok(())
//! # }
//! ```

use edf_model::Time;

pub use crate::workload::MixedSystem;

use crate::analysis::{Analysis, FeasibilityTest, Verdict};
use crate::tests::{BoundSelection, ProcessorDemandTest};
use crate::workload::PreparedWorkload;

impl MixedSystem {
    /// A valid feasibility bound: any interval violating the processor
    /// demand criterion lies below it.  `None` if no finite bound exists
    /// (utilization at 1 with one-shot tuples, or above 1).
    ///
    /// This is the tightest of the component-generalized §4.3 bounds; see
    /// [`crate::bounds::FeasibilityBounds::for_components`].
    #[must_use]
    pub fn feasibility_bound(&self) -> Option<Time> {
        PreparedWorkload::new(self).analysis_horizon()
    }

    /// All interval lengths `≤ horizon` at which the total demand can
    /// increase (absolute deadlines of sporadic jobs and of stream events),
    /// sorted and de-duplicated.
    #[must_use]
    pub fn change_points(&self, horizon: Time) -> Vec<Time> {
        let prepared = PreparedWorkload::new(self);
        let mut points: Vec<Time> = prepared
            .demand_events(horizon)
            .map(|event| event.interval)
            .collect();
        points.dedup();
        points
    }

    /// Runs the exact processor-demand analysis of the mixed system — a
    /// thin wrapper over [`ProcessorDemandTest`] on the common
    /// [`Workload`](crate::workload::Workload) path.
    ///
    /// Returns [`Verdict::Unknown`] only when no finite feasibility bound
    /// exists for the system.
    #[must_use]
    pub fn analyze(&self) -> Analysis {
        ProcessorDemandTest::new().analyze_workload(self)
    }

    /// Runs the processor-demand analysis up to an explicit horizon.
    ///
    /// `horizon_is_exact` states whether the horizon is a valid feasibility
    /// bound (only then can the analysis answer [`Verdict::Feasible`]).
    #[must_use]
    pub fn analyze_up_to(&self, horizon: Time, horizon_is_exact: bool) -> Analysis {
        let mut analysis =
            ProcessorDemandTest::with_bound(BoundSelection::Fixed(horizon)).analyze_workload(self);
        if horizon_is_exact && analysis.verdict == Verdict::Unknown {
            analysis.verdict = Verdict::Feasible;
        }
        analysis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::ProcessorDemandTest;
    use crate::FeasibilityTest;
    use edf_model::{EventStream, EventStreamTask, Task, TaskSet};

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    fn burst(count: u64, inner: u64, outer: u64, c: u64, d: u64) -> EventStreamTask {
        EventStreamTask::new(
            EventStream::bursty(count, Time::new(inner), Time::new(outer)),
            Time::new(c),
            Time::new(d),
        )
        .expect("valid event stream task")
    }

    #[test]
    fn purely_sporadic_system_matches_the_sporadic_test() {
        let sets = vec![
            TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]),
            TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]),
            TaskSet::from_tasks(vec![t(2, 7, 10), t(3, 15, 25), t(5, 40, 50)]),
        ];
        for ts in sets {
            let system = MixedSystem::new(ts.clone(), vec![]);
            let expected = ProcessorDemandTest::new().analyze(&ts).verdict;
            assert_eq!(system.analyze().verdict, expected, "on {ts}");
        }
    }

    #[test]
    fn periodic_stream_equals_equivalent_sporadic_task() {
        // A periodic stream task is exactly a sporadic task; both views of
        // the same system must agree.
        let background = TaskSet::from_tasks(vec![t(2, 6, 10), t(3, 12, 20)]);
        let stream = EventStreamTask::new(
            EventStream::periodic(Time::new(25)),
            Time::new(8),
            Time::new(18),
        )
        .unwrap();
        let as_sporadic = {
            let mut ts = background.clone();
            ts.push(stream.to_sporadic().unwrap());
            ts
        };
        let mixed = MixedSystem::new(background, vec![stream]);
        assert_eq!(
            mixed.analyze().verdict,
            ProcessorDemandTest::new().analyze(&as_sporadic).verdict
        );
        for i in (0..200).step_by(7) {
            assert_eq!(
                mixed.demand(Time::new(i)),
                crate::demand::dbf_set(&as_sporadic, Time::new(i)),
                "demand mismatch at {i}"
            );
        }
    }

    #[test]
    fn bursty_load_detected_as_infeasible_when_too_dense() {
        // Background of 60 % plus a burst needing 3*10 time units within 25
        // of its occurrence, every 100: around the burst the demand exceeds
        // the capacity.
        let background = TaskSet::from_tasks(vec![t(6, 10, 10)]);
        let heavy_burst = burst(3, 1, 100, 10, 25);
        let system = MixedSystem::new(background, vec![heavy_burst]);
        let analysis = system.analyze();
        assert_eq!(analysis.verdict, Verdict::Infeasible);
        let witness = analysis.overload.expect("witness");
        assert_eq!(system.demand(witness.interval), witness.demand);
        assert!(witness.demand > witness.interval);
    }

    #[test]
    fn sparse_burst_is_feasible() {
        let background = TaskSet::from_tasks(vec![t(2, 8, 10), t(5, 35, 40)]);
        let sparse_burst = burst(4, 5, 200, 3, 30);
        let system = MixedSystem::new(background, vec![sparse_burst]);
        assert!(system.utilization() < 1.0);
        assert_eq!(system.analyze().verdict, Verdict::Feasible);
    }

    #[test]
    fn overload_and_empty_paths() {
        let empty = MixedSystem::new(TaskSet::new(), vec![]);
        assert_eq!(empty.analyze().verdict, Verdict::Feasible);
        let overloaded = MixedSystem::new(
            TaskSet::from_tasks(vec![t(9, 10, 10)]),
            vec![burst(2, 1, 10, 2, 10)],
        );
        assert!(overloaded.utilization() > 1.0);
        assert_eq!(overloaded.analyze().verdict, Verdict::Infeasible);
        // Utilization exactly 1 with implicit deadlines: the old bespoke
        // loop had to give up (no finite George bound), but the common
        // workload path falls back to the hyperperiod bound and answers
        // exactly.
        let saturated = MixedSystem::new(TaskSet::from_tasks(vec![t(10, 10, 10)]), vec![]);
        assert_eq!(saturated.analyze().verdict, Verdict::Feasible);
    }

    #[test]
    fn change_points_cover_stream_deadlines() {
        let system = MixedSystem::new(
            TaskSet::from_tasks(vec![t(1, 5, 20)]),
            vec![burst(2, 3, 50, 2, 10)],
        );
        let points = system.change_points(Time::new(70));
        // Sporadic deadlines 5, 25, 45, 65; stream events at 0, 3, 50, 53
        // with deadline offset 10 -> 10, 13, 60, 63.
        for expected in [5u64, 25, 45, 65, 10, 13, 60, 63] {
            assert!(points.contains(&Time::new(expected)), "missing {expected}");
        }
        // Sorted and unique.
        for w in points.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn accessors_and_bound() {
        let system = MixedSystem::new(
            TaskSet::from_tasks(vec![t(2, 8, 10)]),
            vec![burst(2, 2, 40, 3, 12)],
        );
        assert_eq!(system.sporadic().len(), 1);
        assert_eq!(system.stream_tasks().len(), 1);
        let bound = system.feasibility_bound().expect("finite bound");
        assert!(bound > Time::ZERO);
        // The bound really is safe: no violation may exist at or beyond it
        // for this feasible system (spot-check a window beyond the bound).
        for i in bound.as_u64()..bound.as_u64() + 50 {
            assert!(system.demand(Time::new(i)) <= Time::new(i));
        }
    }

    #[test]
    fn analyze_up_to_respects_exactness_flag() {
        let system = MixedSystem::new(
            TaskSet::from_tasks(vec![t(2, 8, 10)]),
            vec![burst(2, 2, 40, 3, 12)],
        );
        let horizon = system.feasibility_bound().expect("finite bound");
        assert_eq!(
            system.analyze_up_to(horizon, true).verdict,
            Verdict::Feasible
        );
        assert_eq!(
            system.analyze_up_to(Time::new(5), false).verdict,
            Verdict::Unknown
        );
        // A violation below the horizon is conclusive either way.
        let overloaded = MixedSystem::new(
            TaskSet::from_tasks(vec![t(6, 10, 10)]),
            vec![burst(3, 1, 100, 10, 25)],
        );
        assert_eq!(
            overloaded.analyze_up_to(Time::new(200), false).verdict,
            Verdict::Infeasible
        );
    }

    #[test]
    fn every_exact_test_agrees_on_mixed_systems() {
        use crate::tests::{AllApproximatedTest, DynamicErrorTest, QpaTest};
        let systems = vec![
            MixedSystem::new(
                TaskSet::from_tasks(vec![t(2, 8, 10), t(5, 35, 40)]),
                vec![burst(4, 5, 200, 3, 30)],
            ),
            MixedSystem::new(
                TaskSet::from_tasks(vec![t(6, 10, 10)]),
                vec![burst(3, 1, 100, 10, 25)],
            ),
            MixedSystem::new(
                TaskSet::from_tasks(vec![t(1, 5, 20)]),
                vec![burst(2, 3, 50, 2, 10), burst(2, 7, 90, 1, 15)],
            ),
        ];
        for system in systems {
            let prepared = PreparedWorkload::new(&system);
            let reference = ProcessorDemandTest::new()
                .analyze_prepared(&prepared)
                .verdict;
            assert!(reference.is_decisive());
            for test in [
                Box::new(QpaTest::new()) as Box<dyn FeasibilityTest>,
                Box::new(DynamicErrorTest::new()),
                Box::new(AllApproximatedTest::new()),
            ] {
                assert_eq!(
                    test.analyze_prepared(&prepared).verdict,
                    reference,
                    "{} disagrees on a mixed system",
                    test.name()
                );
            }
        }
    }
}
