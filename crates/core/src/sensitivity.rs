//! Sensitivity analysis on top of the exact feasibility tests.
//!
//! Once an exact test is cheap (the point of the paper), it becomes
//! practical to answer design-space questions by running it inside a search
//! loop.  This module provides the two most common ones:
//!
//! * [`breakdown_scaling`] — the largest uniform scaling factor that can be
//!   applied to every worst-case execution time while the task set stays
//!   feasible (the classic "breakdown utilization" experiment);
//! * [`wcet_slack`] — how much a *single* task's worst-case execution time
//!   can grow before the set becomes infeasible (per-task robustness
//!   budget).
//!
//! Both searches are exact: they binary-search over integer scalings and
//! re-run an exact feasibility test at every probe.  The probes run through
//! the **incremental engine** of [`crate::incremental`]: one
//! [`ScaledView`] per search rewrites the costs in place and refreshes the
//! cached aggregates, instead of re-preparing the workload ~14 times per
//! search (the [`mod@reference`] submodule keeps the from-scratch variants
//! for validation and benchmarking).  Every entry point is workload-generic —
//! event streams, arrival curves and mixed systems probe exactly like task
//! sets, because the searches act on the component decomposition.
//!
//! For fleets of workloads, [`sensitivity_sweep`] runs both searches over
//! a whole batch with the multi-core fan-out of [`crate::batch`].

use edf_model::{TaskSet, Time};

use crate::analysis::FeasibilityTest;
use crate::batch::parallel_map;
use crate::incremental::ScaledView;
use crate::kernel::AnalysisScratch;
use crate::tests::AllApproximatedTest;
use crate::workload::{DemandComponent, PreparedWorkload, Workload};

/// Precision denominator used for scaling factors: factors are expressed in
/// 1/1000 steps (per-mille).
const SCALE_DENOMINATOR: u64 = 1_000;

/// Result of the breakdown-scaling search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakdownScaling {
    /// Largest feasible scaling factor (e.g. `1.25` means every WCET can
    /// grow by 25 %), in steps of 1/1000.
    pub factor: f64,
    /// Utilization of the workload at that scaling.
    pub utilization_at_breakdown: f64,
    /// Number of feasibility-test invocations spent by the search.
    pub probes: u32,
}

/// Finds the largest per-mille scaling of every WCET under which `test`
/// still accepts the task set, searching factors in `[0, 16]` with 1/1000
/// resolution.
///
/// Returns `None` if the set is infeasible as given (factor 1.0), or if the
/// supplied test cannot even accept the unscaled set.
///
/// # Examples
///
/// ```
/// use edf_analysis::sensitivity::breakdown_scaling;
/// use edf_analysis::tests::AllApproximatedTest;
/// use edf_model::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let ts = TaskSet::from_tasks(vec![
///     Task::new(Time::new(1), Time::new(4), Time::new(10))?,
///     Task::new(Time::new(2), Time::new(8), Time::new(10))?,
/// ]);
/// let breakdown = breakdown_scaling(&ts, &AllApproximatedTest::new()).expect("feasible set");
/// assert!(breakdown.factor >= 1.0);
/// assert!(breakdown.utilization_at_breakdown <= 1.0 + 1e-9);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn breakdown_scaling(
    task_set: &TaskSet,
    test: &dyn FeasibilityTest,
) -> Option<BreakdownScaling> {
    breakdown_scaling_workload(task_set, test)
}

/// [`breakdown_scaling`] for any demand-characterized workload — event
/// streams and mixed systems included, since scaling acts on the component
/// decomposition.
///
/// # Examples
///
/// ```
/// use edf_analysis::sensitivity::breakdown_scaling_workload;
/// use edf_analysis::tests::AllApproximatedTest;
/// use edf_analysis::workload::MixedSystem;
/// use edf_model::{EventStream, EventStreamTask, TaskSet, Time};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let burst = EventStreamTask::new(
///     EventStream::bursty(2, Time::new(10), Time::new(100)),
///     Time::new(5),
///     Time::new(40),
/// )?;
/// let system = MixedSystem::new(TaskSet::new(), vec![burst]);
/// let breakdown = breakdown_scaling_workload(&system, &AllApproximatedTest::new())
///     .expect("feasible system");
/// assert!(breakdown.factor >= 1.0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn breakdown_scaling_workload(
    workload: &(impl Workload + ?Sized),
    test: &dyn FeasibilityTest,
) -> Option<BreakdownScaling> {
    breakdown_scaling_prepared(&PreparedWorkload::new(workload), test)
}

/// [`breakdown_scaling_workload`] for callers that already hold a prepared
/// workload (the view is created over it, so the caller's preparation is
/// reused rather than repeated).
#[must_use]
pub fn breakdown_scaling_prepared(
    base: &PreparedWorkload,
    test: &dyn FeasibilityTest,
) -> Option<BreakdownScaling> {
    let mut view = ScaledView::new(base);
    breakdown_with_view(&mut view, test, &mut AnalysisScratch::new())
}

/// The breakdown probe schedule (doubling to an upper bound, then binary
/// search over per-mille numerators), shared by the incremental path and
/// the [`mod@reference`] baseline so both run **identical** probe
/// sequences — the property the benchmark comparison and the equivalence
/// proptests rely on.  Returns the last accepted numerator.
fn breakdown_search(mut accepts: impl FnMut(u64) -> bool) -> Option<u64> {
    if !accepts(SCALE_DENOMINATOR) {
        return None;
    }
    // Find an upper bound by doubling, capped at 16x.
    let cap = SCALE_DENOMINATOR * 16;
    let mut lo = SCALE_DENOMINATOR;
    let mut hi = SCALE_DENOMINATOR * 2;
    while hi < cap && accepts(hi) {
        lo = hi;
        hi *= 2;
    }
    let mut hi = hi.min(cap);
    // Binary search the last accepted numerator in (lo, hi].
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if accepts(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// The binary search for the largest accepted extra cost in
/// `[0, headroom]`, shared by the incremental and [`mod@reference`] slack
/// searches (identical probe sequences, see [`breakdown_search`]).
fn slack_search(headroom: u64, mut accepts: impl FnMut(u64) -> bool) -> u64 {
    let (mut lo, mut hi) = (0u64, headroom);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if accepts(mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// The breakdown search on an existing view (shared by the public entry
/// points and [`sensitivity_sweep`], which runs several searches over one
/// view).
fn breakdown_with_view(
    view: &mut ScaledView<'_>,
    test: &dyn FeasibilityTest,
    scratch: &mut AnalysisScratch,
) -> Option<BreakdownScaling> {
    if view.base().is_empty() {
        return None;
    }
    let mut probes = 0u32;
    let lo = breakdown_search(|numer| {
        probes += 1;
        view.scale_wcets(numer, SCALE_DENOMINATOR);
        test.analyze_view_with(&mut *view, scratch)
            .verdict
            .is_feasible()
    })?;
    Some(BreakdownScaling {
        factor: lo as f64 / SCALE_DENOMINATOR as f64,
        utilization_at_breakdown: view.base().scaled_utilization(lo, SCALE_DENOMINATOR),
        probes,
    })
}

/// Convenience wrapper: [`breakdown_scaling`] with the all-approximated
/// exact test.
#[must_use]
pub fn breakdown_scaling_exact(task_set: &TaskSet) -> Option<BreakdownScaling> {
    breakdown_scaling(task_set, &AllApproximatedTest::new())
}

/// The largest additional execution time (in whole ticks) that can be added
/// to the WCET of the task at `task_index` while the set remains accepted
/// by `test`.
///
/// Returns `None` if the index is out of range or the unmodified set is not
/// accepted.  The result is clamped so that the inflated WCET never exceeds
/// the task's period.
///
/// # Examples
///
/// ```
/// use edf_analysis::sensitivity::wcet_slack;
/// use edf_analysis::tests::ProcessorDemandTest;
/// use edf_model::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let ts = TaskSet::from_tasks(vec![
///     Task::new(Time::new(2), Time::new(10), Time::new(10))?,
///     Task::new(Time::new(2), Time::new(20), Time::new(20))?,
/// ]);
/// // Task 0 can grow by 7 ticks (to C=9): U becomes 1.0.
/// assert_eq!(wcet_slack(&ts, 0, &ProcessorDemandTest::new()), Some(Time::new(7)));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn wcet_slack(
    task_set: &TaskSet,
    task_index: usize,
    test: &dyn FeasibilityTest,
) -> Option<Time> {
    wcet_slack_workload(task_set, task_index, test)
}

/// [`wcet_slack`] for any demand-characterized workload: the slack of the
/// demand component at `component_index` (for a [`TaskSet`] the component
/// order is the task order, so this strictly generalizes the task entry
/// point).  Periodic components are capped at their period; one-shot
/// components at their relative deadline.
///
/// The probes perturb the single component in place through a
/// [`ScaledView`] — no task-set rebuild, no re-preparation.
///
/// # Examples
///
/// ```
/// use edf_analysis::sensitivity::wcet_slack_workload;
/// use edf_analysis::tests::ProcessorDemandTest;
/// use edf_model::{EventStream, EventStreamTask, Time};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let burst = EventStreamTask::new(
///     EventStream::bursty(2, Time::new(10), Time::new(100)),
///     Time::new(5),
///     Time::new(40),
/// )?;
/// // How much the cost of the first burst event could grow: the slack of
/// // component 0 of the stream's decomposition.
/// let slack = wcet_slack_workload(&burst, 0, &ProcessorDemandTest::new());
/// assert!(slack.expect("feasible stream") > Time::ZERO);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn wcet_slack_workload(
    workload: &(impl Workload + ?Sized),
    component_index: usize,
    test: &dyn FeasibilityTest,
) -> Option<Time> {
    wcet_slack_prepared(&PreparedWorkload::new(workload), component_index, test)
}

/// [`wcet_slack_workload`] for callers that already hold a prepared
/// workload.
#[must_use]
pub fn wcet_slack_prepared(
    base: &PreparedWorkload,
    component_index: usize,
    test: &dyn FeasibilityTest,
) -> Option<Time> {
    if component_index >= base.components().len() {
        return None;
    }
    let mut scratch = AnalysisScratch::new();
    if !test
        .analyze_prepared_with(base, &mut scratch)
        .verdict
        .is_feasible()
    {
        return None;
    }
    let mut view = ScaledView::new(base);
    Some(wcet_slack_with_view(
        &mut view,
        component_index,
        test,
        &mut scratch,
    ))
}

/// The slack binary search on an existing view; the callers guarantee
/// that the index is in range and the base workload is accepted by
/// `test`.
fn wcet_slack_with_view(
    view: &mut ScaledView<'_>,
    component_index: usize,
    test: &dyn FeasibilityTest,
    scratch: &mut AnalysisScratch,
) -> Time {
    let component = view.base().components()[component_index];
    let headroom = component_headroom(&component);
    if headroom.is_zero() {
        return Time::ZERO;
    }
    let slack = slack_search(headroom.as_u64(), |extra| {
        view.with_component_wcet(component_index, component.wcet() + Time::new(extra));
        test.analyze_view_with(&mut *view, scratch)
            .verdict
            .is_feasible()
    });
    Time::new(slack)
}

/// How far a component's cost can grow at all: up to the period for
/// periodic components (beyond it even an otherwise empty processor is
/// overloaded), up to the relative deadline for one-shots (a single job
/// cannot finish past its own deadline).
fn component_headroom(component: &DemandComponent) -> Time {
    match component.period() {
        Some(period) => period.saturating_sub(component.wcet()),
        None => component
            .first_deadline()
            .saturating_sub(component.release_offset())
            .saturating_sub(component.wcet()),
    }
}

/// The full sensitivity picture of one workload: its breakdown scaling and
/// the per-component WCET slacks.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityReport {
    /// Result of the breakdown-scaling search (`None` when the workload is
    /// empty or not accepted by the test as given).
    pub breakdown: Option<BreakdownScaling>,
    /// [`wcet_slack_workload`] of every demand component, in component
    /// order (all `None` when the unscaled workload is not accepted).
    pub component_slack: Vec<Option<Time>>,
}

/// The sensitivity report of a single workload: breakdown scaling plus
/// every component slack, all through **one** prepared base and **one**
/// incremental view.
#[must_use]
pub fn sensitivity_report(
    workload: &(impl Workload + ?Sized),
    test: &dyn FeasibilityTest,
) -> SensitivityReport {
    let base = PreparedWorkload::new(workload);
    if base.is_empty() {
        return SensitivityReport {
            breakdown: None,
            component_slack: Vec::new(),
        };
    }
    // The slack searches are gated on the *unscaled* base, not on the
    // breakdown result: the breakdown's first probe clamps costs to the
    // period, so for degenerate components (wcet > period) the two can
    // differ and the per-component contract is the base acceptance.
    // One scratch arena serves the whole report.
    let mut scratch = AnalysisScratch::new();
    let base_accepted = test
        .analyze_prepared_with(&base, &mut scratch)
        .verdict
        .is_feasible();
    let mut view = ScaledView::new(&base);
    let breakdown = breakdown_with_view(&mut view, test, &mut scratch);
    let component_slack = if base_accepted {
        (0..base.components().len())
            .map(|index| Some(wcet_slack_with_view(&mut view, index, test, &mut scratch)))
            .collect()
    } else {
        vec![None; base.components().len()]
    };
    SensitivityReport {
        breakdown,
        component_slack,
    }
}

/// Batch sensitivity: [`sensitivity_report`] for every workload, fanned
/// out across the CPU cores with the same parallel machinery as
/// [`crate::batch::analyze_many`].  `results[i]` belongs to
/// `workloads[i]`.
///
/// # Examples
///
/// ```
/// use edf_analysis::sensitivity::sensitivity_sweep;
/// use edf_analysis::tests::AllApproximatedTest;
/// use edf_model::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let workloads = vec![
///     TaskSet::from_tasks(vec![Task::new(Time::new(1), Time::new(4), Time::new(8))?]),
///     TaskSet::from_tasks(vec![Task::new(Time::new(3), Time::new(5), Time::new(5))?]),
/// ];
/// let reports = sensitivity_sweep(&workloads, &AllApproximatedTest::new());
/// assert_eq!(reports.len(), 2);
/// assert!(reports[0].breakdown.expect("feasible").factor >= 1.0);
/// assert_eq!(reports[0].component_slack.len(), 1);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn sensitivity_sweep<W: Workload + Sync>(
    workloads: &[W],
    test: &(dyn FeasibilityTest + Sync),
) -> Vec<SensitivityReport> {
    parallel_map(workloads, |workload| sensitivity_report(workload, test))
}

pub mod reference {
    //! From-scratch reference implementations of the sensitivity searches.
    //!
    //! These reproduce the pre-incremental behaviour faithfully: the
    //! workload is re-prepared at every probe and the §4.3 bounds are
    //! derived by the cold (unseeded) searches of
    //! [`FeasibilityBounds::for_components_cold`](crate::bounds::FeasibilityBounds::for_components_cold).
    //! They exist for two reasons: the property tests prove the
    //! incremental searches **bit-identical** to them
    //! (`crates/core/tests/incremental_equivalence.rs`), and the
    //! `sensitivity` benchmark measures the incremental engine's speedup
    //! against them.  Use the functions of [`the parent
    //! module`](crate::sensitivity) for real work.

    use super::{
        breakdown_search, component_headroom, slack_search, BreakdownScaling, DemandComponent,
        FeasibilityTest, PreparedWorkload, Time, Workload, SCALE_DENOMINATOR,
    };

    /// Runs `test` on a freshly prepared probe, paying the pre-incremental
    /// preparation cost (cold bounds whenever a test would read them).
    fn analyze_cold(test: &dyn FeasibilityTest, prepared: &PreparedWorkload) -> bool {
        if !prepared.is_empty() && !prepared.utilization_exceeds_one() {
            prepared.prime_cold_bounds();
        }
        test.analyze_prepared(prepared).verdict.is_feasible()
    }

    /// [`breakdown_scaling_workload`](super::breakdown_scaling_workload),
    /// re-preparing the scaled workload at every probe.
    #[must_use]
    pub fn breakdown_scaling_workload(
        workload: &(impl Workload + ?Sized),
        test: &dyn FeasibilityTest,
    ) -> Option<BreakdownScaling> {
        let base = PreparedWorkload::new(workload);
        if base.is_empty() {
            return None;
        }
        let mut probes = 0u32;
        let lo = breakdown_search(|numer| {
            probes += 1;
            analyze_cold(test, &base.with_scaled_wcets(numer, SCALE_DENOMINATOR))
        })?;
        Some(BreakdownScaling {
            factor: lo as f64 / SCALE_DENOMINATOR as f64,
            utilization_at_breakdown: base.with_scaled_wcets(lo, SCALE_DENOMINATOR).utilization(),
            probes,
        })
    }

    /// [`wcet_slack_workload`](super::wcet_slack_workload), rebuilding and
    /// re-preparing the perturbed component list at every probe.
    #[must_use]
    pub fn wcet_slack_workload(
        workload: &(impl Workload + ?Sized),
        component_index: usize,
        test: &dyn FeasibilityTest,
    ) -> Option<Time> {
        let base = PreparedWorkload::new(workload);
        let component = *base.components().get(component_index)?;
        if !test.analyze_prepared(&base).verdict.is_feasible() {
            return None;
        }
        let headroom = component_headroom(&component);
        if headroom.is_zero() {
            return Some(Time::ZERO);
        }
        let probe = |extra: Time| -> PreparedWorkload {
            let mut components: Vec<DemandComponent> = base.components().to_vec();
            components[component_index].set_wcet(component.clamp_wcet(component.wcet() + extra));
            PreparedWorkload::from_parts(
                components,
                base.task_count(),
                base.demand_is_exact(),
                base.utilization_is_exact(),
            )
        };
        let slack = slack_search(headroom.as_u64(), |extra| {
            analyze_cold(test, &probe(Time::new(extra)))
        });
        Some(Time::new(slack))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::ProcessorDemandTest;
    use crate::workload::MixedSystem;
    use edf_model::{EventStream, EventStreamTask, Task};

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    #[test]
    fn breakdown_of_implicit_deadline_set_reaches_full_utilization() {
        // U = 0.5: the breakdown factor should be ~2.0 (U -> 1.0).
        let ts = TaskSet::from_tasks(vec![t(1, 4, 4), t(1, 4, 4)]);
        let breakdown = breakdown_scaling_exact(&ts).expect("feasible");
        assert!(
            (breakdown.factor - 2.0).abs() < 0.01,
            "factor {}",
            breakdown.factor
        );
        assert!(breakdown.utilization_at_breakdown > 0.99);
        assert!(breakdown.probes > 0);
    }

    #[test]
    fn breakdown_of_constrained_set_stops_before_full_utilization() {
        let ts = TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]);
        let breakdown = breakdown_scaling_exact(&ts).expect("feasible");
        // Already tight: dbf(3) = 3 means scaling beyond ~1.0 is impossible.
        assert!(breakdown.factor >= 1.0);
        assert!(breakdown.factor < 1.2);
    }

    #[test]
    fn infeasible_sets_have_no_breakdown() {
        let ts = TaskSet::from_tasks(vec![t(5, 3, 10)]);
        assert_eq!(breakdown_scaling_exact(&ts), None);
        assert_eq!(
            breakdown_scaling(&TaskSet::new(), &AllApproximatedTest::new()),
            None
        );
    }

    #[test]
    fn breakdown_agrees_between_exact_tests() {
        let ts = TaskSet::from_tasks(vec![t(2, 7, 10), t(3, 15, 25), t(5, 40, 50)]);
        let a = breakdown_scaling(&ts, &AllApproximatedTest::new()).unwrap();
        let b = breakdown_scaling(&ts, &ProcessorDemandTest::new()).unwrap();
        assert!((a.factor - b.factor).abs() < 1e-9);
    }

    #[test]
    fn wcet_slack_matches_hand_computation() {
        let ts = TaskSet::from_tasks(vec![t(2, 10, 10), t(2, 20, 20)]);
        // U = 0.2 + 0.1; task 0 can grow to C = 9 (U = 1.0).
        assert_eq!(
            wcet_slack(&ts, 0, &ProcessorDemandTest::new()),
            Some(Time::new(7))
        );
        // Task 1 can grow to C = 16 (U = 0.2 + 0.8).
        assert_eq!(
            wcet_slack(&ts, 1, &ProcessorDemandTest::new()),
            Some(Time::new(14))
        );
    }

    #[test]
    fn wcet_slack_edge_cases() {
        let ts = TaskSet::from_tasks(vec![t(2, 10, 10), t(2, 20, 20)]);
        assert_eq!(wcet_slack(&ts, 5, &ProcessorDemandTest::new()), None);
        let infeasible = TaskSet::from_tasks(vec![t(5, 3, 10)]);
        assert_eq!(
            wcet_slack(&infeasible, 0, &ProcessorDemandTest::new()),
            None
        );
        // A task already at C == T has zero slack.
        let saturated = TaskSet::from_tasks(vec![t(10, 10, 10)]);
        assert_eq!(
            wcet_slack(&saturated, 0, &ProcessorDemandTest::new()),
            Some(Time::ZERO)
        );
    }

    #[test]
    fn wcet_slack_respects_constrained_deadlines() {
        let ts = TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10)]);
        // dbf(3) = C1 + C2 must stay <= 3, so task 1 has no room at all
        // even though utilization is far below 1.
        assert_eq!(
            wcet_slack(&ts, 1, &ProcessorDemandTest::new()),
            Some(Time::ZERO)
        );
        // Task 0 likewise: growing it to 2 would give dbf(2) = 2 <= 2 (ok)
        // but dbf(3) = 4 > 3, so its slack is also 0.
        assert_eq!(
            wcet_slack(&ts, 0, &ProcessorDemandTest::new()),
            Some(Time::ZERO)
        );
    }

    fn mixed_sample() -> MixedSystem {
        MixedSystem::new(
            TaskSet::from_tasks(vec![t(1, 5, 20)]),
            vec![EventStreamTask::new(
                EventStream::bursty(2, Time::new(3), Time::new(50)),
                Time::new(2),
                Time::new(10),
            )
            .expect("valid stream task")],
        )
    }

    #[test]
    fn incremental_searches_match_reference_implementations() {
        let system = mixed_sample();
        let test = AllApproximatedTest::new();
        assert_eq!(
            breakdown_scaling_workload(&system, &test),
            reference::breakdown_scaling_workload(&system, &test)
        );
        let components = PreparedWorkload::new(&system).components().len();
        for index in 0..components {
            assert_eq!(
                wcet_slack_workload(&system, index, &test),
                reference::wcet_slack_workload(&system, index, &test),
                "component {index}"
            );
        }
    }

    #[test]
    fn wcet_slack_workload_generalizes_the_task_entry_point() {
        let ts = TaskSet::from_tasks(vec![t(2, 10, 10), t(2, 20, 20)]);
        let test = ProcessorDemandTest::new();
        for index in 0..ts.len() {
            assert_eq!(
                wcet_slack(&ts, index, &test),
                wcet_slack_workload(&ts, index, &test)
            );
        }
    }

    #[test]
    fn one_shot_component_slack_is_capped_by_the_relative_deadline() {
        // A single one-shot job of cost 2 due at 10: it can grow by 8.
        let components = vec![DemandComponent::one_shot(
            Time::new(2),
            Time::new(10),
            Time::ZERO,
        )];
        let base = PreparedWorkload::from_components(components);
        assert_eq!(
            wcet_slack_prepared(&base, 0, &ProcessorDemandTest::new()),
            Some(Time::new(8))
        );
    }

    #[test]
    fn report_gates_slack_on_the_unscaled_base() {
        // A degenerate component with wcet > period: the base is rejected
        // (U > 1), but the breakdown's first probe clamps the cost to the
        // period and is accepted — the slacks must still be gated on the
        // base, matching the individual `wcet_slack_workload` calls.
        struct Degenerate;
        impl Workload for Degenerate {
            fn demand_components(&self) -> Vec<DemandComponent> {
                vec![DemandComponent::periodic(
                    Time::new(15),
                    Time::new(20),
                    Time::new(10),
                )]
            }
        }
        let test = ProcessorDemandTest::new();
        let report = sensitivity_report(&Degenerate, &test);
        assert!(report.breakdown.is_some(), "clamped probe is accepted");
        assert_eq!(report.component_slack, vec![None]);
        assert_eq!(
            report.component_slack[0],
            wcet_slack_workload(&Degenerate, 0, &test)
        );
    }

    #[test]
    fn sensitivity_sweep_matches_individual_searches() {
        let workloads = vec![
            TaskSet::from_tasks(vec![t(1, 4, 8), t(2, 6, 12)]),
            TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]),
            TaskSet::from_tasks(vec![t(5, 3, 10)]), // infeasible
            TaskSet::new(),                         // empty
        ];
        let test = AllApproximatedTest::new();
        let reports = sensitivity_sweep(&workloads, &test);
        assert_eq!(reports.len(), workloads.len());
        for (workload, report) in workloads.iter().zip(&reports) {
            assert_eq!(
                report.breakdown,
                breakdown_scaling_workload(workload, &test)
            );
            assert_eq!(report.component_slack.len(), workload.len());
            for (index, slack) in report.component_slack.iter().enumerate() {
                assert_eq!(
                    *slack,
                    wcet_slack_workload(workload, index, &test),
                    "component {index}"
                );
            }
        }
        // The infeasible and empty entries are all-None.
        assert_eq!(reports[2].breakdown, None);
        assert!(reports[2].component_slack.iter().all(Option::is_none));
        assert_eq!(reports[3].breakdown, None);
        assert!(reports[3].component_slack.is_empty());
    }
}
