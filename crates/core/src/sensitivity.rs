//! Sensitivity analysis on top of the exact feasibility tests.
//!
//! Once an exact test is cheap (the point of the paper), it becomes
//! practical to answer design-space questions by running it inside a search
//! loop.  This module provides the two most common ones:
//!
//! * [`breakdown_scaling`] — the largest uniform scaling factor that can be
//!   applied to every worst-case execution time while the task set stays
//!   feasible (the classic "breakdown utilization" experiment);
//! * [`wcet_slack`] — how much a *single* task's worst-case execution time
//!   can grow before the set becomes infeasible (per-task robustness
//!   budget).
//!
//! Both searches are exact: they binary-search over integer scalings and
//! re-run an exact feasibility test at every probe.

use edf_model::{Task, TaskSet, Time};

use crate::analysis::FeasibilityTest;
use crate::tests::AllApproximatedTest;
use crate::workload::{PreparedWorkload, Workload};

/// Precision denominator used for scaling factors: factors are expressed in
/// 1/1000 steps (per-mille).
const SCALE_DENOMINATOR: u64 = 1_000;

/// Result of the breakdown-scaling search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakdownScaling {
    /// Largest feasible scaling factor (e.g. `1.25` means every WCET can
    /// grow by 25 %), in steps of 1/1000.
    pub factor: f64,
    /// Utilization of the workload at that scaling.
    pub utilization_at_breakdown: f64,
    /// Number of feasibility-test invocations spent by the search.
    pub probes: u32,
}

/// Finds the largest per-mille scaling of every WCET under which `test`
/// still accepts the task set, searching factors in `[0, 16]` with 1/1000
/// resolution.
///
/// Returns `None` if the set is infeasible as given (factor 1.0), or if the
/// supplied test cannot even accept the unscaled set.
///
/// # Examples
///
/// ```
/// use edf_analysis::sensitivity::breakdown_scaling;
/// use edf_analysis::tests::AllApproximatedTest;
/// use edf_model::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let ts = TaskSet::from_tasks(vec![
///     Task::new(Time::new(1), Time::new(4), Time::new(10))?,
///     Task::new(Time::new(2), Time::new(8), Time::new(10))?,
/// ]);
/// let breakdown = breakdown_scaling(&ts, &AllApproximatedTest::new()).expect("feasible set");
/// assert!(breakdown.factor >= 1.0);
/// assert!(breakdown.utilization_at_breakdown <= 1.0 + 1e-9);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn breakdown_scaling(
    task_set: &TaskSet,
    test: &dyn FeasibilityTest,
) -> Option<BreakdownScaling> {
    breakdown_scaling_workload(task_set, test)
}

/// [`breakdown_scaling`] for any demand-characterized workload — event
/// streams and mixed systems included, since scaling acts on the component
/// decomposition.
///
/// # Examples
///
/// ```
/// use edf_analysis::sensitivity::breakdown_scaling_workload;
/// use edf_analysis::tests::AllApproximatedTest;
/// use edf_analysis::workload::MixedSystem;
/// use edf_model::{EventStream, EventStreamTask, TaskSet, Time};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let burst = EventStreamTask::new(
///     EventStream::bursty(2, Time::new(10), Time::new(100)),
///     Time::new(5),
///     Time::new(40),
/// )?;
/// let system = MixedSystem::new(TaskSet::new(), vec![burst]);
/// let breakdown = breakdown_scaling_workload(&system, &AllApproximatedTest::new())
///     .expect("feasible system");
/// assert!(breakdown.factor >= 1.0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn breakdown_scaling_workload(
    workload: &(impl Workload + ?Sized),
    test: &dyn FeasibilityTest,
) -> Option<BreakdownScaling> {
    let base = PreparedWorkload::new(workload);
    if base.is_empty() {
        return None;
    }
    let mut probes = 0u32;
    let mut accepts = |numer: u64| {
        probes += 1;
        test.analyze_prepared(&base.with_scaled_wcets(numer, SCALE_DENOMINATOR))
            .verdict
            .is_feasible()
    };
    if !accepts(SCALE_DENOMINATOR) {
        return None;
    }
    // Find an upper bound by doubling, capped at 16x.
    let cap = SCALE_DENOMINATOR * 16;
    let mut lo = SCALE_DENOMINATOR;
    let mut hi = SCALE_DENOMINATOR * 2;
    while hi < cap && accepts(hi) {
        lo = hi;
        hi *= 2;
    }
    let mut hi = hi.min(cap);
    // Binary search the last accepted numerator in (lo, hi].
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if accepts(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let breakdown_workload = base.with_scaled_wcets(lo, SCALE_DENOMINATOR);
    Some(BreakdownScaling {
        factor: lo as f64 / SCALE_DENOMINATOR as f64,
        utilization_at_breakdown: breakdown_workload.utilization(),
        probes,
    })
}

/// Convenience wrapper: [`breakdown_scaling`] with the all-approximated
/// exact test.
#[must_use]
pub fn breakdown_scaling_exact(task_set: &TaskSet) -> Option<BreakdownScaling> {
    breakdown_scaling(task_set, &AllApproximatedTest::new())
}

/// The largest additional execution time (in whole ticks) that can be added
/// to the WCET of the task at `task_index` while the set remains accepted
/// by `test`.
///
/// Returns `None` if the index is out of range or the unmodified set is not
/// accepted.  The result is clamped so that the inflated WCET never exceeds
/// the task's period.
///
/// # Examples
///
/// ```
/// use edf_analysis::sensitivity::wcet_slack;
/// use edf_analysis::tests::ProcessorDemandTest;
/// use edf_model::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let ts = TaskSet::from_tasks(vec![
///     Task::new(Time::new(2), Time::new(10), Time::new(10))?,
///     Task::new(Time::new(2), Time::new(20), Time::new(20))?,
/// ]);
/// // Task 0 can grow by 7 ticks (to C=9): U becomes 1.0.
/// assert_eq!(wcet_slack(&ts, 0, &ProcessorDemandTest::new()), Some(Time::new(7)));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn wcet_slack(
    task_set: &TaskSet,
    task_index: usize,
    test: &dyn FeasibilityTest,
) -> Option<Time> {
    let target = task_set.get(task_index)?;
    let headroom = target.period() - target.wcet();
    let with_extra = |extra: Time| -> TaskSet {
        task_set
            .iter()
            .enumerate()
            .map(|(i, task)| {
                if i == task_index {
                    inflate(task, extra)
                } else {
                    task.clone()
                }
            })
            .collect()
    };
    if !test.analyze(task_set).verdict.is_feasible() {
        return None;
    }
    if headroom.is_zero() {
        return Some(Time::ZERO);
    }
    // Binary search the largest feasible extra in [0, headroom].
    let (mut lo, mut hi) = (0u64, headroom.as_u64());
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if test
            .analyze(&with_extra(Time::new(mid)))
            .verdict
            .is_feasible()
        {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Some(Time::new(lo))
}

fn inflate(task: &Task, extra: Time) -> Task {
    let wcet = (task.wcet() + extra).min(task.period());
    Task::new(wcet, task.deadline(), task.period()).expect("inflated WCET stays within the period")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::ProcessorDemandTest;

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    #[test]
    fn breakdown_of_implicit_deadline_set_reaches_full_utilization() {
        // U = 0.5: the breakdown factor should be ~2.0 (U -> 1.0).
        let ts = TaskSet::from_tasks(vec![t(1, 4, 4), t(1, 4, 4)]);
        let breakdown = breakdown_scaling_exact(&ts).expect("feasible");
        assert!(
            (breakdown.factor - 2.0).abs() < 0.01,
            "factor {}",
            breakdown.factor
        );
        assert!(breakdown.utilization_at_breakdown > 0.99);
        assert!(breakdown.probes > 0);
    }

    #[test]
    fn breakdown_of_constrained_set_stops_before_full_utilization() {
        let ts = TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]);
        let breakdown = breakdown_scaling_exact(&ts).expect("feasible");
        // Already tight: dbf(3) = 3 means scaling beyond ~1.0 is impossible.
        assert!(breakdown.factor >= 1.0);
        assert!(breakdown.factor < 1.2);
    }

    #[test]
    fn infeasible_sets_have_no_breakdown() {
        let ts = TaskSet::from_tasks(vec![t(5, 3, 10)]);
        assert_eq!(breakdown_scaling_exact(&ts), None);
        assert_eq!(
            breakdown_scaling(&TaskSet::new(), &AllApproximatedTest::new()),
            None
        );
    }

    #[test]
    fn breakdown_agrees_between_exact_tests() {
        let ts = TaskSet::from_tasks(vec![t(2, 7, 10), t(3, 15, 25), t(5, 40, 50)]);
        let a = breakdown_scaling(&ts, &AllApproximatedTest::new()).unwrap();
        let b = breakdown_scaling(&ts, &ProcessorDemandTest::new()).unwrap();
        assert!((a.factor - b.factor).abs() < 1e-9);
    }

    #[test]
    fn wcet_slack_matches_hand_computation() {
        let ts = TaskSet::from_tasks(vec![t(2, 10, 10), t(2, 20, 20)]);
        // U = 0.2 + 0.1; task 0 can grow to C = 9 (U = 1.0).
        assert_eq!(
            wcet_slack(&ts, 0, &ProcessorDemandTest::new()),
            Some(Time::new(7))
        );
        // Task 1 can grow to C = 16 (U = 0.2 + 0.8).
        assert_eq!(
            wcet_slack(&ts, 1, &ProcessorDemandTest::new()),
            Some(Time::new(14))
        );
    }

    #[test]
    fn wcet_slack_edge_cases() {
        let ts = TaskSet::from_tasks(vec![t(2, 10, 10), t(2, 20, 20)]);
        assert_eq!(wcet_slack(&ts, 5, &ProcessorDemandTest::new()), None);
        let infeasible = TaskSet::from_tasks(vec![t(5, 3, 10)]);
        assert_eq!(
            wcet_slack(&infeasible, 0, &ProcessorDemandTest::new()),
            None
        );
        // A task already at C == T has zero slack.
        let saturated = TaskSet::from_tasks(vec![t(10, 10, 10)]);
        assert_eq!(
            wcet_slack(&saturated, 0, &ProcessorDemandTest::new()),
            Some(Time::ZERO)
        );
    }

    #[test]
    fn wcet_slack_respects_constrained_deadlines() {
        let ts = TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10)]);
        // dbf(3) = C1 + C2 must stay <= 3, so task 1 has no room at all
        // even though utilization is far below 1.
        assert_eq!(
            wcet_slack(&ts, 1, &ProcessorDemandTest::new()),
            Some(Time::ZERO)
        );
        // Task 0 likewise: growing it to 2 would give dbf(2) = 2 <= 2 (ok)
        // but dbf(3) = 4 > 3, so its slack is also 0.
        assert_eq!(
            wcet_slack(&ts, 0, &ProcessorDemandTest::new()),
            Some(Time::ZERO)
        );
    }
}
