//! Common result and reporting types shared by all feasibility tests.
//!
//! Every test in this crate implements [`FeasibilityTest`] and returns an
//! [`Analysis`]: the verdict, the number of examined test intervals (the
//! paper's §5 effort metric), and — when the test found a violation — a
//! [`DemandOverload`] witness identifying the interval whose demand exceeds
//! the capacity.

use core::fmt;

use edf_model::{TaskSet, Time};

use crate::budget::{Progress, ProgressPhase, WorkBudget};
use crate::kernel::AnalysisScratch;
use crate::workload::{PreparedWorkload, Workload};

/// Outcome of a feasibility test.
///
/// Sufficient tests (Liu & Layland, density, Devi, `SuperPos(x)`) can only
/// ever answer [`Verdict::Feasible`] or [`Verdict::Unknown`]; the exact
/// tests (processor demand, QPA, dynamic-error, all-approximated) answer
/// [`Verdict::Feasible`] or [`Verdict::Infeasible`] for every valid input.
///
/// # Examples
///
/// ```
/// use edf_analysis::Verdict;
///
/// assert!(Verdict::Feasible.is_feasible());
/// assert!(!Verdict::Unknown.is_decisive());
/// assert!(Verdict::Infeasible.is_decisive());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Every deadline is guaranteed to be met under preemptive EDF.
    Feasible,
    /// Some synchronous arrival pattern misses a deadline under any
    /// scheduler (EDF is optimal on a uniprocessor).
    Infeasible,
    /// The (sufficient) test could not establish feasibility; the set may
    /// or may not be schedulable.
    Unknown,
}

impl Verdict {
    /// `true` if the verdict is [`Verdict::Feasible`].
    #[must_use]
    pub fn is_feasible(self) -> bool {
        matches!(self, Verdict::Feasible)
    }

    /// `true` if the verdict is [`Verdict::Infeasible`].
    #[must_use]
    pub fn is_infeasible(self) -> bool {
        matches!(self, Verdict::Infeasible)
    }

    /// `true` if the test reached a definitive answer (feasible or
    /// infeasible).
    #[must_use]
    pub fn is_decisive(self) -> bool {
        !matches!(self, Verdict::Unknown)
    }

    /// `true` if the verdict is [`Verdict::Unknown`].
    #[must_use]
    pub fn is_unknown(self) -> bool {
        matches!(self, Verdict::Unknown)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            Verdict::Feasible => "feasible",
            Verdict::Infeasible => "infeasible",
            Verdict::Unknown => "unknown",
        };
        f.write_str(text)
    }
}

/// Witness of a capacity violation: an interval whose cumulated demand
/// exceeds its length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemandOverload {
    /// Interval length at which the violation was established.
    pub interval: Time,
    /// Exact demand `dbf(interval, Γ)` at that interval.
    pub demand: Time,
}

impl fmt::Display for DemandOverload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "demand {} exceeds capacity in interval of length {}",
            self.demand, self.interval
        )
    }
}

/// Full result of running a feasibility test on a task set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// The verdict.
    pub verdict: Verdict,
    /// Number of demand/capacity comparisons performed — the paper's
    /// "iterations" metric (§5).
    pub iterations: u64,
    /// Largest interval examined by the test, if any interval was examined.
    pub max_examined_interval: Option<Time>,
    /// Violation witness, present when the verdict is
    /// [`Verdict::Infeasible`] and the test identifies a concrete interval
    /// (sufficient tests may leave it empty even for `Unknown`).
    pub overload: Option<DemandOverload>,
    /// Present **if and only if** a [`WorkBudget`](crate::budget::WorkBudget)
    /// ran out before the test could finish: the verdict is then an honest
    /// [`Verdict::Unknown`] and this records how far the analysis got
    /// (units spent, phase reached, largest certified interval).  Always
    /// `None` under the default unlimited budget.
    pub progress: Option<Progress>,
}

impl Analysis {
    /// A zero-effort analysis with the given verdict (used for trivial
    /// early exits such as an empty task set or `U > 1`).
    #[must_use]
    pub fn trivial(verdict: Verdict) -> Self {
        Analysis {
            verdict,
            iterations: 0,
            max_examined_interval: None,
            overload: None,
            progress: None,
        }
    }

    /// Convenience accessor mirroring [`Verdict::is_feasible`].
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.verdict.is_feasible()
    }

    /// `true` when this analysis stopped because its
    /// [`WorkBudget`](crate::budget::WorkBudget) ran out (equivalent to
    /// `self.progress.is_some()`).
    #[must_use]
    pub fn budget_exhausted(&self) -> bool {
        self.progress.is_some()
    }
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} after {} iteration(s)", self.verdict, self.iterations)?;
        if let Some(overload) = &self.overload {
            write!(f, " ({overload})")?;
        }
        if let Some(progress) = &self.progress {
            write!(f, " [{progress}]")?;
        }
        Ok(())
    }
}

/// Interface implemented by every feasibility test in this crate.
///
/// Tests consume a [`PreparedWorkload`] — the cached canonical form of any
/// [`Workload`](crate::workload::Workload) — so the same implementations
/// serve sporadic task sets, Gresser event streams and mixed systems.  The
/// convenience entry points [`FeasibilityTest::analyze`] (task sets) and
/// [`FeasibilityTest::analyze_workload`] (any workload) prepare on the
/// fly; batch callers prepare once and use
/// [`FeasibilityTest::analyze_prepared`] directly.
///
/// The trait is object-safe so heterogeneous collections of tests can be
/// iterated by the experiment harness:
///
/// ```
/// use edf_analysis::tests::{DeviTest, ProcessorDemandTest};
/// use edf_analysis::FeasibilityTest;
/// use edf_model::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let ts = TaskSet::from_tasks(vec![Task::new(Time::new(1), Time::new(4), Time::new(8))?]);
/// let suite: Vec<Box<dyn FeasibilityTest>> = vec![
///     Box::new(DeviTest::new()),
///     Box::new(ProcessorDemandTest::new()),
/// ];
/// for test in &suite {
///     assert!(test.analyze(&ts).is_feasible());
/// }
/// # Ok(())
/// # }
/// ```
pub trait FeasibilityTest {
    /// Short human-readable name of the test (used in reports and benches).
    fn name(&self) -> &str;

    /// `true` if the test is exact (necessary and sufficient); `false` for
    /// purely sufficient tests.
    fn is_exact(&self) -> bool;

    /// Runs the test treating the prepared component demand as the true
    /// demand of the workload (the per-test implementation; call
    /// [`FeasibilityTest::analyze_prepared`] or
    /// [`FeasibilityTest::analyze_prepared_with`] instead).
    ///
    /// `scratch` provides the reusable transient buffers (merge state,
    /// pending-interval heaps, approximation terms); a test may ignore it.
    /// The analysis result never depends on the scratch's buffer contents
    /// — the one deliberate exception is the scratch's
    /// [`WorkBudget`](crate::budget::WorkBudget), an explicit input that
    /// can cap the work a budget-aware test performs (see
    /// [`AnalysisScratch::set_budget`]).
    fn analyze_demand(
        &self,
        workload: &PreparedWorkload,
        scratch: &mut AnalysisScratch,
    ) -> Analysis;

    /// Runs the test on a prepared workload with a fresh scratch — see
    /// [`FeasibilityTest::analyze_prepared_with`] for the
    /// allocation-reusing batch entry point (results are identical).
    fn analyze_prepared(&self, workload: &PreparedWorkload) -> Analysis {
        self.analyze_prepared_with(workload, &mut AnalysisScratch::new())
    }

    /// Runs the test on a prepared workload (the core entry point; the
    /// prepared state is shared when several tests analyze one workload,
    /// and the scratch is reused across analyses by the batch front end).
    ///
    /// When the workload's decomposition **over-approximates** its demand
    /// (a conservative arrival-curve mode, the synchronous reduction of an
    /// offset transaction — see
    /// [`PreparedWorkload::demand_is_exact`]), a rejection only means "the
    /// over-approximation does not fit": the workload itself may still be
    /// feasible, so [`Verdict::Infeasible`] is demoted to
    /// [`Verdict::Unknown`] (and the witness dropped — it violates the
    /// over-approximation, not the workload).  Feasible verdicts are sound
    /// either way, and so is a `U > 1` rejection whenever the
    /// decomposition preserves the long-run utilization
    /// ([`PreparedWorkload::utilization_is_exact`]) — that one is kept.
    fn analyze_prepared_with(
        &self,
        workload: &PreparedWorkload,
        scratch: &mut AnalysisScratch,
    ) -> Analysis {
        let analysis = self.analyze_demand(workload, scratch);
        if analysis.verdict == Verdict::Infeasible
            && !workload.demand_is_exact()
            && !(workload.utilization_exceeds_one() && workload.utilization_is_exact())
        {
            return Analysis {
                verdict: Verdict::Unknown,
                overload: None,
                ..analysis
            };
        }
        analysis
    }

    /// Runs the test on a sporadic task set.
    fn analyze(&self, task_set: &TaskSet) -> Analysis {
        self.analyze_prepared(&PreparedWorkload::new(task_set))
    }

    /// Runs the test on any demand-characterized workload (event streams,
    /// mixed systems, custom models).
    fn analyze_workload(&self, workload: &dyn Workload) -> Analysis {
        self.analyze_prepared(&PreparedWorkload::new(workload))
    }

    /// Runs the test on any incremental view of the
    /// [`WorkloadView`](crate::incremental::WorkloadView) family
    /// ([`ScaledView`](crate::incremental::ScaledView),
    /// [`CandidateView`](crate::candidates::CandidateView),
    /// [`EditView`](crate::incremental::EditView)): finalizes pending
    /// mutations and analyzes the prepared state — equivalent to
    /// [`FeasibilityTest::analyze_prepared`] on a cold preparation of the
    /// same components, without the cold preparation.
    fn analyze_view(&self, view: &mut dyn crate::incremental::WorkloadView) -> Analysis {
        self.analyze_prepared(view.finalize())
    }

    /// [`FeasibilityTest::analyze_view`] with a caller-provided scratch
    /// arena — the inner loop of the sensitivity searches, the candidate
    /// sweep and the admission service, which reuse one scratch across
    /// thousands of view analyses.
    fn analyze_view_with(
        &self,
        view: &mut dyn crate::incremental::WorkloadView,
        scratch: &mut AnalysisScratch,
    ) -> Analysis {
        self.analyze_prepared_with(view.finalize(), scratch)
    }
}

/// Mutable counter for the effort metric, shared by the test
/// implementations.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct IterationCounter {
    count: u64,
    max_interval: Option<Time>,
}

impl IterationCounter {
    pub(crate) fn new() -> Self {
        IterationCounter::default()
    }

    /// Records one demand/capacity comparison at `interval`.
    pub(crate) fn record(&mut self, interval: Time) {
        self.count += 1;
        self.max_interval = Some(match self.max_interval {
            Some(current) => current.max(interval),
            None => interval,
        });
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn count(&self) -> u64 {
        self.count
    }

    /// The largest interval examined so far (the demand walk's certified
    /// prefix when every examined comparison was satisfied).
    pub(crate) fn max_interval(&self) -> Option<Time> {
        self.max_interval
    }

    pub(crate) fn finish(self, verdict: Verdict, overload: Option<DemandOverload>) -> Analysis {
        Analysis {
            verdict,
            iterations: self.count,
            max_examined_interval: self.max_interval,
            overload,
            progress: None,
        }
    }

    /// Finishes a budget-exhausted run: an honest [`Verdict::Unknown`]
    /// carrying the [`Progress`] record.  `certified_interval` is the
    /// largest interval the loop *completed* a satisfied comparison for
    /// (not merely examined — a comparison interrupted mid-refinement
    /// certifies nothing).
    pub(crate) fn finish_exhausted(
        self,
        budget: &WorkBudget,
        phase: ProgressPhase,
        certified_interval: Option<Time>,
        bounded_level: Option<u64>,
    ) -> Analysis {
        Analysis {
            verdict: Verdict::Unknown,
            iterations: self.count,
            max_examined_interval: self.max_interval,
            overload: None,
            progress: Some(Progress {
                units_spent: budget.spent(),
                phase,
                certified_interval,
                bounded_level,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_predicates() {
        assert!(Verdict::Feasible.is_feasible());
        assert!(!Verdict::Feasible.is_infeasible());
        assert!(Verdict::Infeasible.is_infeasible());
        assert!(Verdict::Feasible.is_decisive());
        assert!(Verdict::Infeasible.is_decisive());
        assert!(!Verdict::Unknown.is_decisive());
        assert_eq!(Verdict::Feasible.to_string(), "feasible");
        assert_eq!(Verdict::Infeasible.to_string(), "infeasible");
        assert_eq!(Verdict::Unknown.to_string(), "unknown");
    }

    #[test]
    fn analysis_display_and_trivial() {
        let a = Analysis::trivial(Verdict::Feasible);
        assert!(a.is_feasible());
        assert_eq!(a.iterations, 0);
        assert!(a.to_string().contains("feasible"));

        let b = Analysis {
            verdict: Verdict::Infeasible,
            iterations: 3,
            max_examined_interval: Some(Time::new(17)),
            overload: Some(DemandOverload {
                interval: Time::new(17),
                demand: Time::new(20),
            }),
            progress: None,
        };
        let text = b.to_string();
        assert!(text.contains("infeasible"));
        assert!(text.contains("17"));
        assert!(text.contains("20"));
    }

    #[test]
    fn iteration_counter_tracks_count_and_max() {
        let mut c = IterationCounter::new();
        assert_eq!(c.count(), 0);
        c.record(Time::new(5));
        c.record(Time::new(3));
        c.record(Time::new(9));
        assert_eq!(c.count(), 3);
        let analysis = c.finish(Verdict::Feasible, None);
        assert_eq!(analysis.iterations, 3);
        assert_eq!(analysis.max_examined_interval, Some(Time::new(9)));
        assert_eq!(analysis.overload, None);
    }

    #[test]
    fn overload_display() {
        let o = DemandOverload {
            interval: Time::new(10),
            demand: Time::new(12),
        };
        assert!(o.to_string().contains("12"));
    }
}
