//! Parallel batch-analysis front end.
//!
//! Fleet-scale experiments analyze thousands of workloads with a whole
//! suite of tests.  Two structural savings apply:
//!
//! 1. **Prepared-state sharing** — all per-workload state (component
//!    decomposition, exact utilization comparison, §4.3 bounds, deadline
//!    ordering) is computed once per workload via
//!    [`PreparedWorkload`] and shared by every test, instead of being
//!    recomputed inside each test;
//! 2. **Multi-core fan-out** — workloads are independent, so the batch is
//!    split over the available CPU cores with scoped threads
//!    ([`parallel_map`], generalized from the experiment harness's former
//!    private pool).
//!
//! [`analyze_many`] combines both; [`analyze_many_serial`] is the
//! single-threaded reference (used by the benchmarks to measure the
//! speedup).  The same fan-out serves the sensitivity searches:
//! [`crate::sensitivity::sensitivity_sweep`] runs breakdown-scaling and
//! WCET-slack searches over a workload batch through [`parallel_map`].
//!
//! # Examples
//!
//! ```
//! use edf_analysis::batch;
//! use edf_model::{Task, TaskSet, Time};
//!
//! # fn main() -> Result<(), edf_model::TaskError> {
//! let workloads = vec![
//!     TaskSet::from_tasks(vec![Task::new(Time::new(1), Time::new(8), Time::new(8))?]),
//!     TaskSet::from_tasks(vec![Task::new(Time::new(3), Time::new(5), Time::new(5))?]),
//! ];
//! let tests = edf_analysis::all_tests();
//! let results = batch::analyze_many(&workloads, &tests);
//! assert_eq!(results.len(), workloads.len());
//! assert_eq!(results[0].len(), tests.len());
//! assert!(results[0].iter().all(|a| a.verdict.is_feasible()));
//! # Ok(())
//! # }
//! ```

use std::num::NonZeroUsize;
use std::thread;

use crate::analysis::{Analysis, FeasibilityTest};
use crate::budget::WorkBudget;
use crate::kernel::AnalysisScratch;
use crate::workload::{PreparedWorkload, Workload};

/// The boxed test type the batch front end consumes (also produced by
/// [`all_tests`](crate::all_tests)).
pub type BoxedTest = Box<dyn FeasibilityTest + Send + Sync>;

/// Applies `f` to every item of `items`, splitting the work over the
/// available CPU cores with scoped threads.  Result order matches input
/// order.
///
/// Falls back to a sequential map for tiny inputs.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, || (), |(), item| f(item))
}

/// [`parallel_map`] with **per-worker mutable state**: `init` builds one
/// state per worker thread (and one for the sequential fallback), and `f`
/// receives it alongside each item.  This is how the analysis front ends
/// thread one [`AnalysisScratch`] arena (and one recycled preparation)
/// through each worker, so a batch of any size performs a constant number
/// of allocations per worker instead of per workload.
pub fn parallel_map_with<T, R, S, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let workers = thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len().max(1));
    if workers <= 1 || items.len() < 4 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let chunk_size = items.len().div_ceil(workers);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let chunks: Vec<(usize, &[T])> = items
        .chunks(chunk_size)
        .enumerate()
        .map(|(i, chunk)| (i * chunk_size, chunk))
        .collect();
    let slots = std::sync::Mutex::new(&mut results);
    thread::scope(|scope| {
        for (offset, chunk) in chunks {
            let init = &init;
            let f = &f;
            let slots = &slots;
            scope.spawn(move || {
                let mut state = init();
                let local: Vec<R> = chunk.iter().map(|item| f(&mut state, item)).collect();
                let mut guard = slots.lock().expect("no poisoned lock");
                for (i, value) in local.into_iter().enumerate() {
                    guard[offset + i] = Some(value);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("every slot filled by a worker"))
        .collect()
}

/// Per-worker reusable state of the analysis front ends: one scratch
/// arena plus one recycled [`PreparedWorkload`] whose buffers serve every
/// workload the worker processes.
#[derive(Debug, Default)]
struct WorkerState {
    scratch: AnalysisScratch,
    prepared: Option<PreparedWorkload>,
}

impl WorkerState {
    /// Prepares `workload` (recycling the previous preparation's buffers)
    /// and runs the whole suite over it with the reused scratch.
    fn analyze<W: Workload + ?Sized>(
        &mut self,
        workload: &W,
        tests: &[BoxedTest],
    ) -> Vec<Analysis> {
        self.analyze_budgeted(workload, tests, None)
    }

    /// [`WorkerState::analyze`] with an optional **per-workload** work
    /// budget: each workload starts from a fresh allowance of `units`
    /// work units, shared by every test of the suite in order.  Seeding
    /// per workload (not per batch) is what makes batched exhaustion
    /// identical to sequential exhaustion — no worker races another for
    /// a shared pool.
    fn analyze_budgeted<W: Workload + ?Sized>(
        &mut self,
        workload: &W,
        tests: &[BoxedTest],
        units: Option<u64>,
    ) -> Vec<Analysis> {
        let prepared = match self.prepared.take() {
            Some(slot) => slot.recycled(workload),
            None => PreparedWorkload::new(workload),
        };
        if let Some(units) = units {
            self.scratch.set_budget(WorkBudget::limited(units));
        }
        let results = tests
            .iter()
            .map(|test| test.analyze_prepared_with(&prepared, &mut self.scratch))
            .collect();
        if units.is_some() {
            let _ = self.scratch.take_budget();
        }
        self.prepared = Some(prepared);
        results
    }
}

/// Prepares every workload in parallel (decomposition, exact utilization,
/// lazy bounds), preserving order.
#[must_use]
pub fn prepare_many<W: Workload + Sync>(workloads: &[W]) -> Vec<PreparedWorkload> {
    parallel_map(workloads, |w| PreparedWorkload::new(w))
}

/// Runs every test on every workload, fanning the workloads out across the
/// CPU cores.  `results[i][j]` is the analysis of `workloads[i]` by
/// `tests[j]`; each workload is prepared exactly once and shared by all
/// tests, and each worker reuses one scratch arena and one recycled
/// preparation, so the steady state performs **zero transient allocations
/// per workload**.
#[must_use]
pub fn analyze_many<W: Workload + Sync>(
    workloads: &[W],
    tests: &[BoxedTest],
) -> Vec<Vec<Analysis>> {
    parallel_map_with(workloads, WorkerState::default, |state, workload| {
        state.analyze(workload, tests)
    })
}

/// Single-threaded [`analyze_many`] (the baseline the benchmarks compare
/// the parallel fan-out against; prepared-state sharing and the
/// allocation-free scratch reuse still apply).
#[must_use]
pub fn analyze_many_serial<W: Workload>(
    workloads: &[W],
    tests: &[BoxedTest],
) -> Vec<Vec<Analysis>> {
    let mut state = WorkerState::default();
    workloads
        .iter()
        .map(|workload| state.analyze(workload, tests))
        .collect()
}

/// [`analyze_many`] under **per-workload** [`WorkBudget`]s: every workload
/// starts from its own fresh allowance of `units` deterministic work
/// units, shared by the tests of the suite in order; a workload whose
/// allowance runs out answers an honest [`Verdict::Unknown`](crate::Verdict::Unknown) carrying a
/// [`Progress`](crate::budget::Progress) record.  Because the allowance
/// is seeded per workload, the results — exhaustion points included — are
/// **identical** to [`analyze_many_serial_budgeted`] on the same inputs,
/// regardless of how the batch is split over workers (pinned by the
/// `budget_exhaustion` property suite).
#[must_use]
pub fn analyze_many_budgeted<W: Workload + Sync>(
    workloads: &[W],
    tests: &[BoxedTest],
    units: u64,
) -> Vec<Vec<Analysis>> {
    parallel_map_with(workloads, WorkerState::default, |state, workload| {
        state.analyze_budgeted(workload, tests, Some(units))
    })
}

/// Single-threaded [`analyze_many_budgeted`]; bit-identical results.
#[must_use]
pub fn analyze_many_serial_budgeted<W: Workload>(
    workloads: &[W],
    tests: &[BoxedTest],
    units: u64,
) -> Vec<Vec<Analysis>> {
    let mut state = WorkerState::default();
    workloads
        .iter()
        .map(|workload| state.analyze_budgeted(workload, tests, Some(units)))
        .collect()
}

/// Runs every prepared workload through every test, in parallel — the
/// variant for callers that already hold prepared workloads (e.g. to run
/// several suites over one preparation).  One scratch arena per worker.
///
/// Generic over ownership: accepts owned preparations
/// (`&[PreparedWorkload]`) as well as borrowed ones
/// (`&[&PreparedWorkload]`) — the admission service batches what-if
/// requests by collecting one borrowed preparation per tenant view
/// without cloning any of them.
#[must_use]
pub fn analyze_many_prepared<P>(workloads: &[P], tests: &[BoxedTest]) -> Vec<Vec<Analysis>>
where
    P: std::borrow::Borrow<PreparedWorkload> + Sync,
{
    parallel_map_with(workloads, AnalysisScratch::new, |scratch, prepared| {
        let prepared = prepared.borrow();
        tests
            .iter()
            .map(|test| test.analyze_prepared_with(prepared, scratch))
            .collect()
    })
}

/// [`analyze_many_prepared`] with one **caller-owned** [`WorkBudget`] per
/// workload: item `i` runs its whole suite against `budgets[i]`, and the
/// budget — charges included — is written back, so a caller can meter
/// *several successive calls* (an escalation ladder, say) against one
/// per-item allowance.  Per-item budgets make exhaustion independent of
/// the worker split: the results equal a sequential loop over the items.
///
/// # Panics
///
/// Panics when `budgets.len() != workloads.len()`.
pub fn analyze_many_prepared_budgeted<P>(
    workloads: &[P],
    tests: &[BoxedTest],
    budgets: &mut [WorkBudget],
) -> Vec<Vec<Analysis>>
where
    P: std::borrow::Borrow<PreparedWorkload> + Sync,
{
    assert_eq!(
        workloads.len(),
        budgets.len(),
        "one budget per prepared workload"
    );
    let pairs: Vec<(&P, WorkBudget)> = workloads.iter().zip(budgets.iter().copied()).collect();
    let results = parallel_map_with(
        &pairs,
        AnalysisScratch::new,
        |scratch, &(prepared, budget)| {
            scratch.set_budget(budget);
            let analyses: Vec<Analysis> = tests
                .iter()
                .map(|test| test.analyze_prepared_with(prepared.borrow(), scratch))
                .collect();
            (analyses, scratch.take_budget())
        },
    );
    results
        .into_iter()
        .zip(budgets.iter_mut())
        .map(|((analyses, spent), slot)| {
            *slot = spent;
            analyses
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::{DeviTest, ProcessorDemandTest, QpaTest};
    use edf_model::{Task, TaskSet};

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    fn suite() -> Vec<BoxedTest> {
        vec![
            Box::new(DeviTest::new()),
            Box::new(ProcessorDemandTest::new()),
            Box::new(QpaTest::new()),
        ]
    }

    fn sample_sets() -> Vec<TaskSet> {
        vec![
            TaskSet::from_tasks(vec![t(1, 4, 8), t(2, 6, 12)]),
            TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]),
            TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]),
            TaskSet::from_tasks(vec![t(1, 2, 2), t(2, 4, 4)]),
            TaskSet::from_tasks(vec![t(5, 3, 10)]),
        ]
    }

    #[test]
    fn parallel_map_preserves_order_and_values() {
        let items: Vec<u64> = (0..1_000).collect();
        let doubled = parallel_map(&items, |&x| x * 2);
        assert_eq!(doubled.len(), items.len());
        for (i, value) in doubled.iter().enumerate() {
            assert_eq!(*value, items[i] * 2);
        }
    }

    #[test]
    fn parallel_map_small_inputs() {
        assert_eq!(parallel_map(&[1, 2, 3], |&x| x + 1), vec![2, 3, 4]);
        assert_eq!(parallel_map::<u32, u32, _>(&[], |&x| x), Vec::<u32>::new());
    }

    #[test]
    fn analyze_many_matches_individual_analyze_calls() {
        let workloads = sample_sets();
        let tests = suite();
        let batch = analyze_many(&workloads, &tests);
        assert_eq!(batch.len(), workloads.len());
        for (i, ts) in workloads.iter().enumerate() {
            assert_eq!(batch[i].len(), tests.len());
            for (j, test) in tests.iter().enumerate() {
                assert_eq!(batch[i][j], test.analyze(ts), "workload {i}, test {j}");
            }
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let workloads = sample_sets();
        let tests = suite();
        assert_eq!(
            analyze_many(&workloads, &tests),
            analyze_many_serial(&workloads, &tests)
        );
    }

    #[test]
    fn prepared_variant_agrees() {
        let workloads = sample_sets();
        let tests = suite();
        let prepared = prepare_many(&workloads);
        assert_eq!(
            analyze_many_prepared(&prepared, &tests),
            analyze_many(&workloads, &tests)
        );
    }

    #[test]
    fn empty_inputs() {
        let tests = suite();
        assert!(analyze_many::<TaskSet>(&[], &tests).is_empty());
        assert!(analyze_many_serial::<TaskSet>(&[], &tests).is_empty());
        assert!(prepare_many::<TaskSet>(&[]).is_empty());
        let workloads = sample_sets();
        let none: Vec<BoxedTest> = Vec::new();
        let results = analyze_many(&workloads, &none);
        assert_eq!(results.len(), workloads.len());
        assert!(results.iter().all(Vec::is_empty));
    }

    #[test]
    fn single_element_batch() {
        let workloads = vec![sample_sets().remove(0)];
        let tests = suite();
        let batch = analyze_many(&workloads, &tests);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].len(), tests.len());
        assert_eq!(batch, analyze_many_serial(&workloads, &tests));
        for (j, test) in tests.iter().enumerate() {
            assert_eq!(batch[0][j], test.analyze(&workloads[0]));
        }
    }

    #[test]
    fn mixed_family_batch() {
        use edf_model::{ArrivalCurve, ArrivalCurveTask, EventStream, EventStreamTask, Time};

        let sporadic = TaskSet::from_tasks(vec![t(1, 4, 8), t(2, 6, 12)]);
        let stream = EventStreamTask::new(
            EventStream::bursty(3, Time::new(5), Time::new(100)),
            Time::new(4),
            Time::new(20),
        )
        .unwrap();
        let curve = ArrivalCurveTask::new(
            ArrivalCurve::from_event_stream(stream.stream()),
            Time::new(4),
            Time::new(20),
        )
        .unwrap();
        let workloads: Vec<Box<dyn Workload + Send + Sync>> = vec![
            Box::new(sporadic.clone()),
            Box::new(stream.clone()),
            Box::new(curve),
        ];
        let tests = suite();
        let batch = analyze_many(&workloads, &tests);
        assert_eq!(batch.len(), 3);
        for (j, test) in tests.iter().enumerate() {
            assert_eq!(batch[0][j], test.analyze(&sporadic));
            assert_eq!(batch[1][j], test.analyze_workload(&stream));
            // The arrival-curve twin of the stream gets identical results.
            assert_eq!(batch[2][j], batch[1][j]);
        }
    }
}
