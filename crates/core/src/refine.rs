//! The shared refinement engine of the two refining feasibility tests —
//! the dynamic-error test (§4.1) and the all-approximated test (§4.2).
//!
//! Both tests share the same skeleton: pop the next pending exact test
//! interval, account the owning component's newly examined job, compare
//! the approximated demand against the interval's capacity, and refine
//! (withdraw approximations) until the comparison succeeds or turns fully
//! exact.  The PR 6 profile showed that this *bookkeeping* — not demand
//! evaluation — dominates the exact suite's wall clock, so the engine
//! restructures it three ways while keeping every observable output
//! **bit-identical** to the retained [`mod@reference`] implementation
//! (verdict, overload witness and iteration counts, pinned by the
//! `refine_equivalence` proptests):
//!
//! 1. **Incremental comparison aggregates.**  The running `Σ dbf(Imⱼ)` of
//!    live approximation terms is maintained exactly in `u128` on term
//!    push / swap-remove (like `exact_sum` already was), so a comparison
//!    no longer re-sums every term's base.  On top of it, incrementally
//!    maintained `f64` slope/offset aggregates give a proven-margin
//!    *screen* (below) that answers clearly-within / clearly-violating
//!    comparisons without walking the terms at all.
//! 2. **Flat frontier queue.**  The `BinaryHeap` of pending intervals is
//!    replaced by `kernel::FrontierQueue`, a tournament tree in the
//!    scratch arena with one slot per component (the refining tests keep
//!    at most one pending interval per component).  Next deadlines are
//!    stepped with the kernel's cached period `arith::Reciprocal`s
//!    instead of `next_deadline_after`'s per-pop hardware division.
//! 3. **Batched withdrawal passes.**  The dynamic-error level-raise scan
//!    runs over the engine's compact live-term list instead of all
//!    component states, collects the whole pass, and then applies it in
//!    ascending component order (reproducing the reference's interleaved
//!    loop bit for bit) with one `component_demand` gather per withdrawal.
//!
//! # Soundness of the screened comparison
//!
//! After the integer base comparison, the exact decision is whether the
//! rational sum `V = Σⱼ Cⱼ·(I − Imⱼ)/Tⱼ` over the live terms satisfies
//! `V ≤ slack` (with `slack = I − base ≤ I ≤ H`, the analysis horizon).
//! The screen estimates `V` as `est = S·I − K` from two running `f64`
//! aggregates
//!
//! ```text
//! S = Σⱼ rate(j)          rate(j) = wcet(j) / period(j)   (one f64 division)
//! K = Σⱼ rate(j)·Im(j)
//! ```
//!
//! and answers `Some(true)` iff `est + margin ≤ slack`, `Some(false)` iff
//! `est − margin > slack`, and `None` (fall through to the exact rational
//! walk) otherwise.  The margin is `(16·ops + 64)·2⁻⁵³·H`, where `ops`
//! counts every aggregate update (term push or removal) since the
//! analysis started.  It dominates the accumulated floating-point error:
//!
//! * The engine only runs after the exact rational utilization check, so
//!   `Σ rate(j) ≤ 1` over **all** components, hence each `rate(j) ≤ 1`
//!   and `S ≤ 1` up to rounding.  Each computed `rate(j)` carries at most
//!   three roundings (two `u64 → f64` conversions and one division), i.e.
//!   a relative error `≤ 4·2⁻⁵³`.
//! * Terms are compared only at `I ≥ Im(j)`, and `Im(j) ≤ H`, so every
//!   product `rate(j)·Im(j) ≤ H` and the true `K ≤ (Σ rate(j))·H ≤ H`.
//!   One push adds `≤ 6·2⁻⁵³·H` of absolute error to `K` (rate error,
//!   `Im` conversion, product and accumulation roundings) and `≤ 5·2⁻⁵³`
//!   to `S`.
//! * A removal recomputes the *identical* `f64` contribution from the
//!   same inputs (floating-point arithmetic is deterministic), so the
//!   incremental subtraction cancels the pushed value exactly, leaving
//!   only the subtraction rounding: `≤ 2⁻⁵³·H` per removal for `K`,
//!   `≤ 2⁻⁵³` for `S`.
//! * At the comparison, `est = S·I − K` adds the `I` conversion, one
//!   product and one subtraction (each `≤ 2⁻⁵³·H` absolute, using
//!   `S ≤ 1 + ε` and `I ≤ H`), and `slack` converts to `f64` with
//!   `≤ 2⁻⁵³·H` absolute error.
//!
//! Summing: `|est − V| ≤ (6·ops + 8)·2⁻⁵³·H` — the margin keeps more than
//! a 2× headroom on every term.  A `Some(true)`/`Some(false)` answer is
//! therefore mathematically certain, and an uncertain comparison falls
//! through to the exact walk — the screen can skip work, never flip a
//! comparison.
//!
//! One documented corner keeps the screen from being *literally* the
//! reference decision procedure: [`fracs_parts_le_integer_iter`]'s exact
//! accumulator can overflow `u128` when the live terms' periods are
//! coprime with a product beyond `2¹²⁸`, in which case the reference
//! answers conservatively (`false` unless the value is at least `1e-6`
//! below the slack).  A screen answer of `Some(true)` in that corner
//! would diverge.  Reaching it needs both the astronomical periods *and*
//! a value within the screen margin of the capacity; no finite workload
//! family in the test generators (periods far below `2⁶⁴`) can construct
//! it, and the ±1e-3 float screen inside the exact walk has carried the
//! same corner since it was introduced.
//!
//! [`fracs_parts_le_integer_iter`]: crate::arith

use edf_model::Time;

use crate::analysis::{Analysis, DemandOverload, IterationCounter, Verdict};
use crate::arith::{fracs_parts_le_integer_iter, Reciprocal};
use crate::budget::ProgressPhase;
use crate::kernel::{AnalysisScratch, FrontierQueue, RefinementState};
use crate::superposition::ApproxTerm;
use crate::tests::{AllApproximatedTest, DynamicErrorTest, RevisionOrder};
use crate::workload::{DemandComponent, PreparedWorkload};

/// One unit in the last place of the `f64` mantissa: `2⁻⁵³`.
const EPS: f64 = 1.0 / 9_007_199_254_740_992.0;

/// The `f64` contribution of one approximation term to the screen
/// aggregates: `(rate, rate·Im)` with `rate = C/T`.
///
/// Push and removal both call this helper on the same stored term, so the
/// computed values are bit-identical and the incremental subtraction
/// cancels the addition exactly (up to one rounding, covered by the
/// margin).
#[inline]
fn term_rates(term: &ApproxTerm) -> (f64, f64) {
    let rate = term.wcet.as_f64() / term.period.as_f64();
    (rate, rate * term.im.as_f64())
}

/// The shared mutable state of one refining analysis, borrowed from the
/// [`AnalysisScratch`] arena — both drivers run allocation-free after
/// warm-up.
struct Engine<'a> {
    workload: &'a PreparedWorkload,
    components: &'a [DemandComponent],
    horizon: Time,
    states: &'a mut Vec<RefinementState>,
    frontier: &'a mut FrontierQueue,
    terms: &'a mut Vec<ApproxTerm>,
    owners: &'a mut Vec<u32>,
    withdrawn: &'a mut Vec<u32>,
    rcp: &'a mut Vec<Option<Reciprocal>>,
    /// Running `Σ examined_demand` over the unapproximated components,
    /// exact in `u128` (clamped to the `Time` range only at comparisons).
    exact_sum: u128,
    /// Running `Σ dbf(Imⱼ)` over the live approximation terms, exact in
    /// `u128` — the incremental replacement of the per-comparison base
    /// re-summation.
    base_sum: u128,
    /// Screen aggregate `S = Σ rate(j)` (see the module docs).
    slope: f64,
    /// Screen aggregate `K = Σ rate(j)·Im(j)`.
    offset: f64,
    /// Number of aggregate updates so far — the screen margin grows with
    /// it so the accumulated rounding error always stays covered.
    screen_ops: u64,
    /// `horizon.as_f64()`, the absolute scale of every margin term.
    scale: f64,
}

impl<'a> Engine<'a> {
    fn new(
        workload: &'a PreparedWorkload,
        horizon: Time,
        scratch: &'a mut AnalysisScratch,
    ) -> Self {
        let components = workload.components();
        let AnalysisScratch {
            frontier,
            refine,
            approx_terms,
            term_owner,
            withdrawn,
            refine_rcp,
            ..
        } = scratch;
        refine.clear();
        refine.resize(components.len(), RefinementState::default());
        approx_terms.clear();
        term_owner.clear();
        withdrawn.clear();
        refine_rcp.clear();
        refine_rcp.extend((0..components.len()).map(|j| workload.component_reciprocal(j)));
        frontier.reset(components.len());
        for (idx, component) in components.iter().enumerate() {
            if component.first_deadline() <= horizon {
                frontier.seed(idx, component.first_deadline());
            }
        }
        frontier.rebuild();
        Engine {
            workload,
            components,
            horizon,
            states: refine,
            frontier,
            terms: approx_terms,
            owners: term_owner,
            withdrawn,
            rcp: refine_rcp,
            exact_sum: 0,
            base_sum: 0,
            slope: 0.0,
            offset: 0.0,
            screen_ops: 0,
            scale: horizon.as_f64(),
        }
    }

    /// The exact part clamped to the `Time` range — the overload-witness
    /// demand of a fully exact failing comparison, bit-identical to the
    /// reference's per-comparison clamp.
    fn exact_part(&self) -> Time {
        Time::new(self.exact_sum.min(u128::from(u64::MAX)) as u64)
    }

    /// Accounts the newly examined job of component `idx` at one of its
    /// exact deadlines (every popped frontier entry is one).
    fn examine(&mut self, idx: usize) {
        let examined = self.states[idx]
            .examined_demand
            .saturating_add(self.components[idx].wcet());
        self.exact_sum += u128::from((examined - self.states[idx].examined_demand).as_u64());
        self.states[idx].examined_demand = examined;
    }

    /// The screened `demand ≤ capacity` comparison — the decision
    /// `approx_demand_within` makes, restructured around the incremental
    /// aggregates (see the module docs for the bit-identity argument).
    fn demand_within(&self, interval: Time) -> bool {
        #[cfg(debug_assertions)]
        for term in self.terms.iter() {
            debug_assert!(
                interval >= term.im,
                "approximation queried before its start"
            );
        }
        let base = self.exact_sum.min(u128::from(u64::MAX)) + self.base_sum;
        let capacity = interval.as_u128();
        if base > capacity {
            return false;
        }
        if self.terms.is_empty() {
            return true;
        }
        let slack = capacity - base;
        if let Some(answer) = self.screen(interval, slack) {
            return answer;
        }
        fracs_parts_le_integer_iter(
            self.terms.iter().filter_map(|t| t.linear_parts(interval)),
            slack,
        )
    }

    /// The proven-margin fast path: `Some(answer)` when the `f64`
    /// estimate of the terms' rational sum is farther from the slack than
    /// the accumulated-rounding margin, `None` when the comparison is
    /// marginal and needs the exact walk.
    #[inline]
    fn screen(&self, interval: Time, slack: u128) -> Option<bool> {
        let est = self.slope * interval.as_f64() - self.offset;
        let margin = (16.0 * self.screen_ops as f64 + 64.0) * EPS * self.scale;
        let slack_f = slack as f64;
        if est + margin <= slack_f {
            Some(true)
        } else if est - margin > slack_f {
            Some(false)
        } else {
            None
        }
    }

    /// Swap-removes the approximation term of component `withdrawn`,
    /// patching the moved term's owner slot and downdating every
    /// incremental aggregate.
    fn remove_term(&mut self, withdrawn: usize) {
        let slot = self.states[withdrawn].term_slot as usize;
        let term = self.terms[slot];
        self.base_sum -= u128::from(term.dbf_at_im.as_u64());
        let (rate, off) = term_rates(&term);
        self.slope -= rate;
        self.offset -= off;
        self.screen_ops += 1;
        self.terms.swap_remove(slot);
        self.owners.swap_remove(slot);
        if slot < self.terms.len() {
            self.states[self.owners[slot] as usize].term_slot = slot as u32;
        }
    }

    /// (Re-)approximates component `idx` from `interval` on: pushes its
    /// term (reusing the cached period reciprocal — no division) and
    /// updates every incremental aggregate.
    fn approximate(&mut self, idx: usize, interval: Time) {
        let rcp = self.rcp[idx].expect("one-shot components are never approximated");
        let dbf_at_im = self.states[idx].examined_demand;
        let term = ApproxTerm::with_reciprocal(&self.components[idx], interval, dbf_at_im, rcp);
        self.states[idx].approximated_from = Some(interval);
        self.states[idx].term_slot = self.terms.len() as u32;
        self.base_sum += u128::from(dbf_at_im.as_u64());
        let (rate, off) = term_rates(&term);
        self.slope += rate;
        self.offset += off;
        self.screen_ops += 1;
        self.terms.push(term);
        self.owners.push(idx as u32);
        self.exact_sum -= u128::from(dbf_at_im.as_u64());
    }

    /// The next exact deadline of component `idx` strictly after
    /// `interval` — [`DemandComponent::next_deadline_after`] evaluated
    /// through the cached period reciprocal (no hardware division),
    /// bit-identical including the overflow (`None`) behaviour.
    fn next_deadline(&self, idx: usize, interval: Time) -> Option<Time> {
        let deadline = self.components[idx].first_deadline();
        if interval < deadline {
            return Some(deadline);
        }
        let rcp = self.rcp[idx]?;
        let period = self.components[idx]
            .period()
            .expect("a cached reciprocal implies a periodic component");
        let k = rcp.divide((interval - deadline).as_u64()) + 1;
        period.checked_mul(k)?.checked_add(deadline)
    }

    /// Schedules the next deadline of `idx` after one of its own exact
    /// deadlines: on the continue path the next deadline is simply
    /// `interval + period` (popped intervals are exact deadlines of their
    /// component), which matches `next_deadline_after` including its
    /// overflow behaviour — `deadline + (m+1)·T` exceeds `u64` in both
    /// formulations under exactly the same condition.
    fn advance(&mut self, idx: usize, interval: Time) {
        let period = self.components[idx]
            .period()
            .expect("advance is only called for periodic components");
        if let Some(next) = interval.checked_add(period) {
            if next <= self.horizon {
                self.frontier.push(idx, next);
            }
        }
    }

    /// Number of jobs of component `idx` with deadlines inside
    /// `interval` — the reference's `jobs_within` through the cached
    /// reciprocal.
    fn jobs_within(&self, idx: usize, interval: Time) -> u64 {
        let first = self.components[idx].first_deadline();
        if interval < first {
            return 0;
        }
        match self.rcp[idx] {
            None => 1,
            Some(rcp) => rcp.divide((interval - first).as_u64()) + 1,
        }
    }

    /// Withdraws the approximation of component `j` at `interval`:
    /// removes its term, re-evaluates its exact demand (one
    /// `component_demand` slot gather) and schedules its next deadline on
    /// the frontier.
    fn withdraw(&mut self, j: usize, interval: Time, track_jobs: bool) {
        self.remove_term(j);
        self.states[j].approximated_from = None;
        let demand = self.workload.component_demand(j, interval);
        self.states[j].examined_demand = demand;
        if track_jobs {
            self.states[j].examined_jobs = self.jobs_within(j, interval);
        }
        self.exact_sum += u128::from(demand.as_u64());
        if let Some(next) = self.next_deadline(j, interval) {
            if next <= self.horizon {
                self.frontier.push(j, next);
            }
        }
    }

    /// The dynamic-error test's batched withdrawal pass: collects every
    /// live term whose component would not be approximated at the new
    /// `level`, then applies the withdrawals in ascending component order
    /// (one `component_demand` gather each) — the same set, in the same
    /// order, as the reference's scan over all states.  Returns whether
    /// anything was withdrawn.
    fn withdraw_below_level(&mut self, level: u64, interval: Time) -> bool {
        self.withdrawn.clear();
        for &owner in self.owners.iter() {
            let j = owner as usize;
            let im = self.states[j]
                .approximated_from
                .expect("live terms belong to approximated components");
            if self.components[j].max_test_interval(level) > im {
                self.withdrawn.push(owner);
            }
        }
        if self.withdrawn.is_empty() {
            return false;
        }
        self.withdrawn.sort_unstable();
        for i in 0..self.withdrawn.len() {
            let j = self.withdrawn[i] as usize;
            self.withdraw(j, interval, false);
        }
        true
    }

    /// The all-approximated test's revision pick, scanning the compact
    /// live-term list instead of every component state.  Every comparator
    /// is a unique total order over the candidates (the approximation
    /// sequence number breaks all ties), so the pick is independent of
    /// the scan order and identical to the reference's ascending-index
    /// scan.  `LargestError` evaluates each term's over-estimation
    /// through its cached reciprocal instead of a `u128` division.
    fn pick_revision(&self, test: &AllApproximatedTest, interval: Time) -> Option<usize> {
        let approximated = self.owners.iter().enumerate().filter_map(|(slot, &owner)| {
            let j = owner as usize;
            let s = &self.states[j];
            if let Some(limit) = test.max_level {
                if s.examined_jobs >= limit {
                    return None;
                }
            }
            debug_assert!(s.approximated_from.is_some());
            Some((j, slot, s.approx_seq))
        });
        match test.revision_order {
            RevisionOrder::Fifo => approximated
                .min_by_key(|&(_, _, seq)| seq)
                .map(|(j, _, _)| j),
            RevisionOrder::LargestError => approximated
                .max_by_key(|&(j, slot, seq)| {
                    let term = &self.terms[slot];
                    let error = term
                        .dbf_at_im
                        .saturating_add(term.ceil_linear(interval))
                        .saturating_sub(self.workload.component_demand(j, interval));
                    (error, u64::MAX - seq)
                })
                .map(|(j, _, _)| j),
            RevisionOrder::LargestUtilization => approximated
                .max_by(|&(a, _, sa), &(b, _, sb)| {
                    self.components[a]
                        .utilization()
                        .partial_cmp(&self.components[b].utilization())
                        .unwrap_or(core::cmp::Ordering::Equal)
                        .then(sb.cmp(&sa))
                })
                .map(|(j, _, _)| j),
        }
    }
}

/// The dynamic-error analysis loop (§4.1, Figure 5) on the shared
/// engine — called by
/// [`DynamicErrorTest::analyze_demand`](crate::analysis::FeasibilityTest::analyze_demand);
/// bit-identical to [`reference::dynamic_error`].
pub(crate) fn dynamic_error(
    test: &DynamicErrorTest,
    workload: &PreparedWorkload,
    scratch: &mut AnalysisScratch,
) -> Analysis {
    if workload.is_empty() {
        return Analysis::trivial(Verdict::Feasible);
    }
    if workload.utilization_exceeds_one() {
        return Analysis::trivial(Verdict::Infeasible);
    }
    let Some(horizon) = workload.analysis_horizon() else {
        return Analysis::trivial(Verdict::Unknown);
    };
    let mut budget = scratch.budget();
    let mut counter = IterationCounter::new();
    let mut level = test.initial_level;
    // The largest interval whose comparison *completed* satisfied — a
    // comparison interrupted mid-refinement certifies nothing.
    let mut certified: Option<Time> = None;
    let mut engine = Engine::new(workload, horizon, scratch);

    let analysis = 'drive: {
        while let Some((interval, idx)) = engine.frontier.pop() {
            // The popped interval is an exact deadline of component `idx`
            // (which is never approximated while it has a frontier entry).
            debug_assert!(engine.states[idx].approximated_from.is_none());
            engine.examine(idx);

            // Compare the approximated demand against the capacity; refine
            // (raise the level, withdraw approximations) until it fits or no
            // approximation is left.
            loop {
                // One work unit per demand/capacity comparison.
                if !budget.charge(1) {
                    break 'drive counter.finish_exhausted(
                        &budget,
                        ProgressPhase::Refinement,
                        certified,
                        Some(level),
                    );
                }
                counter.record(interval);
                if engine.demand_within(interval) {
                    break;
                }
                if engine.terms.is_empty() {
                    // Fully exact comparison failed: genuine overload.
                    let demand = engine.exact_part();
                    break 'drive counter.finish(
                        Verdict::Infeasible,
                        Some(DemandOverload { interval, demand }),
                    );
                }
                // Raise the level until at least one approximation can be
                // withdrawn for this interval.
                let mut revised_any = false;
                while !revised_any {
                    let next_level = test.growth.next(level);
                    if let Some(limit) = test.max_level {
                        if next_level > limit && level >= limit {
                            break 'drive counter.finish(Verdict::Unknown, None);
                        }
                        level = next_level.min(limit);
                    } else {
                        level = next_level;
                    }
                    revised_any = engine.withdraw_below_level(level, interval);
                    if level == u64::MAX {
                        // Cannot grow further; every border has saturated.
                        break;
                    }
                }
                if !revised_any {
                    // No approximation could be withdrawn even at the maximum
                    // representable level; treat the (over-)approximated
                    // failure as inconclusive.
                    break 'drive counter.finish(Verdict::Unknown, None);
                }
            }
            certified = Some(interval);

            // Decide how component `idx` continues: exactly (next deadline)
            // while below its test border, approximated from here on
            // otherwise.  One-shot components have no future demand — they
            // simply stay in the exact part.
            if engine.components[idx].period().is_none() {
                continue;
            }
            let border = engine.components[idx].max_test_interval(level);
            if interval < border {
                engine.advance(idx, interval);
            } else {
                engine.approximate(idx, interval);
            }
        }

        counter.finish(Verdict::Feasible, None)
    };
    scratch.set_budget(budget);
    analysis
}

/// The all-approximated analysis loop (§4.2, Figure 7) on the shared
/// engine — called by
/// [`AllApproximatedTest::analyze_demand`](crate::analysis::FeasibilityTest::analyze_demand);
/// bit-identical to [`reference::all_approximated`].
pub(crate) fn all_approximated(
    test: &AllApproximatedTest,
    workload: &PreparedWorkload,
    scratch: &mut AnalysisScratch,
) -> Analysis {
    if workload.is_empty() {
        return Analysis::trivial(Verdict::Feasible);
    }
    if workload.utilization_exceeds_one() {
        return Analysis::trivial(Verdict::Infeasible);
    }
    let Some(horizon) = workload.analysis_horizon() else {
        return Analysis::trivial(Verdict::Unknown);
    };
    let mut budget = scratch.budget();
    let mut counter = IterationCounter::new();
    let mut approx_seq: u64 = 0;
    // As in `dynamic_error`: only a *completed* satisfied comparison
    // certifies its interval.
    let mut certified: Option<Time> = None;
    let mut engine = Engine::new(workload, horizon, scratch);

    let analysis = 'drive: {
        while let Some((interval, idx)) = engine.frontier.pop() {
            // Popped components are never approximated: approximation happens
            // right after a component's own interval is examined (without
            // scheduling a next one), and only a withdrawal — which also
            // clears the approximation — re-enters it into the frontier.
            debug_assert!(engine.states[idx].approximated_from.is_none());
            engine.examine(idx);
            engine.states[idx].examined_jobs += 1;

            loop {
                // One work unit per demand/capacity comparison.
                if !budget.charge(1) {
                    break 'drive counter.finish_exhausted(
                        &budget,
                        ProgressPhase::Refinement,
                        certified,
                        test.max_level,
                    );
                }
                counter.record(interval);
                if engine.demand_within(interval) {
                    break;
                }
                if engine.terms.is_empty() {
                    break 'drive counter.finish(
                        Verdict::Infeasible,
                        Some(DemandOverload {
                            interval,
                            demand: engine.exact_part(),
                        }),
                    );
                }
                // Withdraw one approximation according to the configured
                // revision order; components refined up to the level limit
                // are no longer candidates.
                let Some(revise) = engine.pick_revision(test, interval) else {
                    // Every remaining approximation is beyond the limit — its
                    // over-estimation is within the target error, so the
                    // failure is inconclusive (see `with_max_level`).
                    break 'drive counter.finish(Verdict::Unknown, None);
                };
                engine.withdraw(revise, interval, true);
            }
            certified = Some(interval);

            // The examined component is (re-)approximated from this interval
            // on.  One-shot components have no future demand, so they stay in
            // the exact part instead.
            if engine.components[idx].period().is_some() {
                engine.states[idx].approx_seq = approx_seq;
                approx_seq += 1;
                engine.approximate(idx, interval);
            }
        }

        counter.finish(Verdict::Feasible, None)
    };
    scratch.set_budget(budget);
    analysis
}

pub mod reference {
    //! The retained pre-engine implementations of the two refining
    //! tests — the `BinaryHeap` pending queue, the per-comparison
    //! [`approx_demand_within`] base re-summation and the per-state
    //! withdrawal scans, moved here verbatim.  The `refine_equivalence`
    //! proptests pin the engine's verdicts, overload witnesses and
    //! iteration counts against these functions bit for bit.

    use std::cmp::Reverse;

    use edf_model::Time;

    use crate::analysis::{Analysis, DemandOverload, IterationCounter, Verdict};
    use crate::kernel::{AnalysisScratch, RefinementState};
    use crate::superposition::{approx_demand_within, approximation_error_component, ApproxTerm};
    use crate::tests::{AllApproximatedTest, DynamicErrorTest, RevisionOrder};
    use crate::workload::{DemandComponent, PreparedWorkload};

    /// Number of jobs of `component` with deadlines inside an interval of
    /// length `interval` — how many jobs a withdrawal up to `interval`
    /// has examined exactly.
    fn jobs_within(component: &DemandComponent, interval: Time) -> u64 {
        if interval < component.first_deadline() {
            return 0;
        }
        match component.period() {
            None => 1,
            Some(period) => (interval - component.first_deadline()).div_floor(period) + 1,
        }
    }

    /// Swap-removes the approximation term of component `withdrawn`,
    /// patching the `term_slot` of the component whose term was moved
    /// into the gap.
    fn remove_term(
        terms: &mut Vec<ApproxTerm>,
        owners: &mut Vec<u32>,
        states: &mut [RefinementState],
        withdrawn: usize,
    ) {
        let slot = states[withdrawn].term_slot as usize;
        terms.swap_remove(slot);
        owners.swap_remove(slot);
        if slot < terms.len() {
            states[owners[slot] as usize].term_slot = slot as u32;
        }
    }

    /// Picks the approximated component whose approximation is withdrawn
    /// next, or `None` when every approximated component has already
    /// been refined up to the configured level limit.
    fn pick_revision(
        test: &AllApproximatedTest,
        components: &[DemandComponent],
        states: &[RefinementState],
        interval: Time,
    ) -> Option<usize> {
        let approximated = states.iter().enumerate().filter_map(|(j, s)| {
            if let Some(limit) = test.max_level {
                if s.examined_jobs >= limit {
                    return None;
                }
            }
            s.approximated_from.map(|im| (j, im, s.approx_seq))
        });
        match test.revision_order {
            RevisionOrder::Fifo => approximated
                .min_by_key(|&(_, _, seq)| seq)
                .map(|(j, _, _)| j),
            RevisionOrder::LargestError => approximated
                .max_by_key(|&(j, im, seq)| {
                    (
                        approximation_error_component(&components[j], im, interval),
                        u64::MAX - seq,
                    )
                })
                .map(|(j, _, _)| j),
            RevisionOrder::LargestUtilization => approximated
                .max_by(|&(a, _, sa), &(b, _, sb)| {
                    components[a]
                        .utilization()
                        .partial_cmp(&components[b].utilization())
                        .unwrap_or(core::cmp::Ordering::Equal)
                        .then(sb.cmp(&sa))
                })
                .map(|(j, _, _)| j),
        }
    }

    /// The pre-engine dynamic-error analysis loop (§4.1, Figure 5).
    pub fn dynamic_error(
        test: &DynamicErrorTest,
        workload: &PreparedWorkload,
        scratch: &mut AnalysisScratch,
    ) -> Analysis {
        if workload.is_empty() {
            return Analysis::trivial(Verdict::Feasible);
        }
        if workload.utilization_exceeds_one() {
            return Analysis::trivial(Verdict::Infeasible);
        }
        let Some(horizon) = workload.analysis_horizon() else {
            return Analysis::trivial(Verdict::Unknown);
        };
        let components = workload.components();

        let mut level = test.initial_level;
        let mut counter = IterationCounter::new();
        // All transient buffers — the state vector, the pending-interval
        // heap and the approximation terms — come from the scratch, so a
        // batch worker runs this test allocation-free after warm-up.  As
        // in the all-approximated test, the exact part and the term list
        // are maintained incrementally instead of being rebuilt per
        // comparison.
        let states = &mut scratch.refine;
        states.clear();
        states.resize(components.len(), RefinementState::default());
        let pending = &mut scratch.pending;
        pending.clear();
        for (idx, component) in components.iter().enumerate() {
            if component.first_deadline() <= horizon {
                pending.push(Reverse((component.first_deadline(), idx)));
            }
        }
        let approx_terms = &mut scratch.approx_terms;
        approx_terms.clear();
        let term_owner = &mut scratch.term_owner;
        term_owner.clear();
        let withdrawn = &mut scratch.withdrawn;
        withdrawn.clear();
        // Running Σ examined_demand over the unapproximated components
        // (exact in u128, clamped to `Time` range at each comparison —
        // bit-identical to the former saturating fold).
        let mut exact_sum: u128 = 0;

        while let Some(Reverse((interval, idx))) = pending.pop() {
            // The popped interval is an exact deadline of component `idx`
            // (which is never approximated while it has a pending entry).
            debug_assert!(states[idx].approximated_from.is_none());
            let examined = states[idx]
                .examined_demand
                .saturating_add(components[idx].wcet());
            exact_sum += u128::from((examined - states[idx].examined_demand).as_u64());
            states[idx].examined_demand = examined;

            // Compare the approximated demand against the capacity;
            // refine (raise the level, withdraw approximations) until it
            // fits or no approximation is left.
            loop {
                counter.record(interval);
                let exact_part = Time::new(exact_sum.min(u128::from(u64::MAX)) as u64);
                if approx_demand_within(exact_part, approx_terms, interval) {
                    break;
                }
                if approx_terms.is_empty() {
                    // Fully exact comparison failed: genuine overload.
                    let demand = exact_part;
                    return counter.finish(
                        Verdict::Infeasible,
                        Some(DemandOverload { interval, demand }),
                    );
                }
                // Raise the level until at least one approximation can be
                // withdrawn for this interval.
                let mut revised_any = false;
                while !revised_any {
                    let next_level = test.growth.next(level);
                    if let Some(limit) = test.max_level {
                        if next_level > limit && level >= limit {
                            return counter.finish(Verdict::Unknown, None);
                        }
                        level = next_level.min(limit);
                    } else {
                        level = next_level;
                    }
                    // Withdraw the approximation of components that would
                    // not be approximated at `im` under the new level.
                    // Collect the whole pass first, then evaluate every
                    // withdrawn component's exact demand as one batch of
                    // kernel column gathers; applying in ascending `j`
                    // preserves the former interleaved loop's heap
                    // insertion and term-removal order exactly.
                    withdrawn.clear();
                    withdrawn.extend((0..states.len()).filter_map(|j| {
                        let im = states[j].approximated_from?;
                        (components[j].max_test_interval(level) > im).then_some(j as u32)
                    }));
                    for &j in withdrawn.iter() {
                        let j = j as usize;
                        remove_term(approx_terms, term_owner, states, j);
                        states[j].approximated_from = None;
                        states[j].examined_demand = workload.component_demand(j, interval);
                        exact_sum += u128::from(states[j].examined_demand.as_u64());
                        if let Some(next) = components[j].next_deadline_after(interval) {
                            if next <= horizon {
                                pending.push(Reverse((next, j)));
                            }
                        }
                        revised_any = true;
                    }
                    if level == u64::MAX {
                        // Cannot grow further; every border has saturated.
                        break;
                    }
                }
                if !revised_any {
                    // No approximation could be withdrawn even at the
                    // maximum representable level; treat the (over-)
                    // approximated failure as inconclusive.
                    return counter.finish(Verdict::Unknown, None);
                }
            }

            // Decide how component `idx` continues: exactly (next
            // deadline) while below its test border, approximated from
            // here on otherwise.  One-shot components have no future
            // demand — they simply stay in the exact part.
            if components[idx].period().is_none() {
                continue;
            }
            let border = components[idx].max_test_interval(level);
            if interval < border {
                if let Some(next) = components[idx].next_deadline_after(interval) {
                    if next <= horizon {
                        pending.push(Reverse((next, idx)));
                    }
                }
            } else {
                states[idx].approximated_from = Some(interval);
                states[idx].term_slot = approx_terms.len() as u32;
                approx_terms.push(ApproxTerm::for_component(
                    &components[idx],
                    interval,
                    states[idx].examined_demand,
                ));
                term_owner.push(idx as u32);
                exact_sum -= u128::from(states[idx].examined_demand.as_u64());
            }
        }

        counter.finish(Verdict::Feasible, None)
    }

    /// The pre-engine all-approximated analysis loop (§4.2, Figure 7).
    pub fn all_approximated(
        test: &AllApproximatedTest,
        workload: &PreparedWorkload,
        scratch: &mut AnalysisScratch,
    ) -> Analysis {
        if workload.is_empty() {
            return Analysis::trivial(Verdict::Feasible);
        }
        if workload.utilization_exceeds_one() {
            return Analysis::trivial(Verdict::Infeasible);
        }
        let Some(horizon) = workload.analysis_horizon() else {
            return Analysis::trivial(Verdict::Unknown);
        };
        let components = workload.components();

        let mut counter = IterationCounter::new();
        // All transient buffers come from the scratch (see
        // [`AnalysisScratch`]); a batch worker runs this test
        // allocation-free after warm-up.  The exact part and the
        // approximation-term list are maintained *incrementally* across
        // comparisons — a comparison costs one pass over the live terms,
        // not a rebuild of the whole state vector.
        let states = &mut scratch.refine;
        states.clear();
        states.resize(components.len(), RefinementState::default());
        let mut approx_seq: u64 = 0;
        let pending = &mut scratch.pending;
        pending.clear();
        for (idx, component) in components.iter().enumerate() {
            if component.first_deadline() <= horizon {
                pending.push(Reverse((component.first_deadline(), idx)));
            }
        }
        let approx_terms = &mut scratch.approx_terms;
        approx_terms.clear();
        let term_owner = &mut scratch.term_owner;
        term_owner.clear();
        // Running Σ examined_demand over the *unapproximated* components,
        // tracked exactly in u128 (clamping to `Time` range only at the
        // comparison, which reproduces the former saturating fold bit for
        // bit).
        let mut exact_sum: u128 = 0;

        while let Some(Reverse((interval, idx))) = pending.pop() {
            // Popped components are never approximated: approximation
            // happens right after a component's own interval is examined
            // (without scheduling a next one), and only a withdrawal —
            // which also clears the approximation — re-enters it into
            // `pending`.
            debug_assert!(states[idx].approximated_from.is_none());
            let examined = states[idx]
                .examined_demand
                .saturating_add(components[idx].wcet());
            exact_sum += u128::from((examined - states[idx].examined_demand).as_u64());
            states[idx].examined_demand = examined;
            states[idx].examined_jobs += 1;

            loop {
                counter.record(interval);
                let exact_part = Time::new(exact_sum.min(u128::from(u64::MAX)) as u64);
                if approx_demand_within(exact_part, approx_terms, interval) {
                    break;
                }
                if approx_terms.is_empty() {
                    return counter.finish(
                        Verdict::Infeasible,
                        Some(DemandOverload {
                            interval,
                            demand: exact_part,
                        }),
                    );
                }
                // Withdraw one approximation according to the configured
                // revision order; components refined up to the level
                // limit are no longer candidates.
                let Some(revise) = pick_revision(test, components, states, interval) else {
                    // Every remaining approximation is beyond the limit —
                    // its over-estimation is within the target error, so
                    // the failure is inconclusive (see `with_max_level`).
                    return counter.finish(Verdict::Unknown, None);
                };
                remove_term(approx_terms, term_owner, states, revise);
                states[revise].approximated_from = None;
                // Re-evaluating the withdrawn component's exact demand is
                // a kernel column gather (reciprocal multiply, no
                // hardware division) on the kernel path.
                states[revise].examined_demand = workload.component_demand(revise, interval);
                states[revise].examined_jobs = jobs_within(&components[revise], interval);
                exact_sum += u128::from(states[revise].examined_demand.as_u64());
                if let Some(next) = components[revise].next_deadline_after(interval) {
                    if next <= horizon {
                        pending.push(Reverse((next, revise)));
                    }
                }
            }

            // The examined component is (re-)approximated from this
            // interval on.  One-shot components have no future demand, so
            // they stay in the exact part instead.
            if components[idx].period().is_some() {
                states[idx].approximated_from = Some(interval);
                states[idx].approx_seq = approx_seq;
                approx_seq += 1;
                states[idx].term_slot = approx_terms.len() as u32;
                approx_terms.push(ApproxTerm::for_component(
                    &components[idx],
                    interval,
                    states[idx].examined_demand,
                ));
                term_owner.push(idx as u32);
                exact_sum -= u128::from(states[idx].examined_demand.as_u64());
            }
        }

        counter.finish(Verdict::Feasible, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::LevelGrowth;
    use edf_model::{Task, TaskSet};

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    fn sample_sets() -> Vec<TaskSet> {
        vec![
            TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]),
            TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]),
            TaskSet::from_tasks(vec![t(2, 2, 6), t(2, 4, 8), t(1, 7, 12)]),
            TaskSet::from_tasks(vec![t(5, 6, 20), t(7, 11, 25), t(4, 9, 35)]),
            TaskSet::from_tasks(vec![t(1, 2, 2), t(2, 4, 4)]),
            TaskSet::from_tasks(vec![t(5, 3, 10)]),
            TaskSet::from_tasks(vec![t(1, 1, 4), t(1, 2, 4), t(1, 3, 4), t(1, 4, 4)]),
            TaskSet::from_tasks(vec![t(1, 5, 5), t(2, 10, 10), t(30, 200, 200)]),
            TaskSet::new(),
        ]
    }

    #[test]
    fn dynamic_error_engine_matches_reference_on_hand_picked_sets() {
        let tests = [
            DynamicErrorTest::new(),
            DynamicErrorTest::new().with_growth(LevelGrowth::Increment),
            DynamicErrorTest::new().with_initial_level(3),
            DynamicErrorTest::new().with_max_level(2),
            DynamicErrorTest::from_target_error(0.25),
        ];
        for ts in sample_sets() {
            let prepared = PreparedWorkload::new(&ts);
            for test in &tests {
                let mut scratch = AnalysisScratch::new();
                let engine = dynamic_error(test, &prepared, &mut scratch);
                let reference = reference::dynamic_error(test, &prepared, &mut scratch);
                assert_eq!(engine, reference, "{test:?} on {ts}");
            }
        }
    }

    #[test]
    fn all_approximated_engine_matches_reference_on_hand_picked_sets() {
        let tests = [
            AllApproximatedTest::new(),
            AllApproximatedTest::with_revision_order(RevisionOrder::LargestError),
            AllApproximatedTest::with_revision_order(RevisionOrder::LargestUtilization),
            AllApproximatedTest::new().with_max_level(2),
            AllApproximatedTest::from_target_error(0.5),
        ];
        for ts in sample_sets() {
            let prepared = PreparedWorkload::new(&ts);
            for test in &tests {
                let mut scratch = AnalysisScratch::new();
                let engine = all_approximated(test, &prepared, &mut scratch);
                let reference = reference::all_approximated(test, &prepared, &mut scratch);
                assert_eq!(engine, reference, "{test:?} on {ts}");
            }
        }
    }

    #[test]
    fn engine_jobs_within_matches_reference_div_floor() {
        let ts = TaskSet::from_tasks(vec![t(2, 7, 9), t(1, 3, 5), t(4, 11, 11)]);
        let prepared = PreparedWorkload::new(&ts);
        let horizon = prepared.analysis_horizon().expect("bounded horizon");
        let mut scratch = AnalysisScratch::new();
        let engine = Engine::new(&prepared, horizon, &mut scratch);
        for idx in 0..engine.components.len() {
            for i in 0..200u64 {
                let i = Time::new(i);
                let expected = {
                    let c = &engine.components[idx];
                    if i < c.first_deadline() {
                        0
                    } else {
                        (i - c.first_deadline()).div_floor(c.period().unwrap()) + 1
                    }
                };
                assert_eq!(
                    engine.jobs_within(idx, i),
                    expected,
                    "component {idx} at {i}"
                );
            }
        }
    }

    #[test]
    fn engine_next_deadline_matches_component_walk() {
        let ts = TaskSet::from_tasks(vec![t(2, 7, 9), t(1, 3, 5), t(4, 11, 11)]);
        let prepared = PreparedWorkload::new(&ts);
        let horizon = prepared.analysis_horizon().expect("bounded horizon");
        let mut scratch = AnalysisScratch::new();
        let engine = Engine::new(&prepared, horizon, &mut scratch);
        for idx in 0..engine.components.len() {
            for i in 0..200u64 {
                let i = Time::new(i);
                assert_eq!(
                    engine.next_deadline(idx, i),
                    engine.components[idx].next_deadline_after(i),
                    "component {idx} at {i}"
                );
            }
        }
    }
}
