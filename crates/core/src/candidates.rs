//! The candidate-product engine: fast exact analysis of offset-transaction
//! systems.
//!
//! The exact analysis of a [`TransactionSystem`] checks `dbf(I) ≤ I` for
//! **every combination** of per-transaction critical-instant candidates
//! (see [`crate::transactions`]), and the combination count is the product
//! of the transaction sizes — the one analysis in this crate whose cost is
//! exponential in system size.  This module attacks the product on three
//! layers:
//!
//! 1. **Shrink the product before enumerating** — *dominance pruning*
//!    ([`dominant_candidates`]).  All candidates of one transaction carry
//!    the same multiset of `(cost, relative deadline)` parts and differ
//!    only in the phases; a component's demand bound function is
//!    non-increasing in its first deadline and non-decreasing in its cost.
//!    So if the deadline-sorted component block of candidate `a` is
//!    pointwise no later and no cheaper than that of candidate `b`
//!    (`D'ₐ[m] ≤ D'ᵦ[m]` and `Cₐ[m] ≥ Cᵦ[m]` at every position `m`), then
//!    `dbf_a(I) ≥ dbf_b(I)` for every interval — every combination
//!    containing `b` is demand-dominated by the same combination with `a`
//!    substituted, and `b` can be dropped without changing the verdict of
//!    an exact test.  Transactions whose parts share release offsets (the
//!    common "burst of messages" shape) collapse to one candidate per
//!    distinct offset; symmetric parts collapse further.  A cheap
//!    per-combination *density screen* rides on top: every component
//!    satisfies `dbf(I) ≤ C·I / min(D', T)`, so a combination with
//!    `Σ C / min(D', T) ≤ 1` (evaluated exactly, in rational arithmetic)
//!    is feasible without running the exact test at all.  Since the screen
//!    also implies `U ≤ 1`, the George bound exists and an exact test
//!    would have been decisive — the screen never converts an honest
//!    `Unknown` into `Feasible` for the stock exact tests.  Pruning and
//!    the screen engage only when [`FeasibilityTest::is_exact`] holds: a
//!    merely *sufficient* test is not demand-monotone, so dominated
//!    combinations must still be examined to reproduce its verdict.
//!
//! 2. **Make each combination nearly free** — mixed-radix **Gray-code
//!    enumeration** ([`MixedRadixGray`]) visits the product so that
//!    adjacent combinations differ in exactly *one* transaction's
//!    candidate, and [`CandidateView`] exploits it: one scratch
//!    [`PreparedWorkload`] is patched per step (the changed transaction's
//!    component block only), the sporadic prefix is prepared once and
//!    shared, the cached deadline order is repaired by *merging* the
//!    re-sorted block instead of a full re-sort, the kernel columns are
//!    rebuilt in place into their existing allocations, and the §4.3
//!    bounds are refreshed through the period-invariant half of
//!    [`BoundRefresher`] with hint-seeded searches.  A candidate swap
//!    never moves a cost or a period, so the utilization and the exact
//!    `U > 1` comparison are computed once for the whole sweep.  Gray
//!    order is what makes the incremental swap *sound*: the view's state
//!    after any swap sequence is property-tested bit-identical to a cold
//!    preparation of the same combination, and because only one block
//!    moves per step the repair work per combination is `O(n)` with no
//!    allocation.
//!
//! 3. **Sweep in parallel** — [`analyze`] splits the (pruned) Gray
//!    sequence into contiguous rank ranges via Gray-code *unranking*
//!    ([`MixedRadixGray::at_rank`]), fans them out over the CPU cores
//!    through [`crate::batch::parallel_map_with`] with one view and one
//!    [`AnalysisScratch`] per worker, and stops every worker through an
//!    atomic early-exit flag as soon as any combination is infeasible (the
//!    lowest-ranked discovered witness is reported; iterations are summed
//!    over all examined combinations).
//!
//! The naive re-preparing path of PR 2 survives as [`reference`](fn@reference) — full
//! lexicographic product, one cold [`PreparedWorkload`] per combination —
//! and is the baseline both for the `candidate_equivalence` property tests
//! (verdicts equal, witnesses genuine) and for the `transactions`
//! benchmark.
//!
//! # Examples
//!
//! ```
//! use edf_analysis::candidates;
//! use edf_analysis::tests::QpaTest;
//! use edf_analysis::Verdict;
//! use edf_model::{TaskSet, Time, Transaction, TransactionPart, TransactionSystem};
//!
//! # fn main() -> Result<(), edf_model::TransactionError> {
//! // Three parts, two of them released together: dominance pruning drops
//! // one of the duplicate candidates before the sweep even starts.
//! let transaction = Transaction::new(
//!     Time::new(30),
//!     vec![
//!         TransactionPart::new(Time::new(0), Time::new(3), Time::new(9)),
//!         TransactionPart::new(Time::new(0), Time::new(2), Time::new(8)),
//!         TransactionPart::new(Time::new(15), Time::new(4), Time::new(10)),
//!     ],
//! )?;
//! let system = TransactionSystem::new(TaskSet::new(), vec![transaction]);
//! let result = candidates::analyze(&QpaTest::new(), &system);
//! assert_eq!(result.analysis.verdict, Verdict::Feasible);
//! assert_eq!(result.stats.candidate_product, 3);
//! assert_eq!(result.stats.pruned_product, 2);
//! # Ok(())
//! # }
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

use edf_model::{Time, Transaction, TransactionSystem};

use crate::analysis::{Analysis, FeasibilityTest, Verdict};
use crate::arith::{fracs_parts_le_integer_iter, Reciprocal};
use crate::batch::parallel_map_with;
use crate::bounds::BoundRefresher;
use crate::budget::{Progress, ProgressPhase, WorkBudget};
use crate::incremental::WorkloadView;
use crate::kernel::AnalysisScratch;
use crate::transactions::{candidate_components, combination_components};
use crate::workload::{DemandComponent, PreparedWorkload};

/// Minimum pruned product before [`analyze_with`] bothers fanning the
/// sweep out over worker threads.
const PARALLEL_MIN_PRODUCT: u128 = 128;

/// Chunks handed out per worker thread (more than one, so an early exit in
/// one region does not leave the other workers grinding long ranges).
const CHUNKS_PER_WORKER: u128 = 4;

// ---------------------------------------------------------------------------
// Mixed-radix enumeration
// ---------------------------------------------------------------------------

/// Advances `digits` to the lexicographic successor under `radices` (the
/// **last** digit varies fastest, matching the historical
/// [`CombinationIter`](crate::transactions::CombinationIter) order);
/// returns `false` when `digits` was the last combination.  Allocation-free
/// — the shared core behind the public iterator and [`reference`](fn@reference).
pub(crate) fn advance_lex(digits: &mut [usize], radices: &[usize]) -> bool {
    debug_assert_eq!(digits.len(), radices.len());
    for (digit, &radix) in digits.iter_mut().zip(radices).rev() {
        *digit += 1;
        if *digit < radix {
            return true;
        }
        *digit = 0;
    }
    false
}

/// A reflected mixed-radix Gray-code counter: every call to
/// [`MixedRadixGray::advance`] changes exactly **one** digit by ±1, and the
/// sequence visits every combination of the radices exactly once.
///
/// Digit 0 varies fastest.  Radix-1 digits are legal (they simply never
/// move), so a transaction with a single candidate needs no special
/// casing.  [`MixedRadixGray::at_rank`] *unranks* the sequence — it
/// reconstructs the digits and sweep directions at an arbitrary position —
/// which is what lets [`analyze`] hand disjoint contiguous ranges of one
/// global Gray sequence to parallel workers, each continuing delta-wise
/// from its seed.
///
/// # Examples
///
/// ```
/// use edf_analysis::candidates::MixedRadixGray;
///
/// let mut gray = MixedRadixGray::new(&[2, 3]);
/// let mut seen = vec![gray.digits().to_vec()];
/// while let Some(changed) = gray.advance() {
///     assert!(changed < 2);
///     seen.push(gray.digits().to_vec());
/// }
/// assert_eq!(seen.len(), 6);
/// seen.sort_unstable();
/// seen.dedup();
/// assert_eq!(seen.len(), 6, "every combination visited exactly once");
/// ```
#[derive(Debug, Clone)]
pub struct MixedRadixGray {
    radices: Vec<usize>,
    digits: Vec<usize>,
    /// Current sweep direction per digit (`true` = ascending).
    ascending: Vec<bool>,
    rank: u128,
    total: u128,
}

impl MixedRadixGray {
    /// Starts the sequence at rank 0 (all digits zero).
    ///
    /// # Panics
    ///
    /// Panics if any radix is zero.
    #[must_use]
    pub fn new(radices: &[usize]) -> Self {
        MixedRadixGray::at_rank(radices, 0)
    }

    /// Reconstructs the counter at position `rank` of the sequence.
    ///
    /// The reflected construction: write `rank` in the mixed radix (digit 0
    /// least significant) as `n₀, n₁, …`.  Digit `i`'s sweep reverses once
    /// per step of the counter formed by the digits above it, so its
    /// reflection parity is the parity of `Nᵢ = ⌊rank / Πⱼ≤ᵢ mⱼ⌋` — the
    /// running quotient of the radix decomposition: Gray digit `i` is `nᵢ`
    /// (sweeping upward) when `Nᵢ` is even and `mᵢ − 1 − nᵢ` (sweeping
    /// downward) when odd.  Consecutive ranks differ in one Gray digit by
    /// ±1, so iterating from any unranked seed continues the same global
    /// sequence.
    ///
    /// # Panics
    ///
    /// Panics if any radix is zero or `rank` is not below the product of
    /// the radices.
    #[must_use]
    pub fn at_rank(radices: &[usize], rank: u128) -> Self {
        assert!(
            radices.iter().all(|&m| m >= 1),
            "every radix must be positive"
        );
        let total = radices
            .iter()
            .fold(1u128, |acc, &m| acc.saturating_mul(m as u128));
        assert!(rank < total, "rank must be below the radix product");
        let mut digits = vec![0usize; radices.len()];
        let mut ascending = vec![true; radices.len()];
        let mut quotient = rank;
        for (i, &m) in radices.iter().enumerate() {
            let natural = (quotient % m as u128) as usize;
            quotient /= m as u128;
            let reflected = quotient % 2 == 1;
            digits[i] = if reflected { m - 1 - natural } else { natural };
            ascending[i] = !reflected;
        }
        MixedRadixGray {
            radices: radices.to_vec(),
            digits,
            ascending,
            rank,
            total,
        }
    }

    /// The current combination.
    #[must_use]
    pub fn digits(&self) -> &[usize] {
        &self.digits
    }

    /// Position of the current combination within the sequence.
    #[must_use]
    pub fn rank(&self) -> u128 {
        self.rank
    }

    /// Product of the radices (the sequence length), saturating at
    /// `u128::MAX`.
    #[must_use]
    pub fn total(&self) -> u128 {
        self.total
    }

    /// Steps to the next combination, returning the index of the single
    /// digit that changed (by ±1), or `None` after the last combination.
    ///
    /// In place and allocation-free: the lowest digit that can still move
    /// in its sweep direction moves, and all lower digits (which sit at
    /// their extremes) reverse direction.
    pub fn advance(&mut self) -> Option<usize> {
        for j in 0..self.digits.len() {
            let up = self.ascending[j];
            let movable = if up {
                self.digits[j] + 1 < self.radices[j]
            } else {
                self.digits[j] > 0
            };
            if movable {
                if up {
                    self.digits[j] += 1;
                } else {
                    self.digits[j] -= 1;
                }
                for lower in self.ascending[..j].iter_mut() {
                    *lower = !*lower;
                }
                self.rank += 1;
                return Some(j);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Dominance pruning and the density screen
// ---------------------------------------------------------------------------

/// The critical-instant candidates of `transaction` that survive dominance
/// pruning, as ascending original candidate indices (never empty).
///
/// Candidate `a` *dominates* candidate `b` when, after sorting both
/// component blocks by `(first deadline, cost)`, every position of `a` has
/// a deadline no later and a cost no smaller than the same position of
/// `b`: the positionwise pairing then witnesses `dbf_a(I) ≥ dbf_b(I)` for
/// every `I` (a component's demand is non-increasing in its first deadline
/// and non-decreasing in its cost, with costs and the shared period fixed
/// across candidates).  Substituting `a` for `b` in any combination can
/// therefore only raise the demand, so an **exact** test's verdict over
/// the pruned product equals its verdict over the full product:
/// feasibility of all kept combinations implies feasibility of all dropped
/// ones, and any violation found is genuine.  Candidates with identical
/// blocks (duplicate release offsets) keep only the lowest index.
///
/// Keeping a *superset* of the necessary candidates is always sound, so
/// the quadratic strict-dominance filter is applied only while the
/// deduplicated candidate set is small (≤ 64); for very wide transactions
/// only the near-linear duplicate collapse runs, keeping the pruning
/// pre-pass asymptotically cheaper than the sweep it shortens.
#[must_use]
pub fn dominant_candidates(transaction: &Transaction) -> Vec<usize> {
    let count = transaction.candidate_count();
    let parts = transaction.parts();
    let keys: Vec<Vec<(Time, Time)>> = (0..count)
        .map(|candidate| {
            let mut block: Vec<(Time, Time)> = parts
                .iter()
                .enumerate()
                .map(|(part, p)| {
                    (
                        transaction
                            .candidate_phase(candidate, part)
                            .saturating_add(p.deadline()),
                        p.wcet(),
                    )
                })
                .collect();
            block.sort_unstable();
            block
        })
        .collect();
    // First collapse exact duplicates (the overwhelmingly common win —
    // parts sharing a release offset anchor identical blocks) in
    // `O(p² log p)`: sort candidate indices by block, keep the lowest
    // index of each run.  Keeping *more* candidates than strictly
    // necessary is always sound, so the quadratic strict-dominance filter
    // below is applied only while the deduplicated set is small; past the
    // threshold its `O(c²·p)` cost would rival the sweep it prunes.
    let mut by_block: Vec<usize> = (0..count).collect();
    by_block.sort_by(|&a, &b| keys[a].cmp(&keys[b]).then(a.cmp(&b)));
    let mut kept: Vec<usize> = Vec::with_capacity(count);
    for (position, &candidate) in by_block.iter().enumerate() {
        if position == 0 || keys[by_block[position - 1]] != keys[candidate] {
            kept.push(candidate);
        }
    }
    kept.sort_unstable();
    const STRICT_DOMINANCE_MAX_CANDIDATES: usize = 64;
    if kept.len() > STRICT_DOMINANCE_MAX_CANDIDATES {
        return kept;
    }
    let dominates = |a: &[(Time, Time)], b: &[(Time, Time)]| {
        a.iter()
            .zip(b)
            .all(|(&(da, ca), &(db, cb))| da <= db && ca >= cb)
    };
    kept.iter()
        .copied()
        .filter(|&candidate| {
            !kept
                .iter()
                .any(|&other| other != candidate && dominates(&keys[other], &keys[candidate]))
        })
        .collect()
}

/// The per-component capacity denominator of the density screen:
/// `min(D', T)` for periodic components, `D'` for one-shots.
fn screen_denominator(component: &DemandComponent) -> Time {
    match component.period() {
        Some(period) => period.min(component.first_deadline()),
        None => component.first_deadline(),
    }
}

/// The cheap per-combination screen: `true` proves the combination
/// feasible without the exact test.
///
/// Every periodic component satisfies `dbf(I) ≤ C·I / min(D', T)` (for
/// `D' < T` there are at most `(I − D')/T + 1 ≤ I/D'` jobs in `I`; for
/// `D' ≥ T` at most `I/T`) and every one-shot satisfies `dbf(I) ≤ C·I/D'`,
/// so `Σ C / min(D', T) ≤ 1` — evaluated **exactly** with the crate's
/// rational arithmetic — implies `dbf(I) ≤ I` everywhere.  Components with
/// a zero first deadline fail the screen conservatively.
fn density_screen_feasible(components: &[DemandComponent]) -> bool {
    if components.iter().any(|c| screen_denominator(c).is_zero()) {
        return false;
    }
    // Pre-divide in 64-bit (costs and deadlines are `Time`s, so the
    // quotients fit) — the screen runs on *every* combination and a
    // 128-bit division per term would rival the work it saves.
    fracs_parts_le_integer_iter(
        components.iter().map(|c| {
            let num = c.wcet().as_u64();
            let den = screen_denominator(c).as_u64();
            (
                u128::from(num / den),
                u128::from(num % den),
                u128::from(den),
            )
        }),
        1,
    )
}

// ---------------------------------------------------------------------------
// The incremental candidate view
// ---------------------------------------------------------------------------

/// One pre-built candidate block of one transaction: the components in
/// part order plus their in-block ascending-deadline permutation.
#[derive(Debug)]
struct CandidateBlock {
    components: Vec<DemandComponent>,
    /// In-block positions sorted by `(first deadline, position)` — merged
    /// into the global deadline order when this candidate is selected.
    sorted: Vec<u32>,
}

/// The component layout of one transaction inside the combination vector,
/// with every candidate's block pre-computed.
#[derive(Debug)]
struct TransactionSlot {
    start: usize,
    len: usize,
    candidates: Vec<CandidateBlock>,
}

impl TransactionSlot {
    fn contains(&self, index: usize) -> bool {
        index >= self.start && index < self.start + self.len
    }
}

/// A re-phasable view of a transaction system's candidate combinations:
/// one scratch [`PreparedWorkload`], patched in place per
/// [`CandidateView::set_candidate`] swap, sharing everything that is
/// invariant across the product.
///
/// The sibling of [`ScaledView`](crate::incremental::ScaledView), but for
/// *timing* perturbations instead of cost perturbations: a candidate swap
/// rewrites one transaction's offsets and first deadlines while costs and
/// periods stay put.  Consequently the component allocation, the sporadic
/// prefix, the utilization and the exact `U > 1` comparison are shared
/// across the whole sweep; the deadline order is repaired by merging the
/// swapped block's pre-sorted run into the unchanged remainder (`O(n)`,
/// not a re-sort); the kernel columns are rebuilt in place from that
/// order; and the §4.3 bounds are re-derived through
/// `BoundRefresher::refresh_retimed` — period reciprocals and the
/// hyperperiod lcm cached, searches seeded by the previous combination.
///
/// Swaps are *lazy*: consecutive [`CandidateView::set_candidate`] calls
/// only patch the component vector, and the order/kernel/bounds repair
/// runs once inside [`CandidateView::prepared`] — so a combination decided
/// by the density screen (which reads only
/// [`CandidateView::components`]) never pays for state it does not use.
/// The prepared state after any swap sequence is bit-identical to a cold
/// [`PreparedWorkload`] of the same combination (property-tested in
/// `candidate_equivalence`).
///
/// # Examples
///
/// ```
/// use edf_analysis::candidates::CandidateView;
/// use edf_analysis::tests::ProcessorDemandTest;
/// use edf_analysis::FeasibilityTest;
/// use edf_model::{TaskSet, Time, Transaction, TransactionPart, TransactionSystem};
///
/// # fn main() -> Result<(), edf_model::TransactionError> {
/// let transaction = Transaction::new(
///     Time::new(20),
///     vec![
///         TransactionPart::new(Time::new(0), Time::new(4), Time::new(4)),
///         TransactionPart::new(Time::new(10), Time::new(4), Time::new(4)),
///     ],
/// )?;
/// let system = TransactionSystem::new(TaskSet::new(), vec![transaction]);
/// let mut view = CandidateView::new(&system);
/// let test = ProcessorDemandTest::new();
/// for candidate in [0, 1, 0] {
///     view.set_candidate(0, candidate);
///     assert!(test.analyze_prepared(view.prepared()).is_feasible());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CandidateView {
    slots: Vec<TransactionSlot>,
    scratch: PreparedWorkload,
    refresher: BoundRefresher,
    /// Per-component period reciprocals — periods are invariant across
    /// candidate swaps, so the kernel's retimed rebuilds re-use these
    /// instead of re-deriving a reciprocal (a 128-bit division) per
    /// column per swap.
    reciprocals: Vec<Reciprocal>,
    choice: Vec<usize>,
    /// The choice at the last finalize — the state
    /// [`WorkloadView::revert`] rolls pending swaps back to.
    committed: Vec<usize>,
    /// Transactions patched since the last finalize.
    dirty: Vec<usize>,
    /// Reused repair buffers (previous order minus dirty blocks; the dirty
    /// blocks' merged run).
    order_rest: Vec<usize>,
    merge_buf: Vec<usize>,
}

impl CandidateView {
    /// Builds the view over `system`, positioned at candidate 0 of every
    /// transaction with its prepared state finalized.
    #[must_use]
    pub fn new(system: &TransactionSystem) -> Self {
        let transactions = system.transactions();
        let choice = vec![0usize; transactions.len()];
        let mut scratch =
            PreparedWorkload::from_components(combination_components(system, &choice));
        let mut slots = Vec::with_capacity(transactions.len());
        let mut start =
            scratch.components().len() - transactions.iter().map(Transaction::len).sum::<usize>();
        for transaction in transactions {
            let candidates = (0..transaction.candidate_count())
                .map(|candidate| {
                    let components = candidate_components(transaction, candidate);
                    let mut sorted: Vec<u32> = (0..components.len() as u32).collect();
                    sorted.sort_by_key(|&pos| (components[pos as usize].first_deadline(), pos));
                    CandidateBlock { components, sorted }
                })
                .collect();
            slots.push(TransactionSlot {
                start,
                len: transaction.len(),
                candidates,
            });
            start += transaction.len();
        }
        let mut refresher = BoundRefresher::new(scratch.components());
        let reciprocals: Vec<Reciprocal> = scratch
            .components()
            .iter()
            .map(|c| Reciprocal::new(c.period().map_or(1, Time::as_u64)))
            .collect();
        let exceeds_one = scratch.utilization_exceeds_one();
        let bounds =
            (!exceeds_one).then(|| refresher.refresh_with_utilization(scratch.components(), false));
        let mut order: Vec<usize> = (0..scratch.components().len()).collect();
        order.sort_by_key(|&i| scratch.components()[i].first_deadline());
        scratch.install_retimed_state(order, bounds, Some(&reciprocals));
        CandidateView {
            slots,
            scratch,
            refresher,
            reciprocals,
            committed: choice.clone(),
            choice,
            dirty: Vec::new(),
            order_rest: Vec::new(),
            merge_buf: Vec::new(),
        }
    }

    /// The current candidate choice (one original candidate index per
    /// transaction).
    #[must_use]
    pub fn choice(&self) -> &[usize] {
        &self.choice
    }

    /// The component vector of the current combination — always up to
    /// date, even between [`CandidateView::set_candidate`] and
    /// [`CandidateView::prepared`] (the density screen reads this without
    /// forcing the order/kernel/bounds repair).
    #[must_use]
    pub fn components(&self) -> &[DemandComponent] {
        self.scratch.components()
    }

    /// Exact `U > 1` comparison — **combination-invariant** (candidate
    /// swaps never move a cost or period), hence readable without
    /// finalizing.
    #[must_use]
    pub fn utilization_exceeds_one(&self) -> bool {
        self.scratch.utilization_exceeds_one()
    }

    /// Swaps transaction `transaction` to candidate `candidate`, patching
    /// only that transaction's component block.  A no-op when the
    /// candidate is already selected.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set_candidate(&mut self, transaction: usize, candidate: usize) {
        if self.choice[transaction] == candidate {
            return;
        }
        self.choice[transaction] = candidate;
        let slot = &self.slots[transaction];
        let block = &slot.candidates[candidate];
        for (position, component) in block.components.iter().enumerate() {
            self.scratch
                .write_component_at(slot.start + position, *component);
        }
        if !self.dirty.contains(&transaction) {
            self.dirty.push(transaction);
        }
    }

    /// The prepared state of the current combination, finalizing any
    /// pending swaps (order merge-repair, in-place kernel rebuild, hinted
    /// bound refresh).  Observably identical to a cold
    /// `PreparedWorkload::from_components` of the same combination.
    pub fn prepared(&mut self) -> &PreparedWorkload {
        if !self.dirty.is_empty() {
            self.finalize();
        }
        &self.scratch
    }

    /// Repairs the derived state after one or more block swaps: the dirty
    /// blocks' indices are dropped from the previous deadline order (their
    /// relative order among the untouched components is still valid) and
    /// the blocks' pre-sorted runs are merged back in by
    /// `(first deadline, index)` — reproducing a stable full sort in
    /// `O(n)` — before the kernel columns and §4.3 bounds are refreshed.
    fn finalize(&mut self) {
        self.merge_buf.clear();
        for &transaction in &self.dirty {
            let slot = &self.slots[transaction];
            let block = &slot.candidates[self.choice[transaction]];
            self.merge_buf
                .extend(block.sorted.iter().map(|&pos| slot.start + pos as usize));
        }
        let mut order = self.scratch.take_deadline_order();
        {
            let components = self.scratch.components();
            if self.dirty.len() > 1 {
                self.merge_buf
                    .sort_by_key(|&i| (components[i].first_deadline(), i));
            }
            let slots = &self.slots;
            let dirty = &self.dirty;
            self.order_rest.clear();
            self.order_rest.extend(
                order
                    .iter()
                    .copied()
                    .filter(|&i| !dirty.iter().any(|&tr| slots[tr].contains(i))),
            );
            order.clear();
            let key = |i: usize| (components[i].first_deadline(), i);
            let (rest, fresh) = (&self.order_rest, &self.merge_buf);
            let (mut r, mut f) = (0, 0);
            while r < rest.len() && f < fresh.len() {
                if key(rest[r]) <= key(fresh[f]) {
                    order.push(rest[r]);
                    r += 1;
                } else {
                    order.push(fresh[f]);
                    f += 1;
                }
            }
            order.extend_from_slice(&rest[r..]);
            order.extend_from_slice(&fresh[f..]);
        }
        let bounds = (!self.scratch.utilization_exceeds_one()).then(|| {
            self.refresher
                .refresh_retimed(self.scratch.components(), false)
        });
        self.scratch
            .install_retimed_state(order, bounds, Some(&self.reciprocals));
        self.dirty.clear();
        self.committed.clone_from(&self.choice);
    }
}

impl WorkloadView for CandidateView {
    fn finalize(&mut self) -> &PreparedWorkload {
        self.prepared()
    }

    fn is_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Rolls pending (unfinalized) swaps back to the last finalized
    /// combination by re-patching the affected blocks; nothing to repair
    /// afterwards — the scratch's derived state still matches.
    fn revert(&mut self) {
        while let Some(transaction) = self.dirty.pop() {
            let candidate = self.committed[transaction];
            self.choice[transaction] = candidate;
            let slot = &self.slots[transaction];
            let block = &slot.candidates[candidate];
            for (position, component) in block.components.iter().enumerate() {
                self.scratch
                    .write_component_at(slot.start + position, *component);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// Tuning knobs of [`analyze_with`] — every switch preserves verdicts;
/// they exist for the equivalence tests and the benchmark ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Dominance-prune each transaction's candidate set before
    /// enumerating (engages only for exact tests; see
    /// [`dominant_candidates`]).
    pub prune: bool,
    /// Run the density screen before the exact test on every combination
    /// (engages only for exact tests).
    pub screen: bool,
    /// Fan the sweep out over the CPU cores when the pruned product is
    /// large enough.
    pub parallel: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            prune: true,
            screen: true,
            parallel: true,
        }
    }
}

/// Work accounting of one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Full candidate product of the system (saturating at `u128::MAX`).
    pub candidate_product: u128,
    /// Product remaining after dominance pruning.
    pub pruned_product: u128,
    /// Combinations actually visited (early exit and pruning make this
    /// less than the full product).
    pub combinations_examined: u64,
    /// Visited combinations decided by the density screen alone.
    pub combinations_screened: u64,
}

/// Result of a candidate-engine run: the combined [`Analysis`] plus the
/// witnessing combination and the work accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateAnalysis {
    /// The combined analysis (semantics of
    /// [`crate::transactions::analyze_transaction_system`]: infeasible on
    /// the first violated combination, unknown if any combination was
    /// inconclusive, iterations summed over the examined combinations;
    /// a screen-decided combination counts as one iteration).
    pub analysis: Analysis,
    /// The candidate combination (original candidate indices, one per
    /// transaction) whose analysis produced the infeasibility witness;
    /// `None` unless the verdict is infeasible.
    pub witness_choice: Option<Vec<usize>>,
    /// Work accounting.
    pub stats: EngineStats,
}

/// Outcome of one contiguous Gray-rank range.
struct ChunkOutcome {
    iterations: u64,
    max_examined: Option<Time>,
    all_decisive: bool,
    examined: u64,
    screened: u64,
    /// `(global rank, analysis, original candidate choice)` of the first
    /// infeasible combination found in this range.
    infeasible: Option<(u128, Analysis, Vec<usize>)>,
    /// The sweep's [`WorkBudget`] ran out before the range was covered.
    exhausted: bool,
}

/// The shared read-only context of one sweep.
struct Sweep<'a, T: ?Sized> {
    test: &'a T,
    /// Kept (pruned) candidate indices per transaction.
    kept: &'a [Vec<usize>],
    /// Radices of the pruned product (`kept[i].len()`).
    radices: &'a [usize],
    stop: &'a AtomicBool,
    screen: bool,
}

impl<T: FeasibilityTest + ?Sized> Sweep<'_, T> {
    /// Sweeps Gray ranks `start..end`, seeding the view by unranking.
    fn run(
        &self,
        view: &mut CandidateView,
        scratch: &mut AnalysisScratch,
        start: u128,
        end: u128,
    ) -> ChunkOutcome {
        let mut out = ChunkOutcome {
            iterations: 0,
            max_examined: None,
            all_decisive: true,
            examined: 0,
            screened: 0,
            infeasible: None,
            exhausted: false,
        };
        let mut gray = MixedRadixGray::at_rank(self.radices, start);
        for (transaction, &digit) in gray.digits().iter().enumerate() {
            view.set_candidate(transaction, self.kept[transaction][digit]);
        }
        let mut rank = start;
        while rank < end && !self.stop.load(Ordering::Relaxed) {
            // One work unit per candidate combination, charged against
            // the scratch's budget; the inner analysis meters its own
            // demand-walk/refinement units against the same budget
            // through the shared scratch.
            let mut budget = scratch.budget();
            let admitted = budget.charge(1);
            scratch.set_budget(budget);
            if !admitted {
                out.exhausted = true;
                out.all_decisive = false;
                break;
            }
            out.examined += 1;
            if self.screen && density_screen_feasible(view.components()) {
                out.screened += 1;
                out.iterations = out.iterations.saturating_add(1);
            } else {
                let analysis = self.test.analyze_view_with(view, scratch);
                out.iterations = out.iterations.saturating_add(analysis.iterations);
                out.max_examined = out.max_examined.max(analysis.max_examined_interval);
                match analysis.verdict {
                    Verdict::Infeasible => {
                        out.infeasible = Some((rank, analysis, view.choice().to_vec()));
                        self.stop.store(true, Ordering::Relaxed);
                        break;
                    }
                    Verdict::Unknown => {
                        out.all_decisive = false;
                        if analysis.budget_exhausted() {
                            out.exhausted = true;
                            break;
                        }
                    }
                    Verdict::Feasible => {}
                }
            }
            rank += 1;
            if rank < end {
                let changed = gray.advance().expect("rank below the pruned product");
                view.set_candidate(changed, self.kept[changed][gray.digits()[changed]]);
            }
        }
        out
    }
}

/// Runs `test` on the candidate combinations of `system` through the full
/// engine (dominance pruning, density screen, Gray-code incremental swaps,
/// parallel early-exit sweep) with the default [`EngineConfig`].
///
/// Verdicts equal [`reference`](fn@reference)'s for the stock tests — exactly, as
/// asserted by the `candidate_equivalence` property suite — and the
/// reported witness is genuine: re-analyzing
/// [`CandidateAnalysis::witness_choice`] from scratch reproduces the
/// overload bit for bit.
#[must_use]
pub fn analyze(
    test: &(impl FeasibilityTest + Sync + ?Sized),
    system: &TransactionSystem,
) -> CandidateAnalysis {
    analyze_with(test, system, &EngineConfig::default())
}

/// [`analyze`] with explicit [`EngineConfig`] knobs.
#[must_use]
pub fn analyze_with(
    test: &(impl FeasibilityTest + Sync + ?Sized),
    system: &TransactionSystem,
    config: &EngineConfig,
) -> CandidateAnalysis {
    analyze_budgeted(test, system, config, &mut WorkBudget::unlimited())
}

/// [`analyze_with`] under a [`WorkBudget`]: every candidate combination
/// charges one work unit, and the per-combination analyses meter their
/// own loop units against the same budget.  Exhaustion unwinds to an
/// honest [`Verdict::Unknown`] carrying a [`Progress`] record
/// ([`ProgressPhase::CandidateSweep`]); an infeasibility witness found
/// before the budget ran out is still reported (it is exact regardless
/// of what was left unexamined).
///
/// A **limited** budget forces the serial sweep (`config.parallel` is
/// ignored): exhaustion must cut the sweep at a deterministic
/// combination, and the racy early-exit of the parallel sweep cannot
/// guarantee that.  Unlimited budgets keep the configured parallelism.
#[must_use]
pub fn analyze_budgeted(
    test: &(impl FeasibilityTest + Sync + ?Sized),
    system: &TransactionSystem,
    config: &EngineConfig,
    budget: &mut WorkBudget,
) -> CandidateAnalysis {
    let exact = test.is_exact();
    let kept: Vec<Vec<usize>> = system
        .transactions()
        .iter()
        .map(|transaction| {
            if config.prune && exact {
                dominant_candidates(transaction)
            } else {
                (0..transaction.candidate_count()).collect()
            }
        })
        .collect();
    let radices: Vec<usize> = kept.iter().map(Vec::len).collect();
    let candidate_product = system.transactions().iter().fold(1u128, |acc, t| {
        acc.saturating_mul(t.candidate_count() as u128)
    });
    let pruned_product = radices
        .iter()
        .fold(1u128, |acc, &r| acc.saturating_mul(r as u128));
    let sweep = Sweep {
        test,
        kept: &kept,
        radices: &radices,
        stop: &AtomicBool::new(false),
        screen: config.screen && exact,
    };

    let workers = thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1) as u128;
    // One view is always needed; its combination-invariant `U > 1` flag
    // also decides the dispatch (an overloaded system is rejected by the
    // test at the very first combination — never worth the parallel
    // spin-up).
    let mut first_view = CandidateView::new(system);
    let limited = budget.limit() != u64::MAX;
    let outcomes: Vec<ChunkOutcome> = if limited
        || !config.parallel
        || workers <= 1
        || pruned_product < PARALLEL_MIN_PRODUCT
        || first_view.utilization_exceeds_one()
    {
        let mut scratch = AnalysisScratch::new();
        scratch.set_budget(*budget);
        let outcome = sweep.run(&mut first_view, &mut scratch, 0, pruned_product);
        *budget = scratch.take_budget();
        vec![outcome]
    } else {
        drop(first_view);
        let chunk_count = (workers * CHUNKS_PER_WORKER).min(pruned_product);
        let chunk_len = pruned_product.div_ceil(chunk_count);
        let ranges: Vec<(u128, u128)> = (0..chunk_count)
            .map(|i| {
                let start = i * chunk_len;
                (start, (start + chunk_len).min(pruned_product))
            })
            .filter(|&(start, end)| start < end)
            .collect();
        parallel_map_with(
            &ranges,
            || (CandidateView::new(system), AnalysisScratch::new()),
            |(view, scratch), &(start, end)| sweep.run(view, scratch, start, end),
        )
    };

    let mut stats = EngineStats {
        candidate_product,
        pruned_product,
        ..EngineStats::default()
    };
    let mut iterations: u64 = 0;
    let mut max_examined: Option<Time> = None;
    let mut all_decisive = true;
    let mut exhausted = false;
    let mut witness: Option<(u128, Analysis, Vec<usize>)> = None;
    for outcome in outcomes {
        iterations = iterations.saturating_add(outcome.iterations);
        max_examined = max_examined.max(outcome.max_examined);
        all_decisive &= outcome.all_decisive;
        exhausted |= outcome.exhausted;
        stats.combinations_examined += outcome.examined;
        stats.combinations_screened += outcome.screened;
        if let Some(found) = outcome.infeasible {
            if witness.as_ref().is_none_or(|best| found.0 < best.0) {
                witness = Some(found);
            }
        }
    }
    match witness {
        Some((_, found, choice)) => CandidateAnalysis {
            analysis: Analysis {
                verdict: Verdict::Infeasible,
                iterations,
                max_examined_interval: max_examined,
                overload: found.overload,
                progress: None,
            },
            witness_choice: Some(choice),
            stats,
        },
        None => CandidateAnalysis {
            analysis: Analysis {
                verdict: if all_decisive {
                    Verdict::Feasible
                } else {
                    Verdict::Unknown
                },
                iterations,
                max_examined_interval: max_examined,
                overload: None,
                progress: exhausted.then(|| Progress {
                    units_spent: budget.spent(),
                    phase: ProgressPhase::CandidateSweep,
                    certified_interval: None,
                    bounded_level: None,
                }),
            },
            witness_choice: None,
            stats,
        },
    }
}

/// The retained naive path: the **full** candidate product in
/// lexicographic order, one cold [`PreparedWorkload`] per combination, no
/// pruning, no screen, no incremental state — byte-for-byte the PR 2
/// semantics of
/// [`analyze_transaction_system`](crate::transactions::analyze_transaction_system).
/// Deliberately slow; the correctness baseline of the property tests and
/// the performance baseline of the `transactions` benchmark.
#[must_use]
pub fn reference(
    test: &(impl FeasibilityTest + ?Sized),
    system: &TransactionSystem,
) -> CandidateAnalysis {
    let radices: Vec<usize> = system
        .transactions()
        .iter()
        .map(Transaction::candidate_count)
        .collect();
    let candidate_product = radices
        .iter()
        .fold(1u128, |acc, &r| acc.saturating_mul(r as u128));
    let mut stats = EngineStats {
        candidate_product,
        pruned_product: candidate_product,
        ..EngineStats::default()
    };
    let mut choice = vec![0usize; radices.len()];
    let mut iterations: u64 = 0;
    let mut max_examined: Option<Time> = None;
    let mut all_decisive = true;
    loop {
        stats.combinations_examined += 1;
        let prepared = PreparedWorkload::from_components(combination_components(system, &choice));
        let analysis = test.analyze_prepared(&prepared);
        iterations = iterations.saturating_add(analysis.iterations);
        max_examined = max_examined.max(analysis.max_examined_interval);
        match analysis.verdict {
            Verdict::Infeasible => {
                return CandidateAnalysis {
                    analysis: Analysis {
                        verdict: Verdict::Infeasible,
                        iterations,
                        max_examined_interval: max_examined,
                        overload: analysis.overload,
                        progress: None,
                    },
                    witness_choice: Some(choice),
                    stats,
                };
            }
            Verdict::Unknown => all_decisive = false,
            Verdict::Feasible => {}
        }
        if !advance_lex(&mut choice, &radices) {
            break;
        }
    }
    CandidateAnalysis {
        analysis: Analysis {
            verdict: if all_decisive {
                Verdict::Feasible
            } else {
                Verdict::Unknown
            },
            iterations,
            max_examined_interval: max_examined,
            overload: None,
            progress: None,
        },
        witness_choice: None,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::{DeviTest, ProcessorDemandTest, QpaTest};
    use edf_model::{Task, TaskSet, TransactionPart};

    fn part(o: u64, c: u64, d: u64) -> TransactionPart {
        TransactionPart::new(Time::new(o), Time::new(c), Time::new(d))
    }

    fn tr(period: u64, parts: Vec<TransactionPart>) -> Transaction {
        Transaction::new(Time::new(period), parts).expect("valid transaction")
    }

    #[test]
    fn gray_sequence_covers_the_product_with_unit_steps() {
        for radices in [
            vec![1usize],
            vec![2, 3],
            vec![3, 1, 2],
            vec![1, 1, 1],
            vec![4, 2, 3, 2],
        ] {
            let product: usize = radices.iter().product();
            let mut gray = MixedRadixGray::new(&radices);
            assert_eq!(gray.total(), product as u128);
            let mut seen = vec![gray.digits().to_vec()];
            while let Some(changed) = gray.advance() {
                let previous = seen.last().unwrap().clone();
                let current = gray.digits().to_vec();
                let diffs: Vec<usize> = (0..radices.len())
                    .filter(|&i| previous[i] != current[i])
                    .collect();
                assert_eq!(diffs, vec![changed], "exactly one digit changes");
                assert_eq!(
                    previous[changed].abs_diff(current[changed]),
                    1,
                    "the changed digit moves by one"
                );
                seen.push(current);
            }
            assert_eq!(gray.rank(), product as u128 - 1);
            assert_eq!(seen.len(), product);
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), product, "no combination repeats");
        }
    }

    #[test]
    fn gray_unranking_continues_the_global_sequence() {
        let radices = vec![3usize, 2, 4];
        let mut gray = MixedRadixGray::new(&radices);
        let mut full = vec![gray.digits().to_vec()];
        while gray.advance().is_some() {
            full.push(gray.digits().to_vec());
        }
        for start in 0..full.len() {
            let mut seeded = MixedRadixGray::at_rank(&radices, start as u128);
            assert_eq!(seeded.digits(), full[start].as_slice(), "seed at {start}");
            let mut walked = vec![seeded.digits().to_vec()];
            while seeded.advance().is_some() {
                walked.push(seeded.digits().to_vec());
            }
            assert_eq!(walked.as_slice(), &full[start..], "suffix from {start}");
        }
    }

    #[test]
    #[should_panic]
    fn gray_rejects_out_of_range_ranks() {
        let _ = MixedRadixGray::at_rank(&[2, 2], 4);
    }

    #[test]
    fn duplicate_offsets_are_pruned_to_one_candidate() {
        let transaction = tr(30, vec![part(0, 3, 9), part(0, 2, 8), part(15, 4, 10)]);
        assert_eq!(dominant_candidates(&transaction), vec![0, 2]);
        // All parts released together: the classic burst collapses to one
        // candidate.
        let burst = tr(30, vec![part(5, 1, 4), part(5, 2, 9), part(5, 3, 12)]);
        assert_eq!(dominant_candidates(&burst), vec![0]);
        // Symmetric parts: identical (C, D) spaced half a period apart
        // yield identical sorted blocks.
        let symmetric = tr(20, vec![part(0, 2, 5), part(10, 2, 5)]);
        assert_eq!(dominant_candidates(&symmetric), vec![0]);
        // Distinct offsets with asymmetric parts keep every candidate.
        let distinct = tr(20, vec![part(0, 2, 5), part(7, 3, 9)]);
        assert_eq!(dominant_candidates(&distinct), vec![0, 1]);
    }

    #[test]
    fn density_screen_is_exact_on_the_boundary() {
        // Σ C/min(D', T) == 1 exactly: the screen must accept.
        let boundary = vec![
            DemandComponent::periodic(Time::new(1), Time::new(2), Time::new(4)),
            DemandComponent::periodic(Time::new(1), Time::new(2), Time::new(4)),
        ];
        assert!(density_screen_feasible(&boundary));
        // One tick more and it must refuse.
        let over = vec![
            DemandComponent::periodic(Time::new(1), Time::new(2), Time::new(4)),
            DemandComponent::periodic(Time::new(2), Time::new(3), Time::new(4)),
        ];
        assert!(!density_screen_feasible(&over));
        // Zero-deadline components are refused conservatively.
        let degenerate = vec![DemandComponent::one_shot(
            Time::new(1),
            Time::ZERO,
            Time::ZERO,
        )];
        assert!(!density_screen_feasible(&degenerate));
    }

    #[test]
    fn view_swaps_match_cold_preparations() {
        let system = TransactionSystem::new(
            TaskSet::from_tasks(vec![Task::from_ticks(1, 5, 10).unwrap()]),
            vec![
                tr(12, vec![part(0, 2, 6), part(6, 2, 6)]),
                tr(15, vec![part(2, 1, 3), part(9, 2, 5), part(11, 1, 4)]),
            ],
        );
        let mut view = CandidateView::new(&system);
        let swaps = [(0, 1), (1, 2), (1, 0), (0, 0), (1, 1), (0, 1), (1, 2)];
        let mut choice = vec![0usize, 0];
        for (transaction, candidate) in swaps {
            choice[transaction] = candidate;
            view.set_candidate(transaction, candidate);
            let cold = PreparedWorkload::from_components(combination_components(&system, &choice));
            let probed = view.prepared();
            assert_eq!(probed.components(), cold.components());
            assert_eq!(probed.deadline_order(), cold.deadline_order());
            assert_eq!(probed.bounds(), cold.bounds());
            assert_eq!(probed.utilization().to_bits(), cold.utilization().to_bits());
            for test in [
                Box::new(ProcessorDemandTest::new()) as crate::BoxedTest,
                Box::new(QpaTest::new()),
            ] {
                assert_eq!(
                    test.analyze_prepared(probed),
                    test.analyze_prepared(&cold),
                    "{} diverges after swap ({transaction}, {candidate})",
                    test.name()
                );
            }
        }
    }

    #[test]
    fn lazy_swaps_coalesce_across_screened_combinations() {
        // Two consecutive swaps without an intervening prepared() call:
        // the finalize must repair both blocks at once.
        let system = TransactionSystem::new(
            TaskSet::new(),
            vec![
                tr(10, vec![part(0, 2, 4), part(5, 2, 4)]),
                tr(15, vec![part(2, 1, 3), part(9, 2, 5)]),
            ],
        );
        let mut view = CandidateView::new(&system);
        view.set_candidate(0, 1);
        view.set_candidate(1, 1);
        let cold = PreparedWorkload::from_components(combination_components(&system, &[1, 1]));
        let probed = view.prepared();
        assert_eq!(probed.components(), cold.components());
        assert_eq!(probed.deadline_order(), cold.deadline_order());
        assert_eq!(probed.bounds(), cold.bounds());
    }

    #[test]
    fn engine_and_reference_agree_on_small_systems() {
        let systems = vec![
            TransactionSystem::new(
                TaskSet::from_tasks(vec![Task::from_ticks(1, 5, 10).unwrap()]),
                vec![tr(12, vec![part(0, 2, 6), part(6, 2, 6)])],
            ),
            TransactionSystem::new(
                TaskSet::new(),
                vec![
                    tr(10, vec![part(0, 2, 4), part(5, 2, 4)]),
                    tr(15, vec![part(2, 1, 3), part(9, 2, 5)]),
                ],
            ),
            // Infeasible (U = 1 with a concentrated burst).
            TransactionSystem::new(
                TaskSet::from_tasks(vec![Task::from_ticks(2, 2, 8).unwrap()]),
                vec![tr(8, vec![part(0, 3, 3), part(4, 3, 3)])],
            ),
            // Overloaded.
            TransactionSystem::new(
                TaskSet::new(),
                vec![tr(10, vec![part(0, 6, 6), part(5, 6, 6)])],
            ),
        ];
        for system in &systems {
            for test in [
                Box::new(QpaTest::new()) as crate::BoxedTest,
                Box::new(ProcessorDemandTest::new()),
                Box::new(DeviTest::new()),
            ] {
                let engine = analyze(test.as_ref(), system);
                let naive = reference(test.as_ref(), system);
                assert_eq!(
                    engine.analysis.verdict,
                    naive.analysis.verdict,
                    "{} diverges on {system}",
                    test.name()
                );
                if let Some(choice) = &engine.witness_choice {
                    let cold =
                        PreparedWorkload::from_components(combination_components(system, choice));
                    let replay = test.analyze_prepared(&cold);
                    assert_eq!(replay.verdict, Verdict::Infeasible);
                    assert_eq!(replay.overload, engine.analysis.overload);
                }
            }
        }
    }

    #[test]
    fn engine_knobs_do_not_change_verdicts() {
        let system = TransactionSystem::new(
            TaskSet::from_tasks(vec![Task::from_ticks(1, 4, 8).unwrap()]),
            vec![
                tr(12, vec![part(0, 2, 6), part(0, 2, 6), part(6, 2, 6)]),
                tr(15, vec![part(2, 1, 3), part(9, 2, 5)]),
            ],
        );
        let test = QpaTest::new();
        let configs = [
            EngineConfig::default(),
            EngineConfig {
                prune: false,
                screen: false,
                parallel: false,
            },
            EngineConfig {
                prune: true,
                screen: false,
                parallel: false,
            },
            EngineConfig {
                prune: false,
                screen: true,
                parallel: true,
            },
        ];
        let baseline = reference(&test, &system);
        for config in configs {
            let run = analyze_with(&test, &system, &config);
            assert_eq!(
                run.analysis.verdict, baseline.analysis.verdict,
                "{config:?}"
            );
            assert!(run.stats.pruned_product <= run.stats.candidate_product);
        }
        // Pruning actually fires: the duplicate-offset candidates collapse
        // and the burst anchor (both deadline-6 parts at the window start)
        // additionally dominates the lone deadline-12 anchor.
        let pruned = analyze(&test, &system);
        assert_eq!(pruned.stats.candidate_product, 6);
        assert_eq!(pruned.stats.pruned_product, 2);
    }

    #[test]
    fn screen_skips_exact_tests_but_never_sufficient_ones() {
        let system = TransactionSystem::new(
            TaskSet::new(),
            vec![tr(
                40,
                vec![part(0, 1, 20), part(13, 1, 20), part(27, 1, 20)],
            )],
        );
        let exact = analyze(&QpaTest::new(), &system);
        assert_eq!(exact.analysis.verdict, Verdict::Feasible);
        assert_eq!(
            exact.stats.combinations_screened, exact.stats.combinations_examined,
            "a low-density system is decided entirely by the screen"
        );
        let sufficient = analyze(&DeviTest::new(), &system);
        assert_eq!(sufficient.stats.combinations_screened, 0);
        assert_eq!(
            sufficient.stats.pruned_product, sufficient.stats.candidate_product,
            "pruning is withheld from sufficient tests"
        );
    }
}
