//! Exact analysis of offset-transaction systems via critical-instant
//! candidates.
//!
//! The demand of an offset [`Transaction`] in a window of length `I` is
//! maximized when the window starts at the release of one of its parts
//! (the *critical-instant candidates*); anchoring at part `c` shifts part
//! `j` to phase `(oⱼ − o_c) mod T`.  Transactions release independently of
//! each other, so the system's demand bound is
//!
//! ```text
//! dbf(I) = Σ_sporadic dbf(I)  +  Σ_tr max_c dbf_tr,c(I)
//! ```
//!
//! and `dbf(I) ≤ I` for all `I` holds **iff it holds for every
//! combination** of per-transaction candidates.  Each combination is an
//! ordinary component list, so the unchanged feasibility tests analyze it
//! through [`FeasibilityTest::analyze_prepared`] — no per-test
//! special-casing, which is the point of the [`Workload`] abstraction.
//! The combination count is the product of the transaction sizes
//! ([`TransactionSystem::candidate_count`]).
//!
//! [`analyze_transaction_system`] runs the product through the
//! [`candidate engine`](crate::candidates): dominance-pruned candidate
//! sets, a density screen, Gray-code incremental re-preparation and a
//! parallel early-exit sweep — see that module for how each layer stays
//! verdict-preserving.  The naive re-preparing enumeration survives as
//! [`crate::candidates::reference`], and [`exhaustive_transaction_check`]
//! pushes every combination through the naive exhaustive demand sweep as
//! an independent oracle.
//!
//! The plain [`Workload`] impl of [`TransactionSystem`] is the synchronous
//! conservative over-approximation (offsets dropped); use it when even the
//! pruned candidate product is too large and a sufficient answer is
//! enough.
//!
//! # Examples
//!
//! ```
//! use edf_analysis::tests::ProcessorDemandTest;
//! use edf_analysis::transactions::analyze_transaction_system;
//! use edf_analysis::{FeasibilityTest, Verdict, Workload};
//! use edf_model::{TaskSet, Time, Transaction, TransactionPart, TransactionSystem};
//!
//! # fn main() -> Result<(), edf_model::TransactionError> {
//! // Two heavy parts that are feasible *because* their offsets keep them
//! // apart: the synchronous over-approximation cannot prove feasibility
//! // (its rejection is demoted to unknown), the candidate-exact analysis
//! // accepts.
//! let transaction = Transaction::new(
//!     Time::new(20),
//!     vec![
//!         TransactionPart::new(Time::new(0), Time::new(4), Time::new(4)),
//!         TransactionPart::new(Time::new(10), Time::new(4), Time::new(4)),
//!     ],
//! )?;
//! let system = TransactionSystem::new(TaskSet::new(), vec![transaction]);
//! let test = ProcessorDemandTest::new();
//! assert_eq!(test.analyze_workload(&system).verdict, Verdict::Unknown);
//! assert_eq!(analyze_transaction_system(&test, &system).verdict, Verdict::Feasible);
//! # Ok(())
//! # }
//! ```

use core::fmt;

use edf_model::{Time, Transaction, TransactionSystem};

use crate::analysis::{Analysis, FeasibilityTest, Verdict};
use crate::candidates::{self, advance_lex};
use crate::exhaustive::exhaustive_check_workload;
use crate::workload::{DemandComponent, PreparedWorkload, Workload};

/// The component list of one critical-instant candidate of a transaction:
/// part `j` at phase `(oⱼ − o_candidate) mod T`, repeating every period.
///
/// # Panics
///
/// Panics if `candidate` is out of range.
#[must_use]
pub fn candidate_components(transaction: &Transaction, candidate: usize) -> Vec<DemandComponent> {
    assert!(
        candidate < transaction.candidate_count(),
        "candidate index out of range"
    );
    transaction
        .parts()
        .iter()
        .enumerate()
        .map(|(part, p)| {
            DemandComponent::periodic_from(
                p.wcet(),
                p.deadline(),
                transaction.period(),
                transaction.candidate_phase(candidate, part),
            )
        })
        .collect()
}

/// The component list of one candidate *combination* (`choice[i]` picks
/// the candidate of transaction `i`), including the sporadic tasks.
///
/// # Panics
///
/// Panics if `choice` has the wrong length or an index is out of range.
#[must_use]
pub fn combination_components(
    system: &TransactionSystem,
    choice: &[usize],
) -> Vec<DemandComponent> {
    assert_eq!(
        choice.len(),
        system.transactions().len(),
        "one candidate index per transaction"
    );
    let mut components = Workload::demand_components(system.sporadic());
    for (transaction, &candidate) in system.transactions().iter().zip(choice) {
        components.extend(candidate_components(transaction, candidate));
    }
    components
}

/// Largest candidate product [`candidate_workloads`] will materialize:
/// each combination costs a full prepared component vector, so products
/// beyond this are an out-of-memory hazard, not a working set.
pub const MAX_MATERIALIZED_COMBINATIONS: usize = 1 << 20;

/// Error of [`candidate_workloads`]: the candidate product is too large to
/// materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProductTooLarge {
    /// The product, `None` when it overflows `usize` outright.
    pub combinations: Option<usize>,
}

impl fmt::Display for ProductTooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.combinations {
            Some(count) => write!(
                f,
                "candidate product of {count} combinations exceeds the \
                 materialization cap of {MAX_MATERIALIZED_COMBINATIONS}; \
                 enumerate lazily (analyze_transaction_system) instead"
            ),
            None => write!(
                f,
                "candidate product overflows usize; enumerate lazily \
                 (analyze_transaction_system) instead"
            ),
        }
    }
}

impl std::error::Error for ProductTooLarge {}

/// All candidate combinations of `system`, each prepared for analysis.
///
/// The result has [`TransactionSystem::candidate_count`] entries — the
/// product is exponential in the number of transactions, so products
/// beyond [`MAX_MATERIALIZED_COMBINATIONS`] (or overflowing `usize`) are
/// refused with a [`ProductTooLarge`] error instead of exhausting memory;
/// [`analyze_transaction_system`] enumerates lazily and has no such limit.
///
/// # Errors
///
/// Returns [`ProductTooLarge`] when the candidate product exceeds the cap.
pub fn candidate_workloads(
    system: &TransactionSystem,
) -> Result<Vec<PreparedWorkload>, ProductTooLarge> {
    match system.candidate_count_checked() {
        Some(count) if count <= MAX_MATERIALIZED_COMBINATIONS => Ok(CombinationIter::new(system)
            .map(|choice| {
                PreparedWorkload::from_components(combination_components(system, &choice))
            })
            .collect()),
        combinations => Err(ProductTooLarge { combinations }),
    }
}

/// Iterator over every candidate combination of a system in lexicographic
/// order (the last transaction's candidate varies fastest).
///
/// Backed by the allocation-free mixed-radix core of
/// [`crate::candidates`]: the counter advances one digit in place, and the
/// only allocation per step is the `Vec` this iterator must hand out by
/// its signature.  The engine and the naive reference never materialize
/// choice vectors at all; this type exists for callers that want to drive
/// the enumeration themselves.
///
/// # Examples
///
/// ```
/// use edf_analysis::transactions::CombinationIter;
/// use edf_model::{TaskSet, Time, Transaction, TransactionPart, TransactionSystem};
///
/// # fn main() -> Result<(), edf_model::TransactionError> {
/// let tr = |offsets: &[u64]| {
///     Transaction::new(
///         Time::new(10),
///         offsets
///             .iter()
///             .map(|&o| TransactionPart::new(Time::new(o), Time::new(1), Time::new(3)))
///             .collect(),
///     )
/// };
/// let system = TransactionSystem::new(TaskSet::new(), vec![tr(&[0, 4])?, tr(&[0, 3, 6])?]);
/// assert_eq!(CombinationIter::new(&system).count(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CombinationIter {
    radices: Vec<usize>,
    current: Vec<usize>,
    done: bool,
}

impl CombinationIter {
    /// Starts the enumeration at the all-zero combination.
    #[must_use]
    pub fn new(system: &TransactionSystem) -> Self {
        let radices: Vec<usize> = system
            .transactions()
            .iter()
            .map(Transaction::candidate_count)
            .collect();
        CombinationIter {
            current: vec![0; radices.len()],
            radices,
            done: false,
        }
    }
}

impl Iterator for CombinationIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let item = self.current.clone();
        self.done = !advance_lex(&mut self.current, &self.radices);
        Some(item)
    }
}

/// Runs `test` on every candidate combination of `system` and combines the
/// verdicts: the system is feasible iff **every** combination is.
///
/// The sweep runs through the [`candidate engine`](crate::candidates):
/// dominance-pruned candidate sets and a density screen (both engaged only
/// for exact tests, where they are verdict-preserving), Gray-code
/// incremental re-preparation, and a parallel early-exit fan-out for large
/// pruned products.  The enumeration stops at the first infeasible
/// combination (its overload witness is reported; use
/// [`crate::candidates::analyze`] directly to also obtain the witnessing
/// combination); an inconclusive combination demotes a feasible outcome to
/// [`Verdict::Unknown`].  Iterations are summed over the combinations
/// examined, counting a screen-decided combination as one.  With an exact
/// test the result is the exact verdict of the offset-transaction system;
/// with a sufficient test it is sufficient.
#[must_use]
pub fn analyze_transaction_system(
    test: &(impl FeasibilityTest + Sync + ?Sized),
    system: &TransactionSystem,
) -> Analysis {
    candidates::analyze(test, system).analysis
}

/// The exhaustive reference oracle for transaction systems: every
/// candidate combination is checked by the naive
/// [`exhaustive_check_workload`] sweep.  Deliberately slow; exists to
/// cross-validate [`analyze_transaction_system`] on small systems.
#[must_use]
pub fn exhaustive_transaction_check(system: &TransactionSystem) -> Analysis {
    let mut iterations: u64 = 0;
    let mut max_examined: Option<Time> = None;
    let mut all_decisive = true;
    for choice in CombinationIter::new(system) {
        let prepared = PreparedWorkload::from_components(combination_components(system, &choice));
        let analysis = exhaustive_check_workload(&prepared);
        iterations += analysis.iterations;
        max_examined = max_examined.max(analysis.max_examined_interval);
        match analysis.verdict {
            Verdict::Infeasible => {
                return Analysis {
                    verdict: Verdict::Infeasible,
                    iterations,
                    max_examined_interval: max_examined,
                    overload: analysis.overload,
                    progress: None,
                };
            }
            Verdict::Unknown => all_decisive = false,
            Verdict::Feasible => {}
        }
    }
    Analysis {
        verdict: if all_decisive {
            Verdict::Feasible
        } else {
            Verdict::Unknown
        },
        iterations,
        max_examined_interval: max_examined,
        overload: None,
        progress: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BoxedTest;
    use crate::tests::{DeviTest, ProcessorDemandTest, QpaTest};
    use edf_model::{Task, TaskSet, TransactionPart};

    fn part(o: u64, c: u64, d: u64) -> TransactionPart {
        TransactionPart::new(Time::new(o), Time::new(c), Time::new(d))
    }

    fn tr(period: u64, parts: Vec<TransactionPart>) -> Transaction {
        Transaction::new(Time::new(period), parts).expect("valid transaction")
    }

    #[test]
    fn candidate_components_rephase_the_parts() {
        let t = tr(20, vec![part(0, 2, 5), part(8, 3, 6)]);
        let anchored_at_1 = candidate_components(&t, 1);
        assert_eq!(anchored_at_1.len(), 2);
        // Part 1 sits at the window start, part 0 wraps to phase 12.
        assert_eq!(anchored_at_1[0].release_offset(), Time::new(12));
        assert_eq!(anchored_at_1[0].first_deadline(), Time::new(17));
        assert_eq!(anchored_at_1[1].release_offset(), Time::ZERO);
        assert_eq!(anchored_at_1[1].first_deadline(), Time::new(6));
    }

    #[test]
    fn combinations_cover_the_product() {
        let system = TransactionSystem::new(
            TaskSet::new(),
            vec![
                tr(10, vec![part(0, 1, 3), part(4, 1, 3)]),
                tr(15, vec![part(0, 1, 4), part(5, 1, 4), part(9, 1, 4)]),
            ],
        );
        let combos: Vec<Vec<usize>> = CombinationIter::new(&system).collect();
        assert_eq!(combos.len(), system.candidate_count());
        assert_eq!(combos.len(), 6);
        let mut unique = combos.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 6);
        assert_eq!(candidate_workloads(&system).unwrap().len(), 6);
    }

    #[test]
    fn huge_products_are_refused_not_materialized() {
        // 8 transactions of 12 candidates each: 12^8 ≈ 4.3·10^8 exceeds the
        // cap by orders of magnitude but still fits in usize.
        let wide = tr(24, (0..12).map(|o| part(2 * o, 1, 2)).collect());
        let system = TransactionSystem::new(TaskSet::new(), vec![wide; 8]);
        let error = candidate_workloads(&system).unwrap_err();
        assert_eq!(error.combinations, Some(12usize.pow(8)));
        assert!(error.to_string().contains("candidate product"));
        // The lazy analysis is still available (and instant: U > 1 is
        // combination-invariant, so the first combination rejects).
        assert!(system.utilization() > 1.0);
        let analysis = analyze_transaction_system(&QpaTest::new(), &system);
        assert_eq!(analysis.verdict, Verdict::Infeasible);
    }

    #[test]
    fn no_transactions_means_one_empty_combination() {
        let sporadic = TaskSet::from_tasks(vec![Task::from_ticks(1, 4, 8).unwrap()]);
        let system = TransactionSystem::new(sporadic.clone(), vec![]);
        let test = ProcessorDemandTest::new();
        assert_eq!(
            analyze_transaction_system(&test, &system).verdict,
            test.analyze(&sporadic).verdict
        );
        let empty = TransactionSystem::new(TaskSet::new(), vec![]);
        assert_eq!(
            analyze_transaction_system(&test, &empty).verdict,
            Verdict::Feasible
        );
    }

    #[test]
    fn offsets_can_rescue_a_synchronously_infeasible_system() {
        // Two 4/4 parts 10 apart in a period of 20: feasible thanks to the
        // offsets; the synchronous over-approximation cannot tell (its
        // internal rejection is demoted to Unknown, never Infeasible).
        let system = TransactionSystem::new(
            TaskSet::new(),
            vec![tr(20, vec![part(0, 4, 4), part(10, 4, 4)])],
        );
        let test = ProcessorDemandTest::new();
        assert_eq!(
            test.analyze_workload(&system).verdict,
            Verdict::Unknown,
            "pessimistic rejection must be demoted, not reported as Infeasible"
        );
        assert_eq!(
            analyze_transaction_system(&test, &system).verdict,
            Verdict::Feasible
        );
        assert_eq!(
            exhaustive_transaction_check(&system).verdict,
            Verdict::Feasible
        );
    }

    #[test]
    fn overutilized_systems_stay_infeasible_even_on_the_synchronous_path() {
        // U = 1.2 regardless of offsets, so the cheap synchronous path may
        // (and should) keep its definitive rejection: dropping offsets
        // preserves utilization.
        let system = TransactionSystem::new(
            TaskSet::new(),
            vec![tr(10, vec![part(0, 6, 6), part(5, 6, 6)])],
        );
        let test = ProcessorDemandTest::new();
        assert_eq!(test.analyze_workload(&system).verdict, Verdict::Infeasible);
        assert_eq!(
            analyze_transaction_system(&test, &system).verdict,
            Verdict::Infeasible
        );
    }

    #[test]
    fn genuinely_infeasible_systems_are_rejected_with_a_witness() {
        // U = 1 exactly, so the trivial utilization exit does not fire;
        // the demand violation at I = 3 must be found and witnessed.
        let system = TransactionSystem::new(
            TaskSet::from_tasks(vec![Task::from_ticks(2, 2, 8).unwrap()]),
            vec![tr(8, vec![part(0, 3, 3), part(4, 3, 3)])],
        );
        let analysis = analyze_transaction_system(&ProcessorDemandTest::new(), &system);
        assert_eq!(analysis.verdict, Verdict::Infeasible);
        let overload = analysis.overload.expect("witness reported");
        assert!(overload.demand > overload.interval);
        assert_eq!(
            exhaustive_transaction_check(&system).verdict,
            Verdict::Infeasible
        );
    }

    #[test]
    fn exact_tests_agree_with_the_exhaustive_oracle() {
        let systems = vec![
            TransactionSystem::new(
                TaskSet::from_tasks(vec![Task::from_ticks(1, 5, 10).unwrap()]),
                vec![tr(12, vec![part(0, 2, 6), part(6, 2, 6)])],
            ),
            TransactionSystem::new(
                TaskSet::new(),
                vec![
                    tr(10, vec![part(0, 2, 4), part(5, 2, 4)]),
                    tr(15, vec![part(2, 1, 3), part(9, 2, 5)]),
                ],
            ),
            TransactionSystem::new(
                TaskSet::new(),
                vec![tr(6, vec![part(0, 2, 3), part(3, 2, 3)])],
            ),
        ];
        for system in systems {
            let oracle = exhaustive_transaction_check(&system);
            assert!(oracle.verdict.is_decisive(), "oracle decisive on {system}");
            for test in [
                Box::new(ProcessorDemandTest::new()) as BoxedTest,
                Box::new(QpaTest::new()),
            ] {
                assert_eq!(
                    analyze_transaction_system(test.as_ref(), &system).verdict,
                    oracle.verdict,
                    "{} disagrees on {system}",
                    test.name()
                );
            }
        }
    }

    #[test]
    fn sufficient_tests_demote_to_unknown_not_infeasible() {
        // Devi cannot prove this tight system feasible; the combination
        // must be Unknown, never a false Infeasible.
        let system = TransactionSystem::new(
            TaskSet::from_tasks(vec![
                Task::from_ticks(1, 2, 10).unwrap(),
                Task::from_ticks(2, 3, 10).unwrap(),
                Task::from_ticks(5, 9, 10).unwrap(),
            ]),
            vec![tr(20, vec![part(0, 1, 9), part(7, 1, 9)])],
        );
        let devi = analyze_transaction_system(&DeviTest::new(), &system);
        assert_eq!(devi.verdict, Verdict::Unknown);
        let exact = analyze_transaction_system(&ProcessorDemandTest::new(), &system);
        assert!(exact.verdict.is_decisive());
    }
}
