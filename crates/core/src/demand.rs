//! The demand bound function and related workload abstractions (Def. 2).
//!
//! For a sporadic task `τ = (C, D, T)` released synchronously, the jobs
//! whose release *and* absolute deadline lie inside an interval of length
//! `I` are the first `⌊(I − D)/T⌋ + 1` jobs (for `I ≥ D`), giving the
//! classic demand bound function
//!
//! ```text
//! dbf(I, τ) = (⌊(I − D)/T⌋ + 1) · C      if I ≥ D
//!           = 0                           otherwise
//! ```
//!
//! The processor demand criterion (Def. 3) compares `dbf(I, Γ) = Σ dbf(I, τ)`
//! against the available capacity `I` at every interval where `dbf`
//! changes, i.e. at the absolute deadlines of jobs.  [`DeadlineIter`]
//! enumerates those absolute deadlines across a task set in ascending
//! order (a lazy k-way merge), which is the backbone of the processor
//! demand, dynamic-error and all-approximated tests.

use edf_model::{Task, TaskSet, Time};

use crate::workload::{DemandComponent, DemandEventIter};

/// Demand bound function of a single task for interval length `interval`
/// (Def. 2, split per task).
///
/// Saturates at `u64::MAX` ticks instead of overflowing; intervals anywhere
/// near that magnitude are far beyond any feasibility bound used by the
/// analyses.
///
/// # Examples
///
/// ```
/// use edf_analysis::demand::dbf_task;
/// use edf_model::{Task, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let tau = Task::new(Time::new(2), Time::new(4), Time::new(10))?;
/// assert_eq!(dbf_task(&tau, Time::new(3)), Time::ZERO);
/// assert_eq!(dbf_task(&tau, Time::new(4)), Time::new(2));
/// assert_eq!(dbf_task(&tau, Time::new(14)), Time::new(4));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn dbf_task(task: &Task, interval: Time) -> Time {
    if interval < task.deadline() {
        return Time::ZERO;
    }
    let jobs = (interval - task.deadline()).div_floor(task.period()) + 1;
    task.wcet().saturating_mul(jobs)
}

/// Number of jobs of `task` with release and deadline inside an interval of
/// length `interval` (the job count underlying [`dbf_task`]).
#[must_use]
pub fn jobs_with_deadline_in(task: &Task, interval: Time) -> u64 {
    if interval < task.deadline() {
        return 0;
    }
    (interval - task.deadline()).div_floor(task.period()) + 1
}

/// Demand bound function of a whole task set.
///
/// # Examples
///
/// ```
/// use edf_analysis::demand::dbf_set;
/// use edf_model::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let ts = TaskSet::from_tasks(vec![
///     Task::new(Time::new(1), Time::new(2), Time::new(4))?,
///     Task::new(Time::new(2), Time::new(6), Time::new(8))?,
/// ]);
/// assert_eq!(dbf_set(&ts, Time::new(6)), Time::new(4)); // 2 jobs of τ1 + 1 job of τ2
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn dbf_set(task_set: &TaskSet, interval: Time) -> Time {
    task_set.iter().fold(Time::ZERO, |acc, t| {
        acc.saturating_add(dbf_task(t, interval))
    })
}

/// Request bound function of a single task: cumulative execution time of
/// jobs *released* within an interval of length `interval` (used by the
/// synchronous busy period computation).
///
/// `rbf(I, τ) = ⌈I / T⌉ · C` for `I > 0` and `C` for `I = 0` (the job
/// released at the interval start).
#[must_use]
pub fn rbf_task(task: &Task, interval: Time) -> Time {
    let jobs = if interval.is_zero() {
        1
    } else {
        interval.div_ceil(task.period())
    };
    task.wcet().saturating_mul(jobs)
}

/// Request bound function of a task set.
#[must_use]
pub fn rbf_set(task_set: &TaskSet, interval: Time) -> Time {
    task_set.iter().fold(Time::ZERO, |acc, t| {
        acc.saturating_add(rbf_task(t, interval))
    })
}

/// The absolute deadline of the first job of `task` strictly *after*
/// `interval` under synchronous release (Lemma 5's `NextInt`).
///
/// For `interval < D` this is simply `D`.  Returns `None` on overflow.
///
/// # Examples
///
/// ```
/// use edf_analysis::demand::next_deadline_after;
/// use edf_model::{Task, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let tau = Task::new(Time::new(1), Time::new(4), Time::new(10))?;
/// assert_eq!(next_deadline_after(&tau, Time::new(0)), Some(Time::new(4)));
/// assert_eq!(next_deadline_after(&tau, Time::new(4)), Some(Time::new(14)));
/// assert_eq!(next_deadline_after(&tau, Time::new(15)), Some(Time::new(24)));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn next_deadline_after(task: &Task, interval: Time) -> Option<Time> {
    if interval < task.deadline() {
        return Some(task.deadline());
    }
    let k = (interval - task.deadline()).div_floor(task.period()) + 1;
    task.period().checked_mul(k)?.checked_add(task.deadline())
}

/// One entry produced by [`DeadlineIter`]: an absolute deadline and the
/// index of the task it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineEvent {
    /// Absolute deadline (interval length at which `dbf` increases).
    pub deadline: Time,
    /// Index of the task within the originating [`TaskSet`].
    pub task_index: usize,
}

/// Lazily merged stream of the absolute deadlines of all tasks of a set,
/// in non-decreasing order, up to (and including) `horizon`.
///
/// Ties between tasks are returned as separate events (one per job), which
/// lets callers accumulate per-job demand incrementally.
///
/// Since the columnar-kernel rebuild this is a thin wrapper over the
/// component-based
/// [`DemandEventIter`] (a task maps to
/// one component, so task indices and component indices coincide); the
/// former task-specific binary-heap merge is gone.
///
/// # Examples
///
/// ```
/// use edf_analysis::demand::DeadlineIter;
/// use edf_model::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let ts = TaskSet::from_tasks(vec![
///     Task::new(Time::new(1), Time::new(3), Time::new(5))?,
///     Task::new(Time::new(1), Time::new(4), Time::new(10))?,
/// ]);
/// let deadlines: Vec<u64> = DeadlineIter::new(&ts, Time::new(15))
///     .map(|e| e.deadline.as_u64())
///     .collect();
/// assert_eq!(deadlines, vec![3, 4, 8, 13, 14]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DeadlineIter {
    inner: DemandEventIter,
}

impl DeadlineIter {
    /// Creates an iterator over all absolute deadlines `≤ horizon`.
    #[must_use]
    pub fn new(task_set: &TaskSet, horizon: Time) -> Self {
        let components: Vec<DemandComponent> =
            task_set.iter().map(DemandComponent::from_task).collect();
        DeadlineIter {
            inner: DemandEventIter::new(&components, horizon),
        }
    }
}

impl Iterator for DeadlineIter {
    type Item = DeadlineEvent;

    fn next(&mut self) -> Option<DeadlineEvent> {
        self.inner.next().map(|event| DeadlineEvent {
            deadline: event.interval,
            task_index: event.component,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    #[test]
    fn dbf_single_task_staircase() {
        let tau = t(2, 4, 10);
        let expect = |i: u64| -> u64 {
            if i < 4 {
                0
            } else {
                ((i - 4) / 10 + 1) * 2
            }
        };
        for i in 0..60 {
            assert_eq!(dbf_task(&tau, Time::new(i)).as_u64(), expect(i), "I = {i}");
        }
    }

    #[test]
    fn dbf_set_is_sum_of_tasks() {
        let ts = TaskSet::from_tasks(vec![t(1, 2, 4), t(2, 6, 8), t(3, 10, 20)]);
        for i in (0..100).step_by(3) {
            let i = Time::new(i);
            let total: u64 = ts.iter().map(|task| dbf_task(task, i).as_u64()).sum();
            assert_eq!(dbf_set(&ts, i).as_u64(), total);
        }
    }

    #[test]
    fn dbf_handles_wcet_above_deadline() {
        // A task with C > D is trivially infeasible; dbf must reflect that.
        let tau = t(5, 3, 10);
        assert_eq!(dbf_task(&tau, Time::new(3)), Time::new(5));
        assert!(dbf_task(&tau, Time::new(3)) > Time::new(3));
    }

    #[test]
    fn dbf_saturates_instead_of_overflowing() {
        let big = 1u64 << 63;
        let tau = t(big, 1, big);
        // At interval u64::MAX two jobs fit, and 2 * 2^63 overflows u64.
        assert_eq!(dbf_task(&tau, Time::MAX), Time::MAX);
    }

    #[test]
    fn job_count_matches_dbf() {
        let tau = t(3, 7, 12);
        for i in 0..100 {
            let i = Time::new(i);
            assert_eq!(
                dbf_task(&tau, i).as_u64(),
                jobs_with_deadline_in(&tau, i) * 3
            );
        }
    }

    #[test]
    fn rbf_staircase() {
        let tau = t(2, 4, 10);
        assert_eq!(rbf_task(&tau, Time::ZERO), Time::new(2));
        assert_eq!(rbf_task(&tau, Time::new(1)), Time::new(2));
        assert_eq!(rbf_task(&tau, Time::new(10)), Time::new(2));
        assert_eq!(rbf_task(&tau, Time::new(11)), Time::new(4));
        let ts = TaskSet::from_tasks(vec![t(2, 4, 10), t(1, 1, 3)]);
        assert_eq!(rbf_set(&ts, Time::new(11)), Time::new(4 + 4));
    }

    #[test]
    fn rbf_dominates_dbf() {
        let ts = TaskSet::from_tasks(vec![t(1, 2, 4), t(2, 6, 8), t(3, 10, 20)]);
        for i in 0..200 {
            let i = Time::new(i);
            assert!(rbf_set(&ts, i) >= dbf_set(&ts, i));
        }
    }

    #[test]
    fn next_deadline_after_matches_enumeration() {
        let tau = t(1, 4, 10);
        // deadlines: 4, 14, 24, ...
        assert_eq!(next_deadline_after(&tau, Time::ZERO), Some(Time::new(4)));
        assert_eq!(next_deadline_after(&tau, Time::new(3)), Some(Time::new(4)));
        assert_eq!(next_deadline_after(&tau, Time::new(4)), Some(Time::new(14)));
        assert_eq!(
            next_deadline_after(&tau, Time::new(13)),
            Some(Time::new(14))
        );
        assert_eq!(
            next_deadline_after(&tau, Time::new(14)),
            Some(Time::new(24))
        );
    }

    #[test]
    fn next_deadline_is_strictly_greater_and_dbf_increases_there() {
        let tau = t(2, 5, 7);
        let mut at = Time::ZERO;
        for _ in 0..50 {
            let next = next_deadline_after(&tau, at).unwrap();
            assert!(next > at);
            assert!(dbf_task(&tau, next) > dbf_task(&tau, next - Time::ONE));
            at = next;
        }
    }

    #[test]
    fn deadline_iter_sorted_and_complete() {
        let ts = TaskSet::from_tasks(vec![t(1, 3, 5), t(1, 4, 10), t(1, 20, 25)]);
        let horizon = Time::new(50);
        let events: Vec<DeadlineEvent> = DeadlineIter::new(&ts, horizon).collect();
        // Sorted.
        for w in events.windows(2) {
            assert!(w[0].deadline <= w[1].deadline);
        }
        // Complete: every job deadline <= horizon appears exactly once.
        let mut expected = Vec::new();
        for (idx, task) in ts.iter().enumerate() {
            let mut k = 0;
            while let Some(d) = task.job_deadline(k) {
                if d > horizon {
                    break;
                }
                expected.push((d, idx));
                k += 1;
            }
        }
        expected.sort();
        let mut got: Vec<(Time, usize)> =
            events.iter().map(|e| (e.deadline, e.task_index)).collect();
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn deadline_iter_empty_cases() {
        let ts = TaskSet::new();
        assert_eq!(DeadlineIter::new(&ts, Time::new(100)).count(), 0);
        let ts = TaskSet::from_tasks(vec![t(1, 50, 60)]);
        assert_eq!(DeadlineIter::new(&ts, Time::new(10)).count(), 0);
    }

    #[test]
    fn deadline_iter_counts_ties_per_task() {
        let ts = TaskSet::from_tasks(vec![t(1, 10, 10), t(2, 10, 10)]);
        let events: Vec<_> = DeadlineIter::new(&ts, Time::new(10)).collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].deadline, Time::new(10));
        assert_eq!(events[1].deadline, Time::new(10));
    }
}
