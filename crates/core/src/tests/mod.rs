//! The feasibility tests.
//!
//! | Test | Kind | Paper reference |
//! |---|---|---|
//! | [`LiuLaylandTest`] | exact for `D ≥ T`, otherwise inapplicable | §3.1 |
//! | [`DensityTest`] | sufficient | folklore baseline |
//! | [`DeviTest`] | sufficient | Def. 1, §3.2 |
//! | [`ProcessorDemandTest`] | exact | Def. 3, §3.3 |
//! | [`QpaTest`] | exact (extension, Zhang & Burns 2009) | — |
//! | [`SuperpositionTest`] | sufficient, adjustable level | Def. 4–6, §3.4 |
//! | [`DynamicErrorTest`] | **exact** (new) | §4.1, Fig. 5 |
//! | [`AllApproximatedTest`] | **exact** (new) | §4.2, Fig. 7 |
//!
//! All tests implement [`FeasibilityTest`](crate::FeasibilityTest) and report
//! the number of examined test intervals in
//! [`Analysis::iterations`](crate::Analysis::iterations).

mod all_approximated;
mod devi;
mod dynamic_error;
mod processor_demand;
mod qpa;
mod superposition_test;
mod utilization;

pub use all_approximated::{AllApproximatedTest, RevisionOrder};
pub use devi::DeviTest;
pub use dynamic_error::{DynamicErrorTest, LevelGrowth};
pub use processor_demand::{BoundSelection, ProcessorDemandTest};
pub use qpa::QpaTest;
pub use superposition_test::SuperpositionTest;
pub use utilization::{DensityTest, LiuLaylandTest};
