//! The processor demand test of Baruah et al. (Def. 3, §3.3 of the paper).
//!
//! The exact baseline of the paper: a sporadic task set with `U ≤ 1` is
//! feasible under preemptive EDF if and only if `dbf(I, Γ) ≤ I` for every
//! interval `I` up to a feasibility bound.  The test walks every absolute
//! deadline below the bound in ascending order, accumulating the demand
//! incrementally; its effort therefore grows with the number of deadlines
//! below the bound, which explodes when the task set mixes very small and
//! very large periods (§3.3 and Figure 9 of the paper).

use edf_model::Time;

use crate::analysis::{Analysis, DemandOverload, FeasibilityTest, IterationCounter, Verdict};
use crate::bounds;
use crate::budget::{ProgressPhase, WorkBudget};
use crate::kernel::AnalysisScratch;
use crate::workload::PreparedWorkload;

/// Which feasibility bound limits the search of the processor demand test.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum BoundSelection {
    /// The minimum over every bound that can be computed (default).
    #[default]
    Tightest,
    /// Baruah et al.: `U/(1−U)·max(Tᵢ − Dᵢ)`.
    Baruah,
    /// George et al.: `Σ(1 − Dᵢ/Tᵢ)Cᵢ/(1 − U)`.
    George,
    /// The synchronous busy period.
    BusyPeriod,
    /// `lcm(Tᵢ) + max Dᵢ`.
    Hyperperiod,
    /// A caller-supplied horizon (useful for experiments and for bounding
    /// the worst-case run time at the price of exactness).
    Fixed(Time),
}

/// The exact processor demand test.
///
/// # Examples
///
/// ```
/// use edf_analysis::tests::ProcessorDemandTest;
/// use edf_analysis::{FeasibilityTest, Verdict};
/// use edf_model::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let feasible = TaskSet::from_tasks(vec![
///     Task::new(Time::new(1), Time::new(2), Time::new(10))?,
///     Task::new(Time::new(2), Time::new(3), Time::new(10))?,
/// ]);
/// assert_eq!(ProcessorDemandTest::new().analyze(&feasible).verdict, Verdict::Feasible);
///
/// let infeasible = TaskSet::from_tasks(vec![
///     Task::new(Time::new(3), Time::new(4), Time::new(10))?,
///     Task::new(Time::new(4), Time::new(6), Time::new(10))?,
///     Task::new(Time::new(2), Time::new(5), Time::new(12))?,
/// ]);
/// assert_eq!(ProcessorDemandTest::new().analyze(&infeasible).verdict, Verdict::Infeasible);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessorDemandTest {
    bound: BoundSelection,
}

impl ProcessorDemandTest {
    /// Creates the test with the default (tightest) bound selection.
    #[must_use]
    pub fn new() -> Self {
        ProcessorDemandTest {
            bound: BoundSelection::Tightest,
        }
    }

    /// Creates the test with an explicit bound selection.
    #[must_use]
    pub fn with_bound(bound: BoundSelection) -> Self {
        ProcessorDemandTest { bound }
    }

    /// The configured bound selection.
    #[must_use]
    pub fn bound(&self) -> BoundSelection {
        self.bound
    }

    fn horizon(&self, workload: &PreparedWorkload, budget: &mut WorkBudget) -> Option<Time> {
        // A specific selection computes only that bound; the cached
        // all-bounds struct is reserved for `Tightest` (where every bound
        // is needed anyway and sharing across tests pays off).  The busy
        // period is the one live fix-point here, so it is the one bound
        // metered against the work budget.
        let components = workload.components();
        match self.bound {
            BoundSelection::Tightest => workload.analysis_horizon(),
            BoundSelection::Baruah => bounds::baruah_components(components),
            BoundSelection::George => bounds::george_components(components),
            BoundSelection::BusyPeriod => bounds::busy_period_components_with(components, budget),
            BoundSelection::Hyperperiod => bounds::hyperperiod_components(components),
            BoundSelection::Fixed(limit) => Some(limit),
        }
    }
}

impl FeasibilityTest for ProcessorDemandTest {
    fn name(&self) -> &str {
        "processor-demand"
    }

    fn is_exact(&self) -> bool {
        !matches!(self.bound, BoundSelection::Fixed(_))
    }

    fn analyze_demand(
        &self,
        workload: &PreparedWorkload,
        scratch: &mut AnalysisScratch,
    ) -> Analysis {
        if workload.is_empty() {
            return Analysis::trivial(Verdict::Feasible);
        }
        if workload.utilization_exceeds_one() {
            return Analysis::trivial(Verdict::Infeasible);
        }
        // The budget travels as a local copy: `demand_steps` borrows the
        // scratch for the whole walk, so the spend is written back after
        // the loop ends (the labeled block funnels every exit there).
        let mut budget = scratch.budget();
        let horizon = self.horizon(workload, &mut budget);
        if budget.is_exhausted() {
            scratch.set_budget(budget);
            return IterationCounter::new().finish_exhausted(
                &budget,
                ProgressPhase::Bounds,
                None,
                None,
            );
        }
        let Some(horizon) = horizon else {
            // U == 1 with an overflowing hyperperiod: no usable bound.
            return Analysis::trivial(Verdict::Unknown);
        };
        let mut counter = IterationCounter::new();
        let analysis = 'walk: {
            let mut demand = Time::ZERO;
            // The loser-tree merge hands equal-deadline runs over as one
            // coalesced step, so the walk is exactly one comparison per
            // distinct interval — no peek-and-fold loop.
            for (interval, step) in workload.demand_steps(horizon, scratch) {
                if !budget.charge(1) {
                    // Every interval recorded so far satisfied the
                    // comparison, so the largest examined one is certified.
                    break 'walk counter.finish_exhausted(
                        &budget,
                        ProgressPhase::DemandWalk,
                        counter.max_interval(),
                        None,
                    );
                }
                demand = demand.saturating_add(step);
                counter.record(interval);
                if demand > interval {
                    break 'walk counter.finish(
                        Verdict::Infeasible,
                        Some(DemandOverload { interval, demand }),
                    );
                }
            }
            let verdict = if matches!(self.bound, BoundSelection::Fixed(_)) {
                // A caller-supplied horizon may be shorter than a valid
                // bound.
                Verdict::Unknown
            } else {
                Verdict::Feasible
            };
            counter.finish(verdict, None)
        };
        scratch.set_budget(budget);
        analysis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::dbf_set;
    use edf_model::{Task, TaskSet};

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    fn brute_force_feasible(ts: &TaskSet, horizon: u64) -> bool {
        if ts.utilization_exceeds_one() {
            return false;
        }
        (1..=horizon).all(|i| dbf_set(ts, Time::new(i)) <= Time::new(i))
    }

    #[test]
    fn accepts_simple_feasible_set() {
        let ts = TaskSet::from_tasks(vec![t(1, 4, 8), t(2, 6, 12), t(3, 15, 20)]);
        let analysis = ProcessorDemandTest::new().analyze(&ts);
        assert_eq!(analysis.verdict, Verdict::Feasible);
        assert!(analysis.iterations > 0);
    }

    #[test]
    fn rejects_constrained_overload_with_witness() {
        let ts = TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]);
        let analysis = ProcessorDemandTest::new().analyze(&ts);
        assert_eq!(analysis.verdict, Verdict::Infeasible);
        let witness = analysis.overload.expect("witness");
        assert!(witness.demand > witness.interval);
        // The earliest violation for this set is at I = 6 (dbf = 9).
        assert_eq!(witness.interval, Time::new(6));
        assert_eq!(witness.demand, Time::new(9));
    }

    #[test]
    fn agrees_with_brute_force_on_small_sets() {
        let sets = vec![
            TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]),
            TaskSet::from_tasks(vec![t(2, 2, 6), t(2, 4, 8), t(1, 7, 12)]),
            TaskSet::from_tasks(vec![t(3, 3, 9), t(3, 5, 9), t(2, 8, 9)]),
            TaskSet::from_tasks(vec![t(1, 1, 4), t(1, 2, 4), t(1, 3, 4), t(1, 4, 4)]),
            TaskSet::from_tasks(vec![t(5, 6, 20), t(7, 11, 25), t(4, 9, 35)]),
        ];
        for ts in sets {
            let exact = ProcessorDemandTest::new().analyze(&ts).verdict;
            let brute = brute_force_feasible(&ts, 500);
            assert_eq!(exact.is_feasible(), brute, "disagreement on {ts}");
            assert!(exact.is_decisive());
        }
    }

    #[test]
    fn full_utilization_implicit_deadlines_is_feasible() {
        let ts = TaskSet::from_tasks(vec![t(1, 2, 2), t(2, 4, 4)]);
        assert_eq!(
            ProcessorDemandTest::new().analyze(&ts).verdict,
            Verdict::Feasible
        );
    }

    #[test]
    fn full_utilization_with_tight_deadline_is_infeasible() {
        let ts = TaskSet::from_tasks(vec![t(1, 1, 2), t(2, 4, 4), t(1, 4, 4)]);
        // U = 0.5 + 0.5 + 0.25 > 1.
        assert_eq!(
            ProcessorDemandTest::new().analyze(&ts).verdict,
            Verdict::Infeasible
        );
        let ts2 = TaskSet::from_tasks(vec![t(1, 1, 2), t(2, 3, 4)]);
        // U = 1, but dbf(3) = 2 + 2 = 4 > 3.
        assert_eq!(
            ProcessorDemandTest::new().analyze(&ts2).verdict,
            Verdict::Infeasible
        );
    }

    #[test]
    fn wcet_above_deadline_is_rejected() {
        let ts = TaskSet::from_tasks(vec![t(5, 3, 10)]);
        let analysis = ProcessorDemandTest::new().analyze(&ts);
        assert_eq!(analysis.verdict, Verdict::Infeasible);
        assert_eq!(analysis.overload.unwrap().interval, Time::new(3));
    }

    #[test]
    fn bound_selection_does_not_change_the_verdict() {
        let sets = vec![
            TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]),
            TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]),
            TaskSet::from_tasks(vec![t(2, 5, 11), t(3, 9, 17), t(4, 16, 23)]),
        ];
        for ts in sets {
            let reference = ProcessorDemandTest::new().analyze(&ts).verdict;
            for bound in [
                BoundSelection::Baruah,
                BoundSelection::George,
                BoundSelection::BusyPeriod,
                BoundSelection::Hyperperiod,
            ] {
                let analysis = ProcessorDemandTest::with_bound(bound).analyze(&ts);
                if analysis.verdict.is_decisive() {
                    assert_eq!(analysis.verdict, reference, "bound {bound:?} on {ts}");
                }
            }
        }
    }

    #[test]
    fn tighter_bounds_need_fewer_iterations() {
        let ts = TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]);
        let tightest = ProcessorDemandTest::new().analyze(&ts).iterations;
        let hyper = ProcessorDemandTest::with_bound(BoundSelection::Hyperperiod)
            .analyze(&ts)
            .iterations;
        assert!(tightest <= hyper);
    }

    #[test]
    fn fixed_bound_reports_unknown_when_it_passes() {
        let ts = TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]);
        let analysis =
            ProcessorDemandTest::with_bound(BoundSelection::Fixed(Time::new(5))).analyze(&ts);
        assert_eq!(analysis.verdict, Verdict::Unknown);
        assert!(!ProcessorDemandTest::with_bound(BoundSelection::Fixed(Time::new(5))).is_exact());
        // ... but a violation below the fixed bound is still definitive.
        let bad = TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]);
        let analysis =
            ProcessorDemandTest::with_bound(BoundSelection::Fixed(Time::new(100))).analyze(&bad);
        assert_eq!(analysis.verdict, Verdict::Infeasible);
    }

    #[test]
    fn iterations_count_distinct_intervals() {
        // Two tasks sharing every deadline: each distinct interval counted once.
        let ts = TaskSet::from_tasks(vec![t(1, 10, 10), t(2, 10, 10)]);
        let analysis =
            ProcessorDemandTest::with_bound(BoundSelection::Fixed(Time::new(40))).analyze(&ts);
        assert_eq!(analysis.iterations, 4); // intervals 10, 20, 30, 40
    }

    #[test]
    fn empty_and_overload_trivial_paths() {
        assert_eq!(
            ProcessorDemandTest::new().analyze(&TaskSet::new()).verdict,
            Verdict::Feasible
        );
        let over = TaskSet::from_tasks(vec![t(9, 9, 10), t(9, 9, 10)]);
        let analysis = ProcessorDemandTest::new().analyze(&over);
        assert_eq!(analysis.verdict, Verdict::Infeasible);
        assert_eq!(analysis.iterations, 0);
        assert_eq!(ProcessorDemandTest::new().name(), "processor-demand");
        assert!(ProcessorDemandTest::new().is_exact());
        assert_eq!(ProcessorDemandTest::new().bound(), BoundSelection::Tightest);
    }
}
