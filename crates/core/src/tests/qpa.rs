//! Quick Processor-demand Analysis (QPA).
//!
//! **Extension beyond the paper.**  QPA (Zhang & Burns, 2009) post-dates
//! the DATE 2005 paper but solves the same problem — accelerating the exact
//! processor demand criterion — by iterating *downwards* from the
//! feasibility bound instead of walking every deadline upwards.  It is
//! included here as an additional exact baseline for the experiment
//! harness and the cross-validation property tests, and to let users of
//! the library compare both acceleration strategies.
//!
//! Starting from the largest absolute deadline below the feasibility bound
//! `La`, the value of `dbf(t)` itself is used as the next (smaller) test
//! interval; the iteration provably visits only a small subset of the
//! deadlines while preserving exactness.

use edf_model::Time;

use crate::analysis::{Analysis, DemandOverload, FeasibilityTest, IterationCounter, Verdict};
use crate::budget::ProgressPhase;
use crate::kernel::AnalysisScratch;
use crate::workload::PreparedWorkload;

/// The QPA exact feasibility test.
///
/// # Examples
///
/// ```
/// use edf_analysis::tests::QpaTest;
/// use edf_analysis::{FeasibilityTest, Verdict};
/// use edf_model::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let ts = TaskSet::from_tasks(vec![
///     Task::new(Time::new(1), Time::new(2), Time::new(10))?,
///     Task::new(Time::new(2), Time::new(3), Time::new(10))?,
/// ]);
/// assert_eq!(QpaTest::new().analyze(&ts).verdict, Verdict::Feasible);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QpaTest;

impl QpaTest {
    /// Creates the test.
    #[must_use]
    pub fn new() -> Self {
        QpaTest
    }
}

impl FeasibilityTest for QpaTest {
    fn name(&self) -> &str {
        "qpa"
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn analyze_demand(
        &self,
        workload: &PreparedWorkload,
        scratch: &mut AnalysisScratch,
    ) -> Analysis {
        if workload.is_empty() {
            return Analysis::trivial(Verdict::Feasible);
        }
        if workload.utilization_exceeds_one() {
            return Analysis::trivial(Verdict::Infeasible);
        }
        let Some(horizon) = workload.analysis_horizon() else {
            return Analysis::trivial(Verdict::Unknown);
        };
        let min_deadline = workload
            .min_first_deadline()
            .expect("non-empty workload has a minimum deadline");
        let mut budget = scratch.budget();
        let mut counter = IterationCounter::new();
        // Start just above the horizon so deadlines equal to it are included.
        let start = horizon.saturating_add(Time::ONE);
        let Some(mut t) = workload.last_deadline_below(start) else {
            return counter.finish(Verdict::Feasible, None);
        };
        // `demand == t` steps need the predecessor deadline as well as the
        // demand, and such plateau steps cluster: once one occurs, the next
        // step usually needs both again.  Inside a plateau run the kernel's
        // fused query delivers demand and predecessor in one pass over the
        // columns (the former code paid a second full scan and discarded
        // the already-computed demand); on ordinary descending steps —
        // the overwhelmingly common case — only the demand is evaluated.
        //
        // Note on `PreparedWorkload::dbf_many`: the descent is a strict
        // sequential dependence chain — `t_{k+1} = dbf(t_k)` — so there is
        // never a second outstanding interval to batch with; the fused
        // plateau query above *is* the batched form of this loop (two
        // quantities per column pass), and speculatively evaluating
        // candidate intervals would change the recorded iteration count.
        let mut on_plateau = false;
        let analysis = loop {
            // One work unit per descent step; the descent certifies
            // intervals *above* the current `t` only, so an exhausted run
            // reports no violation-free prefix.
            if !budget.charge(1) {
                break counter.finish_exhausted(&budget, ProgressPhase::QpaDescent, None, None);
            }
            counter.record(t);
            let (demand, predecessor) = if on_plateau {
                workload.demand_and_predecessor(t)
            } else {
                (workload.dbf(t), None)
            };
            if demand > t {
                break counter.finish(
                    Verdict::Infeasible,
                    Some(DemandOverload {
                        interval: t,
                        demand,
                    }),
                );
            }
            if demand <= min_deadline {
                break counter.finish(Verdict::Feasible, None);
            }
            t = if demand < t {
                on_plateau = false;
                demand
            } else {
                // demand == t: step down to the largest deadline below t.
                let prev = predecessor.or_else(|| workload.last_deadline_below(t));
                on_plateau = true;
                match prev {
                    Some(prev) => prev,
                    None => break counter.finish(Verdict::Feasible, None),
                }
            };
        };
        scratch.set_budget(budget);
        analysis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::dbf_set;
    use crate::tests::ProcessorDemandTest;
    use edf_model::{Task, TaskSet};

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    #[test]
    fn largest_deadline_below_enumerates_correctly() {
        let ts = TaskSet::from_tasks(vec![t(1, 3, 5), t(1, 4, 10)]);
        let prepared = PreparedWorkload::new(&ts);
        // deadlines: 3, 4, 8, 13, 14, 18, 23, 24, ...
        assert_eq!(
            prepared.last_deadline_below(Time::new(25)),
            Some(Time::new(24))
        );
        assert_eq!(
            prepared.last_deadline_below(Time::new(24)),
            Some(Time::new(23))
        );
        assert_eq!(
            prepared.last_deadline_below(Time::new(14)),
            Some(Time::new(13))
        );
        assert_eq!(
            prepared.last_deadline_below(Time::new(4)),
            Some(Time::new(3))
        );
        assert_eq!(prepared.last_deadline_below(Time::new(3)), None);
    }

    #[test]
    fn agrees_with_processor_demand_on_hand_picked_sets() {
        let sets = vec![
            TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]),
            TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]),
            TaskSet::from_tasks(vec![t(2, 2, 6), t(2, 4, 8), t(1, 7, 12)]),
            TaskSet::from_tasks(vec![t(5, 6, 20), t(7, 11, 25), t(4, 9, 35)]),
            TaskSet::from_tasks(vec![t(1, 2, 2), t(2, 4, 4)]),
            TaskSet::from_tasks(vec![t(5, 3, 10)]),
        ];
        for ts in sets {
            let qpa = QpaTest::new().analyze(&ts).verdict;
            let pda = ProcessorDemandTest::new().analyze(&ts).verdict;
            assert_eq!(qpa, pda, "QPA and PDA must agree on {ts}");
        }
    }

    #[test]
    fn typically_needs_fewer_iterations_than_processor_demand() {
        let ts = TaskSet::from_tasks(vec![
            t(2, 6, 20),
            t(3, 15, 45),
            t(5, 40, 100),
            t(40, 350, 400),
        ]);
        let qpa = QpaTest::new().analyze(&ts);
        let pda = ProcessorDemandTest::new().analyze(&ts);
        assert_eq!(qpa.verdict, pda.verdict);
        assert!(
            qpa.iterations <= pda.iterations,
            "QPA ({}) should not need more checks than PDA ({})",
            qpa.iterations,
            pda.iterations
        );
    }

    #[test]
    fn trivial_paths() {
        assert_eq!(
            QpaTest::new().analyze(&TaskSet::new()).verdict,
            Verdict::Feasible
        );
        let over = TaskSet::from_tasks(vec![t(9, 9, 10), t(9, 9, 10)]);
        assert_eq!(QpaTest::new().analyze(&over).verdict, Verdict::Infeasible);
        assert_eq!(QpaTest::new().name(), "qpa");
        assert!(QpaTest::new().is_exact());
    }

    #[test]
    fn infeasible_witness_is_a_real_violation() {
        let ts = TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]);
        let analysis = QpaTest::new().analyze(&ts);
        assert_eq!(analysis.verdict, Verdict::Infeasible);
        let w = analysis.overload.unwrap();
        assert_eq!(dbf_set(&ts, w.interval), w.demand);
        assert!(w.demand > w.interval);
    }
}
