//! The all-approximated test (§4.2, Figure 7 of the paper) — the second of
//! the two new exact feasibility tests.
//!
//! Instead of tying the approximation of a task to a fixed test border (as
//! the dynamic-error test does), every task is approximated immediately
//! after its *first* examined interval, and an approximation is withdrawn
//! only where a comparison actually fails — one task at a time, until the
//! comparison succeeds or no approximation is left (in which case the
//! comparison is fully exact and the set is infeasible).  Withdrawing an
//! approximation replaces the approximated cost by the exact demand
//! (Lemma 6) and inserts the task's next absolute deadline (Lemma 5) as an
//! additional test interval; the task is then re-approximated from that
//! interval when it is reached.
//!
//! If no comparison ever fails the test degenerates to exactly one check
//! per task — the behaviour (and effort) of Devi's test — while infeasible
//! or borderline sets trigger just enough refinement around the critical
//! intervals to stay exact.  The test needs no explicit feasibility bound:
//! the superposition bound of §4.3 is reached implicitly (this
//! implementation still caps the generated intervals at the tightest known
//! bound, which is needed for guaranteed termination at `U = 1` and never
//! changes a verdict).

use crate::analysis::{Analysis, FeasibilityTest};
use crate::kernel::AnalysisScratch;
use crate::workload::PreparedWorkload;

/// Order in which approximations are withdrawn when a comparison fails.
///
/// The paper's pseudocode (`ApproxList->getAndRemoveFirstTask`) revises in
/// FIFO order; the alternatives are provided for the ablation benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum RevisionOrder {
    /// Withdraw the approximation that was created first (paper default).
    #[default]
    Fifo,
    /// Withdraw the approximation with the largest current over-estimation
    /// `app(I, τ)` — greedily removes the most pessimism per revision.
    LargestError,
    /// Withdraw the approximation of the task with the largest utilization.
    LargestUtilization,
}

/// The all-approximated feasibility test.
///
/// # Examples
///
/// ```
/// use edf_analysis::tests::AllApproximatedTest;
/// use edf_analysis::{FeasibilityTest, Verdict};
/// use edf_model::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let ts = TaskSet::from_tasks(vec![
///     Task::new(Time::new(1), Time::new(2), Time::new(10))?,
///     Task::new(Time::new(2), Time::new(3), Time::new(10))?,
///     Task::new(Time::new(5), Time::new(9), Time::new(10))?,
/// ]);
/// assert_eq!(AllApproximatedTest::new().analyze(&ts).verdict, Verdict::Feasible);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllApproximatedTest {
    pub(crate) revision_order: RevisionOrder,
    pub(crate) max_level: Option<u64>,
}

impl AllApproximatedTest {
    /// Creates the test with the paper's FIFO revision order.
    #[must_use]
    pub fn new() -> Self {
        AllApproximatedTest {
            revision_order: RevisionOrder::Fifo,
            max_level: None,
        }
    }

    /// Creates the test with an explicit revision order.
    #[must_use]
    pub fn with_revision_order(revision_order: RevisionOrder) -> Self {
        AllApproximatedTest {
            revision_order,
            max_level: None,
        }
    }

    /// The configured revision order.
    #[must_use]
    pub fn revision_order(&self) -> RevisionOrder {
        self.revision_order
    }

    /// Limits how far any single component may be refined: once
    /// `max_level` of a component's jobs have been examined exactly, its
    /// approximation can no longer be withdrawn (the analogue of
    /// [`DynamicErrorTest::with_max_level`](crate::tests::DynamicErrorTest::with_max_level)
    /// for this test).  A failing comparison whose remaining approximations
    /// are all beyond the limit then answers
    /// [`Verdict::Unknown`](crate::Verdict::Unknown) instead of refining further, which bounds the
    /// worst-case number of examined intervals by `max_level` per
    /// component while keeping every *decisive* verdict correct.
    #[must_use]
    pub fn with_max_level(mut self, max_level: u64) -> Self {
        self.max_level = Some(max_level.max(1));
        self
    }

    /// The configured refinement limit, if any.
    #[must_use]
    pub fn max_level(&self) -> Option<u64> {
        self.max_level
    }

    /// The bounded test at a requested relative demand error: the
    /// refinement limit is derived as `⌈1/epsilon⌉` (see
    /// [`level_for_target_error`](crate::superposition::level_for_target_error)).
    /// Every approximation the test refuses to withdraw covers a component
    /// with at least `⌈1/epsilon⌉` exactly examined jobs, so its
    /// over-estimation stays below a factor `1 + epsilon` of the exact
    /// demand — the target-error mode completing the §4 discussion.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not a positive finite number.
    #[must_use]
    pub fn from_target_error(epsilon: f64) -> Self {
        AllApproximatedTest::new()
            .with_max_level(crate::superposition::level_for_target_error(epsilon))
    }
}

impl FeasibilityTest for AllApproximatedTest {
    fn name(&self) -> &str {
        "all-approximated"
    }

    fn is_exact(&self) -> bool {
        self.max_level.is_none()
    }

    fn analyze_demand(
        &self,
        workload: &PreparedWorkload,
        scratch: &mut AnalysisScratch,
    ) -> Analysis {
        // The analysis loop lives in the shared refinement engine (flat
        // frontier queue, incremental comparison aggregates, live-term
        // revision scan); see [`crate::refine`] for the structure and the
        // bit-identity argument against the retained reference loop.
        crate::refine::all_approximated(self, workload, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Verdict;
    use crate::tests::{DeviTest, DynamicErrorTest, ProcessorDemandTest};
    use edf_model::{Task, TaskSet, Time};

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    #[test]
    fn agrees_with_processor_demand_on_hand_picked_sets() {
        let sets = vec![
            TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]),
            TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]),
            TaskSet::from_tasks(vec![t(2, 2, 6), t(2, 4, 8), t(1, 7, 12)]),
            TaskSet::from_tasks(vec![t(5, 6, 20), t(7, 11, 25), t(4, 9, 35)]),
            TaskSet::from_tasks(vec![t(1, 2, 2), t(2, 4, 4)]),
            TaskSet::from_tasks(vec![t(5, 3, 10)]),
            TaskSet::from_tasks(vec![t(1, 1, 4), t(1, 2, 4), t(1, 3, 4), t(1, 4, 4)]),
            TaskSet::from_tasks(vec![t(3, 3, 9), t(3, 5, 9), t(2, 8, 9)]),
        ];
        for ts in sets {
            let all_approx = AllApproximatedTest::new().analyze(&ts);
            let reference = ProcessorDemandTest::new().analyze(&ts);
            assert_eq!(all_approx.verdict, reference.verdict, "on {ts}");
            assert!(all_approx.verdict.is_decisive());
        }
    }

    #[test]
    fn devi_accepted_sets_need_one_check_per_task() {
        // "If the initial test interval is accepted for each task without
        // generating new test intervals, the behaviour and the performance
        // of the test is equal to the test given by Devi." (§4.2)
        let ts = TaskSet::from_tasks(vec![
            t(1, 8, 10),
            t(2, 16, 20),
            t(5, 35, 40),
            t(10, 95, 100),
        ]);
        assert_eq!(DeviTest::new().analyze(&ts).verdict, Verdict::Feasible);
        let analysis = AllApproximatedTest::new().analyze(&ts);
        assert_eq!(analysis.verdict, Verdict::Feasible);
        // At most one comparison per task; the feasibility bound may prune
        // long-deadline tasks away entirely, so the count can be lower.
        assert!(analysis.iterations <= ts.len() as u64);
    }

    #[test]
    fn needs_fewer_iterations_than_processor_demand_on_wide_period_spread() {
        let ts = TaskSet::from_tasks(vec![
            t(1, 5, 5),
            t(2, 10, 10),
            t(3, 15, 15),
            t(30, 200, 200),
            t(190, 950, 1_000),
        ]);
        let all_approx = AllApproximatedTest::new().analyze(&ts);
        let pda = ProcessorDemandTest::new().analyze(&ts);
        assert_eq!(all_approx.verdict, pda.verdict);
        assert!(
            all_approx.iterations < pda.iterations,
            "all-approximated ({}) should beat processor demand ({})",
            all_approx.iterations,
            pda.iterations
        );
    }

    #[test]
    fn infeasible_sets_report_exact_overload_witness() {
        let ts = TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]);
        let analysis = AllApproximatedTest::new().analyze(&ts);
        assert_eq!(analysis.verdict, Verdict::Infeasible);
        let w = analysis.overload.expect("witness");
        assert_eq!(crate::demand::dbf_set(&ts, w.interval), w.demand);
        assert!(w.demand > w.interval);
    }

    #[test]
    fn revision_orders_agree_on_the_verdict() {
        let sets = vec![
            TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]),
            TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]),
            TaskSet::from_tasks(vec![t(2, 5, 11), t(3, 9, 17), t(4, 16, 23)]),
            TaskSet::from_tasks(vec![t(1, 3, 12), t(4, 9, 20), t(6, 25, 50), t(10, 60, 120)]),
        ];
        for ts in sets {
            let fifo = AllApproximatedTest::with_revision_order(RevisionOrder::Fifo).analyze(&ts);
            let error =
                AllApproximatedTest::with_revision_order(RevisionOrder::LargestError).analyze(&ts);
            let util = AllApproximatedTest::with_revision_order(RevisionOrder::LargestUtilization)
                .analyze(&ts);
            assert_eq!(fifo.verdict, error.verdict);
            assert_eq!(fifo.verdict, util.verdict);
        }
    }

    #[test]
    fn agrees_with_dynamic_error_test() {
        let sets = vec![
            TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]),
            TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]),
            TaskSet::from_tasks(vec![t(2, 5, 11), t(3, 9, 17), t(4, 16, 23)]),
            TaskSet::from_tasks(vec![t(1, 5, 5), t(2, 10, 10), t(30, 200, 200)]),
        ];
        for ts in sets {
            assert_eq!(
                AllApproximatedTest::new().analyze(&ts).verdict,
                DynamicErrorTest::new().analyze(&ts).verdict,
                "on {ts}"
            );
        }
    }

    #[test]
    fn trivial_paths_and_accessors() {
        assert_eq!(
            AllApproximatedTest::new().analyze(&TaskSet::new()).verdict,
            Verdict::Feasible
        );
        let over = TaskSet::from_tasks(vec![t(9, 9, 10), t(9, 9, 10)]);
        assert_eq!(
            AllApproximatedTest::new().analyze(&over).verdict,
            Verdict::Infeasible
        );
        let test = AllApproximatedTest::new();
        assert_eq!(test.name(), "all-approximated");
        assert!(test.is_exact());
        assert_eq!(test.revision_order(), RevisionOrder::Fifo);
        assert_eq!(test, AllApproximatedTest::default());
    }

    #[test]
    fn target_error_pins_the_refinement_level() {
        assert_eq!(
            AllApproximatedTest::from_target_error(1.0).max_level(),
            Some(1)
        );
        assert_eq!(
            AllApproximatedTest::from_target_error(0.5).max_level(),
            Some(2)
        );
        assert_eq!(
            AllApproximatedTest::from_target_error(0.25).max_level(),
            Some(4)
        );
        assert_eq!(
            AllApproximatedTest::from_target_error(0.1).max_level(),
            Some(10)
        );
        assert!(!AllApproximatedTest::from_target_error(0.1).is_exact());
        assert_eq!(AllApproximatedTest::new().max_level(), None);
        assert_eq!(
            AllApproximatedTest::new().with_max_level(0).max_level(),
            Some(1)
        );
    }

    #[test]
    fn bounded_level_yields_unknown_not_wrong_answers() {
        // Feasible, but needs refinement beyond the first job of each task:
        // the coarsest target error must answer Unknown, a tight one
        // Feasible.
        let ts = TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]);
        let coarse = AllApproximatedTest::from_target_error(1.0).analyze(&ts);
        assert_eq!(coarse.verdict, Verdict::Unknown);
        let fine = AllApproximatedTest::from_target_error(1e-6).analyze(&ts);
        assert_eq!(fine.verdict, Verdict::Feasible);
        // Decisive verdicts of the bounded test always match the exact one.
        let sets = vec![
            TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]),
            TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]),
            TaskSet::from_tasks(vec![t(2, 5, 11), t(3, 9, 17), t(4, 16, 23)]),
            TaskSet::from_tasks(vec![t(1, 2, 2), t(2, 4, 4)]),
            TaskSet::from_tasks(vec![t(5, 3, 10)]),
        ];
        for ts in sets {
            let exact = AllApproximatedTest::new().analyze(&ts).verdict;
            for epsilon in [1.0, 0.5, 0.2, 0.05, 0.01] {
                let bounded = AllApproximatedTest::from_target_error(epsilon)
                    .analyze(&ts)
                    .verdict;
                if bounded.is_decisive() {
                    assert_eq!(bounded, exact, "epsilon {epsilon} on {ts}");
                }
            }
        }
        // The bounded run examines at most max_level intervals per task.
        let limited = AllApproximatedTest::from_target_error(0.5);
        let ts = TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]);
        let analysis = limited.analyze(&ts);
        assert!(analysis.iterations <= 2 * ts.len() as u64 * 2);
    }

    #[test]
    fn full_utilization_sets_terminate() {
        // U = 1 with implicit deadlines: feasible, and the horizon cap keeps
        // the interval generation finite.
        let ts = TaskSet::from_tasks(vec![t(1, 2, 2), t(1, 4, 4), t(1, 4, 4)]);
        assert_eq!(
            AllApproximatedTest::new().analyze(&ts).verdict,
            Verdict::Feasible
        );
        // U = 1 with a constrained deadline: infeasible.
        let bad = TaskSet::from_tasks(vec![t(1, 1, 2), t(2, 3, 4)]);
        assert_eq!(
            AllApproximatedTest::new().analyze(&bad).verdict,
            Verdict::Infeasible
        );
    }

    #[test]
    fn wcet_above_deadline_detected() {
        let ts = TaskSet::from_tasks(vec![t(5, 3, 10), t(1, 50, 100)]);
        let analysis = AllApproximatedTest::new().analyze(&ts);
        assert_eq!(analysis.verdict, Verdict::Infeasible);
        assert_eq!(analysis.overload.unwrap().interval, Time::new(3));
    }
}
