//! The superposition test `SuperPos(x)` (Def. 6, §3.4 of the paper).
//!
//! `SuperPos(x)` examines the deadlines of the first `x` jobs of every task
//! exactly and covers all later intervals by the linear approximation of
//! [`dbf_approx_set`](crate::superposition::dbf_approx_set).  It is a
//! sufficient test whose pessimism shrinks as `x` grows; `SuperPos(1)` is
//! exactly Devi's test (Lemma 2) and `SuperPos(∞)` is the processor demand
//! test.

use std::cmp::Reverse;

use edf_model::Time;

use crate::analysis::{Analysis, DemandOverload, FeasibilityTest, IterationCounter, Verdict};
use crate::kernel::AnalysisScratch;
use crate::superposition::{approx_demand_within, dbf_approx_components, ApproxTerm};
use crate::workload::PreparedWorkload;

/// The superposition test at a fixed approximation level.
///
/// # Examples
///
/// ```
/// use edf_analysis::tests::SuperpositionTest;
/// use edf_analysis::{FeasibilityTest, Verdict};
/// use edf_model::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let ts = TaskSet::from_tasks(vec![
///     Task::new(Time::new(1), Time::new(2), Time::new(10))?,
///     Task::new(Time::new(2), Time::new(3), Time::new(10))?,
/// ]);
/// // Devi (= SuperPos(1)) cannot accept this set, but SuperPos(3) can.
/// assert_eq!(SuperpositionTest::new(1).analyze(&ts).verdict, Verdict::Unknown);
/// assert_eq!(SuperpositionTest::new(3).analyze(&ts).verdict, Verdict::Feasible);
/// // Levels can also be requested as a relative demand error.
/// assert_eq!(SuperpositionTest::from_target_error(0.25).level(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperpositionTest {
    level: u64,
    name: String,
}

impl SuperpositionTest {
    /// Creates a superposition test with the given level (`x ≥ 1`): the
    /// number of jobs of each task whose deadlines are examined exactly.
    ///
    /// # Panics
    ///
    /// Panics if `level` is zero.
    #[must_use]
    pub fn new(level: u64) -> Self {
        assert!(level >= 1, "superposition level must be at least 1");
        SuperpositionTest {
            level,
            name: format!("superpos({level})"),
        }
    }

    /// The approximation level `x`.
    #[must_use]
    pub fn level(&self) -> u64 {
        self.level
    }

    /// The test at a requested relative demand error: the level is derived
    /// as `⌈1/epsilon⌉` (see
    /// [`level_for_target_error`](crate::superposition::level_for_target_error)),
    /// so the approximated demand the test compares never over-estimates
    /// the exact demand by more than a factor `1 + epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not a positive finite number.
    #[must_use]
    pub fn from_target_error(epsilon: f64) -> Self {
        SuperpositionTest::new(crate::superposition::level_for_target_error(epsilon))
    }
}

impl FeasibilityTest for SuperpositionTest {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn analyze_demand(
        &self,
        workload: &PreparedWorkload,
        scratch: &mut AnalysisScratch,
    ) -> Analysis {
        if workload.is_empty() {
            return Analysis::trivial(Verdict::Feasible);
        }
        if workload.utilization_exceeds_one() {
            return Analysis::trivial(Verdict::Infeasible);
        }
        let components = workload.components();
        // Test intervals: deadlines of the first `level` jobs of each
        // component, merged in ascending order, de-duplicated.  The heap
        // and the approximation-term buffer live in the scratch so batch
        // workers reuse them across workloads.
        let heap = &mut scratch.level_heap;
        heap.clear();
        for (idx, component) in components.iter().enumerate() {
            heap.push(Reverse((component.first_deadline(), idx, 1)));
        }
        // The per-component approximation data — border `Im`, exact demand
        // at the border and the period reciprocal — is invariant across
        // test intervals at a fixed level, so the term prototypes are built
        // exactly once (one-shots have no linear tail and get `None`).
        let prototypes = &mut scratch.term_cache;
        prototypes.clear();
        prototypes.extend(components.iter().map(|component| {
            component.period().is_some().then(|| {
                let im = component.max_test_interval(self.level);
                ApproxTerm::for_component(component, im, component.dbf(im))
            })
        }));
        let approx_terms = &mut scratch.approx_terms;
        let mut counter = IterationCounter::new();
        let mut last_checked: Option<Time> = None;
        while let Some(Reverse((interval, idx, job))) = heap.pop() {
            // Schedule the next job of this component if still below its
            // border (one-shot components have a single job).
            if job < self.level {
                if let Some(period) = components[idx].period() {
                    if let Some(next) = interval.checked_add(period) {
                        heap.push(Reverse((next, idx, job + 1)));
                    }
                }
            }
            if last_checked == Some(interval) {
                continue; // dbf' already checked at this interval length
            }
            last_checked = Some(interval);
            counter.record(interval);
            // Real-valued superposition comparison (Def. 5), evaluated with
            // exact rational arithmetic.
            let mut exact_part = Time::ZERO;
            approx_terms.clear();
            for (component, prototype) in components.iter().zip(prototypes.iter()) {
                match prototype {
                    Some(term) if interval > term.im => approx_terms.push(*term),
                    // Below the border, or a one-shot (whose demand is
                    // constant beyond `im`) — exact either way.
                    _ => exact_part = exact_part.saturating_add(component.dbf(interval)),
                }
            }
            if !approx_demand_within(exact_part, approx_terms, interval) {
                // Report the (slightly pessimistic) integer upper bound of
                // the approximated demand as the witness.
                let demand = dbf_approx_components(components, self.level, interval);
                return counter.finish(Verdict::Unknown, Some(DemandOverload { interval, demand }));
            }
        }
        counter.finish(Verdict::Feasible, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::dbf_set;
    use edf_model::{Task, TaskSet};

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    /// Exhaustive reference feasibility check over a brute-force horizon.
    fn brute_force_feasible(ts: &TaskSet, horizon: u64) -> bool {
        if ts.utilization_exceeds_one() {
            return false;
        }
        (1..=horizon).all(|i| dbf_set(ts, Time::new(i)) <= Time::new(i))
    }

    #[test]
    fn level_one_counts_one_interval_per_distinct_deadline() {
        let ts = TaskSet::from_tasks(vec![t(1, 4, 8), t(1, 6, 12), t(1, 9, 18)]);
        let analysis = SuperpositionTest::new(1).analyze(&ts);
        assert_eq!(analysis.verdict, Verdict::Feasible);
        assert_eq!(analysis.iterations, 3);
    }

    #[test]
    fn rejects_overload_immediately() {
        let ts = TaskSet::from_tasks(vec![t(9, 9, 10), t(9, 9, 10)]);
        let analysis = SuperpositionTest::new(4).analyze(&ts);
        assert_eq!(analysis.verdict, Verdict::Infeasible);
        assert_eq!(analysis.iterations, 0);
    }

    #[test]
    fn higher_levels_accept_more_sets() {
        // Feasible set with tight deadlines relative to periods: low levels
        // reject it, high levels accept it.
        let ts = TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]);
        assert!(brute_force_feasible(&ts, 1_000));
        let verdicts: Vec<Verdict> = (1..=6)
            .map(|x| SuperpositionTest::new(x).analyze(&ts).verdict)
            .collect();
        // Monotone: once accepted, stays accepted.
        let first_accept = verdicts.iter().position(|v| v.is_feasible());
        assert!(first_accept.is_some(), "a high enough level must accept");
        for (i, v) in verdicts.iter().enumerate() {
            if Some(i) >= first_accept {
                assert!(v.is_feasible());
            }
        }
    }

    #[test]
    fn acceptance_implies_brute_force_feasibility() {
        // Soundness on a few hand-picked sets.
        let sets = vec![
            TaskSet::from_tasks(vec![t(1, 3, 7), t(2, 9, 11), t(1, 5, 13)]),
            TaskSet::from_tasks(vec![t(2, 4, 10), t(3, 8, 15), t(1, 2, 6)]),
            TaskSet::from_tasks(vec![t(3, 5, 9), t(2, 11, 14)]),
        ];
        for ts in sets {
            for level in 1..=5u64 {
                let analysis = SuperpositionTest::new(level).analyze(&ts);
                if analysis.verdict.is_feasible() {
                    assert!(brute_force_feasible(&ts, 2_000));
                }
            }
        }
    }

    #[test]
    fn unknown_verdict_reports_witness_interval() {
        let ts = TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]);
        let analysis = SuperpositionTest::new(1).analyze(&ts);
        assert_eq!(analysis.verdict, Verdict::Unknown);
        let overload = analysis.overload.expect("witness expected");
        assert!(overload.demand > overload.interval);
    }

    #[test]
    fn iteration_count_grows_with_level() {
        let ts = TaskSet::from_tasks(vec![t(1, 4, 8), t(1, 6, 12), t(1, 9, 18)]);
        let mut last = 0;
        for level in 1..=5u64 {
            let analysis = SuperpositionTest::new(level).analyze(&ts);
            assert!(analysis.iterations >= last);
            last = analysis.iterations;
        }
        assert!(last > 3);
    }

    #[test]
    fn level_accessor_and_name() {
        let test = SuperpositionTest::new(4);
        assert_eq!(test.level(), 4);
        assert_eq!(test.name(), "superpos(4)");
        assert!(!test.is_exact());
    }

    #[test]
    #[should_panic]
    fn zero_level_panics() {
        let _ = SuperpositionTest::new(0);
    }

    #[test]
    fn empty_set_is_feasible() {
        assert_eq!(
            SuperpositionTest::new(2).analyze(&TaskSet::new()).verdict,
            Verdict::Feasible
        );
    }
}
