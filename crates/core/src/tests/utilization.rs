//! Utilization- and density-based tests (§3.1 and folklore baselines).

use crate::analysis::{Analysis, FeasibilityTest, Verdict};
use crate::arith::{BoundCheck, FracSum};
use crate::kernel::AnalysisScratch;
use crate::workload::PreparedWorkload;

/// The Liu & Layland utilization test: for task sets whose deadlines are no
/// smaller than their periods, `U ≤ 1` is necessary *and* sufficient under
/// preemptive EDF (§3.1 of the paper).
///
/// For sets containing a task with `D < T` the utilization condition is
/// only necessary; the test then answers [`Verdict::Infeasible`] for
/// `U > 1` and [`Verdict::Unknown`] otherwise.
///
/// # Examples
///
/// ```
/// use edf_analysis::tests::LiuLaylandTest;
/// use edf_analysis::{FeasibilityTest, Verdict};
/// use edf_model::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let implicit = TaskSet::from_tasks(vec![
///     Task::new(Time::new(2), Time::new(4), Time::new(4))?,
///     Task::new(Time::new(3), Time::new(6), Time::new(6))?,
/// ]);
/// assert_eq!(LiuLaylandTest::new().analyze(&implicit).verdict, Verdict::Feasible);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiuLaylandTest;

impl LiuLaylandTest {
    /// Creates the test.
    #[must_use]
    pub fn new() -> Self {
        LiuLaylandTest
    }
}

impl FeasibilityTest for LiuLaylandTest {
    fn name(&self) -> &str {
        "liu-layland"
    }

    fn is_exact(&self) -> bool {
        // Exact only on the restricted D >= T model.
        false
    }

    fn analyze_demand(
        &self,
        workload: &PreparedWorkload,
        _scratch: &mut AnalysisScratch,
    ) -> Analysis {
        if workload.is_empty() {
            return Analysis::trivial(Verdict::Feasible);
        }
        let exceeds = workload.utilization_exceeds_one();
        // The D ≥ T argument needs every component periodic with a relative
        // deadline no smaller than its period.
        let all_relaxed = workload.components().iter().all(|c| match c.period() {
            Some(period) => c.first_deadline().saturating_sub(c.release_offset()) >= period,
            None => false,
        });
        let mut analysis = Analysis::trivial(if exceeds {
            Verdict::Infeasible
        } else if all_relaxed {
            Verdict::Feasible
        } else {
            Verdict::Unknown
        });
        analysis.iterations = 1;
        analysis
    }
}

/// The density test: `Σ Cᵢ / min(Dᵢ, Tᵢ) ≤ 1` is sufficient for EDF
/// feasibility of constrained-deadline sporadic tasks.
///
/// It is cheap but very pessimistic for small deadlines; it serves as an
/// additional baseline for the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DensityTest;

impl DensityTest {
    /// Creates the test.
    #[must_use]
    pub fn new() -> Self {
        DensityTest
    }
}

impl FeasibilityTest for DensityTest {
    fn name(&self) -> &str {
        "density"
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn analyze_demand(
        &self,
        workload: &PreparedWorkload,
        _scratch: &mut AnalysisScratch,
    ) -> Analysis {
        if workload.is_empty() {
            return Analysis::trivial(Verdict::Feasible);
        }
        if workload.utilization_exceeds_one() {
            let mut a = Analysis::trivial(Verdict::Infeasible);
            a.iterations = 1;
            return a;
        }
        let mut density = FracSum::new();
        for component in workload.components() {
            // dbf(I) ≤ C/min(D, T)·I holds per component (first jump at D,
            // slope C/T), so the density argument carries over verbatim;
            // one-shot components contribute C/D.
            let effective = match component.period() {
                Some(period) => component.first_deadline().min(period),
                None => component.first_deadline(),
            };
            density.add(component.wcet().as_u128(), effective.as_u128());
        }
        let verdict = match density.cmp_integer(1) {
            BoundCheck::WithinBound => Verdict::Feasible,
            BoundCheck::ExceedsBound | BoundCheck::Overflow => Verdict::Unknown,
        };
        let mut a = Analysis::trivial(verdict);
        a.iterations = 1;
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edf_model::{Task, TaskSet};

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    #[test]
    fn liu_layland_accepts_implicit_deadline_full_utilization() {
        let ts = TaskSet::from_tasks(vec![t(1, 2, 2), t(1, 4, 4), t(1, 4, 4)]);
        let a = LiuLaylandTest::new().analyze(&ts);
        assert_eq!(a.verdict, Verdict::Feasible);
        assert_eq!(a.iterations, 1);
    }

    #[test]
    fn liu_layland_rejects_overload() {
        let ts = TaskSet::from_tasks(vec![t(2, 3, 3), t(2, 4, 4)]);
        assert_eq!(
            LiuLaylandTest::new().analyze(&ts).verdict,
            Verdict::Infeasible
        );
    }

    #[test]
    fn liu_layland_unknown_for_constrained_deadlines() {
        let ts = TaskSet::from_tasks(vec![t(1, 2, 4)]);
        assert_eq!(LiuLaylandTest::new().analyze(&ts).verdict, Verdict::Unknown);
    }

    #[test]
    fn liu_layland_accepts_arbitrary_deadlines_with_low_utilization() {
        let ts = TaskSet::from_tasks(vec![t(1, 10, 4), t(1, 12, 6)]);
        assert_eq!(
            LiuLaylandTest::new().analyze(&ts).verdict,
            Verdict::Feasible
        );
    }

    #[test]
    fn liu_layland_trivial_empty() {
        assert_eq!(
            LiuLaylandTest::new().analyze(&TaskSet::new()).verdict,
            Verdict::Feasible
        );
        assert!(!LiuLaylandTest::new().is_exact());
        assert_eq!(LiuLaylandTest::new().name(), "liu-layland");
    }

    #[test]
    fn density_accepts_when_density_below_one() {
        let ts = TaskSet::from_tasks(vec![t(1, 4, 8), t(2, 8, 16)]);
        // density = 0.25 + 0.25 = 0.5
        assert_eq!(DensityTest::new().analyze(&ts).verdict, Verdict::Feasible);
    }

    #[test]
    fn density_unknown_when_density_above_one_but_feasible_possible() {
        let ts = TaskSet::from_tasks(vec![t(3, 4, 100), t(3, 4, 100)]);
        // density = 1.5 but utilization is tiny.
        assert_eq!(DensityTest::new().analyze(&ts).verdict, Verdict::Unknown);
    }

    #[test]
    fn density_rejects_overload() {
        let ts = TaskSet::from_tasks(vec![t(3, 3, 3), t(1, 2, 2)]);
        assert_eq!(DensityTest::new().analyze(&ts).verdict, Verdict::Infeasible);
    }

    #[test]
    fn density_exact_boundary() {
        // density exactly 1: 1/2 + 1/2
        let ts = TaskSet::from_tasks(vec![t(1, 2, 4), t(1, 2, 4)]);
        assert_eq!(DensityTest::new().analyze(&ts).verdict, Verdict::Feasible);
        assert_eq!(DensityTest::new().name(), "density");
        assert!(!DensityTest::new().is_exact());
    }

    #[test]
    fn density_trivial_empty() {
        assert_eq!(
            DensityTest::new().analyze(&TaskSet::new()).verdict,
            Verdict::Feasible
        );
    }
}
