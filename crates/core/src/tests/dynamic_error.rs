//! The dynamic-error test (§4.1, Figure 5 of the paper) — the first of the
//! two new exact feasibility tests.
//!
//! The test runs the superposition analysis at a *dynamic* approximation
//! level: it starts at `SuperPos(1)` (every task approximated after its
//! first job, i.e. exactly Devi's test) and only raises the level — doubling
//! it — when the approximated demand exceeds the capacity of the interval
//! under test.  Raising the level withdraws the approximation of the tasks
//! concerned, replaces their approximated cost by their exact demand
//! (Lemma 6) and schedules their next absolute deadline (Lemma 5) as an
//! additional test interval.  The values computed before the switch are
//! reused; nothing is recomputed from scratch.
//!
//! Task sets accepted by Devi's test are therefore processed entirely at
//! level 1 with one comparison per task, while task sets that genuinely
//! need more precision pay only for the intervals where the approximation
//! is too coarse.  With an unbounded maximum level the test is **exact**;
//! bounding the level (`with_max_level`) yields a sufficient test with a
//! strictly limited worst-case run time, as discussed at the end of §4.1.

use crate::analysis::{Analysis, FeasibilityTest};
use crate::kernel::AnalysisScratch;
use crate::workload::PreparedWorkload;

/// How the approximation level grows when the current level is too coarse.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LevelGrowth {
    /// Double the level at every refinement (the paper's proposal, which
    /// limits the number of level switches to `log₂ nmax`).
    #[default]
    Double,
    /// Increase the level by one at every refinement (ablation baseline).
    Increment,
}

impl LevelGrowth {
    pub(crate) fn next(self, level: u64) -> u64 {
        match self {
            LevelGrowth::Double => level.saturating_mul(2),
            LevelGrowth::Increment => level.saturating_add(1),
        }
    }
}

/// The dynamic-error feasibility test.
///
/// # Examples
///
/// ```
/// use edf_analysis::tests::DynamicErrorTest;
/// use edf_analysis::{FeasibilityTest, Verdict};
/// use edf_model::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// // Feasible, but rejected by Devi / SuperPos(1): the dynamic test raises
/// // its level only as far as needed and still answers exactly.
/// let ts = TaskSet::from_tasks(vec![
///     Task::new(Time::new(1), Time::new(2), Time::new(10))?,
///     Task::new(Time::new(2), Time::new(3), Time::new(10))?,
///     Task::new(Time::new(5), Time::new(9), Time::new(10))?,
/// ]);
/// assert_eq!(DynamicErrorTest::new().analyze(&ts).verdict, Verdict::Feasible);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicErrorTest {
    pub(crate) initial_level: u64,
    pub(crate) growth: LevelGrowth,
    pub(crate) max_level: Option<u64>,
}

impl Default for DynamicErrorTest {
    fn default() -> Self {
        DynamicErrorTest::new()
    }
}

impl DynamicErrorTest {
    /// Creates the exact test with the paper's defaults: initial level 1,
    /// level doubling, no maximum level.
    #[must_use]
    pub fn new() -> Self {
        DynamicErrorTest {
            initial_level: 1,
            growth: LevelGrowth::Double,
            max_level: None,
        }
    }

    /// Sets the initial approximation level (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `level` is zero.
    #[must_use]
    pub fn with_initial_level(mut self, level: u64) -> Self {
        assert!(level >= 1, "approximation level must be at least 1");
        self.initial_level = level;
        self
    }

    /// Sets the level growth strategy (default: doubling).
    #[must_use]
    pub fn with_growth(mut self, growth: LevelGrowth) -> Self {
        self.growth = growth;
        self
    }

    /// Limits the maximum approximation level.  With a limit the test is no
    /// longer exact: when the limit is insufficient it answers
    /// [`Verdict::Unknown`](crate::Verdict::Unknown), but its worst-case run time is strictly
    /// bounded (§4.1).
    #[must_use]
    pub fn with_max_level(mut self, max_level: u64) -> Self {
        self.max_level = Some(max_level.max(1));
        self
    }

    /// The bounded test at a requested relative demand error: the maximum
    /// level is derived as `⌈1/epsilon⌉` (see
    /// [`level_for_target_error`](crate::superposition::level_for_target_error)),
    /// so every approximation the test is never allowed to withdraw
    /// over-estimates its component's demand by less than a factor
    /// `1 + epsilon` — the target-error mode completing the §4 discussion.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not a positive finite number.
    #[must_use]
    pub fn from_target_error(epsilon: f64) -> Self {
        DynamicErrorTest::new()
            .with_max_level(crate::superposition::level_for_target_error(epsilon))
    }

    /// The configured maximum level, if any.
    #[must_use]
    pub fn max_level(&self) -> Option<u64> {
        self.max_level
    }
}

impl FeasibilityTest for DynamicErrorTest {
    fn name(&self) -> &str {
        "dynamic-error"
    }

    fn is_exact(&self) -> bool {
        self.max_level.is_none()
    }

    fn analyze_demand(
        &self,
        workload: &PreparedWorkload,
        scratch: &mut AnalysisScratch,
    ) -> Analysis {
        // The analysis loop lives in the shared refinement engine (flat
        // frontier queue, incremental comparison aggregates, batched
        // withdrawals); see [`crate::refine`] for the structure and the
        // bit-identity argument against the retained reference loop.
        crate::refine::dynamic_error(self, workload, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Verdict;
    use crate::tests::{DeviTest, ProcessorDemandTest};
    use edf_model::{Task, TaskSet};

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    fn exact_reference(ts: &TaskSet) -> Verdict {
        ProcessorDemandTest::new().analyze(ts).verdict
    }

    #[test]
    fn agrees_with_processor_demand_on_hand_picked_sets() {
        let sets = vec![
            TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]),
            TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]),
            TaskSet::from_tasks(vec![t(2, 2, 6), t(2, 4, 8), t(1, 7, 12)]),
            TaskSet::from_tasks(vec![t(5, 6, 20), t(7, 11, 25), t(4, 9, 35)]),
            TaskSet::from_tasks(vec![t(1, 2, 2), t(2, 4, 4)]),
            TaskSet::from_tasks(vec![t(5, 3, 10)]),
            TaskSet::from_tasks(vec![t(1, 1, 4), t(1, 2, 4), t(1, 3, 4), t(1, 4, 4)]),
            TaskSet::from_tasks(vec![t(3, 3, 9), t(3, 5, 9), t(2, 8, 9)]),
        ];
        for ts in sets {
            let dynamic = DynamicErrorTest::new().analyze(&ts);
            assert_eq!(dynamic.verdict, exact_reference(&ts), "on {ts}");
            assert!(dynamic.verdict.is_decisive());
        }
    }

    #[test]
    fn devi_accepted_sets_run_at_level_one() {
        // Devi accepts => one comparison per task, exactly like Table 1's
        // Burns and GAP rows.
        let ts = TaskSet::from_tasks(vec![
            t(1, 8, 10),
            t(2, 16, 20),
            t(5, 35, 40),
            t(10, 95, 100),
        ]);
        assert_eq!(DeviTest::new().analyze(&ts).verdict, Verdict::Feasible);
        let dynamic = DynamicErrorTest::new().analyze(&ts);
        assert_eq!(dynamic.verdict, Verdict::Feasible);
        // At most one comparison per task; the feasibility bound may prune
        // long-deadline tasks away entirely, so the count can be lower.
        assert!(dynamic.iterations <= ts.len() as u64);
    }

    #[test]
    fn needs_fewer_iterations_than_processor_demand_on_tight_sets() {
        // High utilization with a wide period spread: the processor demand
        // test has to walk every small-period deadline below the bound while
        // the dynamic test approximates them away.
        let ts = TaskSet::from_tasks(vec![
            t(1, 5, 5),
            t(2, 10, 10),
            t(3, 15, 15),
            t(30, 200, 200),
            t(190, 950, 1_000),
        ]);
        let dynamic = DynamicErrorTest::new().analyze(&ts);
        let pda = ProcessorDemandTest::new().analyze(&ts);
        assert_eq!(dynamic.verdict, pda.verdict);
        assert!(
            dynamic.iterations < pda.iterations,
            "dynamic ({}) should beat processor demand ({})",
            dynamic.iterations,
            pda.iterations
        );
    }

    #[test]
    fn infeasible_set_reports_real_overload() {
        let ts = TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]);
        let analysis = DynamicErrorTest::new().analyze(&ts);
        assert_eq!(analysis.verdict, Verdict::Infeasible);
        let w = analysis.overload.expect("witness");
        assert_eq!(crate::demand::dbf_set(&ts, w.interval), w.demand);
        assert!(w.demand > w.interval);
    }

    #[test]
    fn level_limit_yields_unknown_not_wrong_answers() {
        // Feasible but needs a deep level: with max level 1 the test must
        // answer Unknown (never Infeasible).
        let ts = TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]);
        let limited = DynamicErrorTest::new().with_max_level(1).analyze(&ts);
        assert_eq!(limited.verdict, Verdict::Unknown);
        assert!(!DynamicErrorTest::new().with_max_level(1).is_exact());
        // A genuinely infeasible set is still rejected (the failing
        // comparison becomes fully exact once every task is revised —
        // impossible here, so Unknown is also acceptable; exactness is only
        // guaranteed without a level limit).
        let unlimited = DynamicErrorTest::new().analyze(&ts);
        assert_eq!(unlimited.verdict, Verdict::Feasible);
    }

    #[test]
    fn growth_strategies_agree_on_verdict() {
        let sets = vec![
            TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]),
            TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]),
            TaskSet::from_tasks(vec![t(2, 5, 11), t(3, 9, 17), t(4, 16, 23)]),
        ];
        for ts in sets {
            let double = DynamicErrorTest::new()
                .with_growth(LevelGrowth::Double)
                .analyze(&ts);
            let increment = DynamicErrorTest::new()
                .with_growth(LevelGrowth::Increment)
                .analyze(&ts);
            assert_eq!(double.verdict, increment.verdict);
        }
    }

    #[test]
    fn higher_initial_level_still_exact() {
        let ts = TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]);
        for level in [1, 2, 4, 8] {
            let analysis = DynamicErrorTest::new()
                .with_initial_level(level)
                .analyze(&ts);
            assert_eq!(analysis.verdict, Verdict::Feasible);
        }
    }

    #[test]
    fn trivial_paths_and_accessors() {
        assert_eq!(
            DynamicErrorTest::new().analyze(&TaskSet::new()).verdict,
            Verdict::Feasible
        );
        let over = TaskSet::from_tasks(vec![t(9, 9, 10), t(9, 9, 10)]);
        assert_eq!(
            DynamicErrorTest::new().analyze(&over).verdict,
            Verdict::Infeasible
        );
        let test = DynamicErrorTest::new();
        assert_eq!(test.name(), "dynamic-error");
        assert!(test.is_exact());
        assert_eq!(test.max_level(), None);
        assert_eq!(test, DynamicErrorTest::default());
        assert_eq!(
            DynamicErrorTest::new().with_max_level(0).max_level(),
            Some(1)
        );
    }

    #[test]
    #[should_panic]
    fn zero_initial_level_panics() {
        let _ = DynamicErrorTest::new().with_initial_level(0);
    }

    #[test]
    fn target_error_pins_the_max_level() {
        assert_eq!(
            DynamicErrorTest::from_target_error(1.0).max_level(),
            Some(1)
        );
        assert_eq!(
            DynamicErrorTest::from_target_error(0.5).max_level(),
            Some(2)
        );
        assert_eq!(
            DynamicErrorTest::from_target_error(0.25).max_level(),
            Some(4)
        );
        assert_eq!(
            DynamicErrorTest::from_target_error(0.125).max_level(),
            Some(8)
        );
        assert_eq!(
            DynamicErrorTest::from_target_error(2.0).max_level(),
            Some(1)
        );
        assert!(!DynamicErrorTest::from_target_error(0.25).is_exact());
        // A fine target error behaves like the exact test on a set needing
        // refinement; a coarse one stays sound (Unknown, never wrong).
        let ts = TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]);
        assert_eq!(
            DynamicErrorTest::from_target_error(1e-6)
                .analyze(&ts)
                .verdict,
            Verdict::Feasible
        );
        assert_eq!(
            DynamicErrorTest::from_target_error(1.0)
                .analyze(&ts)
                .verdict,
            Verdict::Unknown
        );
    }

    #[test]
    fn full_utilization_implicit_deadline_set() {
        let ts = TaskSet::from_tasks(vec![t(1, 2, 2), t(1, 4, 4), t(1, 4, 4)]);
        assert_eq!(
            DynamicErrorTest::new().analyze(&ts).verdict,
            Verdict::Feasible
        );
    }
}
