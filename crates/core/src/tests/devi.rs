//! Devi's sufficient feasibility test (Def. 1, §3.2 of the paper).
//!
//! With the tasks arranged in order of non-decreasing relative deadlines,
//! the set is feasible under preemptive EDF if for every `k`
//!
//! ```text
//! Σ_{i=1..k} Cᵢ/Tᵢ  +  (1/Dₖ) · Σ_{i=1..k} ((Tᵢ − min(Tᵢ, Dᵢ))/Tᵢ) · Cᵢ  ≤  1.
//! ```
//!
//! The paper proves (Lemma 2, §3.5) that this test is exactly the level-1
//! superposition test `SuperPos(1)`; the property tests of this crate check
//! that equivalence on random task sets.

use crate::analysis::{Analysis, FeasibilityTest, IterationCounter, Verdict};
use crate::arith::fracs_le_integer;
use crate::kernel::AnalysisScratch;
use crate::workload::PreparedWorkload;

/// Devi's sufficient test.
///
/// # Examples
///
/// ```
/// use edf_analysis::tests::DeviTest;
/// use edf_analysis::{FeasibilityTest, Verdict};
/// use edf_model::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let ts = TaskSet::from_tasks(vec![
///     Task::new(Time::new(1), Time::new(4), Time::new(8))?,
///     Task::new(Time::new(2), Time::new(10), Time::new(12))?,
/// ]);
/// let analysis = DeviTest::new().analyze(&ts);
/// assert_eq!(analysis.verdict, Verdict::Feasible);
/// assert_eq!(analysis.iterations, 2); // one condition per task
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviTest;

impl DeviTest {
    /// Creates the test.
    #[must_use]
    pub fn new() -> Self {
        DeviTest
    }
}

impl FeasibilityTest for DeviTest {
    fn name(&self) -> &str {
        "devi"
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn analyze_demand(
        &self,
        workload: &PreparedWorkload,
        scratch: &mut AnalysisScratch,
    ) -> Analysis {
        if workload.is_empty() {
            return Analysis::trivial(Verdict::Feasible);
        }
        if workload.utilization_exceeds_one() {
            return Analysis::trivial(Verdict::Infeasible);
        }
        let components = workload.components();
        let order = workload.deadline_order();
        let terms = &mut scratch.devi_terms;
        let mut counter = IterationCounter::new();
        for k in 1..=order.len() {
            let dk = components[order[k - 1]].first_deadline();
            counter.record(dk);
            // Check Σ_{i<=k} Ci·(Dk + Ti − min(Ti, Di)) / Ti  <=  Dk exactly;
            // one-shot components contribute their constant cost.
            terms.clear();
            terms.extend(order[..k].iter().map(|&i| {
                let component = &components[i];
                match component.period() {
                    Some(period) => {
                        let slack = period.saturating_sub(component.first_deadline());
                        (
                            component.wcet().as_u128() * (dk.as_u128() + slack.as_u128()),
                            period.as_u128(),
                        )
                    }
                    None => (component.wcet().as_u128(), 1),
                }
            }));
            if !fracs_le_integer(terms, dk.as_u128()) {
                return counter.finish(Verdict::Unknown, None);
            }
        }
        counter.finish(Verdict::Feasible, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edf_model::{Task, TaskSet};

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    #[test]
    fn implicit_deadlines_reduce_to_utilization() {
        // For D == T the second sum vanishes and Devi accepts iff U <= 1.
        let ok = TaskSet::from_tasks(vec![t(1, 2, 2), t(1, 4, 4), t(1, 4, 4)]);
        assert_eq!(DeviTest::new().analyze(&ok).verdict, Verdict::Feasible);
        let over = TaskSet::from_tasks(vec![t(2, 3, 3), t(2, 4, 4)]);
        assert_eq!(DeviTest::new().analyze(&over).verdict, Verdict::Infeasible);
    }

    #[test]
    fn iterations_equal_task_count_when_accepting() {
        let ts = TaskSet::from_tasks(vec![t(1, 8, 10), t(1, 15, 20), t(2, 35, 40), t(1, 90, 100)]);
        let analysis = DeviTest::new().analyze(&ts);
        assert_eq!(analysis.verdict, Verdict::Feasible);
        assert_eq!(analysis.iterations, 4);
    }

    #[test]
    fn hand_computed_acceptance() {
        // τ1 = (1, 4, 8), τ2 = (2, 6, 12):
        // k=1: 1/8 + (1/4)(4/8·1) = 0.125 + 0.125 = 0.25 <= 1
        // k=2: (1/8 + 2/12) + (1/6)(4/8·1 + 6/12·2) = 0.2917 + 0.25 = 0.5417 <= 1
        let ts = TaskSet::from_tasks(vec![t(1, 4, 8), t(2, 6, 12)]);
        let analysis = DeviTest::new().analyze(&ts);
        assert_eq!(analysis.verdict, Verdict::Feasible);
        assert_eq!(analysis.iterations, 2);
    }

    #[test]
    fn hand_computed_rejection_of_feasible_set() {
        // A short-deadline task pair that is feasible (dbf(2)=1<=2, dbf(3)=3<=3,...)
        // but rejected by Devi at k=2:
        // τ1 = (1, 2, 10), τ2 = (2, 3, 10):
        // k=2: (0.1 + 0.2) + (1/3)((8/10)·1 + (7/10)·2) = 0.3 + (1/3)(2.2) = 1.033 > 1.
        let ts = TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10)]);
        let analysis = DeviTest::new().analyze(&ts);
        assert_eq!(analysis.verdict, Verdict::Unknown);
        assert_eq!(analysis.iterations, 2, "fails at the second condition");
    }

    #[test]
    fn stops_at_first_failing_condition() {
        // Make the very first (smallest deadline) condition fail:
        // τ1 = (5, 5, 50): k=1: 0.1 + (1/5)(45/50·5) = 0.1 + 0.9 = 1.0 <= 1 (passes!)
        // Use τ1 = (5, 4, 50): 0.1 + (1/4)(4.5) = 1.225 > 1.
        let ts = TaskSet::from_tasks(vec![t(5, 4, 50), t(1, 100, 100)]);
        let analysis = DeviTest::new().analyze(&ts);
        assert_eq!(analysis.verdict, Verdict::Unknown);
        assert_eq!(analysis.iterations, 1);
    }

    #[test]
    fn boundary_condition_exactly_one_is_accepted() {
        // τ = (5, 5, 50): condition value is exactly 1 at k=1 and U small.
        let ts = TaskSet::from_tasks(vec![t(5, 5, 50)]);
        assert_eq!(DeviTest::new().analyze(&ts).verdict, Verdict::Feasible);
    }

    #[test]
    fn unordered_input_is_sorted_internally() {
        let a = TaskSet::from_tasks(vec![t(2, 20, 40), t(1, 3, 9), t(1, 7, 14)]);
        let b = a.sorted_by_deadline();
        assert_eq!(
            DeviTest::new().analyze(&a).verdict,
            DeviTest::new().analyze(&b).verdict
        );
    }

    #[test]
    fn empty_and_overload() {
        assert_eq!(
            DeviTest::new().analyze(&TaskSet::new()).verdict,
            Verdict::Feasible
        );
        let over = TaskSet::from_tasks(vec![t(9, 9, 10), t(9, 9, 10)]);
        assert_eq!(DeviTest::new().analyze(&over).verdict, Verdict::Infeasible);
        assert!(!DeviTest::new().is_exact());
        assert_eq!(DeviTest::new().name(), "devi");
    }
}
