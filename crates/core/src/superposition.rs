//! The superposition approximation of the demand bound function
//! (Def. 4–5 of the paper) and the helper quantities of §4.
//!
//! The approximation examines only the first `x` jobs of each task exactly
//! (up to the *maximum test interval* `Im(τ)`, the absolute deadline of the
//! `x`-th job) and replaces the remaining staircase by a line of slope
//! `C/T` starting at `(Im, dbf(Im))`:
//!
//! ```text
//! dbf'(I, τ) = dbf(I, τ)                            for I ≤ Im(τ)
//!            = dbf(Im, τ) + C·(I − Im)/T            for I > Im(τ)
//! ```
//!
//! Because this crate works on integer time, the linear part is evaluated
//! with **ceiling division**, i.e. as `dbf(Im, τ) + ⌈C·(I − Im)/T⌉`.  This
//! keeps `dbf'` an over-approximation of `dbf` (the property every proof in
//! the paper relies on) while staying in exact integer arithmetic; see
//! `DESIGN.md` §2.1 for the full argument.

use edf_model::{Task, Time};

use crate::arith::{ceil_div_u128, fracs_parts_le_integer_iter, Reciprocal};
use crate::demand::dbf_task;
use crate::workload::DemandComponent;

/// `⌈num / period⌉` with a hardware-division fast path for numerators that
/// fit `u64` (virtually all of them: `C·δ` overflows `u64` only for
/// astronomically large cost × interval products).  The generic
/// [`ceil_div_u128`] lowers to a software `__udivti3` call, which the
/// `LargestError` revision scan used to pay once per live term.
#[inline]
fn ceil_linear_div(num: u128, period: u64) -> u128 {
    if let Ok(n64) = u64::try_from(num) {
        u128::from(n64.div_ceil(period))
    } else {
        ceil_div_u128(num, u128::from(period))
    }
}

/// The maximum test interval `Im(τ)` of a task at approximation level
/// `level ≥ 1`: the absolute deadline of its `level`-th job,
/// `(level − 1)·T + D`.
///
/// Saturates instead of overflowing (a saturated border simply means the
/// task is never approximated within any realistic horizon).
///
/// # Panics
///
/// Panics if `level` is zero — level 0 would approximate a task before its
/// first deadline, which the superposition construction does not define.
///
/// # Examples
///
/// ```
/// use edf_analysis::superposition::max_test_interval;
/// use edf_model::{Task, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let tau = Task::new(Time::new(1), Time::new(4), Time::new(10))?;
/// assert_eq!(max_test_interval(&tau, 1), Time::new(4));
/// assert_eq!(max_test_interval(&tau, 3), Time::new(24));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn max_test_interval(task: &Task, level: u64) -> Time {
    assert!(level >= 1, "approximation level must be at least 1");
    task.period()
        .saturating_mul(level - 1)
        .saturating_add(task.deadline())
}

/// The approximated contribution of a task that has been approximated from
/// interval `im` onwards, where `dbf_at_im = dbf(im, τ)`:
/// `dbf(im, τ) + ⌈C·(I − im)/T⌉` for `interval ≥ im`.
///
/// # Panics
///
/// Panics (debug assertions) if `interval < im`; the approximation is only
/// defined beyond its starting interval.
#[must_use]
pub fn approx_contribution(task: &Task, im: Time, dbf_at_im: Time, interval: Time) -> Time {
    debug_assert!(interval >= im, "approximation queried before its start");
    let delta = interval.saturating_sub(im);
    if delta.is_zero() {
        return dbf_at_im;
    }
    let linear = ceil_linear_div(
        task.wcet().as_u128() * delta.as_u128(),
        task.period().as_u64(),
    );
    dbf_at_im.saturating_add(Time::new(linear.min(u128::from(u64::MAX)) as u64))
}

/// The approximated task demand bound function `dbf'(I, τ)` at a given
/// approximation level (Def. 4).
#[must_use]
pub fn dbf_approx_task(task: &Task, level: u64, interval: Time) -> Time {
    let im = max_test_interval(task, level);
    if interval <= im {
        return dbf_task(task, interval);
    }
    approx_contribution(task, im, dbf_task(task, im), interval)
}

/// The approximated demand bound function of a whole task set (Def. 5):
/// the superposition `Σ dbf'(I, τ)`.
#[must_use]
pub fn dbf_approx_set<'a>(
    tasks: impl IntoIterator<Item = &'a Task>,
    level: u64,
    interval: Time,
) -> Time {
    tasks.into_iter().fold(Time::ZERO, |acc, t| {
        acc.saturating_add(dbf_approx_task(t, level, interval))
    })
}

/// The smallest approximation level whose relative demand error is bounded
/// by `epsilon` — the §4 discussion's target-error knob.
///
/// A demand source approximated after its `k`-th examined job over-counts
/// its demand by less than one job's cost, out of at least `k` exactly
/// accounted jobs, so its relative error is below `1/k`.  The level
/// guaranteeing a requested relative error `ε` is therefore `⌈1/ε⌉`
/// (clamped to at least 1; any `ε ≥ 1` is satisfied by level 1).  This is
/// the mapping behind the `from_target_error` constructors of
/// [`SuperpositionTest`](crate::tests::SuperpositionTest),
/// [`DynamicErrorTest`](crate::tests::DynamicErrorTest) and
/// [`AllApproximatedTest`](crate::tests::AllApproximatedTest).
///
/// # Panics
///
/// Panics if `epsilon` is not a positive finite number.
///
/// # Examples
///
/// ```
/// use edf_analysis::superposition::level_for_target_error;
///
/// assert_eq!(level_for_target_error(1.0), 1);
/// assert_eq!(level_for_target_error(0.5), 2);
/// assert_eq!(level_for_target_error(0.1), 10);
/// assert_eq!(level_for_target_error(0.3), 4); // ⌈1/0.3⌉
/// ```
#[must_use]
pub fn level_for_target_error(epsilon: f64) -> u64 {
    assert!(
        epsilon.is_finite() && epsilon > 0.0,
        "target error must be a positive finite number"
    );
    if epsilon >= 1.0 {
        return 1;
    }
    let level = (1.0 / epsilon).ceil();
    if level >= u64::MAX as f64 {
        u64::MAX
    } else {
        (level as u64).max(1)
    }
}

/// One approximated demand source inside a demand comparison: the linear
/// slope parameters (`C`, `T`) and the interval `Im` from which the demand
/// is approximated linearly.
///
/// The term is model-agnostic — built from a sporadic [`Task`]
/// ([`ApproxTerm::for_task`]) or from any periodic
/// [`DemandComponent`] ([`ApproxTerm::for_component`]), which is how the
/// superposition machinery serves event-stream workloads.  One-shot
/// components are never approximated (their demand is constant beyond the
/// single deadline, so keeping them exact is free).
#[derive(Debug, Clone, Copy)]
pub struct ApproxTerm {
    /// Cost per job — the numerator of the approximation slope `C/T`.
    pub wcet: Time,
    /// Job distance — the denominator of the approximation slope `C/T`.
    pub period: Time,
    /// Start of the approximation (`dbf` is exact up to and including `Im`).
    pub im: Time,
    /// Exact demand `dbf(Im, τ)` of the source at `Im`.
    pub dbf_at_im: Time,
    /// Precomputed reciprocal of `period`: the refining tests keep terms
    /// alive across many comparisons, so each comparison divides by the
    /// period via two multiplies instead of a hardware division.
    pub(crate) rcp: Reciprocal,
}

impl ApproxTerm {
    /// The approximation term of a sporadic task.
    #[must_use]
    pub fn for_task(task: &Task, im: Time, dbf_at_im: Time) -> Self {
        ApproxTerm {
            wcet: task.wcet(),
            period: task.period(),
            im,
            dbf_at_im,
            rcp: Reciprocal::new(task.period().as_u64()),
        }
    }

    /// The approximation term of a periodic demand component.
    ///
    /// # Panics
    ///
    /// Panics if the component is one-shot — one-shots have no linear tail
    /// and must stay exact.
    #[must_use]
    pub fn for_component(component: &DemandComponent, im: Time, dbf_at_im: Time) -> Self {
        let period = component
            .period()
            .expect("one-shot components are never approximated");
        ApproxTerm {
            wcet: component.wcet(),
            period,
            im,
            dbf_at_im,
            rcp: Reciprocal::new(period.as_u64()),
        }
    }

    /// [`ApproxTerm::for_component`] with an already-computed period
    /// reciprocal.  The refining tests gather every periodic component's
    /// reciprocal once per analysis (from the kernel columns), so
    /// re-approximating a popped interval costs no `u128` division.
    ///
    /// # Panics
    ///
    /// Panics if the component is one-shot; debug assertions also check
    /// that `rcp` really is the reciprocal of the component's period.
    #[must_use]
    pub(crate) fn with_reciprocal(
        component: &DemandComponent,
        im: Time,
        dbf_at_im: Time,
        rcp: Reciprocal,
    ) -> Self {
        let period = component
            .period()
            .expect("one-shot components are never approximated");
        debug_assert_eq!(
            rcp,
            Reciprocal::new(period.as_u64()),
            "cached reciprocal must match the component period"
        );
        ApproxTerm {
            wcet: component.wcet(),
            period,
            im,
            dbf_at_im,
            rcp,
        }
    }

    /// The ceiling-division linear part `⌈C·(interval − Im)/T⌉` of this
    /// term, clamped to the `Time` range — the quantity
    /// [`approx_contribution`] adds to `dbf(Im)`, computed through the
    /// term's cached reciprocal (the `LargestError` revision scan calls
    /// this once per live term per revision pick).
    #[inline]
    #[must_use]
    pub(crate) fn ceil_linear(&self, interval: Time) -> Time {
        let delta = interval.saturating_sub(self.im);
        if delta.is_zero() {
            return Time::ZERO;
        }
        let num = self.wcet.as_u128() * delta.as_u128();
        let value = self.rcp.ceil_divide(num, self.period.as_u64());
        Time::new(value.min(u128::from(u64::MAX)) as u64)
    }

    /// The pre-divided linear part `(⌊C·δ/T⌋, C·δ mod T, T)` of this term
    /// at `interval` (`δ = interval − Im`), or `None` when the linear part
    /// is still zero — computed through the precomputed reciprocal
    /// whenever the numerator fits `u64` (virtually always).
    #[inline]
    pub(crate) fn linear_parts(&self, interval: Time) -> Option<(u128, u128, u128)> {
        let delta = interval.saturating_sub(self.im);
        if delta.is_zero() {
            return None;
        }
        let num = self.wcet.as_u128() * delta.as_u128();
        Some(self.rcp.divided_parts(num, self.period.as_u64()))
    }
}

/// Exactly decides whether the approximated demand
/// `exact_demand + Σⱼ [dbf(Imⱼ, τⱼ) + Cⱼ·(I − Imⱼ)/Tⱼ]` stays within the
/// capacity `interval`, evaluating the real-valued linear terms with exact
/// rational arithmetic (no ceiling pessimism).
///
/// This is the comparison performed at every test interval of the
/// superposition, dynamic-error and all-approximated tests.  Returns
/// `true` when the demand is certainly within the capacity.  In the
/// (astronomically rare) case where even the remainder-based rational
/// comparison overflows, the answer degrades conservatively to `false`,
/// which at worst triggers one extra refinement — never a wrong verdict.
#[must_use]
pub fn approx_demand_within(
    exact_demand: Time,
    approx_terms: &[ApproxTerm],
    interval: Time,
) -> bool {
    let mut base = exact_demand.as_u128();
    for term in approx_terms {
        debug_assert!(
            interval >= term.im,
            "approximation queried before its start"
        );
        base += term.dbf_at_im.as_u128();
    }
    let capacity = interval.as_u128();
    if base > capacity {
        return false;
    }
    // The linear parts go straight into the allocation-free, pre-divided
    // iterator form of the comparison (this runs once per examined test
    // interval of the refining tests — the hottest rational comparison in
    // the crate — and every division runs through the terms' precomputed
    // period reciprocals).
    fracs_parts_le_integer_iter(
        approx_terms
            .iter()
            .filter_map(|term| term.linear_parts(interval)),
        capacity - base,
    )
}

/// The over-estimation `app(I, τ)` of Lemma 6 in the ceiling-division
/// variant: the amount by which the approximated contribution (started at
/// `im`) exceeds the exact demand at `interval`.
///
/// Revising an approximation subtracts exactly this amount from the
/// approximated total demand.
#[must_use]
pub fn approximation_error(task: &Task, im: Time, interval: Time) -> Time {
    approximation_error_component(&DemandComponent::from_task(task), im, interval)
}

/// [`approximation_error`] for an arbitrary demand component (zero for
/// one-shot components: their demand never grows past `im`, so the linear
/// approximation with slope 0 is exact).
#[must_use]
pub fn approximation_error_component(
    component: &DemandComponent,
    im: Time,
    interval: Time,
) -> Time {
    let Some(period) = component.period() else {
        return Time::ZERO;
    };
    let delta = interval.saturating_sub(im);
    let linear = if delta.is_zero() {
        Time::ZERO
    } else {
        let value = ceil_linear_div(
            component.wcet().as_u128() * delta.as_u128(),
            period.as_u64(),
        );
        Time::new(value.min(u128::from(u64::MAX)) as u64)
    };
    component
        .dbf(im)
        .saturating_add(linear)
        .saturating_sub(component.dbf(interval))
}

/// The approximated demand bound function of a demand component at a given
/// approximation level (Def. 4 carried over to arbitrary workloads; exact
/// below the component's maximum test interval, linear with slope `C/T`
/// beyond it, constant for one-shot components).
#[must_use]
pub fn dbf_approx_component(component: &DemandComponent, level: u64, interval: Time) -> Time {
    let im = component.max_test_interval(level);
    if interval <= im {
        return component.dbf(interval);
    }
    let Some(period) = component.period() else {
        // One-shot: demand is constant past the single deadline.
        return component.dbf(interval);
    };
    let delta = interval - im;
    let linear = ceil_linear_div(
        component.wcet().as_u128() * delta.as_u128(),
        period.as_u64(),
    );
    component
        .dbf(im)
        .saturating_add(Time::new(linear.min(u128::from(u64::MAX)) as u64))
}

/// The approximated demand bound function of a whole component list
/// (Def. 5 on the [`Workload`](crate::workload::Workload) canonical form).
#[must_use]
pub fn dbf_approx_components(components: &[DemandComponent], level: u64, interval: Time) -> Time {
    components.iter().fold(Time::ZERO, |acc, c| {
        acc.saturating_add(dbf_approx_component(c, level, interval))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use edf_model::TaskSet;

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    #[test]
    fn max_test_interval_is_kth_deadline() {
        let tau = t(2, 7, 10);
        for level in 1..=10u64 {
            assert_eq!(
                max_test_interval(&tau, level),
                tau.job_deadline(level - 1).unwrap()
            );
        }
    }

    #[test]
    #[should_panic]
    fn level_zero_is_rejected() {
        let tau = t(1, 2, 3);
        let _ = max_test_interval(&tau, 0);
    }

    #[test]
    fn target_error_level_mapping() {
        for (epsilon, level) in [
            (2.0, 1),
            (1.0, 1),
            (0.5, 2),
            (0.34, 3),
            (0.25, 4),
            (0.2, 5),
            (0.125, 8),
            (0.1, 10),
            (0.01, 100),
        ] {
            assert_eq!(level_for_target_error(epsilon), level, "epsilon {epsilon}");
        }
        // The derived level always meets the requested error: 1/level ≤ ε.
        for epsilon in [0.9, 0.51, 0.3, 0.17, 0.003] {
            let level = level_for_target_error(epsilon);
            assert!(1.0 / level as f64 <= epsilon + 1e-12, "epsilon {epsilon}");
        }
    }

    #[test]
    #[should_panic]
    fn zero_target_error_is_rejected() {
        let _ = level_for_target_error(0.0);
    }

    #[test]
    #[should_panic]
    fn nan_target_error_is_rejected() {
        let _ = level_for_target_error(f64::NAN);
    }

    #[test]
    fn approx_equals_exact_below_border() {
        let tau = t(3, 5, 12);
        for level in 1..=4u64 {
            let im = max_test_interval(&tau, level);
            for i in 0..=im.as_u64() {
                assert_eq!(
                    dbf_approx_task(&tau, level, Time::new(i)),
                    dbf_task(&tau, Time::new(i)),
                    "level {level}, I = {i}"
                );
            }
        }
    }

    #[test]
    fn approx_dominates_exact_everywhere() {
        let tau = t(3, 5, 12);
        for level in 1..=5u64 {
            for i in 0..300u64 {
                let i = Time::new(i);
                assert!(
                    dbf_approx_task(&tau, level, i) >= dbf_task(&tau, i),
                    "dbf' must over-approximate dbf (level {level}, I = {i})"
                );
            }
        }
    }

    #[test]
    fn approx_overestimate_is_below_one_job() {
        // The ceiling-division over-estimate stays strictly below C + 1 per
        // task (C from the real-valued superposition bound, +1 from ceiling).
        let tau = t(4, 6, 15);
        for level in 1..=3u64 {
            for i in 0..400u64 {
                let i = Time::new(i);
                let err = dbf_approx_task(&tau, level, i).saturating_sub(dbf_task(&tau, i));
                assert!(err <= tau.wcet(), "error {err} at level {level}, I = {i}");
            }
        }
    }

    #[test]
    fn higher_level_is_tighter() {
        let tau = t(3, 5, 12);
        for i in 0..400u64 {
            let i = Time::new(i);
            for level in 1..=6u64 {
                assert!(
                    dbf_approx_task(&tau, level + 1, i) <= dbf_approx_task(&tau, level, i),
                    "raising the level can only tighten the approximation"
                );
            }
        }
    }

    #[test]
    fn approx_is_monotone_in_interval() {
        let tau = t(2, 9, 10);
        for level in 1..=3u64 {
            for i in 0..200u64 {
                assert!(
                    dbf_approx_task(&tau, level, Time::new(i + 1))
                        >= dbf_approx_task(&tau, level, Time::new(i))
                );
            }
        }
    }

    #[test]
    fn set_approx_is_superposition_of_tasks() {
        let ts = TaskSet::from_tasks(vec![t(1, 3, 6), t(2, 5, 10), t(3, 12, 20)]);
        for i in (0..150).step_by(7) {
            let i = Time::new(i);
            let expected: u64 = ts
                .iter()
                .map(|task| dbf_approx_task(task, 2, i).as_u64())
                .sum();
            assert_eq!(dbf_approx_set(ts.iter(), 2, i).as_u64(), expected);
        }
    }

    #[test]
    fn approx_contribution_at_start_is_exact() {
        let tau = t(3, 5, 12);
        let im = Time::new(17); // deadline of 2nd job
        assert_eq!(
            approx_contribution(&tau, im, dbf_task(&tau, im), im),
            dbf_task(&tau, im)
        );
    }

    #[test]
    fn approximation_error_zero_at_start_and_nonnegative() {
        let tau = t(3, 5, 12);
        let im = max_test_interval(&tau, 2);
        assert_eq!(approximation_error(&tau, im, im), Time::ZERO);
        for i in im.as_u64()..im.as_u64() + 100 {
            let err = approximation_error(&tau, im, Time::new(i));
            assert!(err <= tau.wcet());
        }
    }

    #[test]
    fn approx_demand_within_matches_real_valued_superposition() {
        // τ = (3, 5, 12) approximated from its first deadline (Im = 5):
        // real-valued dbf'(I) = 3 + 3·(I − 5)/12.
        let tau = t(3, 5, 12);
        let term = ApproxTerm::for_task(&tau, Time::new(5), Time::new(3));
        for i in 5..200u64 {
            let real = 3.0 + 3.0 * (i as f64 - 5.0) / 12.0;
            let within = approx_demand_within(Time::ZERO, &[term], Time::new(i));
            assert_eq!(within, real <= i as f64, "I = {i}");
        }
    }

    #[test]
    fn approx_demand_within_includes_exact_part() {
        let tau = t(2, 4, 10);
        let term = ApproxTerm::for_task(&tau, Time::new(4), Time::new(2));
        // Demand at I = 12 is exact + dbf(4) + 2*(12-4)/10 = exact + 3.6.
        assert!(approx_demand_within(Time::new(8), &[term], Time::new(12)));
        assert!(!approx_demand_within(Time::new(9), &[term], Time::new(12)));
        // No approximated tasks at all: plain integer comparison.
        assert!(approx_demand_within(Time::new(12), &[], Time::new(12)));
        assert!(!approx_demand_within(Time::new(13), &[], Time::new(12)));
    }

    #[test]
    fn ceil_linear_div_matches_wide_ceiling_at_the_u64_boundary() {
        // The hardware fast path and the u128 software path must agree on
        // either side of the numerator-fits-u64 boundary.
        let boundary = u128::from(u64::MAX);
        for period in [1u64, 2, 3, 7, 10, 1 << 20, u64::MAX] {
            let mut numerators = vec![
                0,
                1,
                u128::from(period),
                u128::from(period) + 1,
                boundary - 1,
                boundary,
                boundary + 1,
                boundary + u128::from(period),
                boundary * u128::from(period.max(2)),
                u128::MAX,
            ];
            numerators.push(boundary / u128::from(period) * u128::from(period));
            for num in numerators {
                assert_eq!(
                    ceil_linear_div(num, period),
                    ceil_div_u128(num, u128::from(period)),
                    "num {num}, period {period}"
                );
            }
        }
    }

    #[test]
    fn term_ceil_linear_matches_approx_contribution() {
        let tau = t(3, 5, 12);
        let im = max_test_interval(&tau, 2);
        let base = dbf_task(&tau, im);
        let term = ApproxTerm::for_task(&tau, im, base);
        for i in im.as_u64()..im.as_u64() + 150 {
            let i = Time::new(i);
            assert_eq!(
                base.saturating_add(term.ceil_linear(i)),
                approx_contribution(&tau, im, base, i),
                "I = {i}"
            );
        }
        // Saturating tail: a huge cost·delta product must clamp like the
        // contribution helper does.
        let wide = t(u64::MAX, 1, u64::MAX);
        let wide_term = ApproxTerm::for_task(&wide, Time::new(1), Time::new(u64::MAX));
        assert_eq!(
            Time::new(u64::MAX).saturating_add(wide_term.ceil_linear(Time::MAX)),
            approx_contribution(&wide, Time::new(1), Time::new(u64::MAX), Time::MAX),
        );
    }

    #[test]
    fn with_reciprocal_matches_for_component() {
        let component = DemandComponent::periodic(Time::new(3), Time::new(5), Time::new(12));
        let rcp = Reciprocal::new(12);
        let a = ApproxTerm::for_component(&component, Time::new(5), Time::new(3));
        let b = ApproxTerm::with_reciprocal(&component, Time::new(5), Time::new(3), rcp);
        for i in 5..120u64 {
            let i = Time::new(i);
            assert_eq!(a.linear_parts(i), b.linear_parts(i), "I = {i}");
            assert_eq!(a.ceil_linear(i), b.ceil_linear(i), "I = {i}");
        }
    }

    #[test]
    fn ceiling_variant_matches_real_value_at_multiples() {
        // When (I - Im) is a multiple of T the ceiling and the real-valued
        // approximation coincide, and both equal the exact dbf at the next
        // deadline position.
        let tau = t(4, 7, 9);
        let im = max_test_interval(&tau, 1);
        for k in 1..10u64 {
            let i = im + tau.period() * k;
            let approx = approx_contribution(&tau, im, dbf_task(&tau, im), i);
            assert_eq!(approx, dbf_task(&tau, im) + tau.wcet() * k);
            assert_eq!(approx, dbf_task(&tau, i));
        }
    }
}
