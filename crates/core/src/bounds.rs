//! Feasibility bounds: upper limits on the intervals a demand-based test
//! has to examine (§4.3 of the paper).
//!
//! If the utilization is below 100 %, the demand bound function eventually
//! falls below the capacity line forever; a *feasibility bound* is any
//! interval length beyond which no violation can occur, so the exact tests
//! only need to examine deadlines below it.  This module implements the
//! bounds discussed in the paper and its references:
//!
//! * [`baruah_bound`] — Baruah et al.: `U/(1−U) · max(Tᵢ − Dᵢ)`;
//! * [`george_bound`] — George et al.: `Σ_{Dᵢ≤Tᵢ} (1 − Dᵢ/Tᵢ)·Cᵢ / (1 − U)`;
//! * [`busy_period`] — length of the synchronous processor busy period;
//! * [`hyperperiod_bound`] — `lcm(Tᵢ) + max Dᵢ` (always valid, often huge);
//! * [`superposition_bound`] — the bound implicitly reached by the
//!   all-approximated test (§4.3), `max(Dmax, George)`; the paper proves it
//!   coincides with the George bound whenever `Cτ ≤ Dτ`.
//!
//! Every bound is defined on [`DemandComponent`] lists (the canonical form
//! of any [`Workload`]), which is how the §4.3
//! derivations carry over to event-stream and mixed systems: a component
//! with cost `C`, first deadline `D'` and cycle `z` satisfies
//! `dbf(I) ≤ I·C/z + C·max(0, 1 − D'/z)`, exactly the per-task inequality
//! behind the George bound.  The sporadic-only bounds (Baruah needs every
//! component periodic; the busy period and hyperperiod arguments need the
//! classic synchronous pattern) return `None` for workloads outside their
//! domain, and [`FeasibilityBounds::analysis_horizon`] picks the tightest
//! of whatever is available.  The `TaskSet` entry points are thin wrappers
//! over the component forms.
//!
//! All bounds are rounded **up** to the next integer so that using them as
//! a search horizon can never cut off a violating deadline.
//!
//! For search loops that re-derive the bounds of the *same* workload under
//! WCET perturbations (breakdown scaling, slack probing — see
//! [`crate::sensitivity`]), [`BoundRefresher`] caches the scale-invariant
//! half of the computation (the hyperperiod bound is WCET-free; Baruah's
//! `max(T − D)` aggregate, George's degeneracy and the applicability flags
//! are structural) and seeds the remaining binary searches with the
//! previous probe's results, while staying bit-identical to the cold
//! [`FeasibilityBounds::for_components`] computation.
//!
//! # Examples
//!
//! ```
//! use edf_analysis::bounds;
//! use edf_model::{Task, TaskSet, Time};
//!
//! # fn main() -> Result<(), edf_model::TaskError> {
//! let ts = TaskSet::from_tasks(vec![
//!     Task::new(Time::new(2), Time::new(4), Time::new(10))?,
//!     Task::new(Time::new(3), Time::new(6), Time::new(15))?,
//! ]);
//! let all = bounds::FeasibilityBounds::compute(&ts);
//! assert!(all.analysis_horizon().is_some());
//! # Ok(())
//! # }
//! ```

use edf_model::{TaskSet, Time};

use crate::arith::{fracs_parts_le_integer_iter, Reciprocal};
use crate::budget::WorkBudget;
use crate::workload::{components_exceed_one, DemandComponent, Workload};

/// Convergence allowance of the busy-period fix-point, expressed as a
/// [`WorkBudget`] limit so bounds work is metered in the same units as
/// every other analysis loop: an overloaded set whose iteration diverges
/// is cut off after this many work units and reports "no bound"
/// (`None`), exactly as before the budget unification.
const BUSY_PERIOD_CONVERGENCE_UNITS: u64 = 100_000;

/// The collection of all implemented feasibility bounds for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeasibilityBounds {
    /// Baruah et al. bound, `None` if `U ≥ 1`, the workload has one-shot
    /// components, or no component has `D < T` (in which case the Liu &
    /// Layland argument applies instead).
    pub baruah: Option<Time>,
    /// George et al. bound, `None` if `U ≥ 1`.
    pub george: Option<Time>,
    /// Synchronous busy period, `None` outside the sporadic model or if the
    /// fix-point does not converge within the iteration budget (`U > 1`).
    pub busy_period: Option<Time>,
    /// `lcm(Tᵢ) + max Dᵢ`, `None` on overflow, one-shot components or an
    /// empty workload.
    pub hyperperiod: Option<Time>,
    /// Superposition bound of §4.3, `None` if `U ≥ 1`.
    pub superposition: Option<Time>,
}

impl FeasibilityBounds {
    /// Computes every bound for a sporadic task set.
    #[must_use]
    pub fn compute(task_set: &TaskSet) -> Self {
        FeasibilityBounds::for_components(&task_set.demand_components())
    }

    /// Computes every bound for an arbitrary component decomposition.
    #[must_use]
    pub fn for_components(components: &[DemandComponent]) -> Self {
        BoundRefresher::new(components).refresh(components)
    }

    /// [`FeasibilityBounds::for_components`] without the estimate-seeded
    /// searches: every bound is derived by the plain cold binary search of
    /// its standalone function (the pre-refresher behaviour).  Produces
    /// identical values — kept as the from-scratch baseline the
    /// `sensitivity` benchmark (and [`crate::sensitivity::reference`])
    /// measures the incremental engine against.
    #[must_use]
    pub fn for_components_cold(components: &[DemandComponent]) -> Self {
        FeasibilityBounds {
            baruah: baruah_components(components),
            george: george_components(components),
            busy_period: busy_period_components(components),
            hyperperiod: hyperperiod_components(components),
            superposition: superposition_components(components),
        }
    }

    /// The tightest available bound: the minimum over all bounds that could
    /// be computed, or `None` if none could (utilization ≥ 1 with an
    /// overflowing or undefined hyperperiod).
    #[must_use]
    pub fn analysis_horizon(&self) -> Option<Time> {
        [
            self.baruah,
            self.george,
            self.busy_period,
            self.hyperperiod,
            self.superposition,
        ]
        .into_iter()
        .flatten()
        .min()
    }
}

/// The scale-invariant half of the §4.3 bound computation, cached once so a
/// sensitivity search can re-derive the bounds of a WCET-perturbed
/// component list in (near) linear time instead of from cold.
///
/// Under any pure WCET change (uniform breakdown scaling, a single-component
/// slack probe) the periods, deadlines and offsets of a workload do not
/// move, and with them a surprising amount of the bound machinery is fixed:
/// the hyperperiod bound is WCET-free, Baruah's `max(Tᵢ − Dᵢ)` aggregate,
/// George's degeneracy test and the `Dmax` term of the superposition bound
/// depend only on the timing parameters, and the applicability of the busy
/// period argument is structural.  [`BoundRefresher::new`] computes all of
/// that once; [`BoundRefresher::refresh`] then rebuilds a full
/// [`FeasibilityBounds`] for a re-costed component list, seeding the two
/// remaining binary searches with the previous probe's results (galloping
/// brackets), so consecutive probes of a search loop typically pay a
/// handful of predicate evaluations instead of the cold 62-step searches.
///
/// `refresh` is **exact**: for every component list it returns bit-identical
/// values to [`FeasibilityBounds::for_components`] (which is, in fact,
/// implemented on top of it).  The contract is that the refreshed list
/// differs from the one given to `new` only in the component WCETs.
///
/// # Examples
///
/// ```
/// use edf_analysis::bounds::{BoundRefresher, FeasibilityBounds};
/// use edf_analysis::workload::Workload;
/// use edf_model::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let ts = TaskSet::from_tasks(vec![
///     Task::new(Time::new(2), Time::new(4), Time::new(10))?,
///     Task::new(Time::new(3), Time::new(6), Time::new(15))?,
/// ]);
/// let components = ts.demand_components();
/// let mut refresher = BoundRefresher::new(&components);
/// assert_eq!(
///     refresher.refresh(&components),
///     FeasibilityBounds::for_components(&components)
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BoundRefresher {
    component_count: usize,
    /// Baruah's `max(Tᵢ − Dᵢ)`; `None` when the bound is structurally
    /// inapplicable (empty list, one-shot component, or zero difference).
    baruah_max_diff: Option<Time>,
    /// `true` when every component is periodic with `D′ ≥ T` (the George
    /// bound then degenerates to the smallest deadline).
    george_degenerate: bool,
    min_first_deadline: Option<Time>,
    max_first_deadline: Option<Time>,
    /// The synchronous busy-period argument applies: non-empty, purely
    /// periodic, all released at the window start.
    busy_applicable: bool,
    /// The hyperperiod bound is WCET-free, hence computed exactly once.
    hyperperiod: Option<Time>,
    /// `lcm` of the periods (`None` when empty, one-shot components are
    /// present, or the lcm overflows) — invariant even under **deadline**
    /// perturbations, so [`BoundRefresher::refresh_retimed`] re-derives the
    /// hyperperiod bound without re-running the lcm chain.
    period_lcm: Option<Time>,
    /// One precomputed period reciprocal per component (one-shots get the
    /// divisor-1 sentinel), so every search-predicate evaluation divides
    /// by the scale-invariant periods via multiplies.
    reciprocals: Vec<Reciprocal>,
    baruah_hint: Option<Time>,
    george_hint: Option<Time>,
}

/// The timing-dependent (deadline/offset) aggregates of the §4.3 bound
/// machinery — the half that stays fixed under WCET perturbations but
/// moves under re-phasing.  One shared constructor serves both
/// [`BoundRefresher::new`] and [`BoundRefresher::refresh_retimed`], so the
/// per-aggregate rules cannot drift apart.
struct TimingAggregates {
    baruah_max_diff: Option<Time>,
    george_degenerate: bool,
    min_first_deadline: Option<Time>,
    max_first_deadline: Option<Time>,
    busy_applicable: bool,
}

impl TimingAggregates {
    fn of(components: &[DemandComponent]) -> Self {
        let any_one_shot = components.iter().any(|c| c.period().is_none());
        let baruah_max_diff = if components.is_empty() || any_one_shot {
            None
        } else {
            let max_diff = components.iter().fold(Time::ZERO, |acc, c| {
                acc.max(
                    c.period()
                        .expect("checked periodic above")
                        .saturating_sub(c.first_deadline()),
                )
            });
            (!max_diff.is_zero()).then_some(max_diff)
        };
        TimingAggregates {
            baruah_max_diff,
            george_degenerate: components.iter().all(|c| match c.period() {
                Some(period) => c.first_deadline() >= period,
                None => false,
            }),
            min_first_deadline: components.iter().map(DemandComponent::first_deadline).min(),
            max_first_deadline: components.iter().map(DemandComponent::first_deadline).max(),
            busy_applicable: !components.is_empty()
                && !components
                    .iter()
                    .any(|c| c.period().is_none() || !c.release_offset().is_zero()),
        }
    }
}

impl BoundRefresher {
    /// Captures the scale-invariant aggregates of `components`.
    #[must_use]
    pub fn new(components: &[DemandComponent]) -> Self {
        let timing = TimingAggregates::of(components);
        let period_lcm = period_lcm(components);
        let hyperperiod = hyperperiod_from(period_lcm, timing.max_first_deadline);
        BoundRefresher {
            component_count: components.len(),
            baruah_max_diff: timing.baruah_max_diff,
            george_degenerate: timing.george_degenerate,
            min_first_deadline: timing.min_first_deadline,
            max_first_deadline: timing.max_first_deadline,
            busy_applicable: timing.busy_applicable,
            hyperperiod,
            period_lcm,
            reciprocals: components
                .iter()
                .map(|c| Reciprocal::new(c.period().map_or(1, Time::as_u64)))
                .collect(),
            baruah_hint: None,
            george_hint: None,
        }
    }

    /// Recomputes every bound for a copy of the component list given to
    /// [`BoundRefresher::new`] whose **timing parameters** (offsets, hence
    /// first deadlines) moved but whose periods and component count did not
    /// — the candidate-swap contract of
    /// [`CandidateView`](crate::candidates::CandidateView), where every
    /// part keeps its cost and period but is re-phased within it.
    ///
    /// The deadline-dependent aggregates ([`TimingAggregates`], plus the
    /// `max D'` half of the hyperperiod bound) are re-derived in one linear
    /// pass; the period-only state (the lcm chain behind the hyperperiod
    /// bound, the per-component reciprocals feeding every search predicate)
    /// is reused, and the remaining searches run hint-seeded exactly as in
    /// [`BoundRefresher::refresh`].  The result is bit-identical to
    /// [`FeasibilityBounds::for_components`] on the same list.
    ///
    /// `exceeds_one` is the caller's (exact) `U > 1` verdict — invariant
    /// under re-phasing, so candidate sweeps compute it once.
    pub(crate) fn refresh_retimed(
        &mut self,
        components: &[DemandComponent],
        exceeds_one: bool,
    ) -> FeasibilityBounds {
        self.refresh_retimed_budgeted(components, exceeds_one, &mut WorkBudget::unlimited())
    }

    /// [`BoundRefresher::refresh_retimed`] metered against a caller's
    /// [`WorkBudget`] — see
    /// [`refresh_with_utilization_budgeted`](Self::refresh_with_utilization_budgeted)
    /// for the charging contract (the refreshed bounds never depend on the
    /// budget; only the charges recorded do).
    pub(crate) fn refresh_retimed_budgeted(
        &mut self,
        components: &[DemandComponent],
        exceeds_one: bool,
        budget: &mut WorkBudget,
    ) -> FeasibilityBounds {
        debug_assert_eq!(self.component_count, components.len());
        let timing = TimingAggregates::of(components);
        self.baruah_max_diff = timing.baruah_max_diff;
        self.george_degenerate = timing.george_degenerate;
        self.min_first_deadline = timing.min_first_deadline;
        self.max_first_deadline = timing.max_first_deadline;
        self.busy_applicable = timing.busy_applicable;
        self.hyperperiod = hyperperiod_from(self.period_lcm, timing.max_first_deadline);
        self.refresh_with_utilization_budgeted(components, exceeds_one, budget)
    }

    /// Recomputes every bound after a **structural edit** — components
    /// inserted, removed or replaced wholesale, the contract of
    /// [`EditView`](crate::incremental::EditView).  Nothing captured by
    /// [`BoundRefresher::new`] is guaranteed to survive such an edit, so
    /// every aggregate (count, timing, the period-lcm chain behind the
    /// hyperperiod bound) is re-derived in one linear pass; only the
    /// search **hints** carry over — they merely seed the galloping
    /// bracket, so the refreshed bounds stay exact while consecutive
    /// edits of a live system (whose bounds barely move) converge in a
    /// handful of predicate evaluations.  `reciprocals` is the caller's
    /// maintained per-component reciprocal cache (see
    /// [`EditView`](crate::incremental::EditView)), copied instead of
    /// re-deriving one 128-bit division per component.  The result is
    /// bit-identical to [`FeasibilityBounds::for_components`] on the same
    /// list.
    pub(crate) fn refresh_edited(
        &mut self,
        components: &[DemandComponent],
        exceeds_one: bool,
        reciprocals: &[Reciprocal],
    ) -> FeasibilityBounds {
        debug_assert_eq!(components.len(), reciprocals.len());
        let timing = TimingAggregates::of(components);
        self.component_count = components.len();
        self.baruah_max_diff = timing.baruah_max_diff;
        self.george_degenerate = timing.george_degenerate;
        self.min_first_deadline = timing.min_first_deadline;
        self.max_first_deadline = timing.max_first_deadline;
        self.busy_applicable = timing.busy_applicable;
        self.period_lcm = period_lcm(components);
        self.hyperperiod = hyperperiod_from(self.period_lcm, timing.max_first_deadline);
        self.reciprocals.clear();
        self.reciprocals.extend_from_slice(reciprocals);
        self.refresh_with_utilization(components, exceeds_one)
    }

    /// Recomputes every bound for a WCET-perturbed copy of the component
    /// list given to [`BoundRefresher::new`]; equal to
    /// [`FeasibilityBounds::for_components`] on the same list.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) when the component count differs from the
    /// list the refresher was built from.
    #[must_use]
    pub fn refresh(&mut self, components: &[DemandComponent]) -> FeasibilityBounds {
        self.refresh_with_utilization(components, components_exceed_one(components))
    }

    /// [`BoundRefresher::refresh`] for callers that already know whether
    /// the (exact) utilization exceeds one, sparing the rational check.
    pub(crate) fn refresh_with_utilization(
        &mut self,
        components: &[DemandComponent],
        exceeds_one: bool,
    ) -> FeasibilityBounds {
        self.refresh_with_utilization_budgeted(
            components,
            exceeds_one,
            &mut WorkBudget::unlimited(),
        )
    }

    /// [`refresh_with_utilization`](Self::refresh_with_utilization) with
    /// the searches metered against a caller's [`WorkBudget`]: every
    /// search-predicate evaluation and every busy-period fix-point
    /// iteration charges one work unit.  A search in flight always runs to
    /// completion (a bound must be exact or absent, never truncated), so
    /// the returned bounds are bit-identical regardless of the budget;
    /// callers abort to an honest `Unknown` *after* the refresh when
    /// [`WorkBudget::is_exhausted`] reports the overdraft.
    pub(crate) fn refresh_with_utilization_budgeted(
        &mut self,
        components: &[DemandComponent],
        exceeds_one: bool,
        budget: &mut WorkBudget,
    ) -> FeasibilityBounds {
        debug_assert!(
            self.invariants_match(components),
            "refreshed component list must differ from the prepared one only in WCETs"
        );
        let utilization_bounds_apply = !components.is_empty() && !exceeds_one;
        let baruah = if utilization_bounds_apply {
            self.refresh_baruah(components, budget)
        } else {
            None
        };
        let george = if utilization_bounds_apply {
            self.refresh_george(components, budget)
        } else {
            None
        };
        let superposition = match (george, self.max_first_deadline) {
            (Some(g), Some(dmax)) => Some(g.max(dmax)),
            _ => None,
        };
        // The fix-point runs to completion under its own convergence
        // cut-off and only *charges* its iterations to the caller's
        // budget afterwards: views cache refreshed bounds across requests,
        // so a budget-dependent bound here would leak one request's
        // exhaustion into another's verdict.
        let busy_period = if self.busy_applicable {
            let mut meter = WorkBudget::unlimited();
            let bound = busy_period_fixpoint_with(components, &mut meter);
            let _ = budget.charge(meter.spent());
            bound
        } else {
            None
        };
        FeasibilityBounds {
            baruah,
            george,
            busy_period,
            hyperperiod: self.hyperperiod,
            superposition,
        }
    }

    /// Debug-build contract check: re-derives every cached aggregate and
    /// compares, catching callers that changed timing parameters (periods,
    /// deadlines, offsets) between `new` and `refresh` — a violation that
    /// would otherwise yield silently wrong bounds.  (Not `cfg`-gated:
    /// `debug_assert!` still type-checks its condition in release builds.)
    fn invariants_match(&self, components: &[DemandComponent]) -> bool {
        let fresh = BoundRefresher::new(components);
        fresh.component_count == self.component_count
            && fresh.baruah_max_diff == self.baruah_max_diff
            && fresh.george_degenerate == self.george_degenerate
            && fresh.min_first_deadline == self.min_first_deadline
            && fresh.max_first_deadline == self.max_first_deadline
            && fresh.busy_applicable == self.busy_applicable
            && fresh.hyperperiod == self.hyperperiod
    }

    fn refresh_baruah(
        &mut self,
        components: &[DemandComponent],
        budget: &mut WorkBudget,
    ) -> Option<Time> {
        let max_diff = self.baruah_max_diff?;
        // Floating-point prediction of `U/(1−U)·max_diff` as the search
        // seed: the galloping bracket makes the result exact no matter how
        // far off the estimate is, but an estimate within a few ulps turns
        // the search into a handful of predicate evaluations.
        let utilization: f64 = components.iter().map(DemandComponent::utilization).sum();
        let estimate = utilization / (1.0 - utilization) * max_diff.as_f64();
        let hint = hint_from_estimate(estimate).or(self.baruah_hint);
        let reciprocals = &self.reciprocals;
        let result = smallest_satisfying_hinted(
            |l| {
                let _ = budget.charge(1);
                baruah_predicate_rcp(components, reciprocals, max_diff, l)
            },
            hint,
        );
        if result.is_some() {
            self.baruah_hint = result;
        }
        result
    }

    fn refresh_george(
        &mut self,
        components: &[DemandComponent],
        budget: &mut WorkBudget,
    ) -> Option<Time> {
        if self.george_degenerate {
            // The numerator is zero: any positive horizon works; report the
            // smallest deadline so the caller has a non-trivial bound.
            return self.min_first_deadline;
        }
        // Floating-point prediction of `Σ(1 − Dᵢ/Tᵢ)·Cᵢ/(1−U)` as the
        // search seed (see `refresh_baruah` for why this stays exact).
        let mut numerator = 0.0f64;
        let mut utilization = 0.0f64;
        for c in components {
            match c.period() {
                Some(period) => {
                    let period = period.as_f64();
                    let slack = period - c.first_deadline().as_f64();
                    utilization += c.wcet().as_f64() / period;
                    if slack > 0.0 {
                        numerator += c.wcet().as_f64() * slack / period;
                    }
                }
                None => numerator += c.wcet().as_f64(),
            }
        }
        let hint = hint_from_estimate(numerator / (1.0 - utilization)).or(self.george_hint);
        let reciprocals = &self.reciprocals;
        let result = smallest_satisfying_hinted(
            |l| {
                let _ = budget.charge(1);
                george_predicate_rcp(components, reciprocals, l)
            },
            hint,
        );
        if result.is_some() {
            self.george_hint = result;
        }
        result
    }
}

/// `lcm` of the component periods — the WCET- **and** deadline-invariant
/// half of the hyperperiod bound.  `None` when the list is empty, contains
/// a one-shot component, or the lcm overflows (mirroring
/// [`hyperperiod_components`], which equals `period_lcm + max D'`).
fn period_lcm(components: &[DemandComponent]) -> Option<Time> {
    if components.is_empty() {
        return None;
    }
    let mut lcm = Time::ONE;
    for component in components {
        lcm = lcm.lcm(component.period()?)?;
    }
    Some(lcm)
}

/// Converts a floating-point bound estimate into a search hint; `None`
/// when the estimate is useless (non-finite or outside the search range,
/// e.g. because `U ≥ 1` crept into the prediction).
fn hint_from_estimate(estimate: f64) -> Option<Time> {
    if estimate.is_finite() && (1.0..=BOUND_SEARCH_CAP as f64).contains(&estimate) {
        Some(Time::new(estimate.ceil() as u64))
    } else {
        None
    }
}

/// The Baruah bound's defining inequality
/// `Σ Cᵢ·(L + max(Tⱼ − Dⱼ))/Tᵢ ≤ L`, evaluated exactly and without
/// allocation.
fn baruah_predicate(components: &[DemandComponent], max_diff: Time, l: u64) -> bool {
    crate::arith::fracs_le_integer_iter(
        components.iter().map(|c| {
            (
                c.wcet().as_u128() * (u128::from(l) + max_diff.as_u128()),
                c.period()
                    .expect("Baruah applies to purely periodic workloads")
                    .as_u128(),
            )
        }),
        u128::from(l),
    )
}

/// The George bound's defining inequality
/// `Σᵢ Cᵢ·(L + slackᵢ)/Tᵢ + Σ_oneshot Cᵢ ≤ L`, evaluated exactly and
/// without allocation.
fn george_predicate(components: &[DemandComponent], l: u64) -> bool {
    crate::arith::fracs_le_integer_iter(
        components.iter().map(|c| match c.period() {
            Some(period) => {
                let slack = period.saturating_sub(c.first_deadline()).as_u128();
                (
                    c.wcet().as_u128() * (u128::from(l) + slack),
                    period.as_u128(),
                )
            }
            None => (c.wcet().as_u128(), 1),
        }),
        u128::from(l),
    )
}

/// [`baruah_predicate`] evaluated through the refresher's precomputed
/// period reciprocals (identical decisions; the pre-divided parts are
/// exact).
fn baruah_predicate_rcp(
    components: &[DemandComponent],
    reciprocals: &[Reciprocal],
    max_diff: Time,
    l: u64,
) -> bool {
    fracs_parts_le_integer_iter(
        components.iter().zip(reciprocals).map(|(c, &rcp)| {
            let period = c
                .period()
                .expect("Baruah applies to purely periodic workloads");
            let num = c.wcet().as_u128() * (u128::from(l) + max_diff.as_u128());
            rcp.divided_parts(num, period.as_u64())
        }),
        u128::from(l),
    )
}

/// [`george_predicate`] evaluated through the refresher's precomputed
/// period reciprocals (identical decisions).
fn george_predicate_rcp(
    components: &[DemandComponent],
    reciprocals: &[Reciprocal],
    l: u64,
) -> bool {
    fracs_parts_le_integer_iter(
        components
            .iter()
            .zip(reciprocals)
            .map(|(c, &rcp)| match c.period() {
                Some(period) => {
                    let slack = period.saturating_sub(c.first_deadline()).as_u128();
                    let num = c.wcet().as_u128() * (u128::from(l) + slack);
                    rcp.divided_parts(num, period.as_u64())
                }
                None => (c.wcet().as_u128(), 0, 1),
            }),
        u128::from(l),
    )
}

/// The busy-period fix-point iteration metered against a caller's [`WorkBudget`]:
/// every fix-point iteration charges one work unit.  The historical
/// non-convergence cut-off is itself a second, internal budget of
/// [`BUSY_PERIOD_CONVERGENCE_UNITS`], so overloaded sets are cut off
/// identically whether or not the caller's budget is limited.  Returns
/// `None` on overload, divergence, or caller-budget exhaustion — callers
/// that need to tell exhaustion apart inspect
/// [`WorkBudget::is_exhausted`] afterwards.
fn busy_period_fixpoint_with(
    components: &[DemandComponent],
    budget: &mut WorkBudget,
) -> Option<Time> {
    let mut convergence = WorkBudget::limited(BUSY_PERIOD_CONVERGENCE_UNITS);
    let mut length = components
        .iter()
        .fold(Time::ZERO, |acc, c| acc.saturating_add(c.wcet()));
    loop {
        if !convergence.charge(1) || !budget.charge(1) {
            return None;
        }
        let next = components
            .iter()
            .fold(Time::ZERO, |acc, c| acc.saturating_add(c.rbf(length)));
        if next == length {
            return Some(length);
        }
        if next == Time::MAX {
            return None;
        }
        length = next;
    }
}

/// Upper limit of the bound binary searches (far beyond any realistic
/// feasibility bound; reaching it means the bound is undefined, e.g. U = 1).
const BOUND_SEARCH_CAP: u64 = 1 << 62;

/// Smallest `L ≥ 1` satisfying the monotone predicate, or `None` if even
/// `BOUND_SEARCH_CAP` does not satisfy it.
fn smallest_satisfying(mut predicate: impl FnMut(u64) -> bool) -> Option<Time> {
    if !predicate(BOUND_SEARCH_CAP) {
        return None;
    }
    let (mut lo, mut hi) = (1u64, BOUND_SEARCH_CAP);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if predicate(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(Time::new(lo))
}

/// [`smallest_satisfying`] seeded with a hint (typically the result of the
/// same search on a slightly perturbed workload): a bracket around the
/// answer is found by galloping out from the hint, so a hint close to the
/// answer replaces the 62-step cold binary search with a handful of
/// predicate evaluations.  Returns the same value as
/// [`smallest_satisfying`] for every monotone predicate.
fn smallest_satisfying_hinted(
    mut predicate: impl FnMut(u64) -> bool,
    hint: Option<Time>,
) -> Option<Time> {
    let Some(hint) = hint else {
        return smallest_satisfying(predicate);
    };
    let hint = hint.as_u64().clamp(1, BOUND_SEARCH_CAP);
    let (lo, hi) = if predicate(hint) {
        // The answer is in [1, hint]: gallop downward for an excluded point.
        let mut hi = hint;
        let mut lo = 0u64;
        let mut width = 1u64;
        loop {
            let candidate = hint.saturating_sub(width).max(1);
            if candidate >= hi {
                break;
            }
            if predicate(candidate) {
                hi = candidate;
                width = width.saturating_mul(2);
            } else {
                lo = candidate;
                break;
            }
        }
        (lo, hi)
    } else {
        // The answer is above the hint: gallop upward for a satisfying one.
        let mut lo = hint;
        let mut width = 1u64;
        let hi = loop {
            let candidate = hint.saturating_add(width).min(BOUND_SEARCH_CAP);
            if candidate <= lo {
                return None; // saturated at the cap without satisfying
            }
            if predicate(candidate) {
                break candidate;
            }
            if candidate == BOUND_SEARCH_CAP {
                return None;
            }
            lo = candidate;
            width = width.saturating_mul(2);
        };
        (lo, hi)
    };
    let (mut lo, mut hi) = (lo, hi);
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if predicate(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(Time::new(hi))
}

/// Baruah et al. feasibility bound `U/(1−U) · max(Tᵢ − Dᵢ)` (Def. 3),
/// rounded up.
///
/// Internally the bound is found as the smallest integer `L` with
/// `Σ Cᵢ·(L + max(Tⱼ − Dⱼ))/Tᵢ ≤ L`, which is algebraically the same
/// inequality but can be evaluated exactly with
/// [`fracs_le_integer`](crate::arith::fracs_le_integer) — no common
/// denominator of all periods is ever formed, so the computation cannot
/// overflow for realistic task sets.
///
/// Returns `None` when the bound is undefined: `U ≥ 1`, or every task has
/// `Dᵢ ≥ Tᵢ` (the bound degenerates to zero; callers should rely on
/// another bound).
#[must_use]
pub fn baruah_bound(task_set: &TaskSet) -> Option<Time> {
    baruah_components(&task_set.demand_components())
}

/// [`baruah_bound`] on an arbitrary component decomposition.  The per-task
/// inequality `dbf(I, τ) ≤ Uτ·(I + (T − D))` holds for any periodic
/// component (offsets are folded into the first deadline), but not for
/// one-shots, so workloads containing one-shot components return `None`.
#[must_use]
pub fn baruah_components(components: &[DemandComponent]) -> Option<Time> {
    if components.is_empty() || components_exceed_one(components) {
        return None;
    }
    let mut max_diff = Time::ZERO;
    for component in components {
        let period = component.period()?; // one-shot: bound not applicable
        max_diff = max_diff.max(period.saturating_sub(component.first_deadline()));
    }
    if max_diff.is_zero() {
        return None;
    }
    smallest_satisfying(|l| baruah_predicate(components, max_diff, l))
}

/// George et al. feasibility bound `Σ_{Dᵢ≤Tᵢ} (1 − Dᵢ/Tᵢ)·Cᵢ / (1 − U)`,
/// rounded up.
///
/// Internally the bound is found as the smallest integer `L` with
/// `Σᵢ Cᵢ·L/Tᵢ + Σ_{Dᵢ≤Tᵢ} (Tᵢ − Dᵢ)·Cᵢ/Tᵢ ≤ L`, evaluated exactly with
/// [`fracs_le_integer`](crate::arith::fracs_le_integer).
///
/// Returns `None` when `U ≥ 1`.
#[must_use]
pub fn george_bound(task_set: &TaskSet) -> Option<Time> {
    george_components(&task_set.demand_components())
}

/// [`george_bound`] on an arbitrary component decomposition: periodic
/// components contribute the usual `(T − D')·C/T` slack term (clamped at
/// zero), one-shot components a constant `C`.
#[must_use]
pub fn george_components(components: &[DemandComponent]) -> Option<Time> {
    if components.is_empty() || components_exceed_one(components) {
        return None;
    }
    let degenerate = components.iter().all(|c| match c.period() {
        Some(period) => c.first_deadline() >= period,
        None => false,
    });
    if degenerate {
        // The numerator is zero: any positive horizon works; report the
        // smallest deadline so the caller has a non-trivial bound.
        return components.iter().map(DemandComponent::first_deadline).min();
    }
    smallest_satisfying(|l| george_predicate(components, l))
}

/// Length of the synchronous processor busy period: the smallest fix-point
/// of `L = Σ ⌈L/Tᵢ⌉·Cᵢ` starting from `L₀ = Σ Cᵢ`.
///
/// Any EDF deadline miss of the synchronous arrival pattern happens inside
/// the first busy period, so its length is a valid feasibility bound.
/// Returns `None` if the iteration does not converge within an internal
/// budget (which happens for overloaded sets).
#[must_use]
pub fn busy_period(task_set: &TaskSet) -> Option<Time> {
    busy_period_components(&task_set.demand_components())
}

/// [`busy_period`] on a component decomposition.  The synchronous-pattern
/// argument is specific to the sporadic model, so this returns `None`
/// whenever a component is one-shot or released after the window start.
#[must_use]
pub fn busy_period_components(components: &[DemandComponent]) -> Option<Time> {
    busy_period_components_with(components, &mut WorkBudget::unlimited())
}

/// [`busy_period_components`] metered against a caller's [`WorkBudget`]
/// (one unit per fix-point iteration).  Returns `None` when the bound is
/// inapplicable, diverges, or the budget runs out mid-iteration; the
/// caller distinguishes the last case via [`WorkBudget::is_exhausted`].
pub fn busy_period_components_with(
    components: &[DemandComponent],
    budget: &mut WorkBudget,
) -> Option<Time> {
    if components.is_empty()
        || components
            .iter()
            .any(|c| c.period().is_none() || !c.release_offset().is_zero())
    {
        return None;
    }
    busy_period_fixpoint_with(components, budget)
}

/// `lcm(Tᵢ) + max Dᵢ`: a bound that is always valid (violations of the
/// synchronous pattern repeat with the hyperperiod), but typically far
/// larger than the others.  `None` if the hyperperiod overflows.
#[must_use]
pub fn hyperperiod_bound(task_set: &TaskSet) -> Option<Time> {
    hyperperiod_components(&task_set.demand_components())
}

/// [`hyperperiod_bound`] on a component decomposition: the demand pattern
/// of periodic components (offsets included) repeats with the lcm of the
/// cycles, so `lcm + max D'` stays valid; one-shot components break the
/// periodicity and yield `None`.
#[must_use]
pub fn hyperperiod_components(components: &[DemandComponent]) -> Option<Time> {
    hyperperiod_from(
        period_lcm(components),
        components.iter().map(DemandComponent::first_deadline).max(),
    )
}

/// Combines the two halves of the hyperperiod bound (`None` when either is
/// undefined or the sum overflows).
fn hyperperiod_from(period_lcm: Option<Time>, max_first_deadline: Option<Time>) -> Option<Time> {
    period_lcm?.checked_add(max_first_deadline?)
}

/// The superposition feasibility bound of §4.3: the interval from which on
/// the all-approximated test can approximate every task and still stay
/// below the capacity, `max(Dmax, Σ(1 − Dᵢ/Tᵢ)·Cᵢ / (1 − U))`.
///
/// For `Cτ ≤ Dτ` this equals the George et al. bound (that is the paper's
/// point: the George bound is implied by — and checked implicitly in — the
/// new test); it is never larger than `max(Dmax, George)`.
#[must_use]
pub fn superposition_bound(task_set: &TaskSet) -> Option<Time> {
    superposition_components(&task_set.demand_components())
}

/// [`superposition_bound`] on an arbitrary component decomposition.
#[must_use]
pub fn superposition_components(components: &[DemandComponent]) -> Option<Time> {
    let george = george_components(components)?;
    let dmax = components
        .iter()
        .map(DemandComponent::first_deadline)
        .max()?;
    Some(george.max(dmax))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::dbf_set;
    use crate::workload::PreparedWorkload;
    use edf_model::{EventStream, EventStreamTask, Task};

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    fn constrained_set() -> TaskSet {
        TaskSet::from_tasks(vec![t(2, 4, 10), t(3, 6, 15), t(4, 20, 40)])
    }

    #[test]
    fn baruah_matches_hand_computation() {
        let ts = constrained_set();
        // U = 0.2 + 0.2 + 0.1 = 0.5; max(T-D) = 20; bound = 0.5/0.5*20 = 20.
        assert_eq!(baruah_bound(&ts), Some(Time::new(20)));
    }

    #[test]
    fn george_matches_hand_computation() {
        let ts = constrained_set();
        // numerator = (6/10)*2 + (9/15)*3 + (20/40)*4 = 1.2 + 1.8 + 2 = 5
        // bound = 5 / 0.5 = 10
        assert_eq!(george_bound(&ts), Some(Time::new(10)));
    }

    #[test]
    fn george_never_exceeds_baruah() {
        // Known analytic relation for constrained-deadline sets.
        let sets = vec![
            constrained_set(),
            TaskSet::from_tasks(vec![t(1, 3, 8), t(2, 5, 12), t(3, 9, 30), t(1, 2, 5)]),
            TaskSet::from_tasks(vec![t(5, 10, 100), t(30, 80, 100)]),
        ];
        for ts in sets {
            let g = george_bound(&ts).unwrap();
            let b = baruah_bound(&ts).unwrap();
            assert!(g <= b, "George {g} must be <= Baruah {b}");
        }
    }

    #[test]
    fn implicit_deadline_set_bounds() {
        let ts = TaskSet::from_tasks(vec![t(1, 4, 4), t(1, 6, 6)]);
        // No task with D < T: Baruah degenerates.
        assert_eq!(baruah_bound(&ts), None);
        // George falls back to the smallest deadline.
        assert_eq!(george_bound(&ts), Some(Time::new(4)));
        assert_eq!(superposition_bound(&ts), Some(Time::new(6)));
        assert_eq!(busy_period(&ts), Some(Time::new(2)));
        assert_eq!(hyperperiod_bound(&ts), Some(Time::new(12 + 6)));
    }

    #[test]
    fn overloaded_set_has_no_utilization_bounds() {
        let ts = TaskSet::from_tasks(vec![t(5, 5, 5), t(1, 10, 10)]);
        assert!(ts.utilization_exceeds_one());
        assert_eq!(baruah_bound(&ts), None);
        assert_eq!(george_bound(&ts), None);
        assert_eq!(superposition_bound(&ts), None);
        assert_eq!(busy_period(&ts), None, "busy period diverges");
        // The hyperperiod bound still exists.
        assert!(hyperperiod_bound(&ts).is_some());
        // And the combined horizon falls back to it.
        let all = FeasibilityBounds::compute(&ts);
        assert_eq!(all.analysis_horizon(), hyperperiod_bound(&ts));
    }

    #[test]
    fn full_utilization_set() {
        let ts = TaskSet::from_tasks(vec![t(1, 2, 2), t(1, 2, 2)]);
        assert_eq!(baruah_bound(&ts), None);
        // All deadlines are implicit, so no interval ever needs checking and
        // the George bound degenerates to the smallest deadline.
        assert_eq!(george_bound(&ts), Some(Time::new(2)));
        // Busy period exists and equals 2 (the processor is never idle but
        // the fix-point converges at the hyperperiod).
        assert_eq!(busy_period(&ts), Some(Time::new(2)));
        assert!(FeasibilityBounds::compute(&ts).analysis_horizon().is_some());
    }

    #[test]
    fn busy_period_fixpoint_examples() {
        let ts = constrained_set();
        // L0 = 9; rbf(9) = 2+3+4 = 9 -> converges at 9.
        assert_eq!(busy_period(&ts), Some(Time::new(9)));

        let ts2 = TaskSet::from_tasks(vec![t(3, 5, 5), t(2, 10, 10)]);
        // L0=5, rbf(5)=3+2=5 ... converges at 5? rbf(5)=ceil(5/5)*3+ceil(5/10)*2=3+2=5. yes.
        assert_eq!(busy_period(&ts2), Some(Time::new(5)));
    }

    #[test]
    fn busy_period_dominates_any_violation() {
        // For feasible sets the busy period is a valid horizon: no violation
        // can exist beyond it. We check the weaker sanity property that dbf
        // never exceeds the interval after the busy period for this set.
        let ts = constrained_set();
        let bp = busy_period(&ts).unwrap();
        for i in bp.as_u64()..bp.as_u64() + 100 {
            assert!(dbf_set(&ts, Time::new(i)) <= Time::new(i));
        }
    }

    #[test]
    fn empty_set_has_no_bounds() {
        let ts = TaskSet::new();
        let all = FeasibilityBounds::compute(&ts);
        assert_eq!(all.baruah, None);
        assert_eq!(all.george, None);
        assert_eq!(all.busy_period, None);
        assert_eq!(all.hyperperiod, None);
        assert_eq!(all.superposition, None);
        assert_eq!(all.analysis_horizon(), None);
    }

    #[test]
    fn horizon_is_minimum_of_available_bounds() {
        let ts = constrained_set();
        let all = FeasibilityBounds::compute(&ts);
        let horizon = all.analysis_horizon().unwrap();
        for candidate in [
            all.baruah,
            all.george,
            all.busy_period,
            all.hyperperiod,
            all.superposition,
        ]
        .into_iter()
        .flatten()
        {
            assert!(horizon <= candidate);
        }
        assert_eq!(horizon, Time::new(9)); // busy period is tightest here
    }

    #[test]
    fn superposition_is_max_of_george_and_dmax() {
        let ts = constrained_set();
        assert_eq!(
            superposition_bound(&ts),
            Some(george_bound(&ts).unwrap().max(ts.max_deadline().unwrap()))
        );
    }

    #[test]
    fn bounds_are_safe_horizons_for_feasible_and_infeasible_sets() {
        // An infeasible constrained-deadline set: the first violation must
        // lie below every computed bound.
        let ts = TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]);
        let mut first_violation = None;
        for i in 1..2_000u64 {
            if dbf_set(&ts, Time::new(i)) > Time::new(i) {
                first_violation = Some(Time::new(i));
                break;
            }
        }
        let violation = first_violation.expect("set is infeasible");
        let all = FeasibilityBounds::compute(&ts);
        for bound in [
            all.baruah,
            all.george,
            all.busy_period,
            all.hyperperiod,
            all.superposition,
        ]
        .into_iter()
        .flatten()
        {
            assert!(
                violation <= bound,
                "violation at {violation} must not exceed bound {bound}"
            );
        }
    }

    #[test]
    fn stream_workload_bounds_are_safe_horizons() {
        // A mixed workload: the George-style bound must dominate every
        // demand violation-free region boundary; check dbf <= I beyond the
        // horizon over a window.
        let stream = EventStreamTask::new(
            EventStream::bursty(3, Time::new(5), Time::new(100)),
            Time::new(4),
            Time::new(20),
        )
        .unwrap();
        let prepared = PreparedWorkload::new(&stream);
        let bounds = FeasibilityBounds::for_components(prepared.components());
        // Baruah and busy period do not apply to offset components.
        assert_eq!(bounds.busy_period, None);
        let george = bounds.george.expect("utilization far below 1");
        let hyper = bounds.hyperperiod.expect("purely periodic tuples");
        assert_eq!(hyper, Time::new(100 + 30));
        for i in george.as_u64()..george.as_u64() + 200 {
            assert!(prepared.dbf(Time::new(i)) <= Time::new(i));
        }
    }

    #[test]
    fn cold_and_seeded_bound_computations_agree() {
        let base = constrained_set().demand_components();
        for (numer, denom) in [(1u64, 1u64), (2, 1), (1, 2), (3, 1), (1, 10)] {
            let scaled: Vec<DemandComponent> = base
                .iter()
                .map(|c| {
                    let mut c = *c;
                    c.set_wcet(c.scaled_wcet(numer, denom));
                    c
                })
                .collect();
            assert_eq!(
                FeasibilityBounds::for_components(&scaled),
                FeasibilityBounds::for_components_cold(&scaled),
                "scaling {numer}/{denom}"
            );
        }
        let mixed = vec![
            DemandComponent::periodic(Time::new(1), Time::new(4), Time::new(10)),
            DemandComponent::one_shot(Time::new(2), Time::new(5), Time::ZERO),
        ];
        assert_eq!(
            FeasibilityBounds::for_components(&mixed),
            FeasibilityBounds::for_components_cold(&mixed)
        );
    }

    #[test]
    fn hinted_search_matches_cold_search_for_monotone_predicates() {
        for threshold in [1u64, 2, 3, 10, 57, 1_000, 1 << 40, BOUND_SEARCH_CAP] {
            let pred = |l: u64| l >= threshold;
            let cold = smallest_satisfying(pred);
            assert_eq!(cold, Some(Time::new(threshold)));
            assert_eq!(smallest_satisfying_hinted(pred, None), cold);
            for hint in [
                1u64,
                2,
                threshold.saturating_sub(7).max(1),
                threshold.saturating_sub(1).max(1),
                threshold,
                threshold.saturating_add(1),
                threshold.saturating_add(123),
                1 << 45,
                BOUND_SEARCH_CAP,
            ] {
                assert_eq!(
                    smallest_satisfying_hinted(pred, Some(Time::new(hint))),
                    cold,
                    "threshold {threshold}, hint {hint}"
                );
            }
        }
        // Unsatisfiable predicate: both searches report None.
        let never = |_: u64| false;
        assert_eq!(smallest_satisfying(never), None);
        for hint in [1u64, 100, BOUND_SEARCH_CAP] {
            assert_eq!(
                smallest_satisfying_hinted(never, Some(Time::new(hint))),
                None
            );
        }
    }

    #[test]
    fn refresher_matches_cold_bounds_across_wcet_perturbations() {
        let base = constrained_set().demand_components();
        let mut refresher = BoundRefresher::new(&base);
        // A sequence of perturbations, including overload (U > 1), reusing
        // one refresher so the hint paths are exercised.
        let scalings: [(u64, u64); 7] = [(1, 1), (2, 1), (1, 2), (3, 1), (7, 2), (1, 10), (1, 1)];
        for (numer, denom) in scalings {
            let scaled: Vec<DemandComponent> = base
                .iter()
                .map(|c| {
                    let mut c = *c;
                    c.set_wcet(c.scaled_wcet(numer, denom));
                    c
                })
                .collect();
            assert_eq!(
                refresher.refresh(&scaled),
                FeasibilityBounds::for_components(&scaled),
                "scaling {numer}/{denom}"
            );
        }
        // Single-component probes (the wcet_slack pattern).
        for extra in [0u64, 1, 3, 5, 30] {
            let mut perturbed = base.clone();
            let inflated = perturbed[1].wcet() + Time::new(extra);
            perturbed[1].set_wcet(inflated);
            assert_eq!(
                refresher.refresh(&perturbed),
                FeasibilityBounds::for_components(&perturbed),
                "extra {extra}"
            );
        }
        // Mixed periodic/one-shot workloads go through the refresher too.
        let mixed = vec![
            DemandComponent::periodic(Time::new(1), Time::new(4), Time::new(10)),
            DemandComponent::one_shot(Time::new(2), Time::new(5), Time::ZERO),
        ];
        let mut refresher = BoundRefresher::new(&mixed);
        for wcet in [1u64, 2, 4, 9] {
            let mut perturbed = mixed.clone();
            perturbed[0].set_wcet(Time::new(wcet));
            assert_eq!(
                refresher.refresh(&perturbed),
                FeasibilityBounds::for_components(&perturbed)
            );
        }
    }

    #[test]
    fn retimed_refresh_matches_cold_bounds_across_deadline_perturbations() {
        // The candidate-swap contract: costs and periods fixed, offsets and
        // first deadlines move.  The retimed refresh must stay bit-identical
        // to a cold computation for every re-phasing.
        let base = vec![
            DemandComponent::periodic_from(Time::new(2), Time::new(4), Time::new(10), Time::ZERO),
            DemandComponent::periodic_from(Time::new(3), Time::new(6), Time::new(15), Time::new(2)),
            DemandComponent::periodic_from(
                Time::new(4),
                Time::new(20),
                Time::new(40),
                Time::new(7),
            ),
        ];
        let mut refresher = BoundRefresher::new(&base);
        let exceeds = components_exceed_one(&base);
        for offsets in [[0u64, 0, 0], [3, 9, 11], [9, 14, 39], [0, 14, 0], [5, 5, 5]] {
            let retimed: Vec<DemandComponent> = base
                .iter()
                .zip(offsets)
                .map(|(c, offset)| {
                    let relative = c.first_deadline() - c.release_offset();
                    DemandComponent::periodic_from(
                        c.wcet(),
                        relative,
                        c.period().unwrap(),
                        Time::new(offset),
                    )
                })
                .collect();
            assert_eq!(
                refresher.refresh_retimed(&retimed, exceeds),
                FeasibilityBounds::for_components(&retimed),
                "offsets {offsets:?}"
            );
        }
    }

    #[test]
    fn one_shot_components_disable_periodic_bounds() {
        let components = vec![
            DemandComponent::periodic(Time::new(1), Time::new(4), Time::new(10)),
            DemandComponent::one_shot(Time::new(2), Time::new(5), Time::ZERO),
        ];
        let bounds = FeasibilityBounds::for_components(&components);
        assert_eq!(bounds.baruah, None);
        assert_eq!(bounds.busy_period, None);
        assert_eq!(bounds.hyperperiod, None);
        // George absorbs the one-shot as a constant: L = 0.1·L + 0.6 + 2.
        let george = bounds.george.expect("defined");
        assert_eq!(george, Time::new(3)); // ceil(2.6 / 0.9) = 3
                                          // Safe: no violation at or beyond the bound for this workload.
        let prepared = PreparedWorkload::from_components(components);
        for i in george.as_u64()..george.as_u64() + 100 {
            assert!(prepared.dbf(Time::new(i)) <= Time::new(i));
        }
    }
}
