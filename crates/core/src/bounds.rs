//! Feasibility bounds: upper limits on the intervals a demand-based test
//! has to examine (§4.3 of the paper).
//!
//! If the utilization is below 100 %, the demand bound function eventually
//! falls below the capacity line forever; a *feasibility bound* is any
//! interval length beyond which no violation can occur, so the exact tests
//! only need to examine deadlines below it.  This module implements the
//! bounds discussed in the paper and its references:
//!
//! * [`baruah_bound`] — Baruah et al.: `U/(1−U) · max(Tᵢ − Dᵢ)`;
//! * [`george_bound`] — George et al.: `Σ_{Dᵢ≤Tᵢ} (1 − Dᵢ/Tᵢ)·Cᵢ / (1 − U)`;
//! * [`busy_period`] — length of the synchronous processor busy period;
//! * [`hyperperiod_bound`] — `lcm(Tᵢ) + max Dᵢ` (always valid, often huge);
//! * [`superposition_bound`] — the bound implicitly reached by the
//!   all-approximated test (§4.3), `max(Dmax, George)`; the paper proves it
//!   coincides with the George bound whenever `Cτ ≤ Dτ`.
//!
//! Every bound is defined on [`DemandComponent`] lists (the canonical form
//! of any [`Workload`]), which is how the §4.3
//! derivations carry over to event-stream and mixed systems: a component
//! with cost `C`, first deadline `D'` and cycle `z` satisfies
//! `dbf(I) ≤ I·C/z + C·max(0, 1 − D'/z)`, exactly the per-task inequality
//! behind the George bound.  The sporadic-only bounds (Baruah needs every
//! component periodic; the busy period and hyperperiod arguments need the
//! classic synchronous pattern) return `None` for workloads outside their
//! domain, and [`FeasibilityBounds::analysis_horizon`] picks the tightest
//! of whatever is available.  The `TaskSet` entry points are thin wrappers
//! over the component forms.
//!
//! All bounds are rounded **up** to the next integer so that using them as
//! a search horizon can never cut off a violating deadline.
//!
//! # Examples
//!
//! ```
//! use edf_analysis::bounds;
//! use edf_model::{Task, TaskSet, Time};
//!
//! # fn main() -> Result<(), edf_model::TaskError> {
//! let ts = TaskSet::from_tasks(vec![
//!     Task::new(Time::new(2), Time::new(4), Time::new(10))?,
//!     Task::new(Time::new(3), Time::new(6), Time::new(15))?,
//! ]);
//! let all = bounds::FeasibilityBounds::compute(&ts);
//! assert!(all.analysis_horizon().is_some());
//! # Ok(())
//! # }
//! ```

use edf_model::{TaskSet, Time};

use crate::workload::{components_exceed_one, DemandComponent, Workload};

/// Maximum number of fix-point iterations attempted by [`busy_period`].
const BUSY_PERIOD_MAX_ITERATIONS: usize = 100_000;

/// The collection of all implemented feasibility bounds for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeasibilityBounds {
    /// Baruah et al. bound, `None` if `U ≥ 1`, the workload has one-shot
    /// components, or no component has `D < T` (in which case the Liu &
    /// Layland argument applies instead).
    pub baruah: Option<Time>,
    /// George et al. bound, `None` if `U ≥ 1`.
    pub george: Option<Time>,
    /// Synchronous busy period, `None` outside the sporadic model or if the
    /// fix-point does not converge within the iteration budget (`U > 1`).
    pub busy_period: Option<Time>,
    /// `lcm(Tᵢ) + max Dᵢ`, `None` on overflow, one-shot components or an
    /// empty workload.
    pub hyperperiod: Option<Time>,
    /// Superposition bound of §4.3, `None` if `U ≥ 1`.
    pub superposition: Option<Time>,
}

impl FeasibilityBounds {
    /// Computes every bound for a sporadic task set.
    #[must_use]
    pub fn compute(task_set: &TaskSet) -> Self {
        FeasibilityBounds::for_components(&task_set.demand_components())
    }

    /// Computes every bound for an arbitrary component decomposition.
    #[must_use]
    pub fn for_components(components: &[DemandComponent]) -> Self {
        FeasibilityBounds {
            baruah: baruah_components(components),
            george: george_components(components),
            busy_period: busy_period_components(components),
            hyperperiod: hyperperiod_components(components),
            superposition: superposition_components(components),
        }
    }

    /// The tightest available bound: the minimum over all bounds that could
    /// be computed, or `None` if none could (utilization ≥ 1 with an
    /// overflowing or undefined hyperperiod).
    #[must_use]
    pub fn analysis_horizon(&self) -> Option<Time> {
        [
            self.baruah,
            self.george,
            self.busy_period,
            self.hyperperiod,
            self.superposition,
        ]
        .into_iter()
        .flatten()
        .min()
    }
}

/// Upper limit of the bound binary searches (far beyond any realistic
/// feasibility bound; reaching it means the bound is undefined, e.g. U = 1).
const BOUND_SEARCH_CAP: u64 = 1 << 62;

/// Smallest `L ≥ 1` satisfying the monotone predicate, or `None` if even
/// `BOUND_SEARCH_CAP` does not satisfy it.
fn smallest_satisfying(predicate: impl Fn(u64) -> bool) -> Option<Time> {
    if !predicate(BOUND_SEARCH_CAP) {
        return None;
    }
    let (mut lo, mut hi) = (1u64, BOUND_SEARCH_CAP);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if predicate(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(Time::new(lo))
}

/// Baruah et al. feasibility bound `U/(1−U) · max(Tᵢ − Dᵢ)` (Def. 3),
/// rounded up.
///
/// Internally the bound is found as the smallest integer `L` with
/// `Σ Cᵢ·(L + max(Tⱼ − Dⱼ))/Tᵢ ≤ L`, which is algebraically the same
/// inequality but can be evaluated exactly with
/// [`fracs_le_integer`](crate::arith::fracs_le_integer) — no common
/// denominator of all periods is ever formed, so the computation cannot
/// overflow for realistic task sets.
///
/// Returns `None` when the bound is undefined: `U ≥ 1`, or every task has
/// `Dᵢ ≥ Tᵢ` (the bound degenerates to zero; callers should rely on
/// another bound).
#[must_use]
pub fn baruah_bound(task_set: &TaskSet) -> Option<Time> {
    baruah_components(&task_set.demand_components())
}

/// [`baruah_bound`] on an arbitrary component decomposition.  The per-task
/// inequality `dbf(I, τ) ≤ Uτ·(I + (T − D))` holds for any periodic
/// component (offsets are folded into the first deadline), but not for
/// one-shots, so workloads containing one-shot components return `None`.
#[must_use]
pub fn baruah_components(components: &[DemandComponent]) -> Option<Time> {
    if components.is_empty() || components_exceed_one(components) {
        return None;
    }
    let mut max_diff = Time::ZERO;
    for component in components {
        let period = component.period()?; // one-shot: bound not applicable
        max_diff = max_diff.max(period.saturating_sub(component.first_deadline()));
    }
    if max_diff.is_zero() {
        return None;
    }
    smallest_satisfying(|l| {
        let terms: Vec<(u128, u128)> = components
            .iter()
            .map(|c| {
                (
                    c.wcet().as_u128() * (u128::from(l) + max_diff.as_u128()),
                    c.period().expect("checked periodic above").as_u128(),
                )
            })
            .collect();
        crate::arith::fracs_le_integer(&terms, u128::from(l))
    })
}

/// George et al. feasibility bound `Σ_{Dᵢ≤Tᵢ} (1 − Dᵢ/Tᵢ)·Cᵢ / (1 − U)`,
/// rounded up.
///
/// Internally the bound is found as the smallest integer `L` with
/// `Σᵢ Cᵢ·L/Tᵢ + Σ_{Dᵢ≤Tᵢ} (Tᵢ − Dᵢ)·Cᵢ/Tᵢ ≤ L`, evaluated exactly with
/// [`fracs_le_integer`](crate::arith::fracs_le_integer).
///
/// Returns `None` when `U ≥ 1`.
#[must_use]
pub fn george_bound(task_set: &TaskSet) -> Option<Time> {
    george_components(&task_set.demand_components())
}

/// [`george_bound`] on an arbitrary component decomposition: periodic
/// components contribute the usual `(T − D')·C/T` slack term (clamped at
/// zero), one-shot components a constant `C`.
#[must_use]
pub fn george_components(components: &[DemandComponent]) -> Option<Time> {
    if components.is_empty() || components_exceed_one(components) {
        return None;
    }
    let degenerate = components.iter().all(|c| match c.period() {
        Some(period) => c.first_deadline() >= period,
        None => false,
    });
    if degenerate {
        // The numerator is zero: any positive horizon works; report the
        // smallest deadline so the caller has a non-trivial bound.
        return components.iter().map(DemandComponent::first_deadline).min();
    }
    smallest_satisfying(|l| {
        let terms: Vec<(u128, u128)> = components
            .iter()
            .map(|c| match c.period() {
                Some(period) => {
                    let slack = period.saturating_sub(c.first_deadline()).as_u128();
                    (
                        c.wcet().as_u128() * (u128::from(l) + slack),
                        period.as_u128(),
                    )
                }
                None => (c.wcet().as_u128(), 1),
            })
            .collect();
        crate::arith::fracs_le_integer(&terms, u128::from(l))
    })
}

/// Length of the synchronous processor busy period: the smallest fix-point
/// of `L = Σ ⌈L/Tᵢ⌉·Cᵢ` starting from `L₀ = Σ Cᵢ`.
///
/// Any EDF deadline miss of the synchronous arrival pattern happens inside
/// the first busy period, so its length is a valid feasibility bound.
/// Returns `None` if the iteration does not converge within an internal
/// budget (which happens for overloaded sets).
#[must_use]
pub fn busy_period(task_set: &TaskSet) -> Option<Time> {
    busy_period_components(&task_set.demand_components())
}

/// [`busy_period`] on a component decomposition.  The synchronous-pattern
/// argument is specific to the sporadic model, so this returns `None`
/// whenever a component is one-shot or released after the window start.
#[must_use]
pub fn busy_period_components(components: &[DemandComponent]) -> Option<Time> {
    if components.is_empty()
        || components
            .iter()
            .any(|c| c.period().is_none() || !c.release_offset().is_zero())
    {
        return None;
    }
    let mut length = components
        .iter()
        .fold(Time::ZERO, |acc, c| acc.saturating_add(c.wcet()));
    for _ in 0..BUSY_PERIOD_MAX_ITERATIONS {
        let next = components
            .iter()
            .fold(Time::ZERO, |acc, c| acc.saturating_add(c.rbf(length)));
        if next == length {
            return Some(length);
        }
        if next == Time::MAX {
            return None;
        }
        length = next;
    }
    None
}

/// `lcm(Tᵢ) + max Dᵢ`: a bound that is always valid (violations of the
/// synchronous pattern repeat with the hyperperiod), but typically far
/// larger than the others.  `None` if the hyperperiod overflows.
#[must_use]
pub fn hyperperiod_bound(task_set: &TaskSet) -> Option<Time> {
    hyperperiod_components(&task_set.demand_components())
}

/// [`hyperperiod_bound`] on a component decomposition: the demand pattern
/// of periodic components (offsets included) repeats with the lcm of the
/// cycles, so `lcm + max D'` stays valid; one-shot components break the
/// periodicity and yield `None`.
#[must_use]
pub fn hyperperiod_components(components: &[DemandComponent]) -> Option<Time> {
    if components.is_empty() {
        return None;
    }
    let mut lcm = Time::ONE;
    for component in components {
        lcm = lcm.lcm(component.period()?)?;
    }
    let max_deadline = components
        .iter()
        .map(DemandComponent::first_deadline)
        .max()?;
    lcm.checked_add(max_deadline)
}

/// The superposition feasibility bound of §4.3: the interval from which on
/// the all-approximated test can approximate every task and still stay
/// below the capacity, `max(Dmax, Σ(1 − Dᵢ/Tᵢ)·Cᵢ / (1 − U))`.
///
/// For `Cτ ≤ Dτ` this equals the George et al. bound (that is the paper's
/// point: the George bound is implied by — and checked implicitly in — the
/// new test); it is never larger than `max(Dmax, George)`.
#[must_use]
pub fn superposition_bound(task_set: &TaskSet) -> Option<Time> {
    superposition_components(&task_set.demand_components())
}

/// [`superposition_bound`] on an arbitrary component decomposition.
#[must_use]
pub fn superposition_components(components: &[DemandComponent]) -> Option<Time> {
    let george = george_components(components)?;
    let dmax = components
        .iter()
        .map(DemandComponent::first_deadline)
        .max()?;
    Some(george.max(dmax))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::dbf_set;
    use crate::workload::PreparedWorkload;
    use edf_model::{EventStream, EventStreamTask, Task};

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    fn constrained_set() -> TaskSet {
        TaskSet::from_tasks(vec![t(2, 4, 10), t(3, 6, 15), t(4, 20, 40)])
    }

    #[test]
    fn baruah_matches_hand_computation() {
        let ts = constrained_set();
        // U = 0.2 + 0.2 + 0.1 = 0.5; max(T-D) = 20; bound = 0.5/0.5*20 = 20.
        assert_eq!(baruah_bound(&ts), Some(Time::new(20)));
    }

    #[test]
    fn george_matches_hand_computation() {
        let ts = constrained_set();
        // numerator = (6/10)*2 + (9/15)*3 + (20/40)*4 = 1.2 + 1.8 + 2 = 5
        // bound = 5 / 0.5 = 10
        assert_eq!(george_bound(&ts), Some(Time::new(10)));
    }

    #[test]
    fn george_never_exceeds_baruah() {
        // Known analytic relation for constrained-deadline sets.
        let sets = vec![
            constrained_set(),
            TaskSet::from_tasks(vec![t(1, 3, 8), t(2, 5, 12), t(3, 9, 30), t(1, 2, 5)]),
            TaskSet::from_tasks(vec![t(5, 10, 100), t(30, 80, 100)]),
        ];
        for ts in sets {
            let g = george_bound(&ts).unwrap();
            let b = baruah_bound(&ts).unwrap();
            assert!(g <= b, "George {g} must be <= Baruah {b}");
        }
    }

    #[test]
    fn implicit_deadline_set_bounds() {
        let ts = TaskSet::from_tasks(vec![t(1, 4, 4), t(1, 6, 6)]);
        // No task with D < T: Baruah degenerates.
        assert_eq!(baruah_bound(&ts), None);
        // George falls back to the smallest deadline.
        assert_eq!(george_bound(&ts), Some(Time::new(4)));
        assert_eq!(superposition_bound(&ts), Some(Time::new(6)));
        assert_eq!(busy_period(&ts), Some(Time::new(2)));
        assert_eq!(hyperperiod_bound(&ts), Some(Time::new(12 + 6)));
    }

    #[test]
    fn overloaded_set_has_no_utilization_bounds() {
        let ts = TaskSet::from_tasks(vec![t(5, 5, 5), t(1, 10, 10)]);
        assert!(ts.utilization_exceeds_one());
        assert_eq!(baruah_bound(&ts), None);
        assert_eq!(george_bound(&ts), None);
        assert_eq!(superposition_bound(&ts), None);
        assert_eq!(busy_period(&ts), None, "busy period diverges");
        // The hyperperiod bound still exists.
        assert!(hyperperiod_bound(&ts).is_some());
        // And the combined horizon falls back to it.
        let all = FeasibilityBounds::compute(&ts);
        assert_eq!(all.analysis_horizon(), hyperperiod_bound(&ts));
    }

    #[test]
    fn full_utilization_set() {
        let ts = TaskSet::from_tasks(vec![t(1, 2, 2), t(1, 2, 2)]);
        assert_eq!(baruah_bound(&ts), None);
        // All deadlines are implicit, so no interval ever needs checking and
        // the George bound degenerates to the smallest deadline.
        assert_eq!(george_bound(&ts), Some(Time::new(2)));
        // Busy period exists and equals 2 (the processor is never idle but
        // the fix-point converges at the hyperperiod).
        assert_eq!(busy_period(&ts), Some(Time::new(2)));
        assert!(FeasibilityBounds::compute(&ts).analysis_horizon().is_some());
    }

    #[test]
    fn busy_period_fixpoint_examples() {
        let ts = constrained_set();
        // L0 = 9; rbf(9) = 2+3+4 = 9 -> converges at 9.
        assert_eq!(busy_period(&ts), Some(Time::new(9)));

        let ts2 = TaskSet::from_tasks(vec![t(3, 5, 5), t(2, 10, 10)]);
        // L0=5, rbf(5)=3+2=5 ... converges at 5? rbf(5)=ceil(5/5)*3+ceil(5/10)*2=3+2=5. yes.
        assert_eq!(busy_period(&ts2), Some(Time::new(5)));
    }

    #[test]
    fn busy_period_dominates_any_violation() {
        // For feasible sets the busy period is a valid horizon: no violation
        // can exist beyond it. We check the weaker sanity property that dbf
        // never exceeds the interval after the busy period for this set.
        let ts = constrained_set();
        let bp = busy_period(&ts).unwrap();
        for i in bp.as_u64()..bp.as_u64() + 100 {
            assert!(dbf_set(&ts, Time::new(i)) <= Time::new(i));
        }
    }

    #[test]
    fn empty_set_has_no_bounds() {
        let ts = TaskSet::new();
        let all = FeasibilityBounds::compute(&ts);
        assert_eq!(all.baruah, None);
        assert_eq!(all.george, None);
        assert_eq!(all.busy_period, None);
        assert_eq!(all.hyperperiod, None);
        assert_eq!(all.superposition, None);
        assert_eq!(all.analysis_horizon(), None);
    }

    #[test]
    fn horizon_is_minimum_of_available_bounds() {
        let ts = constrained_set();
        let all = FeasibilityBounds::compute(&ts);
        let horizon = all.analysis_horizon().unwrap();
        for candidate in [
            all.baruah,
            all.george,
            all.busy_period,
            all.hyperperiod,
            all.superposition,
        ]
        .into_iter()
        .flatten()
        {
            assert!(horizon <= candidate);
        }
        assert_eq!(horizon, Time::new(9)); // busy period is tightest here
    }

    #[test]
    fn superposition_is_max_of_george_and_dmax() {
        let ts = constrained_set();
        assert_eq!(
            superposition_bound(&ts),
            Some(george_bound(&ts).unwrap().max(ts.max_deadline().unwrap()))
        );
    }

    #[test]
    fn bounds_are_safe_horizons_for_feasible_and_infeasible_sets() {
        // An infeasible constrained-deadline set: the first violation must
        // lie below every computed bound.
        let ts = TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]);
        let mut first_violation = None;
        for i in 1..2_000u64 {
            if dbf_set(&ts, Time::new(i)) > Time::new(i) {
                first_violation = Some(Time::new(i));
                break;
            }
        }
        let violation = first_violation.expect("set is infeasible");
        let all = FeasibilityBounds::compute(&ts);
        for bound in [
            all.baruah,
            all.george,
            all.busy_period,
            all.hyperperiod,
            all.superposition,
        ]
        .into_iter()
        .flatten()
        {
            assert!(
                violation <= bound,
                "violation at {violation} must not exceed bound {bound}"
            );
        }
    }

    #[test]
    fn stream_workload_bounds_are_safe_horizons() {
        // A mixed workload: the George-style bound must dominate every
        // demand violation-free region boundary; check dbf <= I beyond the
        // horizon over a window.
        let stream = EventStreamTask::new(
            EventStream::bursty(3, Time::new(5), Time::new(100)),
            Time::new(4),
            Time::new(20),
        )
        .unwrap();
        let prepared = PreparedWorkload::new(&stream);
        let bounds = FeasibilityBounds::for_components(prepared.components());
        // Baruah and busy period do not apply to offset components.
        assert_eq!(bounds.busy_period, None);
        let george = bounds.george.expect("utilization far below 1");
        let hyper = bounds.hyperperiod.expect("purely periodic tuples");
        assert_eq!(hyper, Time::new(100 + 30));
        for i in george.as_u64()..george.as_u64() + 200 {
            assert!(prepared.dbf(Time::new(i)) <= Time::new(i));
        }
    }

    #[test]
    fn one_shot_components_disable_periodic_bounds() {
        let components = vec![
            DemandComponent::periodic(Time::new(1), Time::new(4), Time::new(10)),
            DemandComponent::one_shot(Time::new(2), Time::new(5), Time::ZERO),
        ];
        let bounds = FeasibilityBounds::for_components(&components);
        assert_eq!(bounds.baruah, None);
        assert_eq!(bounds.busy_period, None);
        assert_eq!(bounds.hyperperiod, None);
        // George absorbs the one-shot as a constant: L = 0.1·L + 0.6 + 2.
        let george = bounds.george.expect("defined");
        assert_eq!(george, Time::new(3)); // ceil(2.6 / 0.9) = 3
                                          // Safe: no violation at or beyond the bound for this workload.
        let prepared = PreparedWorkload::from_components(components);
        for i in george.as_u64()..george.as_u64() + 100 {
            assert!(prepared.dbf(Time::new(i)) <= Time::new(i));
        }
    }
}
