//! The columnar demand kernel: data-oriented storage and merge machinery
//! behind every hot demand query.
//!
//! The feasibility tests of this crate ultimately spin on three inner
//! loops — evaluating the demand bound function `dbf(I)`, finding the
//! largest job deadline below an interval (the QPA step function), and
//! merging the per-component deadline streams in ascending order.  The
//! scalar implementations of PR 1 walked the
//! [`DemandComponent`] array-of-structs with an enum match per element and
//! paid a binary-heap operation per merged job deadline.  This module
//! replaces those loops with a data-oriented kernel:
//!
//! * [`DemandKernel`] — a **structure-of-arrays** view of a prepared
//!   component list: `wcet[]`, `deadline[]` and `period[]` columns stored
//!   in ascending first-deadline order (the ordering
//!   [`PreparedWorkload::deadline_order`](crate::workload::PreparedWorkload::deadline_order)
//!   already caches), with one-shot components segregated from periodic
//!   ones.  The one-shot contribution to `dbf(t)` collapses to a binary
//!   search plus a precomputed (saturating) prefix sum of costs; the
//!   periodic contribution is a tight loop over contiguous columns with no
//!   per-element enum branch — the deadline cutoff is found by **one**
//!   binary search and the loop body is pure arithmetic.  The layout is
//!   valid for every WCET perturbation because deadlines, offsets and
//!   periods are *scale-invariant*: a
//!   [`ScaledView`](crate::incremental::ScaledView) probe rewrites the
//!   cost column in place and nothing else moves (the same property that
//!   lets the view share the base's deadline order).
//! * [`MergeState`] — a flat **loser tree** (tournament tree) over the
//!   per-component deadline streams, replacing the former
//!   `BinaryHeap`-based k-way merge: advancing a stream replays one
//!   leaf-to-root path of `⌈log₂ k⌉` predictable comparisons instead of a
//!   sift with data-dependent branching, and equal-deadline runs can be
//!   drained into **one coalesced event** ([`DemandSteps`]) so the
//!   processor-demand walk performs exactly one capacity comparison per
//!   distinct interval without a peek-and-fold loop.
//! * [`AnalysisScratch`] — a reusable arena holding the merge state and
//!   every transient buffer the seven feasibility tests need (pending
//!   interval heaps, refinement states, approximation terms).  One scratch
//!   per batch worker makes high-throughput
//!   [`batch::analyze_many`](crate::batch::analyze_many) perform no
//!   per-workload transient allocations after warm-up.
//!
//! # Lane layout and width narrowing
//!
//! The periodic columns exist at **two widths**.  The `u64` columns above
//! are always present and always authoritative.  Whenever every periodic
//! deadline and period fits `u32` — the common regime of the literature's
//! generators, where timing parameters live in `[1, 10⁶]` — the kernel
//! additionally maintains `u32` **shadow columns** (`deadline`/`period`/
//! `wcet` plus one-multiply [`Reciprocal32`](crate::arith) reciprocals):
//! half to a quarter of the memory traffic per element and one widening
//! multiply per division instead of two.  The invariants:
//!
//! * The **timing** shadow (`deadline`/`period`/reciprocals) is valid iff
//!   all periodic deadlines *and* periods fit `u32`; it is written only on
//!   rebuild — WCET rewrites never move timing — so predecessor queries
//!   may use it regardless of the cost shadow's state.
//! * The **cost** shadow (`wcet`) is additionally valid only while every
//!   periodic WCET fits `u32`.  A wide `DemandKernel::set_wcet` write
//!   *demotes* the kernel to the `u64` columns on the spot (queries stay
//!   correct with no refresh); the next
//!   `DemandKernel::refresh_after_rewrite` — every
//!   [`ScaledView`](crate::incremental::ScaledView) probe boundary —
//!   re-narrows when the costs fit again (*promotion* back).
//! * Narrow queries also require the interval itself to fit `u32`; larger
//!   intervals fall back to the wide loop per call.
//!
//! The narrow loops run in fixed-width chunks (`LANES` elements) of pure,
//! branch-free lane arithmetic — no saturating operations, no
//! data-dependent branches — with the original tight loop as the
//! remainder tail, a shape the optimizer can unroll and schedule (and
//! vectorize where the ISA offers widening multiplies) without a
//! `core::arch` dependency; the crate stays `forbid(unsafe_code)`.
//! Bit-identity with the scalar saturating fold is an arithmetic fact,
//! not a hope: with `t < 2³²` every narrow term `wcet·(⌊(t−d)/p⌋+1)` is
//! `< 2³²·2³² = 2⁶⁴`, so the wide path's per-term `saturating_mul` never
//! clamps, and a sequential saturating fold of non-negative `u64` terms
//! equals `min(Σ, u64::MAX)` — exactly what the narrow path computes by
//! accumulating in `u128` and clamping once at the end.
//!
//! [`DemandKernel::dbf_many`] amortizes column traffic further for
//! batched interval evaluation (the exhaustive oracle's dense sweep, a
//! refining test's outstanding comparisons): blocks of four intervals
//! share every column load in one column-major pass, with the
//! `if deadline ≤ t` filter turned into a mask-and-accumulate so the
//! block loop stays branch-free.
//!
//! In `BENCH_kernel.json`, the `dbf*/columnar` series run these narrow
//! chunked loops (all fixture parameters fit `u32`), the `dbf*/scalar`
//! series the retained scalar oracle, and `dbf_batch/*` compares
//! `dbf_many` against one-interval-at-a-time evaluation on the same
//! probe set.
//!
//! The scalar array-of-structs path is retained **only** as an oracle:
//! [`PreparedWorkload::scalar_reference`](crate::workload::PreparedWorkload::scalar_reference)
//! answers every demand query through the original folds, and
//! [`reference::demand_events`] keeps the heap merge, so the
//! `kernel_equivalence` property tests can assert the kernel bit-identical
//! (verdicts, iteration counts, overload witnesses) to the code it
//! replaced.
//!
//! # Examples
//!
//! ```
//! use edf_analysis::workload::{PreparedWorkload, Workload};
//! use edf_model::{Task, TaskSet, Time};
//!
//! # fn main() -> Result<(), edf_model::TaskError> {
//! let ts = TaskSet::from_tasks(vec![
//!     Task::new(Time::new(1), Time::new(4), Time::new(8))?,
//!     Task::new(Time::new(2), Time::new(6), Time::new(12))?,
//! ]);
//! let prepared = PreparedWorkload::new(&ts);
//! // `PreparedWorkload::dbf` answers through the columnar kernel; the
//! // retained scalar oracle must agree bit for bit.
//! let oracle = prepared.scalar_reference();
//! for i in 0..40u64 {
//!     assert_eq!(prepared.dbf(Time::new(i)), oracle.dbf(Time::new(i)));
//! }
//! # Ok(())
//! # }
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use edf_model::Time;

use crate::arith::{Reciprocal, Reciprocal32};
use crate::budget::WorkBudget;
use crate::superposition::ApproxTerm;
use crate::workload::DemandComponent;

/// Fixed chunk width of the narrow demand loops (see the module docs'
/// *Lane layout* section): wide enough to fill two 256-bit lanes of `u32`
/// columns, small enough that the remainder tail stays negligible.
const LANES: usize = 8;

/// Number of intervals [`DemandKernel::dbf_many`] evaluates per
/// column-major block (every column load is amortized over this many
/// intervals).
const INTERVAL_BLOCK: usize = 4;

/// Largest value representable in the narrow (`u32`) columns.
const NARROW_MAX: u64 = u32::MAX as u64;

/// `min(total, u64::MAX)` — the single final clamp of the narrow paths'
/// exact `u128` accumulation, equal to the scalar path's sequential
/// saturating fold (see the module docs' *Lane layout* section).
#[inline]
fn clamp_u128(total: u128) -> u64 {
    u64::try_from(total).unwrap_or(u64::MAX)
}

/// Where a component's cost lives inside the kernel columns.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    /// `true` → `periodic` columns, `false` → `one_shot` columns.
    periodic: bool,
    /// Index within the column family.
    index: u32,
}

/// The columnar (structure-of-arrays) form of a prepared component list.
///
/// Built once per [`PreparedWorkload`](crate::workload::PreparedWorkload)
/// (lazily, on the first demand query) from the cached ascending-deadline
/// order; see the [module documentation](self) for the layout and why it
/// is invariant under WCET changes.
#[derive(Debug, Clone, Default)]
pub struct DemandKernel {
    /// Periodic columns, ascending first deadline (ties keep component
    /// order — the deadline sort is stable).
    p_deadline: Vec<u64>,
    p_period: Vec<u64>,
    p_wcet: Vec<u64>,
    /// Per-column period reciprocals (see [`crate::arith`]'s `Reciprocal`).
    p_rcp: Vec<Reciprocal>,
    /// One-shot columns, ascending deadline.
    o_deadline: Vec<u64>,
    o_wcet: Vec<u64>,
    /// Saturating prefix sums of `o_wcet` (`prefix[i] = min(Σ₀..=i, MAX)`).
    o_prefix: Vec<u64>,
    /// Component index → column slot (the write path of
    /// [`ScaledView`](crate::incremental::ScaledView) probes).
    slot_of: Vec<Slot>,
    /// Set when a one-shot cost was rewritten; the prefix sums are
    /// refreshed by [`DemandKernel::refresh_after_rewrite`] before the
    /// next query.
    prefix_dirty: bool,
    /// `u32` shadow columns of the periodic timing data (valid iff
    /// `narrow_timing_fits`; written only on rebuild) and costs (valid iff
    /// `narrow`) — see the module docs' *Lane layout* section.
    n_deadline: Vec<u32>,
    n_period: Vec<u32>,
    n_wcet: Vec<u32>,
    n_rcp: Vec<Reciprocal32>,
    /// Every periodic deadline and period fits `u32`: the timing shadow
    /// columns are populated and predecessor queries may run narrow.
    narrow_timing_fits: bool,
    /// Additionally, every periodic WCET currently fits `u32`: demand
    /// queries may run narrow.  Demoted in place by a wide
    /// [`DemandKernel::set_wcet`]; re-promoted by
    /// [`DemandKernel::refresh_after_rewrite`] when the costs fit again.
    narrow: bool,
}

impl DemandKernel {
    /// (Re)builds the columns from `components`, walking `deadline_order`
    /// (the indices sorted by ascending first deadline).  All column
    /// allocations are reused.
    pub(crate) fn rebuild(&mut self, components: &[DemandComponent], deadline_order: &[usize]) {
        self.rebuild_impl(components, deadline_order, None);
    }

    /// [`DemandKernel::rebuild`] with the per-component period reciprocals
    /// supplied by the caller (`reciprocals[i]` belongs to component `i`;
    /// one-shot entries are ignored) — the candidate-swap path, where the
    /// periods are invariant across arbitrarily many rebuilds and
    /// re-deriving each [`Reciprocal`] (a 128-bit division) per rebuild
    /// would dominate the repair cost.
    pub(crate) fn rebuild_with_reciprocals(
        &mut self,
        components: &[DemandComponent],
        deadline_order: &[usize],
        reciprocals: &[Reciprocal],
    ) {
        self.rebuild_impl(components, deadline_order, Some(reciprocals));
    }

    fn rebuild_impl(
        &mut self,
        components: &[DemandComponent],
        deadline_order: &[usize],
        reciprocals: Option<&[Reciprocal]>,
    ) {
        debug_assert_eq!(components.len(), deadline_order.len());
        self.p_deadline.clear();
        self.p_period.clear();
        self.p_wcet.clear();
        self.p_rcp.clear();
        self.o_deadline.clear();
        self.o_wcet.clear();
        self.slot_of.clear();
        self.slot_of.resize(components.len(), Slot::default());
        for &idx in deadline_order {
            let component = &components[idx];
            match component.period() {
                Some(period) => {
                    self.slot_of[idx] = Slot {
                        periodic: true,
                        index: self.p_deadline.len() as u32,
                    };
                    self.p_deadline.push(component.first_deadline().as_u64());
                    self.p_period.push(period.as_u64());
                    let rcp = match reciprocals {
                        Some(cache) => {
                            debug_assert_eq!(cache[idx], Reciprocal::new(period.as_u64()));
                            cache[idx]
                        }
                        None => Reciprocal::new(period.as_u64()),
                    };
                    self.p_rcp.push(rcp);
                    self.p_wcet.push(component.wcet().as_u64());
                }
                None => {
                    self.slot_of[idx] = Slot {
                        periodic: false,
                        index: self.o_deadline.len() as u32,
                    };
                    self.o_deadline.push(component.first_deadline().as_u64());
                    self.o_wcet.push(component.wcet().as_u64());
                }
            }
        }
        self.rebuild_prefix();
        self.rebuild_narrow();
    }

    /// Recomputes the one-shot prefix sums (saturating, so the clamp
    /// semantics of the scalar fold are preserved exactly).
    fn rebuild_prefix(&mut self) {
        self.o_prefix.clear();
        let mut acc: u64 = 0;
        for &wcet in &self.o_wcet {
            acc = acc.saturating_add(wcet);
            self.o_prefix.push(acc);
        }
        self.prefix_dirty = false;
    }

    /// (Re)derives the `u32` shadow columns from the freshly rebuilt wide
    /// columns.  The timing half (deadlines, periods, reciprocals — the
    /// reciprocals narrowed division-free from the wide cache, see
    /// [`Reciprocal::narrowed`]) is written here and nowhere else; the
    /// cost half goes through [`DemandKernel::renarrow_wcets`] so WCET
    /// rewrites can re-promote without touching timing.
    fn rebuild_narrow(&mut self) {
        self.n_deadline.clear();
        self.n_period.clear();
        self.n_rcp.clear();
        self.narrow_timing_fits = self.p_deadline.iter().all(|&d| d <= NARROW_MAX)
            && self.p_period.iter().all(|&p| p <= NARROW_MAX);
        if !self.narrow_timing_fits {
            self.n_wcet.clear();
            self.narrow = false;
            return;
        }
        self.n_deadline
            .extend(self.p_deadline.iter().map(|&d| d as u32));
        self.n_period
            .extend(self.p_period.iter().map(|&p| p as u32));
        self.n_rcp.extend(self.p_rcp.iter().map(|r| r.narrowed()));
        self.renarrow_wcets();
    }

    /// Refills the narrow cost column from the wide one, setting `narrow`
    /// iff every periodic WCET (and the timing columns) fit `u32`.
    fn renarrow_wcets(&mut self) {
        self.n_wcet.clear();
        if self.narrow_timing_fits && self.p_wcet.iter().all(|&w| w <= NARROW_MAX) {
            self.n_wcet.extend(self.p_wcet.iter().map(|&w| w as u32));
            self.narrow = true;
        } else {
            self.narrow = false;
        }
    }

    /// Rewrites the cost of `component` — a plain column write; deadlines,
    /// periods and the sort order never move under WCET changes.  A cost
    /// that no longer fits the narrow column demotes the kernel to the
    /// wide loops immediately (no refresh needed for correctness);
    /// [`DemandKernel::refresh_after_rewrite`] re-promotes.
    pub(crate) fn set_wcet(&mut self, component: usize, wcet: Time) {
        let slot = self.slot_of[component];
        if slot.periodic {
            let w = wcet.as_u64();
            self.p_wcet[slot.index as usize] = w;
            if self.narrow {
                if w <= NARROW_MAX {
                    self.n_wcet[slot.index as usize] = w as u32;
                } else {
                    self.narrow = false;
                }
            }
        } else {
            self.o_wcet[slot.index as usize] = wcet.as_u64();
            self.prefix_dirty = true;
        }
    }

    /// Refreshes derived column state after a batch of
    /// [`DemandKernel::set_wcet`] writes (called by
    /// [`PreparedWorkload::install_refreshed_state`](crate::workload::PreparedWorkload)
    /// at the end of every [`ScaledView`](crate::incremental::ScaledView)
    /// probe): one-shot prefix sums, and promotion back to the narrow
    /// cost column when a previously demoted kernel's costs fit again.
    pub(crate) fn refresh_after_rewrite(&mut self) {
        if self.prefix_dirty {
            self.rebuild_prefix();
        }
        if self.narrow_timing_fits && !self.narrow {
            self.renarrow_wcets();
        }
    }

    /// The one-shot contribution to `dbf(t)`: a binary search into the
    /// sorted one-shot deadlines plus one prefix-sum lookup.
    #[inline]
    fn one_shot_demand(&self, t: u64) -> u64 {
        debug_assert!(!self.prefix_dirty, "query on a stale one-shot prefix");
        match self.o_deadline.partition_point(|&d| d <= t) {
            0 => 0,
            hit => self.o_prefix[hit - 1],
        }
    }

    /// Total demand bound function, bit-identical to the scalar
    /// saturating fold over [`DemandComponent::dbf`]: one binary search
    /// for the deadline cutoff, then the narrow chunked lane loop (or the
    /// wide tight loop when the columns or the interval exceed `u32`).
    #[must_use]
    pub fn dbf(&self, interval: Time) -> Time {
        let t = interval.as_u64();
        let one_shot = self.one_shot_demand(t);
        let cut = self.p_deadline.partition_point(|&d| d <= t);
        if self.narrow && t <= NARROW_MAX {
            return Time::new(clamp_u128(
                u128::from(one_shot) + self.dbf_narrow(t as u32, cut),
            ));
        }
        let mut total = one_shot;
        for ((&deadline, &rcp), &wcet) in self.p_deadline[..cut]
            .iter()
            .zip(&self.p_rcp[..cut])
            .zip(&self.p_wcet[..cut])
        {
            let jobs = rcp.divide(t - deadline) + 1;
            total = total.saturating_add(wcet.saturating_mul(jobs));
        }
        Time::new(total)
    }

    /// The periodic demand `Σ wcet·(⌊(t−d)/p⌋+1)` over the first `cut`
    /// narrow columns, exact in `u128` (see the module docs for why the
    /// exact sum + final clamp equals the saturating fold).  The loop body
    /// is branch-free lane arithmetic in [`LANES`]-wide chunks with the
    /// plain loop as the remainder tail.
    #[inline]
    fn dbf_narrow(&self, t: u32, cut: usize) -> u128 {
        let mut acc: u128 = 0;
        let mut deadlines = self.n_deadline[..cut].chunks_exact(LANES);
        let mut wcets = self.n_wcet[..cut].chunks_exact(LANES);
        let mut rcps = self.n_rcp[..cut].chunks_exact(LANES);
        for ((d, w), r) in (&mut deadlines).zip(&mut wcets).zip(&mut rcps) {
            let mut chunk: u128 = 0;
            for lane in 0..LANES {
                // jobs ≤ 2³², wcet < 2³² ⇒ the term fits u64 exactly.
                let jobs = r[lane].divide(t - d[lane]) + 1;
                chunk += u128::from(u64::from(w[lane]) * jobs);
            }
            acc += chunk;
        }
        for ((&d, &w), &r) in deadlines
            .remainder()
            .iter()
            .zip(wcets.remainder())
            .zip(rcps.remainder())
        {
            let jobs = r.divide(t - d) + 1;
            acc += u128::from(u64::from(w) * jobs);
        }
        acc
    }

    /// The largest job deadline strictly below `limit`, answered from the
    /// sorted columns instead of a full component scan: the one-shot part
    /// is one binary search; the periodic part visits only the prefix of
    /// components whose first deadline is below `limit`.
    #[must_use]
    pub fn last_deadline_below(&self, limit: Time) -> Option<Time> {
        let limit = limit.as_u64();
        let mut best: Option<u64> = None;
        let o_cut = self.o_deadline.partition_point(|&d| d < limit);
        if o_cut > 0 {
            best = Some(self.o_deadline[o_cut - 1]);
        }
        let p_cut = self.p_deadline.partition_point(|&d| d < limit);
        if p_cut > 0 {
            // The timing shadow alone suffices here (no costs involved),
            // so the narrow path is available even while demand queries
            // are demoted to the wide columns.
            let periodic_best = if self.narrow_timing_fits && limit <= NARROW_MAX {
                self.predecessor_narrow(limit as u32, p_cut)
            } else {
                let mut periodic_best = 0u64;
                for ((&deadline, &period), &rcp) in self.p_deadline[..p_cut]
                    .iter()
                    .zip(&self.p_period[..p_cut])
                    .zip(&self.p_rcp[..p_cut])
                {
                    // No overflow: k·period ≤ limit − 1 − deadline by
                    // construction, matching the checked scalar path
                    // exactly.
                    let k = rcp.divide(limit - 1 - deadline);
                    periodic_best = periodic_best.max(deadline + k * period);
                }
                periodic_best
            };
            best = Some(best.map_or(periodic_best, |b| b.max(periodic_best)));
        }
        best.map(Time::new)
    }

    /// The periodic half of [`DemandKernel::last_deadline_below`] over the
    /// first `p_cut` narrow columns: all-`u32` lane arithmetic (every
    /// candidate `d + k·p ≤ limit − 1 < 2³²`), chunked like
    /// [`DemandKernel::dbf_narrow`].
    #[inline]
    fn predecessor_narrow(&self, limit: u32, p_cut: usize) -> u64 {
        let target = limit - 1;
        let mut best: u32 = 0;
        let mut deadlines = self.n_deadline[..p_cut].chunks_exact(LANES);
        let mut periods = self.n_period[..p_cut].chunks_exact(LANES);
        let mut rcps = self.n_rcp[..p_cut].chunks_exact(LANES);
        for ((d, p), r) in (&mut deadlines).zip(&mut periods).zip(&mut rcps) {
            let mut chunk: u32 = 0;
            for lane in 0..LANES {
                let k = r[lane].divide(target - d[lane]) as u32;
                chunk = chunk.max(d[lane] + k * p[lane]);
            }
            best = best.max(chunk);
        }
        for ((&d, &p), &r) in deadlines
            .remainder()
            .iter()
            .zip(periods.remainder())
            .zip(rcps.remainder())
        {
            let k = r.divide(target - d) as u32;
            best = best.max(d + k * p);
        }
        u64::from(best)
    }

    /// The combined QPA step query: `dbf(interval)` **and** the largest
    /// job deadline strictly below `interval`, computed in one pass over
    /// the columns (the quantities share their deadline cutoffs and column
    /// loads, so fusing them halves the per-step work of the QPA loop).
    #[must_use]
    pub fn demand_and_predecessor(&self, interval: Time) -> (Time, Option<Time>) {
        let t = interval.as_u64();
        let mut total = self.one_shot_demand(t);
        let mut best: Option<u64> = None;
        let o_cut = self.o_deadline.partition_point(|&d| d < t);
        if o_cut > 0 {
            best = Some(self.o_deadline[o_cut - 1]);
        }
        let p_le = self.p_deadline.partition_point(|&d| d <= t);
        let p_lt = self.p_deadline[..p_le].partition_point(|&d| d < t);
        if p_lt > 0 {
            let periodic_best;
            if self.narrow && t <= NARROW_MAX {
                let (periodic_demand, narrow_best) = self.step_narrow(t as u32, p_lt);
                total = clamp_u128(u128::from(total) + periodic_demand);
                periodic_best = narrow_best;
            } else {
                let mut wide_best = 0u64;
                for (((&deadline, &period), &rcp), &wcet) in self.p_deadline[..p_lt]
                    .iter()
                    .zip(&self.p_period[..p_lt])
                    .zip(&self.p_rcp[..p_lt])
                    .zip(&self.p_wcet[..p_lt])
                {
                    let delta = t - deadline;
                    let q = rcp.divide(delta);
                    let r = delta - q * period;
                    total = total.saturating_add(wcet.saturating_mul(q + 1));
                    // Last deadline < t: the q-th if t is not itself one
                    // of this component's deadlines, the (q−1)-th
                    // otherwise (q ≥ 1 there, since deadline < t).
                    let steps = if r == 0 { q - 1 } else { q };
                    wide_best = wide_best.max(deadline + steps * period);
                }
                periodic_best = wide_best;
            }
            best = Some(best.map_or(periodic_best, |b| b.max(periodic_best)));
        }
        // Components whose first deadline equals t contribute exactly one
        // job to the demand and nothing to the predecessor.
        for &wcet in &self.p_wcet[p_lt..p_le] {
            total = total.saturating_add(wcet);
        }
        (Time::new(total), best.map(Time::new))
    }

    /// The fused QPA step over the first `p_lt` narrow columns: exact
    /// `u128` periodic demand plus the best predecessor deadline, with the
    /// `r == 0` correction applied branch-free (`steps = q − [r == 0]`;
    /// `q ≥ 1` whenever `r == 0` since `deadline < t`).
    #[inline]
    fn step_narrow(&self, t: u32, p_lt: usize) -> (u128, u64) {
        let mut acc: u128 = 0;
        let mut best: u32 = 0;
        let mut deadlines = self.n_deadline[..p_lt].chunks_exact(LANES);
        let mut periods = self.n_period[..p_lt].chunks_exact(LANES);
        let mut wcets = self.n_wcet[..p_lt].chunks_exact(LANES);
        let mut rcps = self.n_rcp[..p_lt].chunks_exact(LANES);
        for (((d, p), w), r) in (&mut deadlines)
            .zip(&mut periods)
            .zip(&mut wcets)
            .zip(&mut rcps)
        {
            let mut chunk: u128 = 0;
            let mut chunk_best: u32 = 0;
            for lane in 0..LANES {
                let delta = t - d[lane];
                let q = r[lane].divide(delta);
                let q32 = q as u32;
                let rem = delta - q32 * p[lane];
                chunk += u128::from(u64::from(w[lane]) * (q + 1));
                let steps = q32 - u32::from(rem == 0);
                chunk_best = chunk_best.max(d[lane] + steps * p[lane]);
            }
            acc += chunk;
            best = best.max(chunk_best);
        }
        for (((&d, &p), &w), &r) in deadlines
            .remainder()
            .iter()
            .zip(periods.remainder())
            .zip(wcets.remainder())
            .zip(rcps.remainder())
        {
            let delta = t - d;
            let q = r.divide(delta);
            let q32 = q as u32;
            let rem = delta - q32 * p;
            acc += u128::from(u64::from(w) * (q + 1));
            let steps = q32 - u32::from(rem == 0);
            best = best.max(d + steps * p);
        }
        (acc, u64::from(best))
    }

    /// Batched demand evaluation: `out` is filled with `dbf(interval)`
    /// for every entry of `intervals`, in order, bit-identical to calling
    /// [`DemandKernel::dbf`] once per interval.
    ///
    /// Blocks of `INTERVAL_BLOCK` intervals are evaluated column-major
    /// on the narrow columns — every `deadline`/`wcet`/reciprocal load is
    /// amortized over the whole block, and the per-element
    /// `if deadline ≤ t` filter becomes a branch-free mask-and-accumulate
    /// — with per-interval evaluation as the tail and the wide fallback.
    /// `out` is cleared first; callers reuse the buffer across batches.
    pub fn dbf_many(&self, intervals: &[Time], out: &mut Vec<Time>) {
        out.clear();
        out.reserve(intervals.len());
        let mut blocks = intervals.chunks_exact(INTERVAL_BLOCK);
        for block in &mut blocks {
            let ts = [
                block[0].as_u64(),
                block[1].as_u64(),
                block[2].as_u64(),
                block[3].as_u64(),
            ];
            let t_max = ts[0].max(ts[1]).max(ts[2]).max(ts[3]);
            if self.narrow && t_max <= NARROW_MAX {
                let periodic = self.dbf_block_narrow(ts.map(|t| t as u32));
                for (j, &t) in ts.iter().enumerate() {
                    out.push(Time::new(clamp_u128(
                        u128::from(self.one_shot_demand(t)) + periodic[j],
                    )));
                }
            } else {
                for &interval in block {
                    out.push(self.dbf(interval));
                }
            }
        }
        for &interval in blocks.remainder() {
            out.push(self.dbf(interval));
        }
    }

    /// One column-major [`DemandKernel::dbf_many`] block: the exact
    /// periodic demand of [`INTERVAL_BLOCK`] intervals in a single pass
    /// over the narrow columns, split at the block's min interval: columns
    /// live for every interval run mask-free, and only the fringe between
    /// `min(ts)` and `max(ts)` pays for neutralizing dead elements with an
    /// all-ones/all-zeros mask instead of a branch.  The wrapped `tⱼ − d`
    /// garbage a dead element feeds the reciprocal is harmless
    /// (multiply-based division cannot fault) because the term is masked
    /// to zero before accumulation.
    #[inline]
    fn dbf_block_narrow(&self, ts: [u32; INTERVAL_BLOCK]) -> [u128; INTERVAL_BLOCK] {
        let t_max = ts[0].max(ts[1]).max(ts[2]).max(ts[3]);
        let t_min = ts[0].min(ts[1]).min(ts[2]).min(ts[3]);
        let cut = self.n_deadline.partition_point(|&d| d <= t_max);
        // Columns with `deadline ≤ min(ts)` contribute to *every* interval
        // of the block: the bulk of a dense ascending sweep, evaluated
        // mask-free (each column load amortized over the whole block).
        let shared = self.n_deadline[..cut].partition_point(|&d| d <= t_min);
        let mut acc = [0u128; INTERVAL_BLOCK];
        for ((&d, &w), &r) in self.n_deadline[..shared]
            .iter()
            .zip(&self.n_wcet[..shared])
            .zip(&self.n_rcp[..shared])
        {
            let w = u64::from(w);
            for j in 0..INTERVAL_BLOCK {
                acc[j] += u128::from(w * (r.divide(ts[j] - d) + 1));
            }
        }
        // The fringe `min(ts) < deadline ≤ max(ts)` is live for only some
        // of the intervals; those terms are neutralized by an
        // all-ones/all-zeros mask instead of a branch.
        for ((&d, &w), &r) in self.n_deadline[shared..cut]
            .iter()
            .zip(&self.n_wcet[shared..cut])
            .zip(&self.n_rcp[shared..cut])
        {
            let w = u64::from(w);
            for j in 0..INTERVAL_BLOCK {
                let mask = u64::from(d <= ts[j]).wrapping_neg();
                let jobs = r.divide(ts[j].wrapping_sub(d)) + 1;
                acc[j] += u128::from((w * jobs) & mask);
            }
        }
        acc
    }

    /// The demand contribution of one component at `interval`, gathered
    /// straight from its column slot — bit-identical to
    /// [`DemandComponent::dbf`] on the corresponding component, with the
    /// period reciprocal replacing the hardware division.  This is the
    /// kernel-side form of the refining tests' withdrawal evaluations.
    #[must_use]
    pub(crate) fn component_demand(&self, component: usize, interval: Time) -> Time {
        let t = interval.as_u64();
        let slot = self.slot_of[component];
        let index = slot.index as usize;
        if slot.periodic {
            let deadline = self.p_deadline[index];
            if deadline > t {
                return Time::ZERO;
            }
            let jobs = self.p_rcp[index].divide(t - deadline) + 1;
            Time::new(self.p_wcet[index].saturating_mul(jobs))
        } else if self.o_deadline[index] > t {
            Time::ZERO
        } else {
            Time::new(self.o_wcet[index])
        }
    }

    /// The cached period reciprocal of a periodic component, gathered from
    /// its column slot (`None` for one-shot components).  The refining
    /// tests pull these once per analysis so every deadline step and
    /// withdrawal evaluation divides by the period through two widening
    /// multiplies instead of a hardware division (see [`crate::refine`]).
    #[must_use]
    pub(crate) fn period_reciprocal(&self, component: usize) -> Option<Reciprocal> {
        let slot = self.slot_of[component];
        slot.periodic.then(|| self.p_rcp[slot.index as usize])
    }

    /// Number of periodic columns (for the benchmarks and tests).
    #[must_use]
    pub fn periodic_len(&self) -> usize {
        self.p_deadline.len()
    }

    /// Number of one-shot columns (for the benchmarks and tests).
    #[must_use]
    pub fn one_shot_len(&self) -> usize {
        self.o_deadline.len()
    }
}

/// Encodes a stream's current deadline and its component index into one
/// totally ordered key: `(deadline, component)` lexicographically, which
/// reproduces the pop order of the former `BinaryHeap<Reverse<(Time,
/// usize)>>` exactly.  `u128::MAX` is the exhausted sentinel (strictly
/// larger than every real key, whose top 32 bits are zero).
#[inline]
fn merge_key(deadline: u64, component: u32) -> u128 {
    (u128::from(deadline) << 32) | u128::from(component)
}

const EXHAUSTED: u128 = u128::MAX;

/// The flat loser-tree merge of all component deadline streams — the
/// reusable engine behind
/// [`PreparedWorkload::demand_events`](crate::workload::PreparedWorkload::demand_events)
/// and [`DemandSteps`].
///
/// The tree is a plain `Vec` of stream ids: entry 0 is the current winner,
/// entries `1..k` hold the losers of the internal tournament nodes.
/// Popping the winner advances its stream and replays a single
/// leaf-to-root path.  All buffers are reused across re-initializations,
/// so a batch worker merges arbitrarily many workloads without
/// allocating.
#[derive(Debug, Clone, Default)]
pub struct MergeState {
    /// Current key per stream ([`merge_key`], or [`EXHAUSTED`]).
    key: Vec<u128>,
    /// Deadline increment per stream; 0 marks a one-shot stream.
    period: Vec<u64>,
    /// Cost per job of the stream (for coalesced demand steps).
    wcet: Vec<u64>,
    /// Loser tree over the streams (see the type docs).
    tree: Vec<u32>,
    horizon: u64,
}

impl MergeState {
    /// Prepares the merge over all component deadline streams `≤ horizon`.
    pub(crate) fn init(&mut self, components: &[DemandComponent], horizon: Time) {
        self.key.clear();
        self.period.clear();
        self.wcet.clear();
        self.horizon = horizon.as_u64();
        for (idx, component) in components.iter().enumerate() {
            if component.first_deadline() <= horizon {
                self.key
                    .push(merge_key(component.first_deadline().as_u64(), idx as u32));
                self.period.push(component.period().map_or(0, Time::as_u64));
                self.wcet.push(component.wcet().as_u64());
            }
        }
        self.rebuild_tree();
    }

    /// Rebuilds the tournament from scratch (`O(k)`).
    fn rebuild_tree(&mut self) {
        let k = self.key.len();
        self.tree.clear();
        self.tree.resize(k.max(1), 0);
        if k == 0 {
            return;
        }
        let winner = self.play(1);
        self.tree[0] = winner;
    }

    /// Plays the tournament rooted at internal node `node` (leaves are the
    /// virtual nodes `k..2k`), recording losers and returning the winner.
    fn play(&mut self, node: usize) -> u32 {
        let k = self.key.len();
        if node >= k {
            return (node - k) as u32;
        }
        let left = self.play(2 * node);
        let right = self.play(2 * node + 1);
        let (winner, loser) = if self.key[left as usize] <= self.key[right as usize] {
            (left, right)
        } else {
            (right, left)
        };
        self.tree[node] = loser;
        winner
    }

    /// The deadline of the next event, if any.
    #[inline]
    fn peek_deadline(&self) -> Option<u64> {
        if self.key.is_empty() {
            return None;
        }
        let key = self.key[self.tree[0] as usize];
        (key != EXHAUSTED).then_some((key >> 32) as u64)
    }

    /// Pops the next `(deadline, component, wcet)` event in ascending
    /// `(deadline, component)` order.
    #[inline]
    fn pop(&mut self) -> Option<(u64, u32, u64)> {
        if self.key.is_empty() {
            return None;
        }
        let stream = self.tree[0] as usize;
        let key = self.key[stream];
        if key == EXHAUSTED {
            return None;
        }
        let deadline = (key >> 32) as u64;
        let component = (key & u128::from(u32::MAX)) as u32;
        // Advance the stream.
        self.key[stream] = match self.period[stream] {
            0 => EXHAUSTED,
            period => match deadline.checked_add(period) {
                Some(next) if next <= self.horizon => merge_key(next, component),
                _ => EXHAUSTED,
            },
        };
        // Replay the leaf-to-root path (winner key kept in a register).
        let k = self.key.len();
        let mut winner = stream as u32;
        let mut winner_key = self.key[stream];
        let mut node = (stream + k) / 2;
        while node >= 1 {
            let challenger = self.tree[node];
            let challenger_key = self.key[challenger as usize];
            if challenger_key < winner_key {
                self.tree[node] = winner;
                winner = challenger;
                winner_key = challenger_key;
            }
            node /= 2;
        }
        self.tree[0] = winner;
        Some((deadline, component, self.wcet[stream]))
    }
}

/// A flat winner (tournament) tree over **one pending test interval per
/// component** — the refining tests' replacement for their former
/// `BinaryHeap<Reverse<(Time, usize)>>` pending queue (see
/// [`crate::refine`]).
///
/// The refining tests maintain the invariant that a component has at most
/// one outstanding exact test interval (its next unexamined deadline), so
/// the queue is a fixed frontier of `n` slots keyed by [`merge_key`]
/// (`(deadline, component)` lexicographically — the exact pop order of the
/// heap it replaces; keys are unique because the component index is part
/// of the key).  Empty slots hold the [`EXHAUSTED`] sentinel.
///
/// Unlike [`MergeState`]'s loser tree — whose single-path replay is only
/// valid when the *winning* leaf advances — this tree stores the **winning
/// leaf of every subtree** in its internal nodes, so an arbitrary slot
/// update (a withdrawal re-entering a component mid-frontier) replays one
/// leaf-to-root path of `⌈log₂ n⌉` two-child comparisons and stays
/// correct.  Both pop and push are a slot write plus one such replay; no
/// sift with data-dependent branching, no per-pop allocation.
///
/// Layout: `k = n` leaves are the virtual nodes `k..2k` (leaf `j` is node
/// `k + j`), internal nodes `1..k` hold the winning slot index of their
/// subtree, and the overall winner is the winner of node 1 (for `k = 1`
/// node 1 *is* the single leaf).
#[derive(Debug, Clone, Default)]
pub(crate) struct FrontierQueue {
    /// Current key per component slot ([`merge_key`], or [`EXHAUSTED`]).
    key: Vec<u128>,
    /// `tree[node]` = slot index winning the subtree rooted at `node`.
    tree: Vec<u32>,
}

impl FrontierQueue {
    /// Clears the queue to `n` exhausted slots.  Callers [`seed`] the
    /// initial frontier and then [`rebuild`] once — `O(n)` total, versus
    /// `O(n log n)` for heapifying by repeated pushes.
    ///
    /// [`seed`]: FrontierQueue::seed
    /// [`rebuild`]: FrontierQueue::rebuild
    pub(crate) fn reset(&mut self, n: usize) {
        self.key.clear();
        self.key.resize(n, EXHAUSTED);
    }

    /// Sets slot `component`'s pending interval without replaying the
    /// tree; call [`FrontierQueue::rebuild`] once after seeding.
    pub(crate) fn seed(&mut self, component: usize, deadline: Time) {
        self.key[component] = merge_key(deadline.as_u64(), component as u32);
    }

    /// Rebuilds the whole tournament in `O(n)` (children before parents).
    pub(crate) fn rebuild(&mut self) {
        let k = self.key.len();
        self.tree.clear();
        self.tree.resize(k.max(1), 0);
        for node in (1..k).rev() {
            self.tree[node] = self.winner_of(node);
        }
    }

    /// The winning slot of the subtree rooted at `node`, reading its two
    /// children (which must already be up to date).
    #[inline]
    fn winner_of(&self, node: usize) -> u32 {
        let left = self.child_winner(2 * node);
        let right = self.child_winner(2 * node + 1);
        if self.key[left as usize] <= self.key[right as usize] {
            left
        } else {
            right
        }
    }

    /// The winning slot stored at `node`, resolving virtual leaf nodes.
    #[inline]
    fn child_winner(&self, node: usize) -> u32 {
        let k = self.key.len();
        if node >= k {
            (node - k) as u32
        } else {
            self.tree[node]
        }
    }

    /// Replays the leaf-to-root path of slot `component` after its key
    /// changed (in either direction — the two-child recomputation per
    /// level is what makes arbitrary-slot updates sound).
    #[inline]
    fn replay(&mut self, component: usize) {
        let k = self.key.len();
        let mut node = (component + k) / 2;
        while node >= 1 {
            self.tree[node] = self.winner_of(node);
            node /= 2;
        }
    }

    /// Pops the minimum `(interval, component)` entry, or `None` when
    /// every slot is exhausted — the exact pop order of the
    /// `BinaryHeap<Reverse<(Time, usize)>>` it replaces.
    pub(crate) fn pop(&mut self) -> Option<(Time, usize)> {
        if self.key.is_empty() {
            return None;
        }
        let slot = self.child_winner(1) as usize;
        let key = self.key[slot];
        if key == EXHAUSTED {
            return None;
        }
        self.key[slot] = EXHAUSTED;
        self.replay(slot);
        Some((Time::new((key >> 32) as u64), slot))
    }

    /// Schedules `deadline` as slot `component`'s pending interval.  The
    /// slot must currently be empty (the refining tests' one-outstanding-
    /// interval-per-component invariant).
    pub(crate) fn push(&mut self, component: usize, deadline: Time) {
        debug_assert_eq!(
            self.key[component], EXHAUSTED,
            "component {component} already has a pending interval"
        );
        self.key[component] = merge_key(deadline.as_u64(), component as u32);
        self.replay(component);
    }
}

/// One merged per-job demand event (re-exported through
/// [`crate::workload::DemandEvent`]'s iterator); crate-internal plumbing
/// between [`MergeState`] and the public iterators.
pub(crate) fn merge_pop(state: &mut MergeState) -> Option<(Time, usize)> {
    state
        .pop()
        .map(|(deadline, component, _)| (Time::new(deadline), component as usize))
}

/// Coalesced demand steps: one `(interval, demand increment)` pair per
/// **distinct** job deadline `≤ horizon`, in ascending order, with
/// equal-deadline runs pre-summed (saturating).  This is what lets the
/// processor-demand walk perform exactly one comparison per interval with
/// no peek-and-fold loop.
///
/// Construct via
/// [`PreparedWorkload::demand_steps`](crate::workload::PreparedWorkload);
/// the scalar-oracle variant reproduces the former heap walk.
#[derive(Debug)]
pub struct DemandSteps<'a> {
    inner: StepsInner<'a>,
}

#[derive(Debug)]
enum StepsInner<'a> {
    /// The kernel path: a borrowed, reusable loser tree.
    Tree(&'a mut MergeState),
    /// The retained scalar oracle: the former binary-heap walk.
    Scalar {
        components: &'a [DemandComponent],
        heap: BinaryHeap<Reverse<(Time, usize)>>,
        horizon: Time,
    },
}

impl<'a> DemandSteps<'a> {
    pub(crate) fn from_tree(merge: &'a mut MergeState) -> Self {
        DemandSteps {
            inner: StepsInner::Tree(merge),
        }
    }

    pub(crate) fn scalar(components: &'a [DemandComponent], horizon: Time) -> Self {
        let mut heap = BinaryHeap::with_capacity(components.len());
        for (idx, component) in components.iter().enumerate() {
            if component.first_deadline() <= horizon {
                heap.push(Reverse((component.first_deadline(), idx)));
            }
        }
        DemandSteps {
            inner: StepsInner::Scalar {
                components,
                heap,
                horizon,
            },
        }
    }
}

impl Iterator for DemandSteps<'_> {
    /// `(interval, total cost of the jobs due exactly at it)`.
    type Item = (Time, Time);

    fn next(&mut self) -> Option<(Time, Time)> {
        match &mut self.inner {
            StepsInner::Tree(merge) => {
                let (deadline, _, wcet) = merge.pop()?;
                let mut demand = Time::new(wcet);
                while merge.peek_deadline() == Some(deadline) {
                    let (_, _, extra) = merge.pop().expect("peeked event exists");
                    demand = demand.saturating_add(Time::new(extra));
                }
                Some((Time::new(deadline), demand))
            }
            StepsInner::Scalar {
                components,
                heap,
                horizon,
            } => {
                let advance =
                    |heap: &mut BinaryHeap<Reverse<(Time, usize)>>, deadline: Time, idx: usize| {
                        if let Some(period) = components[idx].period() {
                            if let Some(next) = deadline.checked_add(period) {
                                if next <= *horizon {
                                    heap.push(Reverse((next, idx)));
                                }
                            }
                        }
                    };
                let Reverse((interval, idx)) = heap.pop()?;
                advance(heap, interval, idx);
                let mut demand = components[idx].wcet();
                while matches!(heap.peek(), Some(Reverse((next, _))) if *next == interval) {
                    let Reverse((_, extra)) = heap.pop().expect("peeked event exists");
                    advance(heap, interval, extra);
                    demand = demand.saturating_add(components[extra].wcet());
                }
                Some((interval, demand))
            }
        }
    }
}

/// Shared per-component bookkeeping of the refining tests
/// (dynamic-error and all-approximated), pooled in [`AnalysisScratch`] so
/// batch workers reuse one state vector across workloads.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RefinementState {
    /// Exact demand of the deadlines of this component examined so far.
    pub examined_demand: Time,
    /// Number of jobs examined exactly (the all-approximated level limit).
    pub examined_jobs: u64,
    /// `Some(im)` when the component is approximated from `im` on.
    pub approximated_from: Option<Time>,
    /// Creation sequence number of the approximation (FIFO revision).
    pub approx_seq: u64,
    /// Position of this component's term inside the incrementally
    /// maintained approximation-term list (valid while approximated).
    pub term_slot: u32,
}

/// Reusable scratch space for one analysis worker: the loser-tree merge
/// and every transient buffer the feasibility tests need.
///
/// Creating a scratch is free (no allocation until first use); reusing one
/// across many analyses — as
/// [`batch::analyze_many`](crate::batch::analyze_many) does with one
/// scratch per worker thread — eliminates all per-workload transient
/// allocations from the test loops.  Pass it to
/// [`FeasibilityTest::analyze_prepared_with`](crate::FeasibilityTest::analyze_prepared_with);
/// the plain `analyze_prepared` entry point simply runs with a fresh
/// scratch.
///
/// # Examples
///
/// ```
/// use edf_analysis::kernel::AnalysisScratch;
/// use edf_analysis::tests::QpaTest;
/// use edf_analysis::workload::PreparedWorkload;
/// use edf_analysis::FeasibilityTest;
/// use edf_model::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let ts = TaskSet::from_tasks(vec![Task::new(Time::new(1), Time::new(4), Time::new(8))?]);
/// let prepared = PreparedWorkload::new(&ts);
/// let mut scratch = AnalysisScratch::new();
/// let with_scratch = QpaTest::new().analyze_prepared_with(&prepared, &mut scratch);
/// assert_eq!(with_scratch, QpaTest::new().analyze_prepared(&prepared));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct AnalysisScratch {
    /// The loser-tree merge (processor-demand walk).
    pub(crate) merge: MergeState,
    /// Pending exact test intervals of the retained refining-test
    /// reference bookkeeping ([`crate::refine::reference`]).
    pub(crate) pending: BinaryHeap<Reverse<(Time, usize)>>,
    /// The refining tests' flat frontier of pending exact test intervals
    /// (one slot per component; see [`FrontierQueue`] and
    /// [`crate::refine`]).
    pub(crate) frontier: FrontierQueue,
    /// Per-component period reciprocals of the refining tests, gathered
    /// once per analysis from the kernel columns (`None` for one-shots).
    pub(crate) refine_rcp: Vec<Option<Reciprocal>>,
    /// Per-component refinement states of the refining tests.
    pub(crate) refine: Vec<RefinementState>,
    /// Approximated demand terms — maintained incrementally by the
    /// refining tests (one push per approximation, one swap-remove per
    /// withdrawal) instead of being rebuilt every comparison.
    pub(crate) approx_terms: Vec<ApproxTerm>,
    /// Component index owning each entry of `approx_terms` (keeps
    /// [`RefinementState::term_slot`] consistent across swap-removes).
    pub(crate) term_owner: Vec<u32>,
    /// Per-component approximation-term prototypes of the superposition
    /// test (`None` for one-shot components), built once per analysis.
    pub(crate) term_cache: Vec<Option<ApproxTerm>>,
    /// Indices of the components a refining test withdraws in one
    /// level-raise pass — collected first, then evaluated as one batch of
    /// kernel column gathers ([`DemandKernel`]'s `component_demand`).
    pub(crate) withdrawn: Vec<u32>,
    /// Devi's per-prefix rational terms.
    pub(crate) devi_terms: Vec<(u128, u128)>,
    /// The superposition test's `(deadline, component, job)` interval heap.
    pub(crate) level_heap: BinaryHeap<Reverse<(Time, usize, u64)>>,
    /// The deterministic work budget the next analysis runs under
    /// (unlimited by default; see [`crate::budget`]).
    pub(crate) budget: WorkBudget,
}

impl AnalysisScratch {
    /// Creates an empty scratch (allocation-free; buffers grow on first
    /// use and are then reused) with an unlimited work budget.
    #[must_use]
    pub fn new() -> Self {
        AnalysisScratch::default()
    }

    /// Installs the [`WorkBudget`] the next budget-aware analysis runs
    /// under.
    ///
    /// The budget is the one piece of scratch state that **is** an input:
    /// a limited budget can turn a decisive verdict into an honest
    /// [`Unknown`](crate::Verdict::Unknown) carrying a
    /// [`Progress`](crate::budget::Progress) record.  It persists across
    /// analyses (spent units accumulate) until replaced by `set_budget` or
    /// drained by [`take_budget`](AnalysisScratch::take_budget), which is
    /// how a level-escalation ladder meters several runs against one
    /// allowance.  Every other scratch field remains a pure buffer with no
    /// influence on results.
    pub fn set_budget(&mut self, budget: WorkBudget) {
        self.budget = budget;
    }

    /// The current budget state (limit and spent units).
    #[must_use]
    pub fn budget(&self) -> WorkBudget {
        self.budget
    }

    /// Removes the installed budget, replacing it with
    /// [`WorkBudget::unlimited`], and returns its final state — call after
    /// a budgeted analysis to read the spend and make the scratch safe to
    /// reuse without a stale cap.
    pub fn take_budget(&mut self) -> WorkBudget {
        std::mem::take(&mut self.budget)
    }
}

pub mod reference {
    //! The retained scalar merge oracle.
    //!
    //! [`demand_events`] reproduces the pre-kernel `BinaryHeap` k-way
    //! merge (per-job events, ties in component order).  It exists so the
    //! `kernel_equivalence` property tests and the `kernel` benchmark can
    //! compare the loser tree against the exact code it replaced; use
    //! [`PreparedWorkload::demand_events`](crate::workload::PreparedWorkload::demand_events)
    //! for real work.

    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    use edf_model::Time;

    use crate::workload::{DemandComponent, DemandEvent};

    /// The heap-based merged stream of all job deadlines `≤ horizon` in
    /// non-decreasing `(deadline, component)` order.
    #[derive(Debug)]
    pub struct ScalarDemandEvents {
        components: Vec<DemandComponent>,
        heap: BinaryHeap<Reverse<(Time, usize)>>,
        horizon: Time,
    }

    /// Creates the scalar-oracle merge over `components`.
    #[must_use]
    pub fn demand_events(components: &[DemandComponent], horizon: Time) -> ScalarDemandEvents {
        let mut heap = BinaryHeap::with_capacity(components.len());
        for (idx, component) in components.iter().enumerate() {
            if component.first_deadline() <= horizon {
                heap.push(Reverse((component.first_deadline(), idx)));
            }
        }
        ScalarDemandEvents {
            components: components.to_vec(),
            heap,
            horizon,
        }
    }

    impl Iterator for ScalarDemandEvents {
        type Item = DemandEvent;

        fn next(&mut self) -> Option<DemandEvent> {
            let Reverse((interval, component)) = self.heap.pop()?;
            if let Some(period) = self.components[component].period() {
                if let Some(next) = interval.checked_add(period) {
                    if next <= self.horizon {
                        self.heap.push(Reverse((next, component)));
                    }
                }
            }
            Some(DemandEvent {
                interval,
                component,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{PreparedWorkload, Workload};
    use edf_model::{Task, TaskSet};

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    fn sample_components() -> Vec<DemandComponent> {
        vec![
            DemandComponent::periodic(Time::new(2), Time::new(20), Time::new(40)),
            DemandComponent::one_shot(Time::new(3), Time::new(7), Time::ZERO),
            DemandComponent::periodic(Time::new(1), Time::new(3), Time::new(9)),
            DemandComponent::one_shot(Time::new(1), Time::new(3), Time::ZERO),
            DemandComponent::periodic_from(Time::new(2), Time::new(4), Time::new(10), Time::new(5)),
        ]
    }

    fn kernel_of(components: &[DemandComponent]) -> DemandKernel {
        let mut order: Vec<usize> = (0..components.len()).collect();
        order.sort_by_key(|&i| components[i].first_deadline());
        let mut kernel = DemandKernel::default();
        kernel.rebuild(components, &order);
        kernel
    }

    fn scalar_dbf(components: &[DemandComponent], t: Time) -> Time {
        components
            .iter()
            .fold(Time::ZERO, |acc, c| acc.saturating_add(c.dbf(t)))
    }

    fn scalar_last_below(components: &[DemandComponent], limit: Time) -> Option<Time> {
        components
            .iter()
            .filter_map(|c| c.last_deadline_below(limit))
            .max()
    }

    #[test]
    fn columns_segregate_and_sort() {
        let components = sample_components();
        let kernel = kernel_of(&components);
        assert_eq!(kernel.periodic_len(), 3);
        assert_eq!(kernel.one_shot_len(), 2);
        assert!(kernel.p_deadline.windows(2).all(|w| w[0] <= w[1]));
        assert!(kernel.o_deadline.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn dbf_matches_scalar_fold_everywhere() {
        let components = sample_components();
        let kernel = kernel_of(&components);
        for i in 0..200u64 {
            let i = Time::new(i);
            assert_eq!(kernel.dbf(i), scalar_dbf(&components, i), "dbf at {i}");
        }
    }

    #[test]
    fn dbf_saturates_like_the_scalar_fold() {
        let big = 1u64 << 63;
        let components = vec![
            DemandComponent::periodic(Time::new(big), Time::ONE, Time::new(big)),
            DemandComponent::one_shot(Time::new(big), Time::ONE, Time::ZERO),
            DemandComponent::one_shot(Time::new(big), Time::ONE, Time::ZERO),
        ];
        let kernel = kernel_of(&components);
        assert_eq!(kernel.dbf(Time::MAX), Time::MAX);
        assert_eq!(kernel.dbf(Time::MAX), scalar_dbf(&components, Time::MAX));
    }

    #[test]
    fn last_deadline_below_matches_scalar_scan() {
        let components = sample_components();
        let kernel = kernel_of(&components);
        for limit in 0..200u64 {
            let limit = Time::new(limit);
            assert_eq!(
                kernel.last_deadline_below(limit),
                scalar_last_below(&components, limit),
                "limit {limit}"
            );
        }
    }

    #[test]
    fn combined_query_agrees_with_its_parts() {
        let components = sample_components();
        let kernel = kernel_of(&components);
        for i in 0..200u64 {
            let i = Time::new(i);
            let (demand, predecessor) = kernel.demand_and_predecessor(i);
            assert_eq!(demand, kernel.dbf(i), "demand at {i}");
            assert_eq!(predecessor, kernel.last_deadline_below(i), "pred at {i}");
        }
    }

    #[test]
    fn column_rewrite_tracks_component_updates() {
        let components = sample_components();
        let mut updated = components.clone();
        let mut kernel = kernel_of(&components);
        for (idx, wcet) in [(0usize, 5u64), (1, 9), (4, 0)] {
            updated[idx].set_wcet(Time::new(wcet));
            kernel.set_wcet(idx, Time::new(wcet));
        }
        kernel.refresh_after_rewrite();
        for i in 0..200u64 {
            let i = Time::new(i);
            assert_eq!(kernel.dbf(i), scalar_dbf(&updated, i), "dbf at {i}");
        }
    }

    #[test]
    fn loser_tree_merge_equals_heap_merge() {
        let components = sample_components();
        let horizon = Time::new(150);
        let mut merge = MergeState::default();
        merge.init(&components, horizon);
        let mut tree_events = Vec::new();
        while let Some((deadline, component, _)) = merge.pop() {
            tree_events.push((Time::new(deadline), component as usize));
        }
        let heap_events: Vec<(Time, usize)> = reference::demand_events(&components, horizon)
            .map(|e| (e.interval, e.component))
            .collect();
        assert_eq!(tree_events, heap_events);
    }

    #[test]
    fn merge_state_is_reusable_across_workloads() {
        let mut merge = MergeState::default();
        for components in [
            sample_components(),
            vec![DemandComponent::periodic(
                Time::new(1),
                Time::new(5),
                Time::new(5),
            )],
            Vec::new(),
        ] {
            let horizon = Time::new(60);
            merge.init(&components, horizon);
            let mut got = Vec::new();
            while let Some((deadline, component, _)) = merge.pop() {
                got.push((Time::new(deadline), component as usize));
            }
            let expected: Vec<(Time, usize)> = reference::demand_events(&components, horizon)
                .map(|e| (e.interval, e.component))
                .collect();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn coalesced_steps_sum_equal_deadlines() {
        let ts = TaskSet::from_tasks(vec![t(1, 10, 10), t(2, 10, 10), t(3, 5, 20)]);
        let components = ts.demand_components();
        let mut merge = MergeState::default();
        merge.init(&components, Time::new(30));
        let steps: Vec<(Time, Time)> = DemandSteps::from_tree(&mut merge).collect();
        assert_eq!(
            steps,
            vec![
                (Time::new(5), Time::new(3)),
                (Time::new(10), Time::new(3)),
                (Time::new(20), Time::new(3)),
                (Time::new(25), Time::new(3)),
                (Time::new(30), Time::new(3)),
            ]
        );
        // The scalar-oracle steps agree.
        let scalar: Vec<(Time, Time)> = DemandSteps::scalar(&components, Time::new(30)).collect();
        assert_eq!(steps, scalar);
    }

    #[test]
    fn empty_and_single_stream_merges() {
        let mut merge = MergeState::default();
        merge.init(&[], Time::new(100));
        assert_eq!(merge.pop(), None);
        let single = vec![DemandComponent::periodic(
            Time::new(1),
            Time::new(4),
            Time::new(10),
        )];
        merge.init(&single, Time::new(25));
        let mut got = Vec::new();
        while let Some((d, c, _)) = merge.pop() {
            got.push((d, c));
        }
        assert_eq!(got, vec![(4, 0), (14, 0), (24, 0)]);
        // Beyond-horizon first deadlines never enter the merge.
        merge.init(&single, Time::new(3));
        assert_eq!(merge.pop(), None);
    }

    #[test]
    fn prepared_workload_kernel_accessor() {
        let ts = TaskSet::from_tasks(vec![t(1, 4, 8), t(2, 6, 12)]);
        let prepared = PreparedWorkload::new(&ts);
        assert_eq!(prepared.kernel().periodic_len(), 2);
        assert_eq!(prepared.kernel().one_shot_len(), 0);
    }

    const ABOVE_32: u64 = u32::MAX as u64 + 5;

    #[test]
    fn small_columns_build_narrow_and_wide_columns_do_not() {
        let kernel = kernel_of(&sample_components());
        assert!(kernel.narrow_timing_fits);
        assert!(kernel.narrow);
        assert_eq!(kernel.n_deadline.len(), kernel.p_deadline.len());
        let wide_period = vec![DemandComponent::periodic(
            Time::new(1),
            Time::new(10),
            Time::new(ABOVE_32),
        )];
        let kernel = kernel_of(&wide_period);
        assert!(!kernel.narrow_timing_fits);
        assert!(!kernel.narrow);
        let wide_wcet = vec![DemandComponent::periodic(
            Time::new(ABOVE_32),
            Time::new(10),
            Time::new(u32::MAX as u64),
        )];
        let kernel = kernel_of(&wide_wcet);
        assert!(kernel.narrow_timing_fits, "timing still fits");
        assert!(!kernel.narrow, "cost column does not");
    }

    /// Columns straddling `u32::MAX` (narrow-ineligible) and intervals on
    /// both sides of the narrow gate still match the scalar folds.
    #[test]
    fn straddling_columns_match_scalar_folds() {
        let components = vec![
            DemandComponent::periodic(Time::new(2), Time::new(20), Time::new(40)),
            DemandComponent::periodic(Time::new(3), Time::new(ABOVE_32), Time::new(ABOVE_32 + 7)),
            DemandComponent::periodic(Time::new(ABOVE_32), Time::new(9), Time::new(ABOVE_32 * 2)),
            DemandComponent::one_shot(Time::new(5), Time::new(ABOVE_32 + 1), Time::ZERO),
        ];
        let kernel = kernel_of(&components);
        assert!(!kernel.narrow);
        let probes = [
            0,
            19,
            20,
            u32::MAX as u64,
            ABOVE_32,
            ABOVE_32 + 1,
            ABOVE_32 * 3 + 11,
        ];
        for &i in &probes {
            let i = Time::new(i);
            assert_eq!(kernel.dbf(i), scalar_dbf(&components, i), "dbf at {i}");
            assert_eq!(
                kernel.last_deadline_below(i),
                scalar_last_below(&components, i),
                "predecessor at {i}"
            );
            let (demand, predecessor) = kernel.demand_and_predecessor(i);
            assert_eq!(demand, kernel.dbf(i));
            assert_eq!(predecessor, kernel.last_deadline_below(i));
        }
    }

    /// Narrow columns queried above the `u32` interval gate fall back to
    /// the wide loops and stay exact.
    #[test]
    fn narrow_columns_with_wide_intervals_match_scalar_folds() {
        let components = sample_components();
        let kernel = kernel_of(&components);
        assert!(kernel.narrow);
        for &i in &[u32::MAX as u64, ABOVE_32, ABOVE_32 + 13] {
            let i = Time::new(i);
            assert_eq!(kernel.dbf(i), scalar_dbf(&components, i), "dbf at {i}");
            assert_eq!(
                kernel.last_deadline_below(i),
                scalar_last_below(&components, i),
                "predecessor at {i}"
            );
        }
    }

    /// A wide WCET write demotes the kernel in place (queries correct with
    /// no refresh); shrinking the cost back and refreshing promotes it.
    #[test]
    fn wcet_rewrites_demote_and_promote_the_narrow_column() {
        let components = sample_components();
        let mut updated = components.clone();
        let mut kernel = kernel_of(&components);
        assert!(kernel.narrow);
        updated[0].set_wcet(Time::new(ABOVE_32));
        kernel.set_wcet(0, Time::new(ABOVE_32));
        assert!(!kernel.narrow, "wide cost demotes");
        for i in (0..100).chain([ABOVE_32 - 1, ABOVE_32 + 50]) {
            let i = Time::new(i);
            assert_eq!(kernel.dbf(i), scalar_dbf(&updated, i), "demoted dbf at {i}");
        }
        kernel.refresh_after_rewrite();
        assert!(
            !kernel.narrow,
            "refresh cannot promote while the cost is wide"
        );
        updated[0].set_wcet(Time::new(7));
        kernel.set_wcet(0, Time::new(7));
        kernel.refresh_after_rewrite();
        assert!(kernel.narrow, "fitting costs promote on refresh");
        for i in 0..100 {
            let i = Time::new(i);
            assert_eq!(
                kernel.dbf(i),
                scalar_dbf(&updated, i),
                "promoted dbf at {i}"
            );
        }
    }

    #[test]
    fn dbf_many_equals_repeated_dbf() {
        let components = sample_components();
        let kernel = kernel_of(&components);
        // 0..=200 exercises full blocks + remainder; the mixed list makes
        // single blocks straddle the narrow interval gate.
        let dense: Vec<Time> = (0..=200).map(Time::new).collect();
        let mixed: Vec<Time> = vec![
            Time::new(3),
            Time::new(ABOVE_32),
            Time::new(150),
            Time::new(u32::MAX as u64),
            Time::new(40),
            Time::new(0),
            Time::new(77),
        ];
        let mut out = Vec::new();
        for probes in [dense, mixed] {
            kernel.dbf_many(&probes, &mut out);
            let expected: Vec<Time> = probes.iter().map(|&i| kernel.dbf(i)).collect();
            assert_eq!(out, expected);
        }
    }

    #[test]
    fn component_demand_gathers_match_component_dbf() {
        let components = sample_components();
        let kernel = kernel_of(&components);
        for (idx, component) in components.iter().enumerate() {
            for i in 0..120u64 {
                let i = Time::new(i);
                assert_eq!(
                    kernel.component_demand(idx, i),
                    component.dbf(i),
                    "component {idx} at {i}"
                );
            }
        }
    }

    #[test]
    fn period_reciprocal_exists_exactly_for_periodic_components() {
        let components = sample_components();
        let kernel = kernel_of(&components);
        for (idx, component) in components.iter().enumerate() {
            let rcp = kernel.period_reciprocal(idx);
            match component.period() {
                Some(period) => {
                    assert_eq!(
                        rcp,
                        Some(Reciprocal::new(period.as_u64())),
                        "component {idx}"
                    );
                }
                None => assert_eq!(rcp, None, "component {idx}"),
            }
        }
    }

    /// Drives a [`FrontierQueue`] and a `BinaryHeap<Reverse<(Time, usize)>>`
    /// through the same deterministic seed / pop / re-push schedule and
    /// asserts identical pop order. The refining tests keep at most one
    /// pending interval per component, which both structures model here.
    fn assert_frontier_matches_heap(n: usize, seeds: &[(usize, u64)], steps: u32) {
        let mut frontier = FrontierQueue::default();
        frontier.reset(n);
        let mut heap: BinaryHeap<Reverse<(Time, usize)>> = BinaryHeap::new();
        for &(component, deadline) in seeds {
            frontier.seed(component, Time::new(deadline));
            heap.push(Reverse((Time::new(deadline), component)));
        }
        frontier.rebuild();
        let mut tick = 0u64;
        for step in 0..steps {
            let expected = heap.pop().map(|Reverse(pair)| pair);
            let got = frontier.pop();
            assert_eq!(got, expected, "step {step} of n={n}");
            let Some((deadline, component)) = got else {
                break;
            };
            // A deterministic mix of "advance this component" and "let it
            // drop out, then re-enter later" keeps arbitrary slots cycling
            // between live and exhausted.
            tick += 1;
            if !tick.is_multiple_of(3) {
                let next = deadline.saturating_add(Time::new(1 + (tick % 7)));
                frontier.push(component, next);
                heap.push(Reverse((next, component)));
            } else if tick.is_multiple_of(6) {
                let revived = (component + 1) % n;
                let next = deadline.saturating_add(Time::new(tick % 11));
                if frontier.key[revived] == EXHAUSTED {
                    frontier.push(revived, next);
                    heap.push(Reverse((next, revived)));
                }
            }
        }
    }

    #[test]
    fn frontier_queue_matches_binary_heap_pop_order() {
        assert_frontier_matches_heap(1, &[(0, 9)], 40);
        assert_frontier_matches_heap(2, &[(0, 5), (1, 5)], 64);
        assert_frontier_matches_heap(5, &[(0, 40), (2, 3), (4, 3)], 200);
        assert_frontier_matches_heap(8, &[(7, 1), (3, 2), (0, 2), (5, 9), (1, 100)], 300);
        // Odd widths exercise the half-leaf tree levels.
        assert_frontier_matches_heap(7, &[(6, 2), (5, 2), (4, 2), (3, 2), (2, 2)], 250);
    }

    #[test]
    fn frontier_queue_handles_empty_and_exhausted_states() {
        let mut frontier = FrontierQueue::default();
        frontier.reset(0);
        frontier.rebuild();
        assert_eq!(frontier.pop(), None);

        frontier.reset(3);
        frontier.rebuild();
        assert_eq!(frontier.pop(), None, "all slots exhausted");

        frontier.seed(1, Time::new(17));
        frontier.rebuild();
        assert_eq!(frontier.pop(), Some((Time::new(17), 1)));
        assert_eq!(frontier.pop(), None);
        frontier.push(2, Time::new(4));
        assert_eq!(frontier.pop(), Some((Time::new(4), 2)));
        assert_eq!(frontier.pop(), None);
    }
}
