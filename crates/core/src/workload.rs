//! The [`Workload`] demand abstraction: one interface for every task model.
//!
//! §2/§3.6 of the paper stress that the processor-demand framework is not
//! tied to the sporadic task model — any workload whose *demand bound
//! function* `dbf(I)` can be evaluated and whose demand change points can
//! be enumerated is analyzable by exactly the same tests.  This module
//! makes that observation structural:
//!
//! * [`DemandComponent`] — the elementary demand generator: jobs of cost
//!   `C` with absolute deadlines `D, D + T, D + 2T, …` (or a single
//!   deadline for one-shot events).  A sporadic task is one component; a
//!   Gresser event-stream task is one component **per tuple** `(z, a)`
//!   (cost `C`, first deadline `a + D`, cycle `z`) — the decomposition is
//!   exact because `dbf(I) = C·η(I − D)` distributes over the tuples;
//! * [`Workload`] — anything that can decompose itself into components:
//!   implemented for [`TaskSet`], [`Task`], [`EventStreamTask`], slices
//!   and vectors of event-stream tasks, and [`MixedSystem`];
//! * [`PreparedWorkload`] — a workload snapshot with the shared state every
//!   test needs (components, exact utilization comparison, §4.3
//!   feasibility bounds, deadline ordering) computed **once** and cached,
//!   so a suite of tests re-uses it instead of recomputing per test.
//!
//! Every [`FeasibilityTest`](crate::FeasibilityTest) consumes a
//! [`PreparedWorkload`], which is what lets the exact tests of the paper
//! run unchanged on event-stream and mixed systems.
//!
//! # Examples
//!
//! ```
//! use edf_analysis::tests::AllApproximatedTest;
//! use edf_analysis::workload::{MixedSystem, PreparedWorkload, Workload};
//! use edf_analysis::{FeasibilityTest, Verdict};
//! use edf_model::{EventStream, EventStreamTask, Task, TaskSet, Time};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sporadic = TaskSet::from_tasks(vec![
//!     Task::new(Time::new(2), Time::new(8), Time::new(10))?,
//! ]);
//! let burst = EventStreamTask::new(
//!     EventStream::bursty(3, Time::new(5), Time::new(100)),
//!     Time::new(4),
//!     Time::new(20),
//! )?;
//! let system = MixedSystem::new(sporadic, vec![burst]);
//!
//! // The paper's all-approximated exact test, on an event-stream system:
//! let prepared = PreparedWorkload::new(&system);
//! let analysis = AllApproximatedTest::new().analyze_prepared(&prepared);
//! assert_eq!(analysis.verdict, Verdict::Feasible);
//! # Ok(())
//! # }
//! ```

use std::sync::OnceLock;

use edf_model::{
    ArrivalCurveTask, CurveDecomposition, EventStreamTask, EventTuple, Task, TaskSet, Time,
    Transaction, TransactionSystem,
};

use crate::arith::{fracs_le_integer_iter, Reciprocal};
use crate::bounds::FeasibilityBounds;
use crate::kernel::{merge_pop, AnalysisScratch, DemandKernel, DemandSteps, MergeState};

/// The elementary demand generator behind every supported task model.
///
/// A component releases jobs of cost [`wcet`](DemandComponent::wcet) at
/// `offset, offset + T, offset + 2T, …` (synchronous worst case), each due
/// [`first_deadline`](DemandComponent::first_deadline)` − offset` time
/// units after its release.  A component with `period() == None` is
/// *one-shot*: it contributes a single job.
///
/// # Examples
///
/// ```
/// use edf_analysis::workload::DemandComponent;
/// use edf_model::Time;
///
/// let c = DemandComponent::periodic(Time::new(2), Time::new(4), Time::new(10));
/// assert_eq!(c.dbf(Time::new(3)), Time::ZERO);
/// assert_eq!(c.dbf(Time::new(4)), Time::new(2));
/// assert_eq!(c.dbf(Time::new(14)), Time::new(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DemandComponent {
    wcet: Time,
    /// Absolute deadline of the first job (`offset + relative deadline`).
    deadline: Time,
    /// Release instant of the first job within the observation window.
    offset: Time,
    /// Distance between consecutive jobs; `None` for a one-shot component.
    period: Option<Time>,
}

impl DemandComponent {
    /// A periodic component released at the window start (a sporadic task).
    #[must_use]
    pub fn periodic(wcet: Time, deadline: Time, period: Time) -> Self {
        DemandComponent {
            wcet,
            deadline,
            offset: Time::ZERO,
            period: Some(period),
        }
    }

    /// A periodic component whose first job is released at `offset` with
    /// relative deadline `relative_deadline` (an event-stream tuple).
    #[must_use]
    pub fn periodic_from(wcet: Time, relative_deadline: Time, period: Time, offset: Time) -> Self {
        DemandComponent {
            wcet,
            deadline: offset.saturating_add(relative_deadline),
            offset,
            period: Some(period),
        }
    }

    /// A one-shot component: a single job released at `offset` and due at
    /// `offset + relative_deadline`.
    #[must_use]
    pub fn one_shot(wcet: Time, relative_deadline: Time, offset: Time) -> Self {
        DemandComponent {
            wcet,
            deadline: offset.saturating_add(relative_deadline),
            offset,
            period: None,
        }
    }

    /// The component equivalent to a sporadic [`Task`].
    #[must_use]
    pub fn from_task(task: &Task) -> Self {
        DemandComponent::periodic(task.wcet(), task.deadline(), task.period())
    }

    /// Execution cost per job.
    #[must_use]
    pub fn wcet(&self) -> Time {
        self.wcet
    }

    /// The cost after scaling by `numer/denom`: rounded **up** (so a scaled
    /// workload never under-estimates demand) and clamped to the period for
    /// periodic components.  Zero is representable — scaling by `0/d` (or
    /// scaling a zero-cost component) yields a zero-cost component rather
    /// than silently inflating to one tick, so near-zero scalings report
    /// undistorted breakdown utilizations.
    ///
    /// # Panics
    ///
    /// Panics if `denom` is zero.
    #[must_use]
    pub fn scaled_wcet(&self, numer: u64, denom: u64) -> Time {
        assert!(denom > 0, "scaling denominator must be positive");
        let scaled = (self.wcet.as_u128() * u128::from(numer)).div_ceil(u128::from(denom));
        let mut wcet = Time::new(scaled.min(u128::from(u64::MAX)) as u64);
        if let Some(period) = self.period {
            wcet = wcet.min(period);
        }
        wcet
    }

    /// Replaces the execution cost (the only field a
    /// [`ScaledView`](crate::incremental::ScaledView) probe rewrites —
    /// deadlines, offsets and periods are scale-invariant).
    pub(crate) fn set_wcet(&mut self, wcet: Time) {
        self.wcet = wcet;
    }

    /// `wcet` clamped to the component's period (one-shots are
    /// unclamped) — the invariant every probe path applies to inflated
    /// costs, mirroring [`DemandComponent::scaled_wcet`].
    pub(crate) fn clamp_wcet(&self, wcet: Time) -> Time {
        match self.period {
            Some(period) => wcet.min(period),
            None => wcet,
        }
    }

    /// Absolute deadline of the first job.
    #[must_use]
    pub fn first_deadline(&self) -> Time {
        self.deadline
    }

    /// Release instant of the first job.
    #[must_use]
    pub fn release_offset(&self) -> Time {
        self.offset
    }

    /// Distance between jobs, `None` for a one-shot component.
    #[must_use]
    pub fn period(&self) -> Option<Time> {
        self.period
    }

    /// Long-run utilization (`C/T` for periodic components, 0 for
    /// one-shots).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        match self.period {
            Some(period) => self.wcet.as_f64() / period.as_f64(),
            None => 0.0,
        }
    }

    /// Demand bound function: total cost of jobs with release *and*
    /// deadline inside an interval of length `interval`.
    #[must_use]
    pub fn dbf(&self, interval: Time) -> Time {
        if interval < self.deadline {
            return Time::ZERO;
        }
        match self.period {
            None => self.wcet,
            Some(period) => {
                let jobs = (interval - self.deadline).div_floor(period) + 1;
                self.wcet.saturating_mul(jobs)
            }
        }
    }

    /// Request bound function: total cost of jobs *released* within an
    /// interval of length `interval` (half-open, with the job released at
    /// instant 0 counting for `interval = 0`, mirroring
    /// [`rbf_task`](crate::demand::rbf_task)).
    #[must_use]
    pub fn rbf(&self, interval: Time) -> Time {
        if self.offset.is_zero() && interval.is_zero() {
            return self.wcet;
        }
        if interval <= self.offset {
            return Time::ZERO;
        }
        match self.period {
            None => self.wcet,
            Some(period) => {
                let jobs = (interval - self.offset - Time::ONE).div_floor(period) + 1;
                self.wcet.saturating_mul(jobs)
            }
        }
    }

    /// The absolute deadline of the first job strictly after `interval`
    /// (Lemma 5's `NextInt`), or `None` if there is none / on overflow.
    #[must_use]
    pub fn next_deadline_after(&self, interval: Time) -> Option<Time> {
        if interval < self.deadline {
            return Some(self.deadline);
        }
        let period = self.period?;
        let k = (interval - self.deadline).div_floor(period) + 1;
        period.checked_mul(k)?.checked_add(self.deadline)
    }

    /// The largest job deadline strictly below `limit`, or `None`.
    #[must_use]
    pub fn last_deadline_below(&self, limit: Time) -> Option<Time> {
        if self.deadline >= limit {
            return None;
        }
        match self.period {
            None => Some(self.deadline),
            Some(period) => {
                let k = (limit - self.deadline - Time::ONE).div_floor(period);
                period.checked_mul(k)?.checked_add(self.deadline)
            }
        }
    }

    /// The maximum test interval `Im` at approximation `level ≥ 1`: the
    /// deadline of the `level`-th job (Def. 4 generalized; one-shot
    /// components saturate at their single deadline).
    ///
    /// # Panics
    ///
    /// Panics if `level` is zero.
    #[must_use]
    pub fn max_test_interval(&self, level: u64) -> Time {
        assert!(level >= 1, "approximation level must be at least 1");
        match self.period {
            None => self.deadline,
            Some(period) => period
                .saturating_mul(level - 1)
                .saturating_add(self.deadline),
        }
    }
}

/// One entry of [`DemandEventIter`]: an interval length at which the
/// demand increases and the component responsible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemandEvent {
    /// Interval length (an absolute job deadline).
    pub interval: Time,
    /// Index of the component within the prepared workload.
    pub component: usize,
}

/// Lazily merged stream of all component job deadlines `≤ horizon` in
/// non-decreasing order (the k-way merge behind the demand-based tests,
/// generalizing [`DeadlineIter`](crate::demand::DeadlineIter) to arbitrary
/// workloads).
///
/// Ties are returned as separate events, one per job, so callers can
/// accumulate per-job demand incrementally.  Since the columnar-kernel
/// rebuild the merge runs on a flat loser tree
/// ([`MergeState`]) that owns its stream state —
/// the iterator no longer borrows the component list — and the heap-based
/// original survives as [`crate::kernel::reference::demand_events`] for
/// the equivalence tests.
#[derive(Debug)]
pub struct DemandEventIter {
    merge: MergeState,
}

impl DemandEventIter {
    /// Creates the iterator over all job deadlines `≤ horizon`.
    #[must_use]
    pub fn new(components: &[DemandComponent], horizon: Time) -> Self {
        let mut merge = MergeState::default();
        merge.init(components, horizon);
        DemandEventIter { merge }
    }
}

impl Iterator for DemandEventIter {
    type Item = DemandEvent;

    fn next(&mut self) -> Option<DemandEvent> {
        merge_pop(&mut self.merge).map(|(interval, component)| DemandEvent {
            interval,
            component,
        })
    }
}

/// A demand-characterized workload: anything that can decompose itself
/// into [`DemandComponent`]s.
///
/// The provided methods (`dbf`, `rbf`, `utilization`, `next_demand_point`,
/// `demand_events`) are derived from the decomposition; implementors only
/// supply [`Workload::demand_components`] (and may override the rest with
/// cheaper model-specific versions).  For anything hot, wrap the workload
/// in a [`PreparedWorkload`] once and reuse it — the trait methods here
/// recompute the decomposition on every call.
pub trait Workload {
    /// Decomposes the workload into elementary demand components.
    fn demand_components(&self) -> Vec<DemandComponent>;

    /// Appends the decomposition to `out` without allocating a fresh
    /// vector — the entry point of the allocation-free batch preparation
    /// path ([`PreparedWorkload::recycled`]).  The default goes through
    /// [`Workload::demand_components`]; the built-in models override it to
    /// push components directly.
    fn append_components(&self, out: &mut Vec<DemandComponent>) {
        out.extend(self.demand_components());
    }

    /// Number of user-visible tasks (for reporting; a bursty event stream
    /// is one task but several components).
    fn task_count(&self) -> usize {
        self.demand_components().len()
    }

    /// `true` if the workload has no demand at all.
    fn is_empty(&self) -> bool {
        self.demand_components().is_empty()
    }

    /// Long-run processor utilization.
    fn utilization(&self) -> f64 {
        self.demand_components()
            .iter()
            .map(DemandComponent::utilization)
            .sum()
    }

    /// Total demand bound function `dbf(I)`.
    fn dbf(&self, interval: Time) -> Time {
        self.demand_components()
            .iter()
            .fold(Time::ZERO, |acc, c| acc.saturating_add(c.dbf(interval)))
    }

    /// Total request bound function `rbf(I)`.
    fn rbf(&self, interval: Time) -> Time {
        self.demand_components()
            .iter()
            .fold(Time::ZERO, |acc, c| acc.saturating_add(c.rbf(interval)))
    }

    /// The smallest interval length strictly greater than `interval` at
    /// which the demand increases, or `None` if demand never grows again.
    fn next_demand_point(&self, interval: Time) -> Option<Time> {
        self.demand_components()
            .iter()
            .filter_map(|c| c.next_deadline_after(interval))
            .min()
    }

    /// `true` (the default) when [`Workload::demand_components`] reproduces
    /// the workload's demand exactly; `false` when the decomposition
    /// **over-approximates** it (conservative arrival-curve mode, the
    /// synchronous reduction of an offset transaction).  Tests demote
    /// rejections of over-approximated demand to
    /// [`Verdict::Unknown`](crate::Verdict::Unknown) — see
    /// [`FeasibilityTest::analyze_prepared`](crate::FeasibilityTest::analyze_prepared).
    fn demand_is_exact(&self) -> bool {
        true
    }

    /// `true` (the default) when the components' long-run utilization
    /// equals the workload's.  Distinct from [`Workload::demand_is_exact`]
    /// because some over-approximations still preserve utilization —
    /// dropping transaction offsets does, substituting a leaky-bucket
    /// envelope does not — and a `U > 1` rejection from
    /// utilization-preserving components is valid even when the demand is
    /// over-approximated.
    fn utilization_is_exact(&self) -> bool {
        true
    }
}

impl Workload for TaskSet {
    fn demand_components(&self) -> Vec<DemandComponent> {
        self.iter().map(DemandComponent::from_task).collect()
    }

    fn append_components(&self, out: &mut Vec<DemandComponent>) {
        out.extend(self.iter().map(DemandComponent::from_task));
    }

    fn task_count(&self) -> usize {
        self.len()
    }

    fn is_empty(&self) -> bool {
        self.is_empty()
    }

    fn utilization(&self) -> f64 {
        self.utilization()
    }
}

impl Workload for Task {
    fn demand_components(&self) -> Vec<DemandComponent> {
        vec![DemandComponent::from_task(self)]
    }

    fn append_components(&self, out: &mut Vec<DemandComponent>) {
        out.push(DemandComponent::from_task(self));
    }

    fn task_count(&self) -> usize {
        1
    }
}

impl Workload for EventStreamTask {
    fn demand_components(&self) -> Vec<DemandComponent> {
        stream_task_components(self)
    }

    fn append_components(&self, out: &mut Vec<DemandComponent>) {
        tuple_components_into(self.wcet(), self.deadline(), self.stream().tuples(), out);
    }

    fn task_count(&self) -> usize {
        1
    }

    fn is_empty(&self) -> bool {
        false
    }

    fn utilization(&self) -> f64 {
        self.utilization()
    }
}

impl Workload for [EventStreamTask] {
    fn demand_components(&self) -> Vec<DemandComponent> {
        self.iter().flat_map(stream_task_components).collect()
    }

    fn append_components(&self, out: &mut Vec<DemandComponent>) {
        for task in self {
            task.append_components(out);
        }
    }

    fn task_count(&self) -> usize {
        self.len()
    }

    fn is_empty(&self) -> bool {
        self.is_empty()
    }
}

impl Workload for Vec<EventStreamTask> {
    fn demand_components(&self) -> Vec<DemandComponent> {
        self.as_slice().demand_components()
    }

    fn append_components(&self, out: &mut Vec<DemandComponent>) {
        self.as_slice().append_components(out);
    }

    fn task_count(&self) -> usize {
        self.len()
    }

    fn is_empty(&self) -> bool {
        self.is_empty()
    }
}

/// Decomposition of an event-stream task: one component per tuple.
///
/// `dbf(I) = C·η(I − D)` and `η` is the sum of the per-tuple event counts,
/// so tuple `(z, a)` becomes a component with cost `C`, first deadline
/// `a + D` and cycle `z` — the decomposition is exact, not an
/// approximation.
fn stream_task_components(task: &EventStreamTask) -> Vec<DemandComponent> {
    tuple_components(task.wcet(), task.deadline(), task.stream().tuples())
}

/// One component per event tuple / staircase step: cost `wcet`, first
/// deadline `offset + deadline`, the tuple's cycle.  Shared by the
/// event-stream and arrival-curve decompositions — keeping the mapping in
/// one place is what makes a converted task *analysis-equivalent*, not
/// just demand-equivalent.
fn tuple_components(wcet: Time, deadline: Time, tuples: &[EventTuple]) -> Vec<DemandComponent> {
    let mut out = Vec::with_capacity(tuples.len());
    tuple_components_into(wcet, deadline, tuples, &mut out);
    out
}

/// [`tuple_components`], appending into a caller-provided buffer.
fn tuple_components_into(
    wcet: Time,
    deadline: Time,
    tuples: &[EventTuple],
    out: &mut Vec<DemandComponent>,
) {
    out.extend(tuples.iter().map(|tuple| match tuple.cycle {
        Some(cycle) => DemandComponent::periodic_from(wcet, deadline, cycle, tuple.offset),
        None => DemandComponent::one_shot(wcet, deadline, tuple.offset),
    }));
}

impl Workload for ArrivalCurveTask {
    fn demand_components(&self) -> Vec<DemandComponent> {
        curve_task_components(self)
    }

    fn append_components(&self, out: &mut Vec<DemandComponent>) {
        curve_task_components_into(self, out);
    }

    fn task_count(&self) -> usize {
        1
    }

    fn is_empty(&self) -> bool {
        false
    }

    fn utilization(&self) -> f64 {
        self.utilization()
    }

    fn demand_is_exact(&self) -> bool {
        // Conservative mode substitutes the leaky-bucket envelope (when
        // one exists; otherwise it falls back to the exact staircase).
        self.decomposition() != CurveDecomposition::Conservative
            || self.curve().leaky_bucket_envelope().is_none()
    }

    fn utilization_is_exact(&self) -> bool {
        // The envelope rounds the inter-event distance down, inflating the
        // long-run rate.
        self.demand_is_exact()
    }
}

impl Workload for [ArrivalCurveTask] {
    fn demand_components(&self) -> Vec<DemandComponent> {
        self.iter().flat_map(curve_task_components).collect()
    }

    fn append_components(&self, out: &mut Vec<DemandComponent>) {
        for task in self {
            curve_task_components_into(task, out);
        }
    }

    fn task_count(&self) -> usize {
        self.len()
    }

    fn is_empty(&self) -> bool {
        self.is_empty()
    }

    fn utilization(&self) -> f64 {
        // Sum the tasks' true rates, not the (possibly envelope-inflated)
        // component utilization — matching the single-task impl.
        self.iter().map(ArrivalCurveTask::utilization).sum()
    }

    fn demand_is_exact(&self) -> bool {
        self.iter().all(Workload::demand_is_exact)
    }

    fn utilization_is_exact(&self) -> bool {
        self.iter().all(Workload::utilization_is_exact)
    }
}

impl Workload for Vec<ArrivalCurveTask> {
    fn demand_components(&self) -> Vec<DemandComponent> {
        self.as_slice().demand_components()
    }

    fn append_components(&self, out: &mut Vec<DemandComponent>) {
        self.as_slice().append_components(out);
    }

    fn task_count(&self) -> usize {
        self.len()
    }

    fn is_empty(&self) -> bool {
        self.is_empty()
    }

    fn utilization(&self) -> f64 {
        Workload::utilization(self.as_slice())
    }

    fn demand_is_exact(&self) -> bool {
        self.as_slice().demand_is_exact()
    }

    fn utilization_is_exact(&self) -> bool {
        self.as_slice().utilization_is_exact()
    }
}

/// Decomposition of an arrival-curve task.
///
/// In [`CurveDecomposition::Exact`] mode every staircase step of the curve
/// becomes one component — identical in structure to the event-stream
/// decomposition, so `dbf(I) = C·η⁺(I − D)` is reproduced exactly.  In
/// [`CurveDecomposition::Conservative`] mode the curve's leaky-bucket
/// envelope `(b, d)` is decomposed instead — `b` one-shot components at
/// offset 0 plus one periodic component of cycle `d` — which
/// over-approximates the demand (feasible verdicts stay sound; rejections
/// are demoted to unknown, see [`Workload::demand_is_exact`]) with `O(b)`
/// components regardless of the staircase size.  Falls back to the exact
/// decomposition when the curve has no envelope.
fn curve_task_components(task: &ArrivalCurveTask) -> Vec<DemandComponent> {
    let mut out = Vec::new();
    curve_task_components_into(task, &mut out);
    out
}

/// [`curve_task_components`], appending into a caller-provided buffer.
fn curve_task_components_into(task: &ArrivalCurveTask, out: &mut Vec<DemandComponent>) {
    if task.decomposition() == CurveDecomposition::Conservative {
        if let Some(envelope) = task.curve().leaky_bucket_envelope() {
            out.reserve(envelope.burst as usize + 1);
            for _ in 0..envelope.burst {
                out.push(DemandComponent::one_shot(
                    task.wcet(),
                    task.deadline(),
                    Time::ZERO,
                ));
            }
            out.push(DemandComponent::periodic_from(
                task.wcet(),
                task.deadline(),
                envelope.distance,
                envelope.distance,
            ));
            return;
        }
    }
    tuple_components_into(task.wcet(), task.deadline(), task.curve().steps(), out);
}

/// The **synchronous** decomposition of a transaction: all parts released
/// together at the window start, repeating every period (offsets dropped).
///
/// This over-approximates every critical-instant candidate — shifting a
/// part by a phase can only delay its deadlines — so it is a cheap
/// conservative stand-in for the exact per-candidate analysis in
/// [`crate::transactions`]: feasible verdicts are sound, and rejections
/// are demoted to unknown (see [`Workload::demand_is_exact`]).  It is
/// exact when all offsets are equal.
impl Workload for Transaction {
    fn demand_components(&self) -> Vec<DemandComponent> {
        self.parts()
            .iter()
            .map(|part| DemandComponent::periodic(part.wcet(), part.deadline(), self.period()))
            .collect()
    }

    fn append_components(&self, out: &mut Vec<DemandComponent>) {
        out.extend(
            self.parts()
                .iter()
                .map(|part| DemandComponent::periodic(part.wcet(), part.deadline(), self.period())),
        );
    }

    fn task_count(&self) -> usize {
        self.len()
    }

    fn is_empty(&self) -> bool {
        self.is_empty()
    }

    fn utilization(&self) -> f64 {
        self.utilization()
    }

    fn demand_is_exact(&self) -> bool {
        // With one shared offset every critical-instant candidate equals
        // the synchronous pattern, so dropping the offsets loses nothing.
        self.parts()
            .iter()
            .all(|p| p.offset() == self.parts()[0].offset())
    }
}

/// The synchronous conservative decomposition of a whole transaction
/// system (see the [`Transaction`] impl); exact candidate enumeration
/// lives in [`crate::transactions`].
impl Workload for TransactionSystem {
    fn demand_components(&self) -> Vec<DemandComponent> {
        let mut components = Vec::new();
        self.append_components(&mut components);
        components
    }

    fn append_components(&self, out: &mut Vec<DemandComponent>) {
        Workload::append_components(self.sporadic(), out);
        for transaction in self.transactions() {
            Workload::append_components(transaction, out);
        }
    }

    fn task_count(&self) -> usize {
        self.sporadic().len()
            + self
                .transactions()
                .iter()
                .map(Transaction::len)
                .sum::<usize>()
    }

    fn is_empty(&self) -> bool {
        self.sporadic().is_empty() && self.transactions().is_empty()
    }

    fn utilization(&self) -> f64 {
        self.utilization()
    }

    fn demand_is_exact(&self) -> bool {
        self.transactions().iter().all(Workload::demand_is_exact)
    }
}

/// Boxed workloads forward to their contents, letting heterogeneous
/// batches (sporadic + event-stream + arrival-curve in one `Vec`) flow
/// through [`crate::batch::analyze_many`] unchanged.
impl Workload for Box<dyn Workload + Send + Sync> {
    fn demand_components(&self) -> Vec<DemandComponent> {
        (**self).demand_components()
    }

    fn append_components(&self, out: &mut Vec<DemandComponent>) {
        (**self).append_components(out);
    }

    fn task_count(&self) -> usize {
        (**self).task_count()
    }

    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }

    fn utilization(&self) -> f64 {
        (**self).utilization()
    }

    fn dbf(&self, interval: Time) -> Time {
        (**self).dbf(interval)
    }

    fn rbf(&self, interval: Time) -> Time {
        (**self).rbf(interval)
    }

    fn next_demand_point(&self, interval: Time) -> Option<Time> {
        (**self).next_demand_point(interval)
    }

    fn demand_is_exact(&self) -> bool {
        (**self).demand_is_exact()
    }

    fn utilization_is_exact(&self) -> bool {
        (**self).utilization_is_exact()
    }
}

/// A system mixing sporadic tasks and event-stream activated tasks — the
/// "advanced task model" of §2/§3.6.
///
/// `MixedSystem` used to carry its own bespoke analysis loop; it is now an
/// ordinary [`Workload`] and every feasibility test of this crate applies.
/// The convenience methods ([`MixedSystem::analyze`], …) are thin wrappers
/// over the common path.
///
/// # Examples
///
/// ```
/// use edf_analysis::workload::MixedSystem;
/// use edf_analysis::Verdict;
/// use edf_model::{EventStream, EventStreamTask, Task, TaskSet, Time};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sporadic = TaskSet::from_tasks(vec![
///     Task::new(Time::new(2), Time::new(8), Time::new(10))?,
/// ]);
/// let burst = EventStreamTask::new(
///     EventStream::bursty(3, Time::new(5), Time::new(100)),
///     Time::new(4),
///     Time::new(20),
/// )?;
/// let system = MixedSystem::new(sporadic, vec![burst]);
/// assert!(edf_analysis::workload::Workload::utilization(&system) < 1.0);
/// assert_eq!(system.analyze().verdict, Verdict::Feasible);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MixedSystem {
    sporadic: TaskSet,
    stream_tasks: Vec<EventStreamTask>,
}

impl MixedSystem {
    /// Creates a mixed system from its sporadic and event-stream parts.
    #[must_use]
    pub fn new(sporadic: TaskSet, stream_tasks: Vec<EventStreamTask>) -> Self {
        MixedSystem {
            sporadic,
            stream_tasks,
        }
    }

    /// The sporadic part.
    #[must_use]
    pub fn sporadic(&self) -> &TaskSet {
        &self.sporadic
    }

    /// The event-stream part.
    #[must_use]
    pub fn stream_tasks(&self) -> &[EventStreamTask] {
        &self.stream_tasks
    }

    /// Long-run processor utilization of the whole system.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        Workload::utilization(self)
    }

    /// Total demand bound function of the system.
    #[must_use]
    pub fn demand(&self, interval: Time) -> Time {
        Workload::dbf(self, interval)
    }
}

impl Workload for MixedSystem {
    fn demand_components(&self) -> Vec<DemandComponent> {
        let mut components = Vec::new();
        self.append_components(&mut components);
        components
    }

    fn append_components(&self, out: &mut Vec<DemandComponent>) {
        Workload::append_components(&self.sporadic, out);
        self.stream_tasks.as_slice().append_components(out);
    }

    fn task_count(&self) -> usize {
        self.sporadic.len() + self.stream_tasks.len()
    }

    fn is_empty(&self) -> bool {
        self.sporadic.is_empty() && self.stream_tasks.is_empty()
    }

    fn utilization(&self) -> f64 {
        self.sporadic.utilization()
            + self
                .stream_tasks
                .iter()
                .map(EventStreamTask::utilization)
                .sum::<f64>()
    }
}

/// A [`Workload`] snapshot with all per-suite state computed once: the
/// component decomposition, the exact `U > 1` comparison, the feasibility
/// bounds of §4.3 and the deadline ordering.
///
/// Preparing is cheap (linear in the number of components; the bounds are
/// computed lazily on first use) and pays off as soon as a workload is
/// analyzed by more than one test — which is what every experiment in the
/// paper does.  `PreparedWorkload` is `Sync`, so one prepared instance can
/// be shared by the parallel batch front end ([`crate::batch`]).
#[derive(Debug)]
pub struct PreparedWorkload {
    components: Vec<DemandComponent>,
    task_count: usize,
    utilization: f64,
    exceeds_one: bool,
    demand_exact: bool,
    utilization_exact: bool,
    bounds: OnceLock<FeasibilityBounds>,
    deadline_order: OnceLock<Vec<usize>>,
    /// The columnar demand kernel (built lazily on the first demand
    /// query; see [`crate::kernel`]).
    kernel: OnceLock<DemandKernel>,
    /// When set, every demand query runs through the retained scalar
    /// array-of-structs path instead of the kernel — the equivalence
    /// oracle, see [`PreparedWorkload::scalar_reference`].
    pub(crate) scalar_demand: bool,
}

impl PreparedWorkload {
    /// Prepares `workload` for repeated analysis.
    #[must_use]
    pub fn new<W: Workload + ?Sized>(workload: &W) -> Self {
        let components = workload.demand_components();
        let task_count = workload.task_count();
        PreparedWorkload::from_parts(
            components,
            task_count,
            workload.demand_is_exact(),
            workload.utilization_is_exact(),
        )
    }

    /// Prepares a raw component list (advanced use: custom task models
    /// without a [`Workload`] implementation).  The components are taken
    /// to be the workload's exact demand.
    #[must_use]
    pub fn from_components(components: Vec<DemandComponent>) -> Self {
        let task_count = components.len();
        PreparedWorkload::from_parts(components, task_count, true, true)
    }

    pub(crate) fn from_parts(
        components: Vec<DemandComponent>,
        task_count: usize,
        demand_exact: bool,
        utilization_exact: bool,
    ) -> Self {
        let utilization = components.iter().map(DemandComponent::utilization).sum();
        let exceeds_one = components_exceed_one(&components);
        PreparedWorkload {
            components,
            task_count,
            utilization,
            exceeds_one,
            demand_exact,
            utilization_exact,
            bounds: OnceLock::new(),
            deadline_order: OnceLock::new(),
            kernel: OnceLock::new(),
            scalar_demand: false,
        }
    }

    /// Rebuilds this preparation **in place** for a different workload,
    /// reusing every buffer (component vector, deadline order, kernel
    /// columns) — the allocation-free path behind
    /// [`crate::batch::analyze_many`], where one recycled preparation per
    /// worker serves the whole batch.  Observable state is identical to
    /// `PreparedWorkload::new(workload)`.
    #[must_use]
    pub fn recycled<W: Workload + ?Sized>(mut self, workload: &W) -> PreparedWorkload {
        self.components.clear();
        workload.append_components(&mut self.components);
        self.task_count = workload.task_count();
        self.demand_exact = workload.demand_is_exact();
        self.utilization_exact = workload.utilization_is_exact();
        self.utilization = self
            .components
            .iter()
            .map(DemandComponent::utilization)
            .sum();
        self.exceeds_one = components_exceed_one(&self.components);
        self.scalar_demand = false;
        self.bounds.take();
        // The previous workload's cached order and kernel are stale either
        // way; rebuild them into their existing allocations only when a
        // demand query can actually run (every test rejects `U > 1`
        // workloads before touching the demand, so eager work there would
        // be pure waste — the lazy path handles the off-chance query).
        let order = self.deadline_order.take();
        let kernel = self.kernel.take();
        if !self.exceeds_one {
            let mut order = order.unwrap_or_default();
            order.clear();
            order.extend(0..self.components.len());
            order.sort_by_key(|&i| self.components[i].first_deadline());
            let mut kernel = kernel.unwrap_or_default();
            kernel.rebuild(&self.components, &order);
            let _ = self.deadline_order.set(order);
            let _ = self.kernel.set(kernel);
        }
        self
    }

    /// A copy of this preparation that answers every demand query (`dbf`,
    /// `last_deadline_below`, the event merge, the combined QPA step)
    /// through the retained **scalar** array-of-structs path instead of
    /// the columnar kernel.
    ///
    /// This is the reference oracle of the kernel rebuild: analyses of the
    /// two preparations must be bit-identical — verdicts, iteration
    /// counts, examined intervals and overload witnesses — which the
    /// `kernel_equivalence` property tests assert across every workload
    /// family.  Use the kernel path for real work; the oracle re-runs the
    /// pre-kernel inner loops and exists for validation and benchmarking.
    #[must_use]
    pub fn scalar_reference(&self) -> PreparedWorkload {
        let mut oracle = PreparedWorkload::from_parts(
            self.components.clone(),
            self.task_count,
            self.demand_exact,
            self.utilization_exact,
        );
        oracle.scalar_demand = true;
        oracle
    }

    /// `false` when the component decomposition over-approximates the
    /// source workload's demand (see [`Workload::demand_is_exact`]):
    /// feasible verdicts remain sound, but rejections are demoted to
    /// unknown by
    /// [`FeasibilityTest::analyze_prepared`](crate::FeasibilityTest::analyze_prepared).
    #[must_use]
    pub fn demand_is_exact(&self) -> bool {
        self.demand_exact
    }

    /// `true` when the components' long-run utilization equals the source
    /// workload's (see [`Workload::utilization_is_exact`]); a `U > 1`
    /// rejection then stands even for over-approximated demand.
    #[must_use]
    pub fn utilization_is_exact(&self) -> bool {
        self.utilization_exact
    }

    /// The component decomposition.
    #[must_use]
    pub fn components(&self) -> &[DemandComponent] {
        &self.components
    }

    /// Number of user-visible tasks of the source workload.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.task_count
    }

    /// `true` if the workload has no components.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Long-run utilization as `f64`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Exact (integer arithmetic) test whether the long-run utilization
    /// exceeds 1 — the trivial necessary condition of every test.
    #[must_use]
    pub fn utilization_exceeds_one(&self) -> bool {
        self.exceeds_one
    }

    /// Total demand bound function — answered by the columnar kernel (one
    /// binary search into the sorted deadline column, a one-shot
    /// prefix-sum lookup, and a tight loop over the periodic columns; see
    /// [`crate::kernel`]); the scalar fold survives behind
    /// [`PreparedWorkload::scalar_reference`].
    #[must_use]
    pub fn dbf(&self, interval: Time) -> Time {
        if self.scalar_demand {
            return self
                .components
                .iter()
                .fold(Time::ZERO, |acc, c| acc.saturating_add(c.dbf(interval)));
        }
        self.kernel().dbf(interval)
    }

    /// Batched demand bound function: fills `out` with `dbf(interval)`
    /// for every entry of `intervals`, in order — bit-identical to calling
    /// [`PreparedWorkload::dbf`] once per interval, but evaluated
    /// column-major in interval blocks so every kernel column load is
    /// shared across the block (see [`DemandKernel::dbf_many`]).  `out` is
    /// cleared first; callers reuse the buffer across batches.
    pub fn dbf_many(&self, intervals: &[Time], out: &mut Vec<Time>) {
        if self.scalar_demand {
            out.clear();
            out.extend(intervals.iter().map(|&interval| self.dbf(interval)));
            return;
        }
        self.kernel().dbf_many(intervals, out);
    }

    /// The demand of a single component at `interval` — the refining
    /// tests' withdrawal evaluation, answered by a kernel column gather
    /// (reciprocal multiply instead of a hardware division) on the kernel
    /// path and by [`DemandComponent::dbf`] on the scalar oracle.
    #[must_use]
    pub(crate) fn component_demand(&self, component: usize, interval: Time) -> Time {
        if self.scalar_demand {
            return self.components[component].dbf(interval);
        }
        self.kernel().component_demand(component, interval)
    }

    /// The precomputed reciprocal of a component's period (`None` for
    /// one-shots) — gathered once per refining analysis so the frontier
    /// steps deadlines and re-approximates terms without dividing.  Served
    /// from the kernel columns on the kernel path; the scalar oracle
    /// computes it directly rather than forcing a kernel build.
    #[must_use]
    pub(crate) fn component_reciprocal(&self, component: usize) -> Option<Reciprocal> {
        if self.scalar_demand {
            let period = self.components[component].period()?;
            return Some(Reciprocal::new(period.as_u64()));
        }
        self.kernel().period_reciprocal(component)
    }

    /// The columnar demand kernel of this preparation, built on first use
    /// from the cached deadline order and reused by every demand query.
    pub fn kernel(&self) -> &DemandKernel {
        self.kernel.get_or_init(|| {
            let mut kernel = DemandKernel::default();
            kernel.rebuild(&self.components, self.deadline_order());
            kernel
        })
    }

    /// Total request bound function.
    #[must_use]
    pub fn rbf(&self, interval: Time) -> Time {
        self.components
            .iter()
            .fold(Time::ZERO, |acc, c| acc.saturating_add(c.rbf(interval)))
    }

    /// The feasibility bounds of §4.3, computed on first use and cached.
    pub fn bounds(&self) -> &FeasibilityBounds {
        self.bounds
            .get_or_init(|| FeasibilityBounds::for_components(&self.components))
    }

    /// Populates the bound cache with the cold (unseeded) computation —
    /// crate-internal, used by [`crate::sensitivity::reference`] so the
    /// from-scratch baseline pays the pre-incremental preparation cost
    /// (the values are identical either way).
    pub(crate) fn prime_cold_bounds(&self) {
        let _ = self
            .bounds
            .get_or_init(|| FeasibilityBounds::for_components_cold(&self.components));
    }

    /// The tightest cached feasibility bound (see
    /// [`FeasibilityBounds::analysis_horizon`]).
    #[must_use]
    pub fn analysis_horizon(&self) -> Option<Time> {
        self.bounds().analysis_horizon()
    }

    /// Smallest first deadline over all components.
    #[must_use]
    pub fn min_first_deadline(&self) -> Option<Time> {
        self.components
            .iter()
            .map(DemandComponent::first_deadline)
            .min()
    }

    /// Largest first deadline over all components.
    #[must_use]
    pub fn max_first_deadline(&self) -> Option<Time> {
        self.components
            .iter()
            .map(DemandComponent::first_deadline)
            .max()
    }

    /// Component indices sorted by non-decreasing first deadline (cached;
    /// the order Devi's test and `SuperPos` iterate in).
    #[must_use]
    pub fn deadline_order(&self) -> &[usize] {
        self.deadline_order.get_or_init(|| {
            let mut order: Vec<usize> = (0..self.components.len()).collect();
            order.sort_by_key(|&i| self.components[i].first_deadline());
            order
        })
    }

    /// Merged stream of all job deadlines `≤ horizon` in ascending order
    /// (per-job events; see [`PreparedWorkload::demand_steps`] for the
    /// coalesced form the processor-demand walk consumes).
    #[must_use]
    pub fn demand_events(&self, horizon: Time) -> DemandEventIter {
        DemandEventIter::new(&self.components, horizon)
    }

    /// Coalesced demand steps `≤ horizon`: one `(interval, demand
    /// increment)` pair per **distinct** job deadline, merged through the
    /// scratch's reusable loser tree (or the scalar-oracle heap walk for a
    /// [`PreparedWorkload::scalar_reference`] preparation).
    #[must_use]
    pub fn demand_steps<'a>(
        &'a self,
        horizon: Time,
        scratch: &'a mut AnalysisScratch,
    ) -> DemandSteps<'a> {
        if self.scalar_demand {
            return DemandSteps::scalar(&self.components, horizon);
        }
        scratch.merge.init(&self.components, horizon);
        DemandSteps::from_tree(&mut scratch.merge)
    }

    /// The largest job deadline (over all components) strictly below
    /// `limit`, or `None` — the step function of the QPA test, answered
    /// from the kernel's sorted columns instead of a full component scan.
    #[must_use]
    pub fn last_deadline_below(&self, limit: Time) -> Option<Time> {
        if self.scalar_demand {
            return self
                .components
                .iter()
                .filter_map(|c| c.last_deadline_below(limit))
                .max();
        }
        self.kernel().last_deadline_below(limit)
    }

    /// The combined QPA step query: `dbf(interval)` and the largest job
    /// deadline strictly below `interval`, in **one** pass over the
    /// kernel columns (see [`DemandKernel::demand_and_predecessor`]).
    #[must_use]
    pub fn demand_and_predecessor(&self, interval: Time) -> (Time, Option<Time>) {
        if self.scalar_demand {
            return (self.dbf(interval), self.last_deadline_below(interval));
        }
        self.kernel().demand_and_predecessor(interval)
    }

    /// A copy with every component's cost scaled by `numer/denom` (per
    /// [`DemandComponent::scaled_wcet`]: rounded up, clamped to the period,
    /// zero-cost components representable) — the from-scratch workhorse of
    /// the sensitivity searches.  Search loops that probe many scalings of
    /// one workload should prefer a
    /// [`ScaledView`](crate::incremental::ScaledView), which produces the
    /// same prepared state without re-preparing per probe.
    ///
    /// # Panics
    ///
    /// Panics if `denom` is zero.
    #[must_use]
    pub fn with_scaled_wcets(&self, numer: u64, denom: u64) -> PreparedWorkload {
        assert!(denom > 0, "scaling denominator must be positive");
        let components = self
            .components
            .iter()
            .map(|c| DemandComponent {
                wcet: c.scaled_wcet(numer, denom),
                ..*c
            })
            .collect();
        let mut scaled = PreparedWorkload::from_parts(
            components,
            self.task_count,
            self.demand_exact,
            self.utilization_exact,
        );
        scaled.scalar_demand = self.scalar_demand;
        scaled
    }

    /// The long-run utilization of the scaled copy
    /// `with_scaled_wcets(numer, denom)` without building it (the
    /// summation order matches a real preparation, so the value is
    /// identical bit for bit).
    ///
    /// # Panics
    ///
    /// Panics if `denom` is zero.
    #[must_use]
    pub fn scaled_utilization(&self, numer: u64, denom: u64) -> f64 {
        self.components
            .iter()
            .map(|c| match c.period {
                Some(period) => c.scaled_wcet(numer, denom).as_f64() / period.as_f64(),
                None => 0.0,
            })
            .sum()
    }

    /// Rewrites the cost of component `index` (crate-internal: only the
    /// [`ScaledView`](crate::incremental::ScaledView) refresh path may
    /// mutate a prepared workload, and it restores the cached aggregates
    /// via [`PreparedWorkload::install_refreshed_state`] afterwards).
    ///
    /// When the kernel is already built the rewrite is **also** a plain
    /// column write — deadlines, periods and the sort order are invariant
    /// under WCET changes, so the columns stay valid across probes.
    pub(crate) fn set_wcet_at(&mut self, index: usize, wcet: Time) {
        self.components[index].set_wcet(wcet);
        if let Some(kernel) = self.kernel.get_mut() {
            kernel.set_wcet(index, wcet);
        }
    }

    /// Installs the aggregates matching the current (mutated) component
    /// list: utilization, the exact `U > 1` comparison and — when already
    /// computed by the caller — the feasibility bounds.  Passing `None`
    /// for `bounds` leaves the lazy [`OnceLock`] empty, so a later
    /// [`PreparedWorkload::bounds`] call falls back to the cold
    /// computation (used when a probe's utilization already exceeds one
    /// and no test will read the bounds).  The deadline order is left
    /// untouched: it only depends on the scale-invariant first deadlines.
    pub(crate) fn install_refreshed_state(
        &mut self,
        utilization: f64,
        exceeds_one: bool,
        bounds: Option<FeasibilityBounds>,
    ) {
        self.utilization = utilization;
        self.exceeds_one = exceeds_one;
        self.bounds.take();
        if let Some(bounds) = bounds {
            let _ = self.bounds.set(bounds);
        }
        if let Some(kernel) = self.kernel.get_mut() {
            kernel.refresh_after_rewrite();
        }
    }

    /// Seeds the cached deadline order (crate-internal: lets a
    /// [`ScaledView`](crate::incremental::ScaledView) share the base
    /// workload's sorted order instead of re-sorting, which is valid
    /// because WCET changes never move a deadline).
    pub(crate) fn seed_deadline_order(&mut self, order: Vec<usize>) {
        let _ = self.deadline_order.set(order);
    }

    /// Overwrites component `index` wholesale (crate-internal: the
    /// [`CandidateView`](crate::candidates::CandidateView) block-patch
    /// path).  The caller must preserve the component's cost and period —
    /// only the timing (offset/first deadline) may move, which keeps the
    /// cached utilization and the exact `U > 1` comparison valid — and must
    /// call [`PreparedWorkload::install_retimed_state`] before the next
    /// demand query (the deadline order, kernel columns and bounds are
    /// stale until then).
    pub(crate) fn write_component_at(&mut self, index: usize, component: DemandComponent) {
        debug_assert_eq!(self.components[index].wcet(), component.wcet());
        debug_assert_eq!(self.components[index].period(), component.period());
        self.components[index] = component;
    }

    /// Takes the cached deadline order out of the preparation (empty when
    /// never computed), so a retiming caller can repair it in place without
    /// reallocating; pair with [`PreparedWorkload::install_retimed_state`].
    pub(crate) fn take_deadline_order(&mut self) -> Vec<usize> {
        self.deadline_order.take().unwrap_or_default()
    }

    /// Installs the state matching the current (re-timed) component list
    /// after a batch of [`PreparedWorkload::write_component_at`] writes:
    /// `order` must be the stable ascending-first-deadline index order of
    /// the components, the kernel columns are rebuilt from it into their
    /// existing allocations (re-using `reciprocals` — the per-component
    /// period reciprocals, invariant under re-timing — when the caller
    /// provides them), and the §4.3 bounds are replaced (`None` leaves the
    /// lazy cold path to answer a later [`PreparedWorkload::bounds`]
    /// call).  Utilization and the `U > 1` comparison are untouched —
    /// re-phasing never moves a cost or period.
    pub(crate) fn install_retimed_state(
        &mut self,
        order: Vec<usize>,
        bounds: Option<FeasibilityBounds>,
        reciprocals: Option<&[crate::arith::Reciprocal]>,
    ) {
        debug_assert!(order.len() == self.components.len());
        debug_assert!(order.windows(2).all(|w| {
            let (a, b) = (&self.components[w[0]], &self.components[w[1]]);
            a.first_deadline() < b.first_deadline()
                || (a.first_deadline() == b.first_deadline() && w[0] < w[1])
        }));
        let mut kernel = self.kernel.take().unwrap_or_default();
        match reciprocals {
            Some(cache) => kernel.rebuild_with_reciprocals(&self.components, &order, cache),
            None => kernel.rebuild(&self.components, &order),
        }
        let _ = self.kernel.set(kernel);
        self.deadline_order.take();
        let _ = self.deadline_order.set(order);
        self.bounds.take();
        if let Some(bounds) = bounds {
            let _ = self.bounds.set(bounds);
        }
    }

    /// Allocated capacity of the component column (crate-internal: the
    /// buffer-reuse assertions of the edit tests).
    #[cfg(test)]
    pub(crate) fn component_capacity(&self) -> usize {
        self.components.capacity()
    }

    /// Inserts `component` at `index`, shifting the suffix up
    /// (crate-internal: the [`EditView`](crate::incremental::EditView)
    /// structural-edit path).  Every derived state — utilization, the
    /// `U > 1` comparison, order, kernel, bounds — is stale afterwards;
    /// the caller must install it via
    /// [`PreparedWorkload::install_edited_state`] before the next query.
    pub(crate) fn insert_component_at(&mut self, index: usize, component: DemandComponent) {
        self.components.insert(index, component);
    }

    /// Removes and returns the component at `index`, shifting the suffix
    /// down (crate-internal, see
    /// [`PreparedWorkload::insert_component_at`]).  Shrinking edits
    /// **reuse** the column capacity — the debug assertion pins the
    /// `recycled`-style buffer-reuse contract: an admission service
    /// cycling through admit/evict sequences must not churn the
    /// allocator.
    pub(crate) fn remove_component_at(&mut self, index: usize) -> DemandComponent {
        let capacity = self.components.capacity();
        let removed = self.components.remove(index);
        debug_assert_eq!(
            self.components.capacity(),
            capacity,
            "a shrinking edit must reuse the component column's capacity"
        );
        removed
    }

    /// Replaces the component at `index` wholesale, returning the old one
    /// (crate-internal, see [`PreparedWorkload::insert_component_at`];
    /// unlike [`PreparedWorkload::write_component_at`] the cost and
    /// period may change, which is why every derived aggregate is stale
    /// until [`PreparedWorkload::install_edited_state`]).
    pub(crate) fn replace_component_at(
        &mut self,
        index: usize,
        component: DemandComponent,
    ) -> DemandComponent {
        let capacity = self.components.capacity();
        let old = std::mem::replace(&mut self.components[index], component);
        debug_assert_eq!(
            self.components.capacity(),
            capacity,
            "an in-place replacement must not touch the component column's capacity"
        );
        old
    }

    /// Installs the state matching the current component list after a
    /// batch of structural edits ([`PreparedWorkload::insert_component_at`]
    /// / [`PreparedWorkload::remove_component_at`] /
    /// [`PreparedWorkload::replace_component_at`]): the superset of
    /// [`PreparedWorkload::install_refreshed_state`] (utilization and the
    /// exact `U > 1` comparison moved) and
    /// [`PreparedWorkload::install_retimed_state`] (order and kernel
    /// layout moved), plus the task count.  `order` must be the stable
    /// ascending-`(first deadline, index)` order of the components; the
    /// kernel columns are rebuilt from it into their existing allocations
    /// re-using the caller's per-component period `reciprocals`; `None`
    /// bounds leave the lazy cold path to answer a later
    /// [`PreparedWorkload::bounds`] call.
    pub(crate) fn install_edited_state(
        &mut self,
        task_count: usize,
        utilization: f64,
        exceeds_one: bool,
        order: Vec<usize>,
        bounds: Option<FeasibilityBounds>,
        reciprocals: &[crate::arith::Reciprocal],
    ) {
        debug_assert_eq!(order.len(), self.components.len());
        debug_assert!(order.windows(2).all(|w| {
            let (a, b) = (&self.components[w[0]], &self.components[w[1]]);
            a.first_deadline() < b.first_deadline()
                || (a.first_deadline() == b.first_deadline() && w[0] < w[1])
        }));
        self.task_count = task_count;
        self.utilization = utilization;
        self.exceeds_one = exceeds_one;
        let mut kernel = self.kernel.take().unwrap_or_default();
        kernel.rebuild_with_reciprocals(&self.components, &order, reciprocals);
        let _ = self.kernel.set(kernel);
        self.deadline_order.take();
        let _ = self.deadline_order.set(order);
        self.bounds.take();
        if let Some(bounds) = bounds {
            let _ = self.bounds.set(bounds);
        }
    }
}

impl Workload for PreparedWorkload {
    fn demand_components(&self) -> Vec<DemandComponent> {
        self.components.clone()
    }

    fn task_count(&self) -> usize {
        self.task_count
    }

    fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    fn utilization(&self) -> f64 {
        self.utilization
    }

    fn dbf(&self, interval: Time) -> Time {
        PreparedWorkload::dbf(self, interval)
    }

    fn rbf(&self, interval: Time) -> Time {
        PreparedWorkload::rbf(self, interval)
    }

    fn demand_is_exact(&self) -> bool {
        self.demand_exact
    }

    fn utilization_is_exact(&self) -> bool {
        self.utilization_exact
    }
}

/// Exact `Σ Cᵢ/Tᵢ > 1` over the periodic components (one-shots have no
/// long-run rate), evaluated with the crate's rational arithmetic and
/// without allocation (this runs once per sensitivity probe).
pub(crate) fn components_exceed_one(components: &[DemandComponent]) -> bool {
    !fracs_le_integer_iter(
        components
            .iter()
            .filter_map(|c| c.period.map(|p| (c.wcet.as_u128(), p.as_u128()))),
        1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{dbf_set, rbf_set};
    use edf_model::EventStream;

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    fn burst(count: u64, inner: u64, outer: u64, c: u64, d: u64) -> EventStreamTask {
        EventStreamTask::new(
            EventStream::bursty(count, Time::new(inner), Time::new(outer)),
            Time::new(c),
            Time::new(d),
        )
        .expect("valid event stream task")
    }

    #[test]
    fn task_set_components_reproduce_dbf_and_rbf() {
        let ts = TaskSet::from_tasks(vec![t(1, 2, 4), t(2, 6, 8), t(3, 10, 20)]);
        let prepared = PreparedWorkload::new(&ts);
        assert_eq!(prepared.components().len(), 3);
        for i in 0..120u64 {
            let i = Time::new(i);
            assert_eq!(prepared.dbf(i), dbf_set(&ts, i), "dbf at {i}");
            assert_eq!(prepared.rbf(i), rbf_set(&ts, i), "rbf at {i}");
        }
        assert!(!prepared.utilization_exceeds_one());
        assert!((prepared.utilization() - ts.utilization()).abs() < 1e-12);
    }

    #[test]
    fn stream_task_components_reproduce_stream_dbf() {
        let task = burst(3, 5, 100, 4, 20);
        let prepared = PreparedWorkload::new(&task);
        assert_eq!(prepared.components().len(), 3);
        assert_eq!(prepared.task_count(), 1);
        for i in 0..400u64 {
            let i = Time::new(i);
            assert_eq!(prepared.dbf(i), task.dbf(i), "dbf at {i}");
        }
        assert!((prepared.utilization() - task.utilization()).abs() < 1e-12);
    }

    #[test]
    fn one_shot_tuple_contributes_once() {
        let stream = EventStream::new(vec![
            edf_model::EventTuple::periodic(Time::new(50), Time::ZERO),
            edf_model::EventTuple::single(Time::new(7)),
        ])
        .unwrap();
        let task = EventStreamTask::new(stream, Time::new(3), Time::new(10)).unwrap();
        let prepared = PreparedWorkload::new(&task);
        for i in 0..300u64 {
            let i = Time::new(i);
            assert_eq!(prepared.dbf(i), task.dbf(i), "dbf at {i}");
        }
        // The one-shot component saturates.
        let one_shot = prepared
            .components()
            .iter()
            .find(|c| c.period().is_none())
            .expect("one-shot present");
        assert_eq!(one_shot.first_deadline(), Time::new(17));
        assert_eq!(one_shot.dbf(Time::new(1_000)), Time::new(3));
        assert_eq!(one_shot.next_deadline_after(Time::new(17)), None);
        assert_eq!(one_shot.max_test_interval(9), Time::new(17));
    }

    #[test]
    fn mixed_system_components_are_the_union() {
        let system = MixedSystem::new(
            TaskSet::from_tasks(vec![t(1, 5, 20)]),
            vec![burst(2, 3, 50, 2, 10)],
        );
        let prepared = PreparedWorkload::new(&system);
        assert_eq!(prepared.components().len(), 1 + 2);
        assert_eq!(prepared.task_count(), 2);
        for i in 0..200u64 {
            let i = Time::new(i);
            assert_eq!(prepared.dbf(i), system.demand(i));
        }
    }

    #[test]
    fn demand_events_are_sorted_and_complete() {
        let system = MixedSystem::new(
            TaskSet::from_tasks(vec![t(1, 5, 20)]),
            vec![burst(2, 3, 50, 2, 10)],
        );
        let prepared = PreparedWorkload::new(&system);
        let horizon = Time::new(70);
        let events: Vec<DemandEvent> = prepared.demand_events(horizon).collect();
        for pair in events.windows(2) {
            assert!(pair[0].interval <= pair[1].interval);
        }
        // Demand increases exactly at the event intervals.
        let intervals: Vec<Time> = events.iter().map(|e| e.interval).collect();
        for i in 1..=horizon.as_u64() {
            let i = Time::new(i);
            let grew = prepared.dbf(i) > prepared.dbf(i - Time::ONE);
            assert_eq!(grew, intervals.contains(&i), "at {i}");
        }
        // Expected stream deadlines: events at 0, 3, 50, 53 offset by 10.
        for expected in [5u64, 25, 45, 65, 10, 13, 60, 63] {
            assert!(
                intervals.contains(&Time::new(expected)),
                "missing {expected}"
            );
        }
    }

    #[test]
    fn next_demand_point_matches_event_enumeration() {
        let ts = TaskSet::from_tasks(vec![t(1, 3, 5), t(1, 4, 10)]);
        // deadlines: 3, 4, 8, 13, 14, 18, ...
        assert_eq!(ts.next_demand_point(Time::ZERO), Some(Time::new(3)));
        assert_eq!(ts.next_demand_point(Time::new(3)), Some(Time::new(4)));
        assert_eq!(ts.next_demand_point(Time::new(4)), Some(Time::new(8)));
        assert_eq!(ts.next_demand_point(Time::new(8)), Some(Time::new(13)));
    }

    #[test]
    fn last_deadline_below_matches_enumeration() {
        let ts = TaskSet::from_tasks(vec![t(1, 3, 5), t(1, 4, 10)]);
        let prepared = PreparedWorkload::new(&ts);
        assert_eq!(
            prepared.last_deadline_below(Time::new(25)),
            Some(Time::new(24))
        );
        assert_eq!(
            prepared.last_deadline_below(Time::new(24)),
            Some(Time::new(23))
        );
        assert_eq!(
            prepared.last_deadline_below(Time::new(14)),
            Some(Time::new(13))
        );
        assert_eq!(
            prepared.last_deadline_below(Time::new(4)),
            Some(Time::new(3))
        );
        assert_eq!(prepared.last_deadline_below(Time::new(3)), None);
    }

    #[test]
    fn exact_utilization_comparison() {
        let full = PreparedWorkload::new(&TaskSet::from_tasks(vec![t(1, 2, 2), t(2, 4, 4)]));
        assert!(!full.utilization_exceeds_one());
        let over = PreparedWorkload::new(&TaskSet::from_tasks(vec![
            t(1, 2, 2),
            t(2, 4, 4),
            t(1, 9, 9),
        ]));
        assert!(over.utilization_exceeds_one());
    }

    #[test]
    fn deadline_order_is_sorted_and_stable() {
        let ts = TaskSet::from_tasks(vec![t(2, 20, 40), t(1, 3, 9), t(1, 7, 14), t(1, 3, 5)]);
        let prepared = PreparedWorkload::new(&ts);
        let order = prepared.deadline_order();
        assert_eq!(order.len(), 4);
        for pair in order.windows(2) {
            let a = prepared.components()[pair[0]].first_deadline();
            let b = prepared.components()[pair[1]].first_deadline();
            assert!(a <= b);
        }
        // Stable: the two deadline-3 tasks keep their input order.
        assert_eq!(&order[..2], &[1, 3]);
    }

    #[test]
    fn scaled_wcets_clamp_to_period() {
        let ts = TaskSet::from_tasks(vec![t(2, 8, 10)]);
        let prepared = PreparedWorkload::new(&ts);
        let doubled = prepared.with_scaled_wcets(2_000, 1_000);
        assert_eq!(doubled.components()[0].wcet(), Time::new(4));
        let huge = prepared.with_scaled_wcets(1_000_000, 1_000);
        assert_eq!(huge.components()[0].wcet(), Time::new(10));
        // Ceiling rounding: any positive scaling of a positive cost stays
        // at least one tick.
        let tiny = prepared.with_scaled_wcets(1, 1_000);
        assert_eq!(tiny.components()[0].wcet(), Time::ONE);
    }

    #[test]
    fn scaled_wcets_keep_zero_costs_representable() {
        // Regression test for the former `.max(Time::ONE)` floor, which
        // silently inflated zero scalings (and zero-cost components) to one
        // tick and thereby distorted reported breakdown utilizations.
        let ts = TaskSet::from_tasks(vec![t(2, 8, 10), t(1, 4, 5)]);
        let prepared = PreparedWorkload::new(&ts);
        let zeroed = prepared.with_scaled_wcets(0, 1_000);
        assert!(zeroed.components().iter().all(|c| c.wcet().is_zero()));
        assert_eq!(zeroed.utilization(), 0.0);
        assert!(!zeroed.utilization_exceeds_one());
        assert_eq!(zeroed.dbf(Time::new(1_000)), Time::ZERO);
        // Zero-cost components flow through every registered test.
        for test in crate::all_tests() {
            assert!(
                !test.analyze_prepared(&zeroed).verdict.is_infeasible(),
                "{} rejected a zero-demand workload",
                test.name()
            );
        }
        // A zero-cost component stays zero under any scaling instead of
        // being inflated to a tick.
        let with_zero = PreparedWorkload::from_components(vec![
            DemandComponent::periodic(Time::ZERO, Time::new(4), Time::new(10)),
            DemandComponent::periodic(Time::new(2), Time::new(8), Time::new(10)),
        ]);
        let scaled = with_zero.with_scaled_wcets(3_000, 1_000);
        assert_eq!(scaled.components()[0].wcet(), Time::ZERO);
        assert_eq!(scaled.components()[1].wcet(), Time::new(6));
        // And the per-component helper agrees.
        assert_eq!(
            with_zero.components()[0].scaled_wcet(5_000, 1_000),
            Time::ZERO
        );
    }

    #[test]
    fn demand_exactness_is_tracked_per_model() {
        use edf_model::{AffineSegment, ArrivalCurve, ArrivalCurveTask, TransactionPart};

        let ts = TaskSet::from_tasks(vec![t(1, 4, 8)]);
        assert!(Workload::demand_is_exact(&ts));
        assert!(PreparedWorkload::new(&ts).demand_is_exact());

        let curve =
            ArrivalCurve::from_affine_segments(&[AffineSegment::new(2, Time::new(10))]).unwrap();
        let exact = ArrivalCurveTask::new(curve, Time::new(1), Time::new(5)).unwrap();
        assert!(exact.demand_is_exact());
        let conservative = exact.clone().conservative();
        assert!(!conservative.demand_is_exact());
        assert!(!PreparedWorkload::new(&conservative).demand_is_exact());
        // A one-shot-only curve has no envelope: conservative mode falls
        // back to the exact decomposition and stays exact.
        let one_shot = ArrivalCurveTask::new(
            ArrivalCurve::new(vec![edf_model::EventTuple::single(Time::new(3))]).unwrap(),
            Time::new(1),
            Time::new(5),
        )
        .unwrap()
        .conservative();
        assert!(one_shot.demand_is_exact());

        let part = |o, c, d| TransactionPart::new(Time::new(o), Time::new(c), Time::new(d));
        let offset_free =
            Transaction::new(Time::new(10), vec![part(0, 1, 3), part(0, 2, 5)]).unwrap();
        assert!(offset_free.demand_is_exact());
        let offset = Transaction::new(Time::new(10), vec![part(0, 1, 3), part(4, 2, 5)]).unwrap();
        assert!(!offset.demand_is_exact());
        let system = TransactionSystem::new(TaskSet::new(), vec![offset]);
        assert!(!Workload::demand_is_exact(&system));
        let boxed: Box<dyn Workload + Send + Sync> = Box::new(system);
        assert!(!boxed.demand_is_exact());
        // Scaling preserves the flag.
        assert!(!PreparedWorkload::new(&boxed)
            .with_scaled_wcets(2, 1)
            .demand_is_exact());
    }

    #[test]
    fn rbf_of_offset_component_counts_releases() {
        let c =
            DemandComponent::periodic_from(Time::new(2), Time::new(4), Time::new(10), Time::new(3));
        // Releases at 3, 13, 23, ... (half-open window [0, I)).
        assert_eq!(c.rbf(Time::ZERO), Time::ZERO);
        assert_eq!(c.rbf(Time::new(3)), Time::ZERO);
        assert_eq!(c.rbf(Time::new(4)), Time::new(2));
        assert_eq!(c.rbf(Time::new(13)), Time::new(2));
        assert_eq!(c.rbf(Time::new(14)), Time::new(4));
        // And the deadline is shifted by the offset.
        assert_eq!(c.first_deadline(), Time::new(7));
    }
}
