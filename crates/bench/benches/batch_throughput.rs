//! Benchmark of the `edf_analysis::batch` front end: task sets analyzed
//! per second through `analyze_many`, serial vs. parallel, plus the cost
//! of preparation itself — the perf-trajectory baseline for batch-scale
//! experiment runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use edf_analysis::batch::{analyze_many, analyze_many_serial, prepare_many, BoxedTest};
use edf_analysis::tests::{AllApproximatedTest, DynamicErrorTest, ProcessorDemandTest, QpaTest};
use edf_bench::utilization_fixture;

fn exact_suite() -> Vec<BoxedTest> {
    vec![
        Box::new(DynamicErrorTest::new()),
        Box::new(AllApproximatedTest::new()),
        Box::new(QpaTest::new()),
        Box::new(ProcessorDemandTest::new()),
    ]
}

fn bench_batch_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for &batch_size in &[16usize, 64] {
        let sets = utilization_fixture(95, batch_size);
        let tests = exact_suite();
        group.bench_with_input(BenchmarkId::new("serial", batch_size), &sets, |b, sets| {
            b.iter(|| analyze_many_serial(sets, &tests).len())
        });
        group.bench_with_input(
            BenchmarkId::new("parallel", batch_size),
            &sets,
            |b, sets| b.iter(|| analyze_many(sets, &tests).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("prepare_only", batch_size),
            &sets,
            |b, sets| b.iter(|| prepare_many(sets).len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_throughput);
criterion_main!(benches);
