//! Benchmark counterpart of Table 1: wall-clock time of every test on the
//! literature task sets (Burns, Ma & Shin, GAP, Gresser 1, Gresser 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use edf_analysis::tests::{AllApproximatedTest, DeviTest, DynamicErrorTest, ProcessorDemandTest};
use edf_analysis::FeasibilityTest;
use edf_model::literature;

fn bench_literature(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_literature");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    let tests: Vec<(String, Box<dyn FeasibilityTest>)> = vec![
        ("devi".to_owned(), Box::new(DeviTest::new())),
        ("dynamic".to_owned(), Box::new(DynamicErrorTest::new())),
        (
            "all_approximated".to_owned(),
            Box::new(AllApproximatedTest::new()),
        ),
        (
            "processor_demand".to_owned(),
            Box::new(ProcessorDemandTest::new()),
        ),
    ];

    for (set_name, task_set) in literature::all() {
        for (test_name, test) in &tests {
            group.bench_with_input(
                BenchmarkId::new(test_name.clone(), set_name),
                &task_set,
                |b, ts| b.iter(|| test.analyze(ts).iterations),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_literature);
criterion_main!(benches);
