//! Benchmark of the columnar demand kernel against the retained scalar
//! reference path: `dbf`-evaluation throughput, event-merge throughput
//! (loser tree vs. binary heap), and `analyze_many` workloads/sec with and
//! without scratch reuse — the perf trajectory of the kernel rebuild.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use edf_analysis::batch::{analyze_many_serial, BoxedTest};
use edf_analysis::kernel::{reference, AnalysisScratch};
use edf_analysis::refine;
use edf_analysis::tests::{AllApproximatedTest, DynamicErrorTest, ProcessorDemandTest, QpaTest};
use edf_analysis::workload::{MixedSystem, PreparedWorkload};
use edf_analysis::FeasibilityTest;
use edf_bench::{
    mixed_mode_fixture, ratio_fixture, skewed_period_fixture, stream_fixture, utilization_fixture,
    withdrawal_storm_fixture,
};
use edf_model::{TaskSet, Time};

fn exact_suite() -> Vec<BoxedTest> {
    vec![
        Box::new(DynamicErrorTest::new()),
        Box::new(AllApproximatedTest::new()),
        Box::new(QpaTest::new()),
        Box::new(ProcessorDemandTest::new()),
    ]
}

/// Probe intervals spanning the workload's analysis horizon (the range the
/// exact tests sweep).
fn probe_intervals(prepared: &PreparedWorkload, count: u64) -> Vec<Time> {
    let horizon = prepared
        .analysis_horizon()
        .unwrap_or(Time::new(1_000))
        .as_u64()
        .max(count);
    (1..=count)
        .map(|i| Time::new(i * horizon / count))
        .collect()
}

/// dbf-evaluation throughput: the kernel's binary-search + prefix-sum +
/// tight-loop evaluation vs. the scalar array-of-structs fold, over the
/// same prepared workloads and probe intervals.
fn bench_dbf_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let sets = ratio_fixture(100, 8);
    let prepared: Vec<PreparedWorkload> = sets.iter().map(PreparedWorkload::new).collect();
    let scalar: Vec<PreparedWorkload> = prepared
        .iter()
        .map(PreparedWorkload::scalar_reference)
        .collect();
    let probes: Vec<Vec<Time>> = prepared.iter().map(|p| probe_intervals(p, 64)).collect();

    group.bench_function(BenchmarkId::new("dbf", "columnar"), |b| {
        b.iter(|| {
            let mut acc = Time::ZERO;
            for (p, probes) in prepared.iter().zip(&probes) {
                for &t in probes {
                    acc = acc.saturating_add(p.dbf(black_box(t)));
                }
            }
            acc
        })
    });
    group.bench_function(BenchmarkId::new("dbf", "scalar"), |b| {
        b.iter(|| {
            let mut acc = Time::ZERO;
            for (p, probes) in scalar.iter().zip(&probes) {
                for &t in probes {
                    acc = acc.saturating_add(p.dbf(black_box(t)));
                }
            }
            acc
        })
    });

    // Large component counts (a 64-stream bursty mixed system): the regime
    // where the contiguous columns separate most clearly from the
    // array-of-structs fold.
    let system = MixedSystem::new(TaskSet::new(), stream_fixture(64));
    let large = PreparedWorkload::new(&system);
    let large_scalar = large.scalar_reference();
    let large_probes: Vec<Time> = (1..=256u64).map(|i| Time::new(i * 5_000 / 256)).collect();
    group.bench_function(BenchmarkId::new("dbf_large", "columnar"), |b| {
        b.iter(|| {
            let mut acc = Time::ZERO;
            for &t in &large_probes {
                acc = acc.saturating_add(large.dbf(black_box(t)));
            }
            acc
        })
    });
    group.bench_function(BenchmarkId::new("dbf_large", "scalar"), |b| {
        b.iter(|| {
            let mut acc = Time::ZERO;
            for &t in &large_probes {
                acc = acc.saturating_add(large_scalar.dbf(black_box(t)));
            }
            acc
        })
    });

    // Skewed period spreads (Tmax/Tmin = 100_000): probes cut the sorted
    // columns at wildly different depths, so the chunked lane loops run
    // every full-block/tail mix instead of the steady full-width regime.
    let skew_sets = skewed_period_fixture(8);
    let skew: Vec<PreparedWorkload> = skew_sets.iter().map(PreparedWorkload::new).collect();
    let skew_scalar: Vec<PreparedWorkload> = skew
        .iter()
        .map(PreparedWorkload::scalar_reference)
        .collect();
    let skew_probes: Vec<Vec<Time>> = skew.iter().map(|p| probe_intervals(p, 64)).collect();
    group.bench_function(BenchmarkId::new("dbf_skew", "columnar"), |b| {
        b.iter(|| {
            let mut acc = Time::ZERO;
            for (p, probes) in skew.iter().zip(&skew_probes) {
                for &t in probes {
                    acc = acc.saturating_add(p.dbf(black_box(t)));
                }
            }
            acc
        })
    });
    group.bench_function(BenchmarkId::new("dbf_skew", "scalar"), |b| {
        b.iter(|| {
            let mut acc = Time::ZERO;
            for (p, probes) in skew_scalar.iter().zip(&skew_probes) {
                for &t in probes {
                    acc = acc.saturating_add(p.dbf(black_box(t)));
                }
            }
            acc
        })
    });

    // Mixed one-shot/periodic columns: every probe pays the one-shot
    // prefix lookup *and* the periodic lane loop.
    let mixed_system = MixedSystem::new(TaskSet::new(), mixed_mode_fixture(48));
    let mixed = PreparedWorkload::new(&mixed_system);
    let mixed_scalar = mixed.scalar_reference();
    let mixed_probes: Vec<Time> = probe_intervals(&mixed, 128);
    group.bench_function(BenchmarkId::new("dbf_mixed", "columnar"), |b| {
        b.iter(|| {
            let mut acc = Time::ZERO;
            for &t in &mixed_probes {
                acc = acc.saturating_add(mixed.dbf(black_box(t)));
            }
            acc
        })
    });
    group.bench_function(BenchmarkId::new("dbf_mixed", "scalar"), |b| {
        b.iter(|| {
            let mut acc = Time::ZERO;
            for &t in &mixed_probes {
                acc = acc.saturating_add(mixed_scalar.dbf(black_box(t)));
            }
            acc
        })
    });

    // Batched interval evaluation on the large-n workload: `dbf_many`'s
    // column-major blocks vs. one-at-a-time kernel probes vs. the scalar
    // fold — the lanes-vs-scalar series for the batched entry point.
    let mut batch_out = Vec::with_capacity(large_probes.len());
    group.bench_function(BenchmarkId::new("dbf_batch", "batched"), |b| {
        b.iter(|| {
            large.dbf_many(black_box(&large_probes), &mut batch_out);
            batch_out
                .iter()
                .fold(Time::ZERO, |a, &d| a.saturating_add(d))
        })
    });
    group.bench_function(BenchmarkId::new("dbf_batch", "one_at_a_time"), |b| {
        b.iter(|| {
            let mut acc = Time::ZERO;
            for &t in &large_probes {
                acc = acc.saturating_add(large.dbf(black_box(t)));
            }
            acc
        })
    });
    group.bench_function(BenchmarkId::new("dbf_batch", "scalar"), |b| {
        b.iter(|| {
            let mut acc = Time::ZERO;
            for &t in &large_probes {
                acc = acc.saturating_add(large_scalar.dbf(black_box(t)));
            }
            acc
        })
    });

    // The QPA step function: combined kernel query vs. two scalar scans.
    group.bench_function(BenchmarkId::new("qpa_step", "columnar"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (p, probes) in prepared.iter().zip(&probes) {
                for &t in probes {
                    let (demand, prev) = p.demand_and_predecessor(black_box(t));
                    acc = acc
                        .wrapping_add(demand.as_u64())
                        .wrapping_add(prev.map_or(0, Time::as_u64));
                }
            }
            acc
        })
    });
    group.bench_function(BenchmarkId::new("qpa_step", "scalar"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (p, probes) in scalar.iter().zip(&probes) {
                for &t in probes {
                    let (demand, prev) = p.demand_and_predecessor(black_box(t));
                    acc = acc
                        .wrapping_add(demand.as_u64())
                        .wrapping_add(prev.map_or(0, Time::as_u64));
                }
            }
            acc
        })
    });
    group.finish();
}

/// Event-merge throughput: loser tree vs. the retained heap merge, walking
/// every job deadline below a shared horizon.
fn bench_event_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let sets = ratio_fixture(1_000, 4);
    let prepared: Vec<PreparedWorkload> = sets.iter().map(PreparedWorkload::new).collect();
    let horizons: Vec<Time> = prepared
        .iter()
        .map(|p| p.analysis_horizon().unwrap_or(Time::new(10_000)))
        .collect();

    group.bench_function(BenchmarkId::new("merge", "loser_tree"), |b| {
        b.iter(|| {
            let mut events = 0usize;
            for (p, &horizon) in prepared.iter().zip(&horizons) {
                events += p.demand_events(black_box(horizon)).count();
            }
            events
        })
    });
    group.bench_function(BenchmarkId::new("merge", "binary_heap"), |b| {
        b.iter(|| {
            let mut events = 0usize;
            for (p, &horizon) in prepared.iter().zip(&horizons) {
                events += reference::demand_events(p.components(), black_box(horizon)).count();
            }
            events
        })
    });
    group.finish();
}

/// Refining-test engine throughput: the shared `refine` engine (flat
/// frontier queue, incremental comparison aggregates with the f64
/// proven-margin screen, batched withdrawal passes) against the retained
/// pre-engine reference loops (`refine::reference`), on the two fixtures
/// where the bookkeeping dominates — the hot ratio-100 high-utilization
/// sets of the Figure 9 regime and the withdrawal-storm sets whose
/// narrow period band makes every level increase cross many exactness
/// thresholds at once.  Both sides produce bit-identical analyses (the
/// `refine_equivalence` proptests pin this), so any delta here is pure
/// bookkeeping cost.
fn bench_refine(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let lanes = [
        ("ratio100", ratio_fixture(100, 8)),
        ("storm", withdrawal_storm_fixture(8)),
    ];
    for (lane, sets) in &lanes {
        let prepared: Vec<PreparedWorkload> = sets.iter().map(PreparedWorkload::new).collect();
        let dynamic = DynamicErrorTest::new();
        let all = AllApproximatedTest::new();

        let mut scratch = AnalysisScratch::new();
        group.bench_function(BenchmarkId::new(format!("refine_{lane}"), "engine"), |b| {
            b.iter(|| {
                let mut iterations = 0u64;
                for p in &prepared {
                    iterations += dynamic.analyze_demand(p, &mut scratch).iterations;
                    iterations += all.analyze_demand(p, &mut scratch).iterations;
                }
                iterations
            })
        });
        let mut scratch = AnalysisScratch::new();
        group.bench_function(
            BenchmarkId::new(format!("refine_{lane}"), "reference"),
            |b| {
                b.iter(|| {
                    let mut iterations = 0u64;
                    for p in &prepared {
                        iterations +=
                            refine::reference::dynamic_error(&dynamic, p, &mut scratch).iterations;
                        iterations +=
                            refine::reference::all_approximated(&all, p, &mut scratch).iterations;
                    }
                    iterations
                })
            },
        );
    }
    group.finish();
}

/// Batch throughput over the exact suite: the allocation-free path (one
/// recycled preparation + one scratch arena) vs. fresh per-workload state
/// vs. the scalar demand path — the headline `analyze_many` number.
///
/// **History of this series:** before the refinement engine it tracked
/// far behind the raw `dbf` speedups (`scratch_reuse/16` once sat at
/// parity with `scalar_reference/16`, 819 µs vs 795 µs) because a
/// per-test profile showed ~60 % of the suite's wall clock inside the
/// two refining tests (dynamic-error, all-approximated), whose inner
/// loops were approximation *bookkeeping* — per-interval heap
/// maintenance and exact-rational error-threshold comparisons —
/// identical code on both preparations.  Moving the demand-side work
/// onto the narrow lanes (QPA/PDT walks, batched component-demand
/// withdrawals) first pushed `scratch_reuse/16` ~7 % ahead; the shared
/// `refine` engine (flat frontier queue, incremental aggregates,
/// screened comparisons — see `bench_refine` above for the isolated
/// series) now attacks the bookkeeping share itself, which is exactly
/// the restructuring that note called for.
fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for &batch_size in &[16usize, 32] {
        let sets = utilization_fixture(95, batch_size);
        let tests = exact_suite();
        group.bench_with_input(
            BenchmarkId::new("analyze_many/scratch_reuse", batch_size),
            &sets,
            |b, sets| b.iter(|| analyze_many_serial(sets, &tests).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("analyze_many/fresh_state", batch_size),
            &sets,
            |b, sets| {
                b.iter(|| {
                    sets.iter()
                        .map(|ts| {
                            let prepared = PreparedWorkload::new(ts);
                            tests
                                .iter()
                                .map(|t| t.analyze_prepared(&prepared))
                                .collect::<Vec<_>>()
                        })
                        .count()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("analyze_many/scalar_reference", batch_size),
            &sets,
            |b, sets| {
                b.iter(|| {
                    let mut scratch = AnalysisScratch::new();
                    sets.iter()
                        .map(|ts| {
                            let prepared = PreparedWorkload::new(ts).scalar_reference();
                            tests
                                .iter()
                                .map(|t| t.analyze_prepared_with(&prepared, &mut scratch))
                                .collect::<Vec<_>>()
                        })
                        .count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dbf_eval,
    bench_event_merge,
    bench_refine,
    bench_batch
);
criterion_main!(benches);
