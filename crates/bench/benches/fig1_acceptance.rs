//! Benchmark counterpart of Figure 1: wall-clock time of the sufficient
//! tests (Devi, SuperPos(x)) and the exact processor demand test on
//! high-utilization task sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use edf_analysis::tests::{DeviTest, ProcessorDemandTest, SuperpositionTest};
use edf_analysis::FeasibilityTest;
use edf_bench::acceptance_fixture;

fn bench_acceptance(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_acceptance");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for percent in [85u32, 95] {
        let sets = acceptance_fixture(percent, 8);
        let tests: Vec<(String, Box<dyn FeasibilityTest>)> = vec![
            ("devi".to_owned(), Box::new(DeviTest::new())),
            ("superpos3".to_owned(), Box::new(SuperpositionTest::new(3))),
            (
                "superpos10".to_owned(),
                Box::new(SuperpositionTest::new(10)),
            ),
            (
                "processor_demand".to_owned(),
                Box::new(ProcessorDemandTest::new()),
            ),
        ];
        for (name, test) in &tests {
            group.bench_with_input(BenchmarkId::new(name.clone(), percent), &sets, |b, sets| {
                b.iter(|| {
                    sets.iter()
                        .filter(|ts| test.analyze(ts).verdict.is_feasible())
                        .count()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_acceptance);
criterion_main!(benches);
