//! Ablation benchmarks for the design choices called out in `DESIGN.md`:
//!
//! * revision order of the all-approximated test (FIFO vs. largest error
//!   vs. largest utilization);
//! * level growth of the dynamic-error test (doubling vs. +1);
//! * feasibility bound driving the processor demand test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use edf_analysis::tests::{
    AllApproximatedTest, BoundSelection, DynamicErrorTest, LevelGrowth, ProcessorDemandTest,
    RevisionOrder,
};
use edf_analysis::FeasibilityTest;
use edf_bench::utilization_fixture;

fn bench_revision_order(c: &mut Criterion) {
    let sets = utilization_fixture(97, 6);
    let mut group = c.benchmark_group("ablation_revision_order");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (name, order) in [
        ("fifo", RevisionOrder::Fifo),
        ("largest_error", RevisionOrder::LargestError),
        ("largest_utilization", RevisionOrder::LargestUtilization),
    ] {
        let test = AllApproximatedTest::with_revision_order(order);
        group.bench_with_input(BenchmarkId::from_parameter(name), &sets, |b, sets| {
            b.iter(|| {
                sets.iter()
                    .map(|ts| test.analyze(ts).iterations)
                    .sum::<u64>()
            })
        });
    }
    group.finish();
}

fn bench_level_growth(c: &mut Criterion) {
    let sets = utilization_fixture(97, 6);
    let mut group = c.benchmark_group("ablation_level_growth");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (name, growth) in [
        ("double", LevelGrowth::Double),
        ("increment", LevelGrowth::Increment),
    ] {
        let test = DynamicErrorTest::new().with_growth(growth);
        group.bench_with_input(BenchmarkId::from_parameter(name), &sets, |b, sets| {
            b.iter(|| {
                sets.iter()
                    .map(|ts| test.analyze(ts).iterations)
                    .sum::<u64>()
            })
        });
    }
    group.finish();
}

fn bench_bound_selection(c: &mut Criterion) {
    let sets = utilization_fixture(95, 6);
    let mut group = c.benchmark_group("ablation_bound_selection");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (name, bound) in [
        ("tightest", BoundSelection::Tightest),
        ("baruah", BoundSelection::Baruah),
        ("george", BoundSelection::George),
        ("busy_period", BoundSelection::BusyPeriod),
    ] {
        let test = ProcessorDemandTest::with_bound(bound);
        group.bench_with_input(BenchmarkId::from_parameter(name), &sets, |b, sets| {
            b.iter(|| {
                sets.iter()
                    .map(|ts| test.analyze(ts).iterations)
                    .sum::<u64>()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_revision_order,
    bench_level_growth,
    bench_bound_selection
);
criterion_main!(benches);
