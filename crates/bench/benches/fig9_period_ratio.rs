//! Benchmark counterpart of Figure 9: wall-clock time of the exact tests as
//! the period spread `Tmax/Tmin` grows — the regime in which the processor
//! demand test degenerates while the new tests stay flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use edf_analysis::tests::{AllApproximatedTest, DynamicErrorTest, ProcessorDemandTest};
use edf_analysis::FeasibilityTest;
use edf_bench::ratio_fixture;

fn bench_period_ratio(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_period_ratio");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for ratio in [100u64, 10_000, 100_000] {
        let sets = ratio_fixture(ratio, 4);
        let tests: Vec<(String, Box<dyn FeasibilityTest>)> = vec![
            ("dynamic".to_owned(), Box::new(DynamicErrorTest::new())),
            (
                "all_approximated".to_owned(),
                Box::new(AllApproximatedTest::new()),
            ),
            (
                "processor_demand".to_owned(),
                Box::new(ProcessorDemandTest::new()),
            ),
        ];
        for (name, test) in &tests {
            group.bench_with_input(BenchmarkId::new(name.clone(), ratio), &sets, |b, sets| {
                b.iter(|| {
                    sets.iter()
                        .map(|ts| test.analyze(ts).iterations)
                        .sum::<u64>()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_period_ratio);
criterion_main!(benches);
