//! Benchmark of the candidate-product transaction engine
//! (`edf_analysis::candidates`) against the retained naive reference,
//! across candidate-product sizes, utilizations and offset shapes.
//!
//! Lanes per fixture: `engine_serial` (dominance pruning, density screen
//! and Gray-code incremental swaps, single-threaded — the apples-to-apples
//! comparison against `naive` on the 1-CPU CI container), `engine` (the
//! default configuration including the parallel early-exit sweep) and
//! `naive` (`candidates::reference`: full lexicographic product, one cold
//! preparation per combination).  Pruned-product and screened-combination
//! counts are printed per fixture so every run records how much of the win
//! comes from which layer.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use edf_analysis::candidates::{self, EngineConfig};
use edf_analysis::tests::QpaTest;
use edf_bench::transaction_product_fixture;
use edf_model::TransactionSystem;

/// The serial engine: every algorithmic layer on, the parallel fan-out off.
const SERIAL: EngineConfig = EngineConfig {
    prune: true,
    screen: true,
    parallel: false,
};

fn fixtures() -> Vec<(&'static str, TransactionSystem)> {
    vec![
        // The headline fixture of the acceptance criterion: product ≥ 10³
        // at a moderate load.
        (
            "product_1024_util60",
            transaction_product_fixture(&[4; 5], 60, 0, 42),
        ),
        // Heavy load: the screen decides little, the win must come from
        // pruning and the incremental swaps.
        (
            "product_1024_util90",
            transaction_product_fixture(&[4; 5], 90, 0, 44),
        ),
        // Duplicate release offsets: the dominance-pruning regime.
        (
            "product_1024_dup_offsets",
            transaction_product_fixture(&[4; 5], 60, 2, 41),
        ),
        // A wider product, still naive-tractable in fast mode.
        (
            "product_4096_util75",
            transaction_product_fixture(&[8, 8, 8, 8], 75, 0, 42),
        ),
    ]
}

fn bench_engine_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("transactions");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let test = QpaTest::new();
    for (name, system) in &fixtures() {
        // Sanity check once per fixture, and record how much each layer
        // removed (the numbers land in the bench log next to the timings).
        let engine = candidates::analyze_with(&test, system, &SERIAL);
        let naive = candidates::reference(&test, system);
        assert_eq!(
            engine.analysis.verdict, naive.analysis.verdict,
            "engine and naive reference disagree on {name}"
        );
        eprintln!(
            "transactions/{name}: verdict {}, product {} -> pruned {}, \
             examined {}, screened {}",
            engine.analysis.verdict,
            engine.stats.candidate_product,
            engine.stats.pruned_product,
            engine.stats.combinations_examined,
            engine.stats.combinations_screened,
        );
        group.bench_with_input(
            BenchmarkId::new("engine_serial", name),
            system,
            |b, system| {
                b.iter(|| {
                    candidates::analyze_with(&test, black_box(system), &SERIAL)
                        .analysis
                        .iterations
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("engine", name), system, |b, system| {
            b.iter(|| {
                candidates::analyze(&test, black_box(system))
                    .analysis
                    .iterations
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", name), system, |b, system| {
            b.iter(|| {
                candidates::reference(&test, black_box(system))
                    .analysis
                    .iterations
            })
        });
    }
    group.finish();
}

/// Engine-only scaling lane: a 10⁵ product the naive path has no business
/// enumerating (it would re-prepare a hundred thousand workloads per
/// iteration).
fn bench_engine_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("transactions");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let test = QpaTest::new();
    let system = transaction_product_fixture(&[10; 5], 60, 0, 46);
    let stats = candidates::analyze_with(&test, &system, &SERIAL).stats;
    eprintln!(
        "transactions/product_100000_util60: product {} -> pruned {}, examined {}, screened {}",
        stats.candidate_product,
        stats.pruned_product,
        stats.combinations_examined,
        stats.combinations_screened,
    );
    group.bench_with_input(
        BenchmarkId::new("engine_serial", "product_100000_util60"),
        &system,
        |b, system| {
            b.iter(|| {
                candidates::analyze_with(&test, black_box(system), &SERIAL)
                    .analysis
                    .iterations
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_engine_vs_naive, bench_engine_scaling);
criterion_main!(benches);
