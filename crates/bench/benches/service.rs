//! Benchmark of the `edf-serve` admission-control service: the cost of one
//! admission decision through the [`EditView`] delta path (structural
//! edit, deadline-order repair, in-place kernel rebuild, bounds refresh)
//! versus a cold re-preparation of the edited component list, the batched
//! what-if throughput across independent tenants, and the budgeted
//! anytime lane.
//!
//! Both decision paths run the identical all-approximated exact analysis,
//! so the `whatif_*` gap is pure preparation overhead — exactly what an
//! admission server pays per request on its committed systems.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use edf_analysis::tests::AllApproximatedTest;
use edf_analysis::workload::{DemandComponent, PreparedWorkload};
use edf_analysis::{AnalysisScratch, FeasibilityTest, Workload};
use edf_bench::ratio_fixture;
use edf_model::{TaskSet, Time};
use edf_serve::{AdmissionService, SlaMode};

/// The committed base system of one tenant: a ratio-controlled sporadic
/// set, taken apart into demand components.
fn tenant_base(ratio: u64, seed_offset: usize) -> Vec<DemandComponent> {
    let sets: Vec<TaskSet> = ratio_fixture(ratio, seed_offset + 1);
    let mut components = Vec::new();
    sets[seed_offset].append_components(&mut components);
    components
}

/// The probe component every benchmark admits hypothetically: light
/// enough to keep the edited system feasible, so the analysis always runs
/// to a decisive verdict instead of an early `U > 1` exit.
fn probe() -> DemandComponent {
    DemandComponent::periodic(Time::new(1), Time::new(900), Time::new(1_000))
}

/// A large consolidation tenant: `n` light components with spread
/// deadlines and periods (total utilization `n`/2048 ≪ 1).  The exact
/// analysis decides such high-slack systems quickly, so the request cost
/// is dominated by preparation — the regime where the delta path's reuse
/// of the committed sort/bounds/kernel state matters most.
fn light_tenant(n: u64) -> Vec<DemandComponent> {
    (0..n)
        .map(|index| {
            DemandComponent::periodic(
                Time::new(1),
                Time::new(40 + (index * 13) % 400),
                Time::new(2_048 + 7 * index),
            )
        })
        .collect()
}

/// One what-if decision per request: the `editview` series answers it
/// through the service's delta path over the committed [`EditView`]; the
/// `cold_prepare` series re-prepares the edited component list from
/// scratch, which is what a view-less server would have to do.  The
/// parameter is the period ratio for the sporadic fixtures (10, 100) and
/// the component count for the light consolidation tenants (256, 1024).
fn bench_admission_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let test = AllApproximatedTest::new();
    let bases: Vec<(u64, Vec<DemandComponent>)> = vec![
        (10, tenant_base(10, 0)),
        (100, tenant_base(100, 0)),
        (256, light_tenant(256)),
        (1024, light_tenant(1024)),
    ];
    for (ratio, base) in bases {
        let mut service = AdmissionService::new();
        service
            .register_tenant("tenant", &PreparedWorkload::from_components(base.clone()))
            .expect("valid fixture base");
        // Warm the view's lazy state once so the loop measures steady
        // service operation, not first-touch preparation.
        service.what_if("tenant", probe()).expect("valid probe");
        group.bench_with_input(
            BenchmarkId::new("whatif_editview", ratio),
            &base,
            |b, _base| {
                b.iter(|| {
                    black_box(service.what_if("tenant", probe()))
                        .expect("valid probe")
                        .analysis
                })
            },
        );

        let mut scratch = AnalysisScratch::new();
        group.bench_with_input(
            BenchmarkId::new("whatif_cold_prepare", ratio),
            &base,
            |b, base| {
                b.iter(|| {
                    let mut edited = base.clone();
                    edited.push(probe());
                    let prepared = PreparedWorkload::from_components(edited);
                    black_box(test.analyze_prepared_with(&prepared, &mut scratch))
                })
            },
        );
    }
    group.finish();
}

/// Throughput of a 32-tenant what-if wave: the batched entry point fans
/// the finalized views across the cores, the sequential series answers
/// the same requests one by one on one core.  (On a single-CPU host the
/// batch engine falls back to serial execution, so the two series only
/// separate on multi-core machines.)
fn bench_batched_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_batch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    const TENANTS: usize = 32;
    let names: Vec<String> = (0..TENANTS)
        .map(|index| format!("tenant-{index}"))
        .collect();
    let mut service = AdmissionService::new();
    for (index, name) in names.iter().enumerate() {
        let base = tenant_base(100, index % 4);
        service
            .register_tenant(name, &PreparedWorkload::from_components(base))
            .expect("valid fixture base");
        service.what_if(name, probe()).expect("valid probe");
    }
    let requests: Vec<(&str, DemandComponent)> =
        names.iter().map(|name| (name.as_str(), probe())).collect();

    group.bench_function(BenchmarkId::new("whatif_many", TENANTS), |b| {
        b.iter(|| black_box(service.what_if_many(&requests)).len())
    });
    group.bench_function(BenchmarkId::new("whatif_sequential", TENANTS), |b| {
        b.iter(|| {
            requests
                .iter()
                .map(|&(tenant, component)| black_box(service.what_if(tenant, component)))
                .count()
        })
    });
    group.finish();
}

/// The budgeted anytime lanes against the exact lane on the same tenant:
/// a generous budget escalates capped levels until the (identical)
/// decisive verdict, a zero budget answers immediately with `Unknown`.
/// The `units_*` lanes express the allowance directly in deterministic
/// work units ([`SlaMode::BudgetedUnits`]): `units_exhaust` measures the
/// exhaustion-answer latency (how fast a shed request unwinds through
/// the budget checkpoints to its honest `Unknown`), `units_generous`
/// the fully-metered decisive path.
fn bench_budgeted(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_budget");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let base = tenant_base(100, 0);
    let mut service = AdmissionService::new();
    service
        .register_tenant("tenant", &PreparedWorkload::from_components(base))
        .expect("valid fixture base");
    service.what_if("tenant", probe()).expect("valid probe");

    for (label, mode) in [
        ("exact", SlaMode::Exact),
        (
            "budget_1ms",
            SlaMode::Budgeted {
                deadline: Duration::from_millis(1),
            },
        ),
        (
            "budget_zero",
            SlaMode::Budgeted {
                deadline: Duration::ZERO,
            },
        ),
        ("units_exhaust", SlaMode::BudgetedUnits { units: 64 }),
        (
            "units_generous",
            SlaMode::BudgetedUnits { units: 1_000_000 },
        ),
    ] {
        service.set_mode(mode).expect("no journal attached");
        group.bench_function(BenchmarkId::new(label, 100u64), |b| {
            b.iter(|| {
                black_box(service.what_if("tenant", probe()))
                    .expect("valid probe")
                    .analysis
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_admission_paths,
    bench_batched_throughput,
    bench_budgeted
);
criterion_main!(benches);
