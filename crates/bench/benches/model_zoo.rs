//! Benchmark of the workload model zoo: per-model analysis cost of the
//! same exact tests across sporadic task sets, Gresser event streams,
//! arrival curves (exact and conservative decompositions) and offset
//! transactions (synchronous over-approximation vs. candidate-exact).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use edf_analysis::tests::{AllApproximatedTest, QpaTest};
use edf_analysis::transactions::analyze_transaction_system;
use edf_analysis::workload::PreparedWorkload;
use edf_bench::{curve_fixture, stream_fixture, transaction_fixture, utilization_fixture};

fn exact_suite() -> Vec<edf_analysis::BoxedTest> {
    vec![
        Box::new(QpaTest::new()),
        Box::new(AllApproximatedTest::new()),
    ]
}

fn run_suite(prepared: &PreparedWorkload) -> u64 {
    exact_suite()
        .iter()
        .map(|test| test.analyze_prepared(prepared).iterations)
        .sum()
}

fn bench_model_zoo(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_zoo");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    let sporadic = utilization_fixture(90, 1).remove(0);
    group.bench_with_input(
        BenchmarkId::new("analyze", "sporadic"),
        &sporadic,
        |b, workload| b.iter(|| run_suite(&PreparedWorkload::new(workload))),
    );

    let streams = stream_fixture(8);
    group.bench_with_input(
        BenchmarkId::new("analyze", "event_stream"),
        &streams,
        |b, workload| b.iter(|| run_suite(&PreparedWorkload::new(workload))),
    );

    let curves = curve_fixture(8);
    group.bench_with_input(
        BenchmarkId::new("analyze", "arrival_curve_exact"),
        &curves,
        |b, workload| b.iter(|| run_suite(&PreparedWorkload::new(workload))),
    );

    let buckets: Vec<_> = curves
        .iter()
        .map(|task| task.clone().conservative())
        .collect();
    group.bench_with_input(
        BenchmarkId::new("analyze", "arrival_curve_conservative"),
        &buckets,
        |b, workload| b.iter(|| run_suite(&PreparedWorkload::new(workload))),
    );

    let transactions = transaction_fixture(3);
    group.bench_with_input(
        BenchmarkId::new("analyze", "transactions_synchronous"),
        &transactions,
        |b, system| b.iter(|| run_suite(&PreparedWorkload::new(system))),
    );
    group.bench_with_input(
        BenchmarkId::new("analyze", "transactions_candidates"),
        &transactions,
        |b, system| {
            b.iter(|| {
                exact_suite()
                    .iter()
                    .map(|test| analyze_transaction_system(test.as_ref(), system).iterations)
                    .sum::<u64>()
            })
        },
    );

    // Decomposition cost alone, per model.
    group.bench_with_input(
        BenchmarkId::new("prepare", "event_stream"),
        &streams,
        |b, workload| b.iter(|| PreparedWorkload::new(workload).components().len()),
    );
    group.bench_with_input(
        BenchmarkId::new("prepare", "arrival_curve_conservative"),
        &buckets,
        |b, workload| b.iter(|| PreparedWorkload::new(workload).components().len()),
    );

    group.finish();
}

criterion_group!(benches, bench_model_zoo);
criterion_main!(benches);
