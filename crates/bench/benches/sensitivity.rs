//! Benchmark of the incremental sensitivity engine
//! (`edf_analysis::incremental` + `edf_analysis::sensitivity`): breakdown
//! scaling and WCET slack searches, incremental (one `ScaledView`, costs
//! rewritten in place, bounds refreshed from cached invariants and
//! estimate-seeded searches) versus the from-scratch reference (full
//! re-preparation with cold bound searches per probe — the
//! pre-incremental behaviour, see `sensitivity::reference`).  Both
//! variants run identical probe sequences and produce bit-identical
//! results, so the wall-clock gap is pure preparation overhead.
//!
//! The QPA series isolate that overhead (QPA's own analysis is cheap);
//! the all-approximated series show the dilution on a test whose
//! analysis dominates near the breakdown point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use edf_analysis::sensitivity::{
    breakdown_scaling_workload, reference, sensitivity_sweep, wcet_slack_workload,
};
use edf_analysis::tests::{AllApproximatedTest, QpaTest};
use edf_analysis::workload::{MixedSystem, PreparedWorkload};
use edf_bench::{ratio_fixture, slack_fixture, stream_fixture};
use edf_model::{Task, TaskSet, Time};

/// A feasible mixed sporadic + bursty-stream system (the paper's §3.6
/// scenario): a ratio-controlled sporadic set at roughly half load plus
/// four bursty interrupt sources.
fn mixed_system() -> MixedSystem {
    let sporadic: TaskSet = ratio_fixture(10, 1)
        .remove(0)
        .iter()
        .map(|t| {
            Task::new(
                Time::new((t.wcet().as_u64() / 2).max(1)),
                t.deadline(),
                t.period(),
            )
            .expect("halved cost stays valid")
        })
        .collect();
    MixedSystem::new(sporadic, stream_fixture(4))
}

fn bench_breakdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("sensitivity_breakdown");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let qpa = QpaTest::new();
    for &ratio in &[10u64, 100] {
        let sets = ratio_fixture(ratio, 8);
        group.bench_with_input(
            BenchmarkId::new("incremental_qpa", ratio),
            &sets,
            |b, sets| {
                b.iter(|| {
                    sets.iter()
                        .filter_map(|ts| breakdown_scaling_workload(ts, &qpa))
                        .count()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("from_scratch_qpa", ratio),
            &sets,
            |b, sets| {
                b.iter(|| {
                    sets.iter()
                        .filter_map(|ts| reference::breakdown_scaling_workload(ts, &qpa))
                        .count()
                })
            },
        );
    }

    // Analysis-heavy variant: the all-approximated test near its breakdown
    // point dominates the probe cost, diluting the preparation savings.
    let all_approx = AllApproximatedTest::new();
    let sets = ratio_fixture(10, 4);
    group.bench_function("incremental_all_approx/10", |b| {
        b.iter(|| {
            sets.iter()
                .filter_map(|ts| breakdown_scaling_workload(ts, &all_approx))
                .count()
        })
    });
    group.bench_function("from_scratch_all_approx/10", |b| {
        b.iter(|| {
            sets.iter()
                .filter_map(|ts| reference::breakdown_scaling_workload(ts, &all_approx))
                .count()
        })
    });

    let mixed = mixed_system();
    group.bench_function("incremental_qpa/mixed", |b| {
        b.iter(|| breakdown_scaling_workload(&mixed, &qpa))
    });
    group.bench_function("from_scratch_qpa/mixed", |b| {
        b.iter(|| reference::breakdown_scaling_workload(&mixed, &qpa))
    });
    group.finish();
}

fn bench_wcet_slack(c: &mut Criterion) {
    let mut group = c.benchmark_group("sensitivity_wcet_slack");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let qpa = QpaTest::new();
    let slack_all = |ts: &TaskSet| -> usize {
        (0..ts.len())
            .filter_map(|index| wcet_slack_workload(ts, index, &qpa))
            .count()
    };
    let slack_all_reference = |ts: &TaskSet| -> usize {
        (0..ts.len())
            .filter_map(|index| reference::wcet_slack_workload(ts, index, &qpa))
            .count()
    };
    // Headline series: the robustness-budgeting regime (moderate load).
    let sets = slack_fixture(60, 4);
    group.bench_with_input(
        BenchmarkId::new("incremental_qpa", "sets"),
        &sets,
        |b, sets| b.iter(|| sets.iter().map(slack_all).sum::<usize>()),
    );
    group.bench_with_input(
        BenchmarkId::new("from_scratch_qpa", "sets"),
        &sets,
        |b, sets| b.iter(|| sets.iter().map(slack_all_reference).sum::<usize>()),
    );
    // Hard case: 90–99 % load, where the exact test's own work at the
    // feasibility edge dominates the probe cost on both paths.
    let tight = ratio_fixture(10, 4);
    group.bench_with_input(
        BenchmarkId::new("incremental_qpa", "tight"),
        &tight,
        |b, sets| b.iter(|| sets.iter().map(slack_all).sum::<usize>()),
    );
    group.bench_with_input(
        BenchmarkId::new("from_scratch_qpa", "tight"),
        &tight,
        |b, sets| b.iter(|| sets.iter().map(slack_all_reference).sum::<usize>()),
    );

    let mixed = mixed_system();
    let components = PreparedWorkload::new(&mixed).components().len();
    group.bench_function("incremental_qpa/mixed", |b| {
        b.iter(|| {
            (0..components)
                .filter_map(|index| wcet_slack_workload(&mixed, index, &qpa))
                .count()
        })
    });
    group.bench_function("from_scratch_qpa/mixed", |b| {
        b.iter(|| {
            (0..components)
                .filter_map(|index| reference::wcet_slack_workload(&mixed, index, &qpa))
                .count()
        })
    });
    group.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sensitivity_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let qpa = QpaTest::new();
    let sets = ratio_fixture(10, 8);
    group.bench_function("batch_qpa", |b| {
        b.iter(|| sensitivity_sweep(&sets, &qpa).len())
    });
    group.finish();
}

criterion_group!(benches, bench_breakdown, bench_wcet_slack, bench_sweep);
criterion_main!(benches);
