//! Benchmark counterpart of Figure 8: wall-clock time of the dynamic-error,
//! all-approximated and processor demand tests over the target utilization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use edf_analysis::tests::{AllApproximatedTest, DynamicErrorTest, ProcessorDemandTest};
use edf_analysis::FeasibilityTest;
use edf_bench::utilization_fixture;

fn bench_utilization_effort(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_utilization_effort");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for percent in [90u32, 95, 99] {
        let sets = utilization_fixture(percent, 6);
        let tests: Vec<(String, Box<dyn FeasibilityTest>)> = vec![
            ("dynamic".to_owned(), Box::new(DynamicErrorTest::new())),
            (
                "all_approximated".to_owned(),
                Box::new(AllApproximatedTest::new()),
            ),
            (
                "processor_demand".to_owned(),
                Box::new(ProcessorDemandTest::new()),
            ),
        ];
        for (name, test) in &tests {
            group.bench_with_input(BenchmarkId::new(name.clone(), percent), &sets, |b, sets| {
                b.iter(|| {
                    sets.iter()
                        .map(|ts| test.analyze(ts).iterations)
                        .sum::<u64>()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_utilization_effort);
criterion_main!(benches);
