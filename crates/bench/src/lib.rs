//! # `edf-bench` — shared fixtures for the Criterion benchmarks
//!
//! The benchmark targets of this crate (one per figure/table of the paper's
//! evaluation, plus ablations) need identical, reproducible workloads so
//! that the measured wall-clock differences reflect the algorithms rather
//! than the inputs.  This small library provides those fixtures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use edf_gen::{PeriodDistribution, TaskSetConfig};
use edf_model::TaskSet;

/// Task sets with the Figure 8 character: 5–50 tasks, the given target
/// utilization (percent), periods uniform in `[1_000, 1_000_000]`, average
/// gap 30 %.
#[must_use]
pub fn utilization_fixture(percent: u32, count: usize) -> Vec<TaskSet> {
    TaskSetConfig::new()
        .task_count(5..=50)
        .fixed_utilization(f64::from(percent) / 100.0)
        .average_gap(0.3)
        .seed(8_000 + u64::from(percent))
        .generate_many(count)
}

/// Task sets with the Figure 9 character: the requested `Tmax/Tmin` ratio,
/// utilization 90–99 %, average gap 30 %.
#[must_use]
pub fn ratio_fixture(ratio: u64, count: usize) -> Vec<TaskSet> {
    TaskSetConfig::new()
        .task_count(5..=50)
        .utilization(0.90..=0.99)
        .average_gap(0.3)
        .periods(PeriodDistribution::RatioControlled { min: 100, ratio })
        .seed(9_000 + ratio)
        .generate_many(count)
}

/// Task sets with the Figure 1 character: moderate utilization sweep inputs
/// used by the acceptance-rate benchmark.
#[must_use]
pub fn acceptance_fixture(percent: u32, count: usize) -> Vec<TaskSet> {
    TaskSetConfig::new()
        .task_count(5..=30)
        .fixed_utilization(f64::from(percent) / 100.0)
        .average_gap(0.3)
        .seed(1_000 + u64::from(percent))
        .generate_many(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_reproducible_and_sized() {
        assert_eq!(utilization_fixture(95, 4), utilization_fixture(95, 4));
        assert_eq!(utilization_fixture(95, 4).len(), 4);
        assert_eq!(ratio_fixture(1_000, 3).len(), 3);
        assert_eq!(acceptance_fixture(85, 2).len(), 2);
    }

    #[test]
    fn ratio_fixture_respects_the_ratio() {
        for ts in ratio_fixture(10_000, 3) {
            assert!(ts.period_ratio().unwrap() <= 10_000.0);
        }
    }
}
