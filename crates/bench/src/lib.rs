//! # `edf-bench` — shared fixtures for the Criterion benchmarks
//!
//! The benchmark targets of this crate (one per figure/table of the paper's
//! evaluation, plus ablations) need identical, reproducible workloads so
//! that the measured wall-clock differences reflect the algorithms rather
//! than the inputs.  This small library provides those fixtures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use edf_gen::{ArrivalCurveConfig, PeriodDistribution, TaskSetConfig, TransactionConfig};
use edf_model::{
    ArrivalCurveTask, EventStream, EventStreamTask, EventTuple, TaskSet, Time, TransactionSystem,
};

/// Task sets with the Figure 8 character: 5–50 tasks, the given target
/// utilization (percent), periods uniform in `[1_000, 1_000_000]`, average
/// gap 30 %.
#[must_use]
pub fn utilization_fixture(percent: u32, count: usize) -> Vec<TaskSet> {
    TaskSetConfig::new()
        .task_count(5..=50)
        .fixed_utilization(f64::from(percent) / 100.0)
        .average_gap(0.3)
        .seed(8_000 + u64::from(percent))
        .generate_many(count)
}

/// Task sets with the Figure 9 character: the requested `Tmax/Tmin` ratio,
/// utilization 90–99 %, average gap 30 %.
#[must_use]
pub fn ratio_fixture(ratio: u64, count: usize) -> Vec<TaskSet> {
    TaskSetConfig::new()
        .task_count(5..=50)
        .utilization(0.90..=0.99)
        .average_gap(0.3)
        .periods(PeriodDistribution::RatioControlled { min: 100, ratio })
        .seed(9_000 + ratio)
        .generate_many(count)
}

/// Task sets with the Figure 1 character: moderate utilization sweep inputs
/// used by the acceptance-rate benchmark.
#[must_use]
pub fn acceptance_fixture(percent: u32, count: usize) -> Vec<TaskSet> {
    TaskSetConfig::new()
        .task_count(5..=30)
        .fixed_utilization(f64::from(percent) / 100.0)
        .average_gap(0.3)
        .seed(1_000 + u64::from(percent))
        .generate_many(count)
}

/// Task sets for the WCET-slack sensitivity benchmark: ratio-10 periods
/// at a moderate fixed utilization (the robustness-budgeting regime —
/// probing a heavily loaded set is dominated by the exact test itself,
/// see the `sensitivity` bench).
#[must_use]
pub fn slack_fixture(percent: u32, count: usize) -> Vec<TaskSet> {
    TaskSetConfig::new()
        .task_count(5..=50)
        .fixed_utilization(f64::from(percent) / 100.0)
        .average_gap(0.3)
        .periods(PeriodDistribution::RatioControlled {
            min: 100,
            ratio: 10,
        })
        .seed(7_000 + u64::from(percent))
        .generate_many(count)
}

/// Bursty event-stream workloads for the model-zoo benchmark: `count`
/// tasks, each a 3-event burst with task-dependent spacing and cost.
#[must_use]
pub fn stream_fixture(count: usize) -> Vec<EventStreamTask> {
    (0..count as u64)
        .map(|i| {
            EventStreamTask::new(
                EventStream::bursty(3, Time::new(4 + i % 5), Time::new(120 + 30 * i)),
                Time::new(1 + i % 3),
                Time::new(10 + 5 * i),
            )
            .expect("positive parameters")
        })
        .collect()
}

/// Task sets with a heavily skewed period spread (`Tmax/Tmin = 100_000`)
/// for the demand-kernel lane benchmarks: short probe intervals cut off
/// most of the deadline-sorted columns while long ones sweep them whole,
/// so the chunked lane loops see every mix of full 8-lane blocks and
/// scalar tails instead of the steady full-width regime of
/// [`ratio_fixture`].
#[must_use]
pub fn skewed_period_fixture(count: usize) -> Vec<TaskSet> {
    TaskSetConfig::new()
        .task_count(20..=50)
        .utilization(0.90..=0.99)
        .average_gap(0.3)
        .periods(PeriodDistribution::RatioControlled {
            min: 10,
            ratio: 100_000,
        })
        .seed(6_500)
        .generate_many(count)
}

/// Event-stream tasks mixing periodic tuples with one-shot start-up
/// transients, for the demand-kernel lane benchmarks: the prepared
/// workload carries both column families at once, so `dbf` pays the
/// one-shot prefix lookup *and* the periodic lane loop on every probe —
/// the regime where neither column family can be specialised away.
#[must_use]
pub fn mixed_mode_fixture(count: usize) -> Vec<EventStreamTask> {
    (0..count as u64)
        .map(|i| {
            let mut tuples = vec![
                EventTuple::periodic(Time::new(90 + 17 * i), Time::ZERO),
                EventTuple::periodic(Time::new(140 + 23 * i), Time::new(6 + i % 9)),
            ];
            for k in 0..=(i % 3) {
                tuples.push(EventTuple::single(Time::new(3 + 11 * k + i)));
            }
            EventStreamTask::new(
                EventStream::new(tuples).expect("non-empty tuple list"),
                Time::new(1 + i % 4),
                Time::new(12 + 4 * i),
            )
            .expect("positive parameters")
        })
        .collect()
}

/// Task sets engineered to stress the refining tests' withdrawal
/// bookkeeping: many tasks (30–50) in a *narrow* period band
/// (`Tmax/Tmin = 4`) at near-critical utilization.  The tight band makes
/// the approximated deadlines `Im = level · T` cluster, so each level
/// increase of the dynamic-error test crosses many terms' exactness
/// thresholds at once — batched withdrawal passes over a long-lived live
/// list — while the near-critical utilization keeps refinement deep
/// before the §4.3 bound cuts the analysis off.
#[must_use]
pub fn withdrawal_storm_fixture(count: usize) -> Vec<TaskSet> {
    TaskSetConfig::new()
        .task_count(30..=50)
        .utilization(0.97..=0.995)
        .average_gap(0.3)
        .periods(PeriodDistribution::RatioControlled {
            min: 1_000,
            ratio: 4,
        })
        .seed(6_600)
        .generate_many(count)
}

/// Arrival-curve workloads for the model-zoo benchmark (reproducible
/// piecewise-linear specifications via `edf-gen`).
#[must_use]
pub fn curve_fixture(count: usize) -> Vec<ArrivalCurveTask> {
    ArrivalCurveConfig::new()
        .task_count(count..=count)
        .segment_count(1..=3)
        .burst(1..=4)
        .distance(40..=400)
        .wcet(1..=4)
        .deadline(10..=80)
        .seed(4_000 + count as u64)
        .generate()
}

/// An offset-transaction system for the model-zoo benchmark.
#[must_use]
pub fn transaction_fixture(transactions: usize) -> TransactionSystem {
    TransactionConfig::new()
        .transaction_count(transactions..=transactions)
        .part_count(2..=4)
        .period(50..=400)
        .wcet(1..=4)
        .seed(5_000 + transactions as u64)
        .generate_system(TaskSet::new())
}

/// An offset-transaction system with a precisely dialed candidate product
/// for the `transactions` benchmark: one transaction per entry of `shape`
/// with exactly that many parts (product = the shape's product), WCETs
/// sized for `util_percent` % total utilization, and — when
/// `offset_choices > 0` — at most that many distinct release offsets per
/// transaction (the dominance-pruning regime; `0` spreads the parts).
#[must_use]
pub fn transaction_product_fixture(
    shape: &[usize],
    util_percent: u32,
    offset_choices: usize,
    seed: u64,
) -> TransactionSystem {
    TransactionConfig::new()
        .product_shape(shape.to_vec())
        .period(100..=1_000)
        .target_utilization(f64::from(util_percent) / 100.0)
        .offset_choices(offset_choices)
        .seed(seed)
        .generate_system(TaskSet::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_fixtures_are_reproducible_and_sized() {
        assert_eq!(stream_fixture(5).len(), 5);
        assert_eq!(curve_fixture(6), curve_fixture(6));
        assert_eq!(curve_fixture(6).len(), 6);
        let system = transaction_fixture(3);
        assert_eq!(system.transactions().len(), 3);
        assert!(system.candidate_count() >= 8);
    }

    #[test]
    fn fixtures_are_reproducible_and_sized() {
        assert_eq!(utilization_fixture(95, 4), utilization_fixture(95, 4));
        assert_eq!(utilization_fixture(95, 4).len(), 4);
        assert_eq!(ratio_fixture(1_000, 3).len(), 3);
        assert_eq!(acceptance_fixture(85, 2).len(), 2);
    }

    #[test]
    fn lane_fixtures_are_reproducible_and_mixed() {
        assert_eq!(skewed_period_fixture(3), skewed_period_fixture(3));
        assert_eq!(skewed_period_fixture(3).len(), 3);
        let mixed = mixed_mode_fixture(8);
        assert_eq!(mixed.len(), 8);
        assert_eq!(mixed, mixed_mode_fixture(8));
        // Every task carries at least one one-shot and one periodic tuple.
        for task in &mixed {
            assert!(task.stream().tuples().iter().any(|t| t.cycle.is_none()));
            assert!(task.stream().tuples().iter().any(|t| t.cycle.is_some()));
        }
    }

    #[test]
    fn withdrawal_storm_fixture_is_reproducible_and_tight() {
        let storm = withdrawal_storm_fixture(3);
        assert_eq!(storm, withdrawal_storm_fixture(3));
        assert_eq!(storm.len(), 3);
        for ts in &storm {
            assert!(ts.len() >= 30);
            assert!(ts.period_ratio().unwrap() <= 4.0);
            assert!(ts.utilization() > 0.9);
        }
    }

    #[test]
    fn ratio_fixture_respects_the_ratio() {
        for ts in ratio_fixture(10_000, 3) {
            assert!(ts.period_ratio().unwrap() <= 10_000.0);
        }
    }
}
