//! Plain-text and CSV reporting of experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple rectangular result table: a title, a header row and data rows.
///
/// # Examples
///
/// ```
/// use edf_experiments::Table;
///
/// let mut table = Table::new("demo", &["x", "y"]);
/// table.add_row(vec!["1".into(), "2".into()]);
/// let text = table.to_ascii();
/// assert!(text.contains("demo"));
/// assert!(text.contains('1'));
/// assert_eq!(table.to_csv().lines().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header length.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match the header"
        );
        self.rows.push(row);
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as an aligned ASCII block.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let mut header_line = String::new();
        for (i, header) in self.headers.iter().enumerate() {
            let _ = write!(header_line, "{:>width$}  ", header, width = widths[i]);
        }
        let _ = writeln!(out, "{}", header_line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(header_line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:>width$}  ", cell, width = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Renders the table as CSV (header + rows, comma separated, values
    /// quoted only when they contain a comma).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        let header: Vec<String> = self.headers.iter().map(|h| escape(h)).collect();
        let _ = writeln!(out, "{}", header.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| escape(c)).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories as
    /// needed.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from creating directories or writing.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a float with a fixed number of decimals, rendering NaN as "-".
#[must_use]
pub fn fmt_f64(value: f64, decimals: usize) -> String {
    if value.is_nan() {
        "-".to_owned()
    } else {
        format!("{value:.decimals$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("results", &["a", "bbbb", "c"]);
        t.add_row(vec!["1".into(), "2".into(), "3".into()]);
        t.add_row(vec!["10".into(), "20,5".into(), "x\"y".into()]);
        t
    }

    #[test]
    fn ascii_rendering_is_aligned_and_complete() {
        let text = sample().to_ascii();
        assert!(text.contains("## results"));
        assert!(text.contains("bbbb"));
        assert!(text.contains("20,5"));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,bbbb,c");
        assert_eq!(lines[1], "1,2,3");
        assert!(lines[2].contains("\"20,5\""));
        assert!(lines[2].contains("\"x\"\"y\""));
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("edf_experiments_table_test");
        let path = dir.join("nested").join("out.csv");
        sample().write_csv(&path).unwrap();
        let read_back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read_back, sample().to_csv());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.add_row(vec!["only one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(f64::NAN, 2), "-");
        assert_eq!(fmt_f64(0.0, 1), "0.0");
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.title(), "results");
        assert_eq!(t.row_count(), 2);
    }
}
