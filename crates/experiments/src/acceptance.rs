//! Experiment E1 (Figure 1): acceptance rate over utilization for the
//! sufficient tests (Devi, `SuperPos(2..=10)`) and the exact processor
//! demand test.

use edf_analysis::batch::{analyze_many, BoxedTest};
use edf_analysis::tests::{DeviTest, ProcessorDemandTest, SuperpositionTest};
use edf_gen::{utilization_sweep, TaskSetConfig};

use crate::report::{fmt_f64, Table};
use crate::stats::acceptance_rate;

/// Configuration of the acceptance-rate experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceptanceConfig {
    /// Utilization sweep in percent (Figure 1 uses 70–100 %).
    pub utilization_percent: std::ops::RangeInclusive<u32>,
    /// Task sets per utilization point.
    pub sets_per_point: usize,
    /// Superposition levels to include (Figure 1 uses 2..=10).
    pub superposition_levels: Vec<u64>,
    /// Base generator configuration (task count, periods, gap, seed).
    pub generator: TaskSetConfig,
}

impl Default for AcceptanceConfig {
    fn default() -> Self {
        AcceptanceConfig::quick()
    }
}

impl AcceptanceConfig {
    /// A laptop-scale configuration (hundreds of task sets) that shows the
    /// same curve shapes as the paper within seconds.
    #[must_use]
    pub fn quick() -> Self {
        AcceptanceConfig {
            utilization_percent: 70..=100,
            sets_per_point: 40,
            superposition_levels: vec![2, 3, 4, 5, 6, 7, 8, 9, 10],
            generator: TaskSetConfig::new()
                .task_count(5..=30)
                .average_gap(0.3)
                .seed(2005),
        }
    }

    /// The paper-scale configuration (many thousands of task sets); takes
    /// considerably longer.
    #[must_use]
    pub fn full() -> Self {
        AcceptanceConfig {
            sets_per_point: 600,
            generator: TaskSetConfig::new()
                .task_count(5..=100)
                .average_gap(0.3)
                .seed(2005),
            ..AcceptanceConfig::quick()
        }
    }
}

/// Acceptance rates of every test at one utilization point.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceptanceRow {
    /// Target utilization in percent.
    pub utilization_percent: u32,
    /// `(test label, acceptance rate in [0, 1])`, in presentation order.
    pub rates: Vec<(String, f64)>,
}

/// Runs the acceptance experiment and returns one row per utilization point.
///
/// Internally one [`analyze_many`] batch per sweep point: every task set is
/// prepared once and shared by all tests, and the sets fan out across the
/// CPU cores.
#[must_use]
pub fn run_acceptance(config: &AcceptanceConfig) -> Vec<AcceptanceRow> {
    let mut labels: Vec<String> = vec!["Devi".to_owned()];
    let mut tests: Vec<BoxedTest> = vec![Box::new(DeviTest::new())];
    for &level in &config.superposition_levels {
        labels.push(format!("SuperPos({level})"));
        tests.push(Box::new(SuperpositionTest::new(level)));
    }
    labels.push("Processor Demand".to_owned());
    tests.push(Box::new(ProcessorDemandTest::new()));

    let sweep = utilization_sweep(
        &config.generator,
        config.utilization_percent.clone(),
        config.sets_per_point,
    );
    sweep
        .into_iter()
        .map(|point| {
            let analyses = analyze_many(&point.task_sets, &tests);
            let rates = labels
                .iter()
                .enumerate()
                .map(|(j, label)| {
                    let accepted: Vec<bool> = analyses
                        .iter()
                        .map(|per_set| per_set[j].verdict.is_feasible())
                        .collect();
                    (label.clone(), acceptance_rate(&accepted))
                })
                .collect();
            AcceptanceRow {
                utilization_percent: point.parameter,
                rates,
            }
        })
        .collect()
}

/// Renders acceptance rows as a [`Table`] (one column per test).
#[must_use]
pub fn acceptance_table(rows: &[AcceptanceRow]) -> Table {
    let mut headers: Vec<String> = vec!["U (%)".to_owned()];
    if let Some(first) = rows.first() {
        headers.extend(first.rates.iter().map(|(label, _)| label.clone()));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Figure 1 — percentage of task sets deemed feasible",
        &header_refs,
    );
    for row in rows {
        let mut cells = vec![row.utilization_percent.to_string()];
        cells.extend(row.rates.iter().map(|(_, rate)| fmt_f64(*rate, 3)));
        table.add_row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> AcceptanceConfig {
        AcceptanceConfig {
            utilization_percent: 80..=82,
            sets_per_point: 6,
            superposition_levels: vec![2, 4],
            generator: TaskSetConfig::new()
                .task_count(4..=8)
                .average_gap(0.3)
                .seed(1),
        }
    }

    #[test]
    fn produces_one_row_per_utilization_point() {
        let rows = run_acceptance(&tiny_config());
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.rates.len(), 4); // Devi, SuperPos(2), SuperPos(4), PDA
            for (_, rate) in &row.rates {
                assert!((0.0..=1.0).contains(rate));
            }
        }
    }

    #[test]
    fn exact_test_dominates_sufficient_tests() {
        let rows = run_acceptance(&tiny_config());
        for row in &rows {
            let devi = row.rates.first().unwrap().1;
            let exact = row.rates.last().unwrap().1;
            assert!(
                exact >= devi - 1e-12,
                "the exact test accepts at least as many sets as Devi"
            );
            // Superposition levels also dominate Devi.
            for (label, rate) in &row.rates[1..row.rates.len() - 1] {
                assert!(rate >= &(devi - 1e-12), "{label} must dominate Devi");
            }
        }
    }

    #[test]
    fn table_rendering_matches_rows() {
        let rows = run_acceptance(&tiny_config());
        let table = acceptance_table(&rows);
        assert_eq!(table.row_count(), rows.len());
        assert!(table.to_ascii().contains("SuperPos(2)"));
        assert!(table.to_csv().contains("Processor Demand"));
    }

    #[test]
    fn default_and_full_configs_are_consistent() {
        assert_eq!(AcceptanceConfig::default(), AcceptanceConfig::quick());
        let full = AcceptanceConfig::full();
        assert!(full.sets_per_point > AcceptanceConfig::quick().sets_per_point);
    }
}
