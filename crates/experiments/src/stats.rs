//! Small statistics helpers shared by the experiments.

use std::num::NonZeroUsize;
use std::thread;

/// Aggregated iteration statistics over a batch of task sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationStats {
    /// Number of samples aggregated.
    pub count: usize,
    /// Mean number of iterations.
    pub mean: f64,
    /// Maximum number of iterations.
    pub max: u64,
    /// Total number of iterations.
    pub total: u64,
}

impl IterationStats {
    /// Aggregates a slice of per-task-set iteration counts.
    ///
    /// Returns a zeroed record (mean = NaN) for an empty slice.
    #[must_use]
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return IterationStats {
                count: 0,
                mean: f64::NAN,
                max: 0,
                total: 0,
            };
        }
        let total: u64 = samples.iter().sum();
        IterationStats {
            count: samples.len(),
            mean: total as f64 / samples.len() as f64,
            max: samples.iter().copied().max().unwrap_or(0),
            total,
        }
    }
}

/// Fraction of `true` values in a slice of outcomes (acceptance rate).
///
/// Returns NaN for an empty slice.
#[must_use]
pub fn acceptance_rate(outcomes: &[bool]) -> f64 {
    if outcomes.is_empty() {
        return f64::NAN;
    }
    outcomes.iter().filter(|&&accepted| accepted).count() as f64 / outcomes.len() as f64
}

/// Applies `f` to every item of `items`, splitting the work over the
/// available CPU cores with scoped threads.  Result order matches input
/// order.
///
/// Falls back to a sequential map for tiny inputs.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len().max(1));
    if workers <= 1 || items.len() < 4 {
        return items.iter().map(&f).collect();
    }
    let chunk_size = items.len().div_ceil(workers);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let chunks: Vec<(usize, &[T])> = items
        .chunks(chunk_size)
        .enumerate()
        .map(|(i, chunk)| (i * chunk_size, chunk))
        .collect();
    let slots = std::sync::Mutex::new(&mut results);
    thread::scope(|scope| {
        for (offset, chunk) in chunks {
            let f = &f;
            let slots = &slots;
            scope.spawn(move || {
                let local: Vec<R> = chunk.iter().map(f).collect();
                let mut guard = slots.lock().expect("no poisoned lock");
                for (i, value) in local.into_iter().enumerate() {
                    guard[offset + i] = Some(value);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("every slot filled by a worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_stats_basic() {
        let stats = IterationStats::from_samples(&[1, 2, 3, 10]);
        assert_eq!(stats.count, 4);
        assert_eq!(stats.max, 10);
        assert_eq!(stats.total, 16);
        assert!((stats.mean - 4.0).abs() < 1e-12);
    }

    #[test]
    fn iteration_stats_empty() {
        let stats = IterationStats::from_samples(&[]);
        assert_eq!(stats.count, 0);
        assert!(stats.mean.is_nan());
        assert_eq!(stats.max, 0);
    }

    #[test]
    fn acceptance_rate_basic() {
        assert!((acceptance_rate(&[true, true, false, false]) - 0.5).abs() < 1e-12);
        assert!((acceptance_rate(&[true]) - 1.0).abs() < 1e-12);
        assert!(acceptance_rate(&[]).is_nan());
    }

    #[test]
    fn parallel_map_preserves_order_and_values() {
        let items: Vec<u64> = (0..1_000).collect();
        let doubled = parallel_map(&items, |&x| x * 2);
        assert_eq!(doubled.len(), items.len());
        for (i, value) in doubled.iter().enumerate() {
            assert_eq!(*value, items[i] * 2);
        }
    }

    #[test]
    fn parallel_map_small_inputs() {
        assert_eq!(parallel_map(&[1, 2, 3], |&x| x + 1), vec![2, 3, 4]);
        assert_eq!(parallel_map::<u32, u32, _>(&[], |&x| x), Vec::<u32>::new());
    }
}
