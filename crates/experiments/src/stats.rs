//! Small statistics helpers shared by the experiments.
//!
//! The scoped-thread pool that used to live here has been promoted into
//! the analysis crate as [`edf_analysis::batch::parallel_map`] (together
//! with the higher-level [`edf_analysis::batch::analyze_many`] front end);
//! it is re-exported for backwards compatibility.

pub use edf_analysis::batch::parallel_map;

/// Aggregated iteration statistics over a batch of task sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationStats {
    /// Number of samples aggregated.
    pub count: usize,
    /// Mean number of iterations.
    pub mean: f64,
    /// Maximum number of iterations.
    pub max: u64,
    /// Total number of iterations.
    pub total: u64,
}

impl IterationStats {
    /// Aggregates a slice of per-task-set iteration counts.
    ///
    /// Returns a zeroed record (mean = NaN) for an empty slice.
    #[must_use]
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return IterationStats {
                count: 0,
                mean: f64::NAN,
                max: 0,
                total: 0,
            };
        }
        let total: u64 = samples.iter().sum();
        IterationStats {
            count: samples.len(),
            mean: total as f64 / samples.len() as f64,
            max: samples.iter().copied().max().unwrap_or(0),
            total,
        }
    }
}

/// Fraction of `true` values in a slice of outcomes (acceptance rate).
///
/// Returns NaN for an empty slice.
#[must_use]
pub fn acceptance_rate(outcomes: &[bool]) -> f64 {
    if outcomes.is_empty() {
        return f64::NAN;
    }
    outcomes.iter().filter(|&&accepted| accepted).count() as f64 / outcomes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_stats_basic() {
        let stats = IterationStats::from_samples(&[1, 2, 3, 10]);
        assert_eq!(stats.count, 4);
        assert_eq!(stats.max, 10);
        assert_eq!(stats.total, 16);
        assert!((stats.mean - 4.0).abs() < 1e-12);
    }

    #[test]
    fn iteration_stats_empty() {
        let stats = IterationStats::from_samples(&[]);
        assert_eq!(stats.count, 0);
        assert!(stats.mean.is_nan());
        assert_eq!(stats.max, 0);
    }

    #[test]
    fn acceptance_rate_basic() {
        assert!((acceptance_rate(&[true, true, false, false]) - 0.5).abs() < 1e-12);
        assert!((acceptance_rate(&[true]) - 1.0).abs() < 1e-12);
        assert!(acceptance_rate(&[]).is_nan());
    }

    #[test]
    fn reexported_parallel_map_works() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(&items, |&x| x * 2);
        assert_eq!(doubled[99], 198);
    }
}
