//! # `edf-experiments` — regenerating the paper's figures and tables
//!
//! This crate contains the experiment harness that reproduces the
//! evaluation of Albers & Slomka (DATE 2005):
//!
//! | Binary | Paper artifact | Library entry point |
//! |---|---|---|
//! | `fig1_acceptance` | Figure 1 — acceptance rate over utilization | [`run_acceptance`] |
//! | `fig8_utilization` | Figure 8 — iterations over utilization (avg & max) | [`run_utilization_effort`] |
//! | `fig9_period_ratio` | Figure 9 — iterations over `Tmax/Tmin` | [`run_ratio_effort`] |
//! | `table1_literature` | Table 1 — literature task sets | [`run_literature`] |
//! | `bounds_comparison` | §4.3 bound discussion | [`run_bound_comparison`] |
//!
//! Each binary prints aligned tables to stdout (the same rows/series the
//! paper reports) and writes CSV files under `results/`.  By default a
//! laptop-scale *quick* configuration is used; pass `--full` (or set
//! `EDF_EXPERIMENTS_FULL=1`) for paper-scale task-set counts.
//!
//! # Examples
//!
//! ```
//! use edf_experiments::{literature_table, run_literature};
//!
//! let rows = run_literature();
//! assert_eq!(rows.len(), 5);
//! println!("{}", literature_table(&rows).to_ascii());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod acceptance;
mod bound_study;
mod iterations;
mod report;
mod stats;

pub use acceptance::{acceptance_table, run_acceptance, AcceptanceConfig, AcceptanceRow};
pub use bound_study::{bound_table, run_bound_comparison, BoundComparison, BOUND_NAMES};
pub use iterations::{
    effort_tables, literature_table, run_literature, run_ratio_effort, run_utilization_effort,
    EffortRow, LiteratureRow, RatioEffortConfig, UtilizationEffortConfig,
};
pub use report::{fmt_f64, Table};
pub use stats::{acceptance_rate, parallel_map, IterationStats};

use std::path::PathBuf;

/// Returns `true` when the paper-scale ("full") configuration was requested
/// via the `--full` command line flag or the `EDF_EXPERIMENTS_FULL`
/// environment variable.
#[must_use]
pub fn full_scale_requested() -> bool {
    std::env::args().any(|arg| arg == "--full")
        || std::env::var("EDF_EXPERIMENTS_FULL").is_ok_and(|v| v == "1" || v == "true")
}

/// Directory into which the experiment binaries write their CSV results.
#[must_use]
pub fn results_dir() -> PathBuf {
    std::env::var_os("EDF_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_defaults_to_results() {
        // Do not rely on ambient env in the test runner beyond the default.
        if std::env::var_os("EDF_RESULTS_DIR").is_none() {
            assert_eq!(results_dir(), PathBuf::from("results"));
        }
    }

    #[test]
    fn full_scale_flag_defaults_to_false_in_tests() {
        if std::env::var_os("EDF_EXPERIMENTS_FULL").is_none() {
            assert!(!full_scale_requested());
        }
    }
}
