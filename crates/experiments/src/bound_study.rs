//! Experiment E6: comparison of the feasibility bounds of §4.3 (Baruah,
//! George, busy period, superposition, hyperperiod) on random task sets —
//! how large each bound is and how often each is the tightest.

use edf_analysis::bounds::FeasibilityBounds;
use edf_gen::TaskSetConfig;
use edf_model::{TaskSet, Time};

use crate::report::{fmt_f64, Table};
use crate::stats::parallel_map;

/// Names of the compared bounds, in presentation order.
pub const BOUND_NAMES: [&str; 5] = [
    "Baruah",
    "George",
    "Busy period",
    "Superposition",
    "Hyperperiod",
];

/// Aggregated comparison of the bounds over a batch of task sets.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundComparison {
    /// Number of task sets analysed.
    pub sets: usize,
    /// Mean bound value per bound (NaN when the bound was never defined).
    pub mean_value: Vec<(String, f64)>,
    /// Fraction of sets for which each bound was defined.
    pub defined_rate: Vec<(String, f64)>,
    /// Fraction of sets for which each bound was the (joint) tightest.
    pub tightest_rate: Vec<(String, f64)>,
}

fn bound_values(bounds: &FeasibilityBounds) -> [Option<Time>; 5] {
    [
        bounds.baruah,
        bounds.george,
        bounds.busy_period,
        bounds.superposition,
        bounds.hyperperiod,
    ]
}

/// Runs the bound comparison on `sets_per_batch` task sets drawn from
/// `generator`.
#[must_use]
pub fn run_bound_comparison(generator: &TaskSetConfig, sets_per_batch: usize) -> BoundComparison {
    let task_sets = generator.generate_many(sets_per_batch);
    let all_bounds: Vec<FeasibilityBounds> =
        parallel_map(&task_sets, |ts: &TaskSet| FeasibilityBounds::compute(ts));

    let mut sums = [0.0f64; 5];
    let mut defined = [0usize; 5];
    let mut tightest = [0usize; 5];
    for bounds in &all_bounds {
        let values = bound_values(bounds);
        let min = values.iter().flatten().min().copied();
        for (i, value) in values.iter().enumerate() {
            if let Some(v) = value {
                sums[i] += v.as_f64();
                defined[i] += 1;
                if Some(*v) == min {
                    tightest[i] += 1;
                }
            }
        }
    }

    let total = task_sets.len().max(1) as f64;
    BoundComparison {
        sets: task_sets.len(),
        mean_value: BOUND_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let mean = if defined[i] == 0 {
                    f64::NAN
                } else {
                    sums[i] / defined[i] as f64
                };
                ((*name).to_owned(), mean)
            })
            .collect(),
        defined_rate: BOUND_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| ((*name).to_owned(), defined[i] as f64 / total))
            .collect(),
        tightest_rate: BOUND_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| ((*name).to_owned(), tightest[i] as f64 / total))
            .collect(),
    }
}

/// Renders the comparison as a table (one row per bound).
#[must_use]
pub fn bound_table(comparison: &BoundComparison) -> Table {
    let mut table = Table::new(
        "Feasibility bounds (§4.3) on random task sets",
        &["Bound", "defined", "tightest", "mean value"],
    );
    for i in 0..BOUND_NAMES.len() {
        table.add_row(vec![
            comparison.mean_value[i].0.clone(),
            fmt_f64(comparison.defined_rate[i].1, 2),
            fmt_f64(comparison.tightest_rate[i].1, 2),
            fmt_f64(comparison.mean_value[i].1, 0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator() -> TaskSetConfig {
        TaskSetConfig::new()
            .task_count(5..=15)
            .utilization(0.85..=0.95)
            .average_gap(0.3)
            .seed(31)
    }

    #[test]
    fn comparison_covers_every_bound() {
        let cmp = run_bound_comparison(&generator(), 20);
        assert_eq!(cmp.sets, 20);
        assert_eq!(cmp.mean_value.len(), 5);
        assert_eq!(cmp.defined_rate.len(), 5);
        assert_eq!(cmp.tightest_rate.len(), 5);
        // With U < 1 and constrained deadlines every bound should usually be
        // defined.
        for (name, rate) in &cmp.defined_rate {
            if name != "Hyperperiod" {
                assert!(*rate > 0.9, "{name} defined only {rate}");
            }
        }
    }

    #[test]
    fn george_is_never_looser_than_baruah_on_average() {
        let cmp = run_bound_comparison(&generator(), 20);
        let mean = |name: &str| {
            cmp.mean_value
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!(mean("George") <= mean("Baruah"));
        // The superposition bound never exceeds max(George, Dmax) and is
        // close to George for these workloads.
        assert!(mean("Superposition") >= mean("George") * 0.99);
    }

    #[test]
    fn table_renders_all_bounds() {
        let table = bound_table(&run_bound_comparison(&generator(), 5));
        let text = table.to_ascii();
        for name in BOUND_NAMES {
            assert!(text.contains(name));
        }
    }
}
