//! Experiments E2–E4: the effort (number of examined test intervals) of the
//! exact tests — Figure 8 (utilization sweep), Figure 9 (period-ratio
//! sweep) and Table 1 (literature task sets).

use edf_analysis::batch::{analyze_many, BoxedTest};
use edf_analysis::tests::{
    AllApproximatedTest, BoundSelection, DeviTest, DynamicErrorTest, ProcessorDemandTest,
};
use edf_analysis::workload::PreparedWorkload;
use edf_analysis::{FeasibilityTest, Verdict};
use edf_gen::{period_ratio_sweep, utilization_sweep, TaskSetConfig};
use edf_model::{literature, TaskSet};

use crate::report::{fmt_f64, Table};
use crate::stats::IterationStats;

/// The tests compared by the effort experiments, in the paper's order.
fn effort_tests() -> (Vec<String>, Vec<BoxedTest>) {
    (
        vec![
            "Dynamic".to_owned(),
            "All Approximated".to_owned(),
            "Processor Demand".to_owned(),
        ],
        vec![
            Box::new(DynamicErrorTest::new()),
            Box::new(AllApproximatedTest::new()),
            Box::new(ProcessorDemandTest::new()),
        ],
    )
}

/// Effort statistics of every test at one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct EffortRow<P> {
    /// The swept parameter (utilization percent or period ratio).
    pub parameter: P,
    /// `(test label, statistics)` in presentation order.
    pub stats: Vec<(String, IterationStats)>,
}

/// Configuration of the Figure 8 effort-over-utilization experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationEffortConfig {
    /// Utilization sweep in percent (the paper uses 90–99 %).
    pub utilization_percent: std::ops::RangeInclusive<u32>,
    /// Task sets per utilization point.
    pub sets_per_point: usize,
    /// Base generator configuration.
    pub generator: TaskSetConfig,
}

impl Default for UtilizationEffortConfig {
    fn default() -> Self {
        UtilizationEffortConfig::quick()
    }
}

impl UtilizationEffortConfig {
    /// Laptop-scale configuration.
    #[must_use]
    pub fn quick() -> Self {
        UtilizationEffortConfig {
            utilization_percent: 90..=99,
            sets_per_point: 30,
            generator: TaskSetConfig::new()
                .task_count(5..=50)
                .average_gap(0.3)
                .seed(82),
        }
    }

    /// Paper-scale configuration (Figure 8 aggregates 18,000 task sets).
    #[must_use]
    pub fn full() -> Self {
        UtilizationEffortConfig {
            sets_per_point: 1_800,
            generator: TaskSetConfig::new()
                .task_count(5..=100)
                .average_gap(0.3)
                .seed(82),
            ..UtilizationEffortConfig::quick()
        }
    }
}

/// Runs the Figure 8 experiment: iteration statistics per utilization point.
#[must_use]
pub fn run_utilization_effort(config: &UtilizationEffortConfig) -> Vec<EffortRow<u32>> {
    let (labels, tests) = effort_tests();
    let sweep = utilization_sweep(
        &config.generator,
        config.utilization_percent.clone(),
        config.sets_per_point,
    );
    sweep
        .into_iter()
        .map(|point| EffortRow {
            parameter: point.parameter,
            stats: collect_stats(&labels, &tests, &point.task_sets),
        })
        .collect()
}

/// Configuration of the Figure 9 effort-over-period-ratio experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioEffortConfig {
    /// The `Tmax/Tmin` ratios to sweep (the paper uses 100 … 1,000,000).
    pub ratios: Vec<u64>,
    /// Smallest period.
    pub min_period: u64,
    /// Task sets per ratio.
    pub sets_per_point: usize,
    /// Base generator configuration (utilization and gap ranges).
    pub generator: TaskSetConfig,
}

impl Default for RatioEffortConfig {
    fn default() -> Self {
        RatioEffortConfig::quick()
    }
}

impl RatioEffortConfig {
    /// Laptop-scale configuration: ratios up to 100,000.
    #[must_use]
    pub fn quick() -> Self {
        RatioEffortConfig {
            ratios: vec![100, 1_000, 10_000, 100_000],
            min_period: 100,
            sets_per_point: 20,
            generator: TaskSetConfig::new()
                .task_count(5..=50)
                .utilization(0.90..=0.999)
                .average_gap(0.3)
                .seed(93),
        }
    }

    /// Paper-scale configuration: ratios up to 1,000,000, more sets, the
    /// full 5–100 task range and gaps between 10 % and 50 %.
    #[must_use]
    pub fn full() -> Self {
        RatioEffortConfig {
            ratios: vec![100, 1_000, 10_000, 100_000, 500_000, 1_000_000],
            min_period: 100,
            sets_per_point: 200,
            generator: TaskSetConfig::new()
                .task_count(5..=100)
                .utilization(0.90..=0.999)
                .average_gap(0.3)
                .seed(93),
        }
    }
}

/// Runs the Figure 9 experiment: iteration statistics per period ratio.
#[must_use]
pub fn run_ratio_effort(config: &RatioEffortConfig) -> Vec<EffortRow<u64>> {
    let (labels, tests) = effort_tests();
    let sweep = period_ratio_sweep(
        &config.generator,
        config.min_period,
        &config.ratios,
        config.sets_per_point,
    );
    sweep
        .into_iter()
        .map(|point| EffortRow {
            parameter: point.parameter,
            stats: collect_stats(&labels, &tests, &point.task_sets),
        })
        .collect()
}

/// One [`analyze_many`] batch: each task set is prepared once (bounds and
/// all) and shared by every test, with the sets fanned out across cores.
fn collect_stats(
    labels: &[String],
    tests: &[BoxedTest],
    task_sets: &[TaskSet],
) -> Vec<(String, IterationStats)> {
    let analyses = analyze_many(task_sets, tests);
    labels
        .iter()
        .enumerate()
        .map(|(j, label)| {
            let iterations: Vec<u64> = analyses
                .iter()
                .map(|per_set| per_set[j].iterations)
                .collect();
            (label.clone(), IterationStats::from_samples(&iterations))
        })
        .collect()
}

/// Renders effort rows as two tables (average and maximum iterations),
/// matching the two panels of Figures 8 and 9.
#[must_use]
pub fn effort_tables<P: std::fmt::Display>(
    title: &str,
    parameter_name: &str,
    rows: &[EffortRow<P>],
) -> (Table, Table) {
    let mut headers: Vec<String> = vec![parameter_name.to_owned()];
    if let Some(first) = rows.first() {
        headers.extend(first.stats.iter().map(|(label, _)| label.clone()));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut avg = Table::new(&format!("{title} — average iterations"), &header_refs);
    let mut max = Table::new(&format!("{title} — maximum iterations"), &header_refs);
    for row in rows {
        let mut avg_cells = vec![row.parameter.to_string()];
        let mut max_cells = vec![row.parameter.to_string()];
        for (_, stats) in &row.stats {
            avg_cells.push(fmt_f64(stats.mean, 1));
            max_cells.push(stats.max.to_string());
        }
        avg.add_row(avg_cells);
        max.add_row(max_cells);
    }
    (avg, max)
}

/// One row of the Table 1 reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiteratureRow {
    /// Name of the task set (Burns, Ma & Shin, GAP, Gresser 1, Gresser 2).
    pub name: String,
    /// Number of tasks.
    pub tasks: usize,
    /// Devi's test: `Some(iterations)` if it accepts, `None` if it fails.
    pub devi: Option<u64>,
    /// Iterations of the dynamic-error test.
    pub dynamic: u64,
    /// Iterations of the all-approximated test.
    pub all_approximated: u64,
    /// Iterations of the processor demand test (tightest bound).
    pub processor_demand: u64,
    /// Iterations of the processor demand test when limited only by the
    /// Baruah et al. bound — the configuration closest to the paper's
    /// Table 1 baseline.
    pub processor_demand_baruah: u64,
    /// Verdict of the exact tests (they all agree).
    pub feasible: bool,
}

/// Runs the Table 1 experiment on the literature task sets.
#[must_use]
pub fn run_literature() -> Vec<LiteratureRow> {
    literature::all()
        .into_iter()
        .map(|(name, ts)| {
            // One shared preparation per literature set for all five runs.
            let prepared = PreparedWorkload::new(&ts);
            let devi = DeviTest::new().analyze_prepared(&prepared);
            let dynamic = DynamicErrorTest::new().analyze_prepared(&prepared);
            let all_approx = AllApproximatedTest::new().analyze_prepared(&prepared);
            let pda = ProcessorDemandTest::new().analyze_prepared(&prepared);
            let pda_baruah =
                ProcessorDemandTest::with_bound(BoundSelection::Baruah).analyze_prepared(&prepared);
            debug_assert_eq!(dynamic.verdict, pda.verdict);
            debug_assert_eq!(all_approx.verdict, pda.verdict);
            LiteratureRow {
                name: name.to_owned(),
                tasks: ts.len(),
                devi: match devi.verdict {
                    Verdict::Feasible => Some(devi.iterations),
                    _ => None,
                },
                dynamic: dynamic.iterations,
                all_approximated: all_approx.iterations,
                processor_demand: pda.iterations,
                processor_demand_baruah: pda_baruah.iterations,
                feasible: pda.verdict == Verdict::Feasible,
            }
        })
        .collect()
}

/// Renders the literature rows as a table shaped like the paper's Table 1.
#[must_use]
pub fn literature_table(rows: &[LiteratureRow]) -> Table {
    let mut table = Table::new(
        "Table 1 — iterations for example task graphs",
        &[
            "Test",
            "Tasks",
            "Devi",
            "Dyn.",
            "All Appr.",
            "Proc. Dem.",
            "Proc. Dem. (Baruah bound)",
            "Verdict",
        ],
    );
    for row in rows {
        table.add_row(vec![
            row.name.clone(),
            row.tasks.to_string(),
            row.devi.map_or("FAILED".to_owned(), |i| i.to_string()),
            row.dynamic.to_string(),
            row.all_approximated.to_string(),
            row.processor_demand.to_string(),
            row.processor_demand_baruah.to_string(),
            if row.feasible {
                "feasible"
            } else {
                "infeasible"
            }
            .to_owned(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_utilization_config() -> UtilizationEffortConfig {
        UtilizationEffortConfig {
            utilization_percent: 95..=96,
            sets_per_point: 5,
            generator: TaskSetConfig::new()
                .task_count(4..=10)
                .average_gap(0.3)
                .seed(17),
        }
    }

    #[test]
    fn utilization_effort_produces_rows_with_all_tests() {
        let rows = run_utilization_effort(&tiny_utilization_config());
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.stats.len(), 3);
            for (_, stats) in &row.stats {
                assert_eq!(stats.count, 5);
                assert!(stats.max >= 1);
            }
        }
    }

    #[test]
    fn new_tests_do_not_exceed_processor_demand_effort_on_average() {
        let rows = run_utilization_effort(&tiny_utilization_config());
        for row in &rows {
            let lookup = |label: &str| {
                row.stats
                    .iter()
                    .find(|(l, _)| l == label)
                    .map(|(_, s)| s.mean)
                    .expect("label present")
            };
            // On average the approximating tests are at least as cheap as
            // the plain processor demand walk (usually far cheaper).
            assert!(lookup("All Approximated") <= lookup("Processor Demand") * 1.5 + 5.0);
            assert!(lookup("Dynamic") <= lookup("Processor Demand") * 1.5 + 5.0);
        }
    }

    #[test]
    fn ratio_effort_runs_and_keeps_new_tests_flat() {
        let config = RatioEffortConfig {
            ratios: vec![100, 10_000],
            min_period: 100,
            sets_per_point: 4,
            generator: TaskSetConfig::new()
                .task_count(4..=10)
                .utilization(0.92..=0.97)
                .average_gap(0.3)
                .seed(5),
        };
        let rows = run_ratio_effort(&config);
        assert_eq!(rows.len(), 2);
        let lookup = |row: &EffortRow<u64>, label: &str| {
            row.stats
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, s)| s.mean)
                .expect("label present")
        };
        // The processor demand effort grows with the ratio...
        assert!(lookup(&rows[1], "Processor Demand") > lookup(&rows[0], "Processor Demand"));
        // ...while the all-approximated test stays orders of magnitude below.
        assert!(lookup(&rows[1], "All Approximated") < lookup(&rows[1], "Processor Demand"));
    }

    #[test]
    fn effort_tables_have_matching_shapes() {
        let rows = run_utilization_effort(&tiny_utilization_config());
        let (avg, max) = effort_tables("Figure 8", "U (%)", &rows);
        assert_eq!(avg.row_count(), rows.len());
        assert_eq!(max.row_count(), rows.len());
        assert!(avg.to_ascii().contains("All Approximated"));
        assert!(max.to_ascii().contains("Processor Demand"));
    }

    #[test]
    fn literature_rows_match_table_1_structure() {
        let rows = run_literature();
        assert_eq!(rows.len(), 5);
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["Burns", "Ma & Shin", "GAP", "Gresser 1", "Gresser 2"]
        );
        for row in &rows {
            assert!(
                row.feasible,
                "{} must be feasible like in the paper",
                row.name
            );
            assert!(
                row.processor_demand >= row.all_approximated,
                "{}: the all-approximated test must not need more intervals than PDA",
                row.name
            );
            assert!(
                row.processor_demand_baruah >= row.processor_demand,
                "{}: the Baruah-bound PDA cannot be cheaper than the tightest-bound PDA",
                row.name
            );
        }
        // Burns and GAP are accepted by Devi; the reconstructed Ma & Shin and
        // Gresser sets are not (as in Table 1).
        assert!(rows[0].devi.is_some(), "Burns accepted by Devi");
        assert!(rows[2].devi.is_some(), "GAP accepted by Devi");
        assert!(rows[1].devi.is_none(), "Ma & Shin rejected by Devi");
        assert!(rows[3].devi.is_none(), "Gresser 1 rejected by Devi");
        assert!(rows[4].devi.is_none(), "Gresser 2 rejected by Devi");
    }

    #[test]
    fn literature_table_renders_failed_entries() {
        let table = literature_table(&run_literature());
        let text = table.to_ascii();
        assert!(text.contains("FAILED"));
        assert!(text.contains("Burns"));
        assert_eq!(table.row_count(), 5);
    }
}
