//! Regenerates Figure 8: average and maximum number of test intervals for
//! the dynamic-error, all-approximated and processor demand tests over the
//! target utilization (90–99 %).
//!
//! Usage: `cargo run -p edf-experiments --release --bin fig8_utilization [--full]`

use edf_experiments::{
    effort_tables, full_scale_requested, results_dir, run_utilization_effort,
    UtilizationEffortConfig,
};

fn main() {
    let config = if full_scale_requested() {
        println!("running paper-scale (full) configuration — this takes a while\n");
        UtilizationEffortConfig::full()
    } else {
        println!("running quick configuration (pass --full for paper-scale counts)\n");
        UtilizationEffortConfig::quick()
    };
    let rows = run_utilization_effort(&config);
    let (avg, max) = effort_tables(
        "Figure 8 — effort for different utilizations",
        "U (%)",
        &rows,
    );
    println!("{}", avg.to_ascii());
    println!("{}", max.to_ascii());

    let dir = results_dir();
    for (table, file) in [(&avg, "fig8_average.csv"), (&max, "fig8_maximum.csv")] {
        let path = dir.join(file);
        match table.write_csv(&path) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("could not write {}: {err}", path.display()),
        }
    }
}
