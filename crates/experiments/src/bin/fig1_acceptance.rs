//! Regenerates Figure 1: percentage of task sets deemed feasible over the
//! target utilization, for Devi, SuperPos(2..=10) and the processor demand
//! test.
//!
//! Usage: `cargo run -p edf-experiments --release --bin fig1_acceptance [--full]`

use edf_experiments::{
    acceptance_table, full_scale_requested, results_dir, run_acceptance, AcceptanceConfig,
};

fn main() {
    let config = if full_scale_requested() {
        println!("running paper-scale (full) configuration — this takes a while\n");
        AcceptanceConfig::full()
    } else {
        println!("running quick configuration (pass --full for paper-scale counts)\n");
        AcceptanceConfig::quick()
    };
    let rows = run_acceptance(&config);
    let table = acceptance_table(&rows);
    println!("{}", table.to_ascii());

    let path = results_dir().join("fig1_acceptance.csv");
    match table.write_csv(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}
