//! Regenerates Figure 9: average and maximum number of test intervals for
//! the dynamic-error, all-approximated and processor demand tests over the
//! period ratio `Tmax/Tmin`.
//!
//! Usage: `cargo run -p edf-experiments --release --bin fig9_period_ratio [--full]`

use edf_experiments::{
    effort_tables, full_scale_requested, results_dir, run_ratio_effort, RatioEffortConfig,
};

fn main() {
    let config = if full_scale_requested() {
        println!("running paper-scale (full) configuration — this takes a while\n");
        RatioEffortConfig::full()
    } else {
        println!("running quick configuration (pass --full for paper-scale counts)\n");
        RatioEffortConfig::quick()
    };
    let rows = run_ratio_effort(&config);
    let (avg, max) = effort_tables(
        "Figure 9 — effort for different values of Tmax/Tmin",
        "Tmax/Tmin",
        &rows,
    );
    println!("{}", avg.to_ascii());
    println!("{}", max.to_ascii());

    let dir = results_dir();
    for (table, file) in [(&avg, "fig9_average.csv"), (&max, "fig9_maximum.csv")] {
        let path = dir.join(file);
        match table.write_csv(&path) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("could not write {}: {err}", path.display()),
        }
    }
}
