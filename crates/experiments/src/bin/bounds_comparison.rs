//! Compares the feasibility bounds of §4.3 (Baruah, George, busy period,
//! superposition, hyperperiod) on random task sets: how often each bound is
//! defined, how often it is the tightest, and its mean value.
//!
//! Usage: `cargo run -p edf-experiments --release --bin bounds_comparison [--full]`

use edf_experiments::{bound_table, full_scale_requested, results_dir, run_bound_comparison};
use edf_gen::TaskSetConfig;

fn main() {
    let sets = if full_scale_requested() { 2_000 } else { 200 };
    let generator = TaskSetConfig::new()
        .task_count(5..=50)
        .utilization(0.85..=0.99)
        .average_gap(0.3)
        .seed(463);
    println!("comparing feasibility bounds on {sets} random task sets\n");
    let comparison = run_bound_comparison(&generator, sets);
    let table = bound_table(&comparison);
    println!("{}", table.to_ascii());

    let path = results_dir().join("bounds_comparison.csv");
    match table.write_csv(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}
