//! Regenerates Table 1: iterations of Devi's test, the dynamic-error test,
//! the all-approximated test and the processor demand test on the five
//! literature task sets (Burns, Ma & Shin, GAP, Gresser 1, Gresser 2).
//!
//! Usage: `cargo run -p edf-experiments --release --bin table1_literature`

use edf_experiments::{literature_table, results_dir, run_literature};

fn main() {
    let rows = run_literature();
    let table = literature_table(&rows);
    println!("{}", table.to_ascii());

    let path = results_dir().join("table1_literature.csv");
    match table.write_csv(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}
