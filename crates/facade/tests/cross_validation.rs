//! Cross-crate integration tests: the analytical feasibility tests
//! (`edf-analysis`), the random generator (`edf-gen`) and the discrete-event
//! simulator (`edf-sim`) must all tell the same story.

use edf_feasibility::{
    simulate_edf_feasibility, AllApproximatedTest, DeviTest, DynamicErrorTest, FeasibilityTest,
    OracleVerdict, PeriodDistribution, ProcessorDemandTest, QpaTest, SuperpositionTest,
    TaskSetConfig, Verdict,
};

/// The analytical exact tests agree with the simulation oracle on random
/// task sets whose hyperperiod is small enough for exact simulation.
#[test]
fn exact_tests_agree_with_simulation_oracle() {
    // Periods from a harmonic-friendly menu keep the hyperperiod tractable
    // so the oracle is exact.
    let config = TaskSetConfig::new()
        .task_count(3..=8)
        .utilization(0.70..=0.99)
        .average_gap(0.35)
        .periods(PeriodDistribution::Choice(vec![4, 8, 10, 16, 20, 40, 80]))
        .seed(1201);
    let mut simulated_feasible = 0;
    let mut simulated_infeasible = 0;
    for ts in config.generate_many(60) {
        let analytic = ProcessorDemandTest::new().analyze(&ts).verdict;
        let dynamic = DynamicErrorTest::new().analyze(&ts).verdict;
        let all_approx = AllApproximatedTest::new().analyze(&ts).verdict;
        assert_eq!(analytic, dynamic, "dynamic-error disagrees on {ts}");
        assert_eq!(analytic, all_approx, "all-approximated disagrees on {ts}");
        match simulate_edf_feasibility(&ts) {
            OracleVerdict::Schedulable => {
                simulated_feasible += 1;
                assert_eq!(
                    analytic,
                    Verdict::Feasible,
                    "oracle feasible but analysis not on {ts}"
                );
            }
            OracleVerdict::MissAt(_) => {
                simulated_infeasible += 1;
                assert_eq!(
                    analytic,
                    Verdict::Infeasible,
                    "oracle miss but analysis feasible on {ts}"
                );
            }
            OracleVerdict::Inconclusive => {}
        }
    }
    // The sample must exercise both outcomes to be meaningful.
    assert!(
        simulated_feasible > 5,
        "too few feasible samples ({simulated_feasible})"
    );
    assert!(
        simulated_infeasible > 5,
        "too few infeasible samples ({simulated_infeasible})"
    );
}

/// Sufficient tests never accept a set the exact tests reject, across the
/// generator's whole parameter space.
#[test]
fn sufficient_tests_are_sound_on_generated_sets() {
    let config = TaskSetConfig::new()
        .task_count(5..=40)
        .utilization(0.80..=0.999)
        .average_gap(0.4)
        .seed(77);
    let sufficient: Vec<Box<dyn FeasibilityTest>> = vec![
        Box::new(DeviTest::new()),
        Box::new(SuperpositionTest::new(1)),
        Box::new(SuperpositionTest::new(3)),
        Box::new(SuperpositionTest::new(6)),
    ];
    for ts in config.generate_many(120) {
        let exact = ProcessorDemandTest::new().analyze(&ts).verdict;
        for test in &sufficient {
            let verdict = test.analyze(&ts).verdict;
            if verdict == Verdict::Feasible {
                assert_eq!(
                    exact,
                    Verdict::Feasible,
                    "{} accepted a set the exact test rejects: {ts}",
                    test.name()
                );
            }
        }
    }
}

/// QPA and the processor demand test agree on wide-spread, high-utilization
/// workloads (the hard case for both).
#[test]
fn qpa_matches_processor_demand_on_wide_period_spread() {
    let config = TaskSetConfig::new()
        .task_count(5..=30)
        .utilization(0.90..=0.99)
        .average_gap(0.3)
        .periods(PeriodDistribution::RatioControlled {
            min: 50,
            ratio: 10_000,
        })
        .seed(4242);
    for ts in config.generate_many(40) {
        let qpa = QpaTest::new().analyze(&ts);
        let pda = ProcessorDemandTest::new().analyze(&ts);
        assert_eq!(qpa.verdict, pda.verdict, "QPA disagrees on {ts}");
        assert!(qpa.verdict.is_decisive());
    }
}

/// The headline performance claim, end to end: on high-utilization task
/// sets with a wide period spread, the new exact tests examine far fewer
/// intervals than the processor demand baseline while returning identical
/// verdicts.
#[test]
fn new_tests_are_cheaper_on_the_paper_workload() {
    let config = TaskSetConfig::new()
        .task_count(10..=50)
        .utilization(0.93..=0.99)
        .average_gap(0.3)
        .periods(PeriodDistribution::RatioControlled {
            min: 100,
            ratio: 10_000,
        })
        .seed(555);
    let sets = config.generate_many(25);
    let mut pda_total = 0u64;
    let mut dynamic_total = 0u64;
    let mut all_total = 0u64;
    for ts in &sets {
        let pda = ProcessorDemandTest::new().analyze(ts);
        let dynamic = DynamicErrorTest::new().analyze(ts);
        let all_approx = AllApproximatedTest::new().analyze(ts);
        assert_eq!(pda.verdict, dynamic.verdict);
        assert_eq!(pda.verdict, all_approx.verdict);
        pda_total += pda.iterations;
        dynamic_total += dynamic.iterations;
        all_total += all_approx.iterations;
    }
    assert!(
        dynamic_total * 2 < pda_total,
        "dynamic-error should need at most half the intervals overall ({dynamic_total} vs {pda_total})"
    );
    assert!(
        all_total * 2 < pda_total,
        "all-approximated should need at most half the intervals overall ({all_total} vs {pda_total})"
    );
}
