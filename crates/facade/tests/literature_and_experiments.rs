//! Integration tests of the literature task sets and the experiment
//! harness: the Table 1 character must hold end to end, and the experiment
//! entry points must produce consistent, well-shaped results.

use edf_feasibility::experiments::{
    acceptance_table, literature_table, run_acceptance, run_literature, run_ratio_effort,
    run_utilization_effort, AcceptanceConfig, RatioEffortConfig, UtilizationEffortConfig,
};
use edf_feasibility::model::literature;
use edf_feasibility::{
    simulate_edf_feasibility, AllApproximatedTest, DeviTest, DynamicErrorTest, FeasibilityTest,
    OracleVerdict, ProcessorDemandTest, TaskSetConfig, Verdict,
};

/// Every literature set is feasible, and the exact tests agree with each
/// other and (where tractable) with the simulation oracle.
#[test]
fn literature_sets_are_feasible_and_consistent() {
    for (name, ts) in literature::all() {
        let pda = ProcessorDemandTest::new().analyze(&ts);
        let dynamic = DynamicErrorTest::new().analyze(&ts);
        let all_approx = AllApproximatedTest::new().analyze(&ts);
        assert_eq!(pda.verdict, Verdict::Feasible, "{name} must be feasible");
        assert_eq!(dynamic.verdict, Verdict::Feasible, "{name}: dynamic-error");
        assert_eq!(
            all_approx.verdict,
            Verdict::Feasible,
            "{name}: all-approximated"
        );
        match simulate_edf_feasibility(&ts) {
            OracleVerdict::Schedulable | OracleVerdict::Inconclusive => {}
            OracleVerdict::MissAt(at) => panic!("{name}: simulator found a miss at {at}"),
        }
    }
}

/// The Table 1 character: Devi accepts Burns and GAP, fails on the other
/// three, and the new tests never need more intervals than the processor
/// demand baseline.
#[test]
fn table_1_shape_is_reproduced() {
    let rows = run_literature();
    assert_eq!(rows.len(), 5);
    let by_name = |name: &str| rows.iter().find(|r| r.name == name).expect("row exists");

    assert!(by_name("Burns").devi.is_some());
    assert!(by_name("GAP").devi.is_some());
    assert!(by_name("Ma & Shin").devi.is_none());
    assert!(by_name("Gresser 1").devi.is_none());
    assert!(by_name("Gresser 2").devi.is_none());

    for row in &rows {
        assert!(row.feasible, "{} is feasible in Table 1", row.name);
        assert!(row.processor_demand >= row.all_approximated);
        assert!(row.processor_demand_baruah >= row.processor_demand);
        // Devi acceptance implies the new tests stay at one check per task.
        if row.devi.is_some() {
            assert!(row.dynamic <= row.tasks as u64);
            assert!(row.all_approximated <= row.tasks as u64);
        }
    }

    // The rendered table mirrors the paper's FAILED entries.
    let rendered = literature_table(&rows).to_ascii();
    assert_eq!(rendered.matches("FAILED").count(), 3);
}

/// Figure 1 shape: acceptance rates fall with utilization, higher
/// superposition levels dominate lower ones, and the exact test dominates
/// everything.
#[test]
fn figure_1_shape_is_reproduced() {
    let config = AcceptanceConfig {
        utilization_percent: 75..=95,
        sets_per_point: 12,
        superposition_levels: vec![2, 5, 10],
        generator: TaskSetConfig::new()
            .task_count(5..=20)
            .average_gap(0.3)
            .seed(11),
    };
    let rows = run_acceptance(&config);
    assert_eq!(rows.len(), 21);
    let rate_of = |row: &edf_feasibility::experiments::AcceptanceRow, label: &str| {
        row.rates
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, r)| *r)
            .expect("label present")
    };
    for row in &rows {
        let devi = rate_of(row, "Devi");
        let sp2 = rate_of(row, "SuperPos(2)");
        let sp10 = rate_of(row, "SuperPos(10)");
        let exact = rate_of(row, "Processor Demand");
        assert!(sp2 >= devi - 1e-9);
        assert!(sp10 >= sp2 - 1e-9);
        assert!(exact >= sp10 - 1e-9);
    }
    // At 75 % utilization (nearly) everything is accepted by the exact test;
    // at 95 % the sufficient tests have visibly fallen behind it.
    let first = &rows[0];
    let last = rows.last().unwrap();
    assert!(rate_of(first, "Processor Demand") > 0.9);
    assert!(rate_of(last, "Processor Demand") >= rate_of(last, "Devi"));
    // The acceptance table renders every series.
    let table = acceptance_table(&rows);
    assert!(table.to_ascii().contains("SuperPos(10)"));
}

/// Figure 8 shape: effort grows towards 100 % utilization and the new tests
/// stay well below the processor demand test.
#[test]
fn figure_8_shape_is_reproduced() {
    let config = UtilizationEffortConfig {
        utilization_percent: 92..=98,
        sets_per_point: 8,
        generator: TaskSetConfig::new()
            .task_count(5..=30)
            .average_gap(0.3)
            .seed(21),
    };
    let rows = run_utilization_effort(&config);
    assert_eq!(rows.len(), 7);
    let mean_of = |row: &edf_feasibility::experiments::EffortRow<u32>, label: &str| {
        row.stats
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| s.mean)
            .expect("label present")
    };
    // Aggregate comparison over the sweep (single points are noisy).
    let total_pda: f64 = rows.iter().map(|r| mean_of(r, "Processor Demand")).sum();
    let total_dynamic: f64 = rows.iter().map(|r| mean_of(r, "Dynamic")).sum();
    let total_all: f64 = rows.iter().map(|r| mean_of(r, "All Approximated")).sum();
    assert!(
        total_dynamic < total_pda,
        "dynamic {total_dynamic} vs pda {total_pda}"
    );
    assert!(
        total_all < total_pda,
        "all-approx {total_all} vs pda {total_pda}"
    );
    // Effort at 98 % exceeds effort at 92 % for the processor demand test.
    assert!(mean_of(&rows[6], "Processor Demand") > mean_of(&rows[0], "Processor Demand"));
}

/// Figure 9 shape: the processor demand effort grows steeply with the
/// period ratio while the new tests stay (nearly) flat.
#[test]
fn figure_9_shape_is_reproduced() {
    let config = RatioEffortConfig {
        ratios: vec![100, 10_000, 100_000],
        min_period: 100,
        sets_per_point: 6,
        generator: TaskSetConfig::new()
            .task_count(5..=30)
            .utilization(0.92..=0.98)
            .average_gap(0.3)
            .seed(33),
    };
    let rows = run_ratio_effort(&config);
    assert_eq!(rows.len(), 3);
    let mean_of = |row: &edf_feasibility::experiments::EffortRow<u64>, label: &str| {
        row.stats
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| s.mean)
            .expect("label present")
    };
    let pda_small = mean_of(&rows[0], "Processor Demand");
    let pda_large = mean_of(&rows[2], "Processor Demand");
    assert!(
        pda_large > pda_small * 5.0,
        "PDA effort must explode with the ratio ({pda_small} -> {pda_large})"
    );
    let all_large = mean_of(&rows[2], "All Approximated");
    let dynamic_large = mean_of(&rows[2], "Dynamic");
    assert!(
        all_large * 5.0 < pda_large,
        "all-approximated stays far below PDA"
    );
    assert!(
        dynamic_large * 5.0 < pda_large,
        "dynamic stays far below PDA"
    );
}

/// Devi's verdict equals SuperPos(1) on the (constrained-deadline)
/// literature sets — Lemma 2 end to end.
#[test]
fn devi_equals_superpos1_on_literature_sets() {
    use edf_feasibility::SuperpositionTest;
    for (name, ts) in literature::all() {
        assert!(
            ts.all_constrained_or_implicit(),
            "{name} is constrained-deadline"
        );
        let devi = DeviTest::new().analyze(&ts).verdict;
        let sp1 = SuperpositionTest::new(1).analyze(&ts).verdict;
        assert_eq!(devi, sp1, "Lemma 2 violated on {name}");
    }
}
