//! Event-stream extension: analysing bursty stimuli with Gresser-style
//! event streams (§2 / §3.6 of the paper).
//!
//! A bursty interrupt source cannot be captured faithfully by a single
//! sporadic task: modelling the burst as one "period = inner distance" task
//! is hugely pessimistic, while "period = outer cycle" is optimistic.  The
//! event-stream model describes the burst exactly; its demand bound
//! function can be checked against the processor capacity directly.
//!
//! Run with `cargo run --example event_stream_burst`.

use edf_feasibility::model::{EventStream, EventStreamTask};
use edf_feasibility::{FeasibilityTest, ProcessorDemandTest, Task, TaskError, TaskSet, Time};

fn main() -> Result<(), TaskError> {
    // A background periodic load...
    let background = TaskSet::from_tasks(vec![
        Task::new(Time::new(2), Time::new(8), Time::new(10))?.named("control"),
        Task::new(Time::new(5), Time::new(35), Time::new(40))?.named("logging"),
    ]);

    // ...plus a bursty interrupt source: bursts of 4 events, 5 time units
    // apart inside the burst, the burst repeating every 100 time units;
    // each event needs 3 time units of handling within a deadline of 12.
    let burst_stream = EventStream::bursty(4, Time::new(5), Time::new(100));
    let interrupt = EventStreamTask::new(burst_stream, Time::new(3), Time::new(12))
        .expect("valid event stream task")
        .named("burst_irq");

    println!("background utilization : {:.3}", background.utilization());
    println!(
        "burst source rate      : {:.3} events / time unit",
        interrupt.stream().rate()
    );
    println!("burst source utilization: {:.3}", interrupt.utilization());
    println!();

    // Demand-based feasibility of the combined system: check
    // dbf_background(I) + dbf_burst(I) <= I at every change point up to a
    // horizon (two outer burst cycles is enough here: beyond that the total
    // density is below 1 and the demand can never catch up again).
    let horizon = Time::new(250);
    let mut change_points: Vec<Time> = interrupt
        .stream()
        .change_points(horizon)
        .into_iter()
        .map(|t| t.saturating_add(interrupt.deadline()))
        .collect();
    for task in &background {
        let mut deadline = task.deadline();
        while deadline <= horizon {
            change_points.push(deadline);
            deadline += task.period();
        }
    }
    change_points.sort_unstable();
    change_points.dedup();

    let mut worst_slack = i64::MAX;
    let mut violations = 0usize;
    for &interval in &change_points {
        let demand_background = edf_feasibility::analysis::demand::dbf_set(&background, interval);
        let demand_burst = interrupt.dbf(interval);
        let total = demand_background + demand_burst;
        let slack = interval.as_u64() as i64 - total.as_u64() as i64;
        worst_slack = worst_slack.min(slack);
        if total > interval {
            violations += 1;
            println!("violation: interval {interval}: demand {total} exceeds the capacity");
        }
    }
    println!(
        "checked {} change points up to {horizon}: {} violations, minimum slack {}",
        change_points.len(),
        violations,
        worst_slack
    );
    println!();

    // Compare with the two naive sporadic abstractions of the same burst.
    let pessimistic = {
        let mut ts = background.clone();
        ts.push(
            Task::new(Time::new(3), Time::new(12), Time::new(5))?.named("burst_as_dense_sporadic"),
        );
        ts
    };
    let optimistic = {
        let mut ts = background.clone();
        ts.push(
            Task::new(Time::new(3), Time::new(12), Time::new(100))?
                .named("burst_as_sparse_sporadic"),
        );
        ts
    };
    let exact = ProcessorDemandTest::new();
    println!(
        "naive 'period = inner distance' abstraction: {} (pessimistic, U = {:.2})",
        exact.analyze(&pessimistic).verdict,
        pessimistic.utilization()
    );
    println!(
        "naive 'period = outer cycle' abstraction   : {} (optimistic — misses the burst!)",
        exact.analyze(&optimistic).verdict
    );
    println!("event-stream model                          : captures the burst exactly");

    Ok(())
}
