//! Avionics case study: the Generic Avionics Platform (GAP) workload of
//! Table 1, plus a sensitivity analysis — how much can the radar tracking
//! load grow before the system stops being schedulable, and how much
//! cheaper are the new exact tests compared to the processor demand test
//! while answering that question.
//!
//! Run with `cargo run --example avionics_gap`.

use edf_feasibility::model::literature;
use edf_feasibility::{
    AllApproximatedTest, DeviTest, DynamicErrorTest, FeasibilityTest, ProcessorDemandTest, Task,
    TaskSet,
};

fn main() {
    let gap = literature::gap();
    println!(
        "Generic Avionics Platform: {} tasks, U = {:.3}",
        gap.len(),
        gap.utilization()
    );
    println!();

    // Baseline verdicts and effort.
    let tests: Vec<(&str, Box<dyn FeasibilityTest>)> = vec![
        ("devi", Box::new(DeviTest::new())),
        ("dynamic-error", Box::new(DynamicErrorTest::new())),
        ("all-approximated", Box::new(AllApproximatedTest::new())),
        ("processor-demand", Box::new(ProcessorDemandTest::new())),
    ];
    println!("{:<18} {:>10} {:>12}", "test", "verdict", "iterations");
    for (name, test) in &tests {
        let analysis = test.analyze(&gap);
        println!(
            "{:<18} {:>10} {:>12}",
            name,
            analysis.verdict.to_string(),
            analysis.iterations
        );
    }
    println!();

    // Sensitivity: scale the radar tracking filter's execution time until
    // the system becomes infeasible, comparing the effort of the exact
    // tests at every step.
    println!("sensitivity of the radar tracking filter WCET (scaling in steps of 25%):");
    println!(
        "{:>7} {:>8} {:>10} {:>14} {:>14} {:>14}",
        "scale", "U", "verdict", "dyn iters", "all-appr iters", "pda iters"
    );
    let mut scale_percent = 100u64;
    loop {
        let scaled = scale_task(&gap, "gap_radar_tracking_filter", scale_percent);
        let dynamic = DynamicErrorTest::new().analyze(&scaled);
        let all_approx = AllApproximatedTest::new().analyze(&scaled);
        let pda = ProcessorDemandTest::new().analyze(&scaled);
        assert_eq!(dynamic.verdict, pda.verdict, "exact tests must agree");
        println!(
            "{:>6}% {:>8.3} {:>10} {:>14} {:>14} {:>14}",
            scale_percent,
            scaled.utilization(),
            pda.verdict.to_string(),
            dynamic.iterations,
            all_approx.iterations,
            pda.iterations
        );
        if pda.verdict.is_infeasible() || scale_percent >= 600 {
            break;
        }
        scale_percent += 25;
    }
}

/// Returns a copy of the task set with the WCET of the named task scaled to
/// `percent` of its original value.
fn scale_task(task_set: &TaskSet, name: &str, percent: u64) -> TaskSet {
    task_set
        .iter()
        .map(|task| {
            if task.name() == Some(name) {
                scale_wcet(task, percent)
            } else {
                task.clone()
            }
        })
        .collect()
}

fn scale_wcet(task: &Task, percent: u64) -> Task {
    task.with_scaled_wcet(percent, 100)
}
