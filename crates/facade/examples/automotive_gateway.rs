//! Automotive gateway case study: a CAN-gateway-style workload with a wide
//! spread of periods (fast bus handlers next to slow diagnostic jobs) — the
//! regime of Figure 9 of the paper in which the classic processor demand
//! test degenerates while the new exact tests stay cheap.
//!
//! The example also shows why EDF is the right scheduler for the workload:
//! the same task set misses deadlines under deadline-monotonic fixed
//! priorities.
//!
//! Run with `cargo run --example automotive_gateway` (use `--release` for
//! the larger sweep at the end).

use edf_feasibility::{
    AllApproximatedTest, DynamicErrorTest, FeasibilityTest, PeriodDistribution,
    ProcessorDemandTest, SchedulingPolicy, Simulator, Task, TaskError, TaskSet, TaskSetConfig,
    Time,
};

fn gateway() -> Result<TaskSet, TaskError> {
    // Times in microseconds.
    Ok(TaskSet::from_tasks(vec![
        Task::new(Time::new(45), Time::new(200), Time::new(250))?.named("can_rx_high"),
        Task::new(Time::new(60), Time::new(400), Time::new(500))?.named("can_rx_low"),
        Task::new(Time::new(120), Time::new(900), Time::new(1_000))?.named("frame_routing"),
        Task::new(Time::new(300), Time::new(4_000), Time::new(5_000))?.named("signal_gateway"),
        Task::new(Time::new(900), Time::new(9_000), Time::new(10_000))?.named("network_mgmt"),
        Task::new(Time::new(4_000), Time::new(45_000), Time::new(50_000))?.named("diagnostics"),
        Task::new(Time::new(30_000), Time::new(400_000), Time::new(500_000))?
            .named("flash_journal"),
        Task::new(Time::new(110_000), Time::new(900_000), Time::new(1_000_000))?
            .named("key_rotation"),
    ]))
}

fn main() -> Result<(), TaskError> {
    let ts = gateway()?;
    println!(
        "automotive gateway: {} tasks, U = {:.3}, Tmax/Tmin = {:.0}",
        ts.len(),
        ts.utilization(),
        ts.period_ratio().unwrap_or(f64::NAN)
    );
    println!();

    // Exact analyses: identical verdicts, very different effort.
    let dynamic = DynamicErrorTest::new().analyze(&ts);
    let all_approx = AllApproximatedTest::new().analyze(&ts);
    let pda = ProcessorDemandTest::new().analyze(&ts);
    println!(
        "dynamic-error     : {:<10} after {:>6} intervals",
        dynamic.verdict.to_string(),
        dynamic.iterations
    );
    println!(
        "all-approximated  : {:<10} after {:>6} intervals",
        all_approx.verdict.to_string(),
        all_approx.iterations
    );
    println!(
        "processor-demand  : {:<10} after {:>6} intervals",
        pda.verdict.to_string(),
        pda.iterations
    );
    println!();

    // EDF vs. fixed priorities on the same workload.
    let horizon = Time::new(2_000_000);
    let edf = Simulator::new(&ts).horizon(horizon).run();
    let dm = Simulator::new(&ts)
        .policy(SchedulingPolicy::DeadlineMonotonic)
        .horizon(horizon)
        .run();
    println!(
        "simulation over {horizon} us: EDF misses = {}, DM misses = {}, preemptions (EDF) = {}",
        edf.deadline_misses.len(),
        dm.deadline_misses.len(),
        edf.preemptions
    );
    println!();

    // A small Figure-9-style sweep: random gateways with growing period
    // spread, comparing the examined intervals of the exact tests.
    println!("period-spread sweep (random gateway-like task sets, U in [0.90, 0.97]):");
    println!(
        "{:>10} {:>14} {:>16} {:>16}",
        "Tmax/Tmin", "dynamic", "all-approximated", "processor-demand"
    );
    for ratio in [100u64, 1_000, 10_000, 100_000] {
        let config = TaskSetConfig::new()
            .task_count(8..=20)
            .utilization(0.90..=0.97)
            .average_gap(0.2)
            .periods(PeriodDistribution::RatioControlled { min: 100, ratio })
            .seed(7 + ratio);
        let sets = config.generate_many(10);
        let mean = |test: &dyn FeasibilityTest| -> f64 {
            sets.iter()
                .map(|ts| test.analyze(ts).iterations as f64)
                .sum::<f64>()
                / sets.len() as f64
        };
        println!(
            "{:>10} {:>14.1} {:>16.1} {:>16.1}",
            ratio,
            mean(&DynamicErrorTest::new()),
            mean(&AllApproximatedTest::new()),
            mean(&ProcessorDemandTest::new()),
        );
    }

    Ok(())
}
