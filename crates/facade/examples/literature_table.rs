//! Reproduces the shape of Table 1 of the paper from the library API: the
//! number of examined test intervals for Devi's test, the two new exact
//! tests and the processor demand test on the literature task sets.
//!
//! Run with `cargo run --example literature_table`.

use edf_feasibility::experiments::{literature_table, run_literature};

fn main() {
    let rows = run_literature();
    println!("{}", literature_table(&rows).to_ascii());

    // Summarize the headline claim of the paper for these examples.
    for row in &rows {
        let speedup = row.processor_demand as f64 / row.all_approximated.max(1) as f64;
        println!(
            "{:<10}  all-approximated needs {:>5.1}x fewer intervals than the processor demand test",
            row.name, speedup
        );
    }
}
