//! Robustness budgeting with the exact tests: because the dynamic-error and
//! all-approximated tests are cheap, they can be run inside search loops to
//! answer design questions —
//!
//! * how much can every execution time grow before the system breaks
//!   (breakdown scaling)?
//! * how much can each *individual* task grow (per-task WCET slack)?
//! * how much context-switch overhead can the platform impose before the
//!   guarantees disappear?
//!
//! Run with `cargo run --example robustness_budget`.

use edf_feasibility::{
    breakdown_scaling_exact, wcet_slack, AllApproximatedTest, FeasibilityTest, Task, TaskError,
    TaskSet, Time,
};

fn control_unit() -> Result<TaskSet, TaskError> {
    Ok(TaskSet::from_tasks(vec![
        Task::new(Time::new(120), Time::new(800), Time::new(1_000))?.named("current_loop"),
        Task::new(Time::new(250), Time::new(1_800), Time::new(2_000))?.named("speed_loop"),
        Task::new(Time::new(400), Time::new(4_500), Time::new(5_000))?.named("position_loop"),
        Task::new(Time::new(700), Time::new(9_000), Time::new(10_000))?.named("trajectory"),
        Task::new(Time::new(1_500), Time::new(45_000), Time::new(50_000))?.named("supervisor"),
        Task::new(Time::new(5_000), Time::new(90_000), Time::new(100_000))?.named("logging"),
    ]))
}

fn main() -> Result<(), TaskError> {
    let ts = control_unit()?;
    println!(
        "motor control unit: {} tasks, U = {:.3}",
        ts.len(),
        ts.utilization()
    );
    println!();

    // 1. Global breakdown scaling.
    let breakdown = breakdown_scaling_exact(&ts).expect("the nominal system is feasible");
    println!(
        "breakdown scaling: every WCET can grow by {:.1}% (U reaches {:.3}, {} exact-test probes)",
        (breakdown.factor - 1.0) * 100.0,
        breakdown.utilization_at_breakdown,
        breakdown.probes
    );
    println!();

    // 2. Per-task WCET slack.
    let exact = AllApproximatedTest::new();
    println!(
        "{:<16} {:>10} {:>14} {:>12}",
        "task", "WCET", "slack (ticks)", "headroom"
    );
    for (index, task) in ts.iter().enumerate() {
        let slack = wcet_slack(&ts, index, &exact).expect("feasible system");
        println!(
            "{:<16} {:>10} {:>14} {:>11.0}%",
            task.name().unwrap_or("?"),
            task.wcet(),
            slack,
            100.0 * slack.as_f64() / task.wcet().as_f64()
        );
    }
    println!();

    // 3. Context-switch overhead budget: largest per-switch cost (in ticks)
    //    the platform may impose while the system stays feasible.
    let mut budget = Time::ZERO;
    for candidate in 1..=2_000u64 {
        let candidate = Time::new(candidate);
        match ts.with_context_switch_overhead(candidate) {
            Ok(inflated) if exact.analyze(&inflated).verdict.is_feasible() => budget = candidate,
            _ => break,
        }
    }
    println!("context-switch budget: up to {budget} ticks per switch keep every deadline");
    let at_budget = ts.with_context_switch_overhead(budget)?;
    println!(
        "at that budget the utilization rises from {:.3} to {:.3}",
        ts.utilization(),
        at_budget.utilization()
    );

    Ok(())
}
