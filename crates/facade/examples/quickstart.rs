//! Quickstart: model a small task set, run every feasibility test on it and
//! cross-check the verdict with the discrete-event simulator.
//!
//! Run with `cargo run --example quickstart`.

use edf_feasibility::{all_tests, simulate_edf_feasibility, Task, TaskError, TaskSet, Time};

fn main() -> Result<(), TaskError> {
    // A small control application: three periodic activities with deadlines
    // shorter than their periods.
    let task_set = TaskSet::from_tasks(vec![
        Task::new(Time::new(2), Time::new(6), Time::new(10))?.named("sensor_fusion"),
        Task::new(Time::new(5), Time::new(18), Time::new(25))?.named("control_law"),
        Task::new(Time::new(9), Time::new(40), Time::new(50))?.named("telemetry"),
    ]);

    println!("{task_set}");
    println!(
        "utilization = {:.3}, hyperperiod = {}",
        task_set.utilization(),
        task_set
            .hyperperiod()
            .map_or("overflow".to_owned(), |h| h.to_string())
    );
    println!();

    // Run the whole test suite: sufficient tests, the exact baseline and the
    // paper's two new exact tests.
    println!(
        "{:<22} {:>12} {:>12} {:>8}",
        "test", "verdict", "iterations", "exact?"
    );
    for test in all_tests() {
        let analysis = test.analyze(&task_set);
        println!(
            "{:<22} {:>12} {:>12} {:>8}",
            test.name(),
            analysis.verdict.to_string(),
            analysis.iterations,
            if test.is_exact() { "yes" } else { "no" }
        );
    }
    println!();

    // Cross-check with the simulator: simulate the synchronous arrival
    // pattern over the exact horizon.
    let oracle = simulate_edf_feasibility(&task_set);
    println!("simulation oracle: {oracle:?}");

    Ok(())
}
