//! # `edf-feasibility`
//!
//! Fast exact feasibility analysis for uniprocessor real-time systems under
//! preemptive EDF scheduling — a Rust implementation of
//!
//! > K. Albers, F. Slomka. *Efficient Feasibility Analysis for Real-Time
//! > Systems with EDF Scheduling.* Design, Automation and Test in Europe
//! > (DATE), 2005.
//!
//! This facade crate re-exports the workspace members under one roof:
//!
//! * [`model`] (`edf-model`) — the workload model zoo: sporadic tasks,
//!   Gresser event streams, real-time-calculus arrival curves and
//!   offset-based transactions, plus the literature example task sets;
//! * [`analysis`] (`edf-analysis`) — the feasibility tests (Liu & Layland,
//!   density, Devi, processor demand, QPA, `SuperPos(x)`, and the paper's
//!   two new exact tests) behind the [`Workload`] demand abstraction: every
//!   test consumes a [`PreparedWorkload`] — the cached canonical form of a
//!   [`TaskSet`], a set of [`EventStreamTask`]s or a [`MixedSystem`] — so
//!   sporadic, event-stream and mixed systems all run through the same
//!   exact analyses, and per-workload state (feasibility bounds, exact
//!   utilization, deadline order) is computed once per suite rather than
//!   once per test;
//! * [`analysis::kernel`] — the columnar demand kernel behind every hot
//!   demand query: structure-of-arrays columns with precomputed period
//!   reciprocals, a flat loser-tree deadline merge, and the reusable
//!   [`AnalysisScratch`] arena (the scalar path survives only as the
//!   equivalence oracle [`PreparedWorkload::scalar_reference`]);
//! * [`analysis::batch`] — the parallel batch front end:
//!   [`batch::analyze_many`] fans a workload
//!   batch out across the CPU cores with one shared preparation and one
//!   scratch arena per worker (the experiment harness and benchmarks run
//!   on it — zero per-workload transient allocations after warm-up);
//! * [`analysis::incremental`] — the incremental sensitivity engine:
//!   [`ScaledView`] probes WCET perturbations of one prepared workload
//!   without re-preparation (in-place cost rewrites, shared deadline
//!   order, refreshed §4.3 bounds), behind the breakdown-scaling and
//!   WCET-slack searches and the batch [`sensitivity_sweep`];
//! * [`analysis::transactions`] — exact critical-instant-candidate
//!   analysis of offset-transaction systems;
//! * [`serve`] (`edf-serve`) — the online admission-control service:
//!   thousands of tenants, each a [`PreparedWorkload`] behind an
//!   [`EditView`], answering admit / evict / what-if requests through
//!   delta re-analysis (with an anytime budgeted mode that answers an
//!   honest `Unknown` when its per-request deadline fires, and batched
//!   entry points fanning independent tenants across the cores);
//! * [`sim`] (`edf-sim`) — a discrete-event EDF / fixed-priority scheduler
//!   simulator used as an independent oracle;
//! * [`gen`] (`edf-gen`) — reproducible random task-set generation
//!   (UUniFast, period and deadline-gap control);
//! * [`experiments`] (`edf-experiments`) — the harness regenerating every
//!   figure and table of the paper's evaluation.
//!
//! The most common types are re-exported at the crate root.
//!
//! # Quick start
//!
//! ```
//! use edf_feasibility::{AllApproximatedTest, FeasibilityTest, Task, TaskSet, Time, Verdict};
//!
//! # fn main() -> Result<(), edf_feasibility::TaskError> {
//! let task_set = TaskSet::from_tasks(vec![
//!     Task::new(Time::new(2), Time::new(7), Time::new(10))?.named("control loop"),
//!     Task::new(Time::new(3), Time::new(9), Time::new(25))?.named("telemetry"),
//!     Task::new(Time::new(10), Time::new(60), Time::new(80))?.named("logging"),
//! ]);
//!
//! let analysis = AllApproximatedTest::new().analyze(&task_set);
//! assert_eq!(analysis.verdict, Verdict::Feasible);
//! # Ok(())
//! # }
//! ```
//!
//! # Event streams and batches
//!
//! ```
//! use edf_feasibility::analysis::batch;
//! use edf_feasibility::{
//!     all_tests, EventStream, EventStreamTask, FeasibilityTest, MixedSystem, PreparedWorkload,
//!     QpaTest, TaskSet, Time, Verdict,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A bursty interrupt source, analyzed by the exact QPA test through the
//! // common workload path.
//! let burst = EventStreamTask::new(
//!     EventStream::bursty(3, Time::new(5), Time::new(100)),
//!     Time::new(4),
//!     Time::new(20),
//! )?;
//! let system = MixedSystem::new(TaskSet::new(), vec![burst]);
//! let prepared = PreparedWorkload::new(&system);
//! assert_eq!(QpaTest::new().analyze_prepared(&prepared).verdict, Verdict::Feasible);
//!
//! // Batch analysis: prepare once per workload, fan out across cores.
//! let workloads = vec![system.clone(), system];
//! let results = batch::analyze_many(&workloads, &all_tests());
//! assert_eq!(results.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use edf_analysis as analysis;
pub use edf_experiments as experiments;
pub use edf_gen as gen;
pub use edf_model as model;
pub use edf_serve as serve;
pub use edf_sim as sim;

pub use edf_analysis::batch;
pub use edf_analysis::budget::{Progress, ProgressPhase, WorkBudget};
pub use edf_analysis::candidates::{
    self, CandidateAnalysis, CandidateView, EngineConfig, EngineStats, MixedRadixGray,
};
pub use edf_analysis::exhaustive::{exhaustive_check, exhaustive_check_workload};
pub use edf_analysis::incremental::{EditView, ScaledView, WorkloadView};
pub use edf_analysis::kernel::{AnalysisScratch, DemandKernel};
pub use edf_analysis::sensitivity::{
    breakdown_scaling, breakdown_scaling_exact, breakdown_scaling_prepared,
    breakdown_scaling_workload, sensitivity_report, sensitivity_sweep, wcet_slack,
    wcet_slack_prepared, wcet_slack_workload, BreakdownScaling, SensitivityReport,
};
pub use edf_analysis::tests::{
    AllApproximatedTest, BoundSelection, DensityTest, DeviTest, DynamicErrorTest, LevelGrowth,
    LiuLaylandTest, ProcessorDemandTest, QpaTest, RevisionOrder, SuperpositionTest,
};
pub use edf_analysis::transactions::{
    analyze_transaction_system, candidate_workloads, exhaustive_transaction_check, CombinationIter,
    ProductTooLarge,
};
pub use edf_analysis::workload::{DemandComponent, DemandEvent, DemandEventIter};
pub use edf_analysis::{
    all_tests, registered_tests, Analysis, BoxedTest, DemandOverload, FeasibilityTest, MixedSystem,
    PreparedWorkload, Verdict, Workload,
};
pub use edf_gen::{ArrivalCurveConfig, PeriodDistribution, TaskSetConfig, TransactionConfig};
pub use edf_model::{
    AffineSegment, ArrivalCurve, ArrivalCurveTask, CurveDecomposition, EventStream,
    EventStreamTask, Task, TaskBuilder, TaskError, TaskSet, Time, Transaction, TransactionPart,
    TransactionSystem,
};
pub use edf_serve::{
    AdmissionDecision, AdmissionService, RequestError, ServiceLimits, SlaMode, WatchdogConfig,
};
pub use edf_sim::{simulate_edf_feasibility, OracleVerdict, SchedulingPolicy, Simulator};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_compose() {
        let ts = TaskSet::from_tasks(vec![Task::from_ticks(1, 5, 10).unwrap()]);
        assert!(ProcessorDemandTest::new().analyze(&ts).is_feasible());
        assert!(simulate_edf_feasibility(&ts).is_schedulable());
        // The suite size derives from the registry, not a magic number.
        assert_eq!(all_tests().len(), registered_tests().len());
    }

    #[test]
    fn workload_path_composes_through_the_facade() {
        let burst = EventStreamTask::new(
            EventStream::bursty(2, Time::new(3), Time::new(50)),
            Time::new(2),
            Time::new(10),
        )
        .unwrap();
        let system = MixedSystem::new(
            TaskSet::from_tasks(vec![Task::from_ticks(1, 5, 20).unwrap()]),
            vec![burst],
        );
        let prepared = PreparedWorkload::new(&system);
        let exact = AllApproximatedTest::new().analyze_prepared(&prepared);
        assert_eq!(exact.verdict, Verdict::Feasible);
        assert_eq!(
            exhaustive_check_workload(&system).verdict,
            Verdict::Feasible
        );
    }
}
