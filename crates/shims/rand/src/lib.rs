//! Offline stand-in for the subset of `rand` 0.8 used by this workspace.
//!
//! Provides [`Rng`], [`RngCore`], [`SeedableRng`] and [`rngs::StdRng`] with
//! the call signatures of the real crate (`gen`, `gen_range` over integer
//! and float ranges, `gen_bool`).  The generator behind `StdRng` is
//! xoshiro256++ seeded via splitmix64 — deterministic and statistically
//! solid, though its streams differ from the real `StdRng` (ChaCha12).

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "natural" distribution
/// (the shim's analogue of `rand::distributions::Standard`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled to produce a `T` (the shim's analogue of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform integer in `[0, span)` via 128-bit multiply-shift.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * span) >> 64).min(span - 1)
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let f = <$t as StandardSample>::sample(rng);
                self.start + f * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let f = <$t as StandardSample>::sample(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirroring `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution
    /// (`f64` → uniform `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` (expanded with splitmix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&w| w == 0) {
                // The all-zero state is a fixed point of xoshiro; nudge it.
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2_000 {
            let u = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&u));
            let v = rng.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            let f = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
            let g = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn mean_of_unit_samples_is_centered() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let r: &mut StdRng = &mut rng;
        assert!(draw(r) < 100);
    }
}
