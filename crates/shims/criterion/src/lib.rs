//! Offline stand-in for the subset of `criterion` 0.5 used by this
//! workspace's benches: `Criterion`, `benchmark_group`, `bench_function`
//! / `bench_with_input`, `BenchmarkId`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: per benchmark the routine is warmed up for
//! `warm_up_time`, then timed over `sample_size` samples, where each
//! sample runs the routine as many times as fit into
//! `measurement_time / sample_size`.  Mean, minimum and maximum per-call
//! wall-clock times are printed to stdout in a criterion-like format.
//! There is no statistical analysis, no HTML report and no baseline
//! comparison — just honest wall-clock numbers.
//!
//! Two environment variables support the CI smoke run:
//!
//! * `EDF_BENCH_FAST` (set and not `0`) — clamps every benchmark to a tiny
//!   iteration budget (2 samples, ≤ 10 ms warm-up, ≤ 40 ms measurement),
//!   overriding per-group settings, so a whole bench binary finishes in
//!   seconds; the numbers are smoke-level only;
//! * `EDF_BENCH_JSON=<path>` — appends one JSON object per benchmark
//!   (group, id, min/mean/max nanoseconds, sample and iteration counts) to
//!   `<path>`, one per line, for the `BENCH_smoke.json` CI artifact.

use std::fmt;
use std::fs::OpenOptions;
use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group: a function name, an
/// optional parameter, or both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter (`name/param`).
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times a routine; handed to the closure of `bench_function` /
/// `bench_with_input`.
#[derive(Debug)]
pub struct Bencher<'a> {
    settings: &'a Settings,
    /// Filled by [`Bencher::iter`]; per-call durations, one per sample.
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher<'_> {
    /// Runs `routine` under the group's timing settings (clamped in fast
    /// mode, see the crate docs).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let settings = self.settings.effective();
        // Warm-up: run until the warm-up budget is spent, measuring the
        // per-call cost to size the samples.
        let warm_up_start = Instant::now();
        let mut warm_up_calls: u64 = 0;
        while warm_up_start.elapsed() < settings.warm_up_time || warm_up_calls == 0 {
            black_box(routine());
            warm_up_calls += 1;
            if warm_up_calls >= 1_000_000 {
                break;
            }
        }
        let per_call = warm_up_start.elapsed() / warm_up_calls.max(1) as u32;

        // Size each sample so the whole measurement roughly fits the budget.
        let sample_budget = settings.measurement_time / settings.sample_size.max(1) as u32;
        let iters = if per_call.is_zero() {
            1_000
        } else {
            (sample_budget.as_nanos() / per_call.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..settings.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Settings {
    /// The settings actually used: in fast mode (`EDF_BENCH_FAST`) the
    /// configured budgets are clamped down so a smoke run stays cheap no
    /// matter what the individual benches request.
    fn effective(&self) -> Settings {
        if !fast_mode() {
            return self.clone();
        }
        Settings {
            sample_size: self.sample_size.min(2),
            warm_up_time: self.warm_up_time.min(Duration::from_millis(10)),
            measurement_time: self.measurement_time.min(Duration::from_millis(40)),
        }
    }
}

fn fast_mode() -> bool {
    std::env::var("EDF_BENCH_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// A named collection of related benchmarks sharing timing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.settings.sample_size = n;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut bencher = Bencher {
            settings: &self.settings,
            samples: Vec::new(),
            iters_per_sample: 0,
        };
        routine(&mut bencher);
        report(&self.name, &id, &bencher);
        self
    }

    /// Benchmarks `routine` under `id`, handing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut bencher = Bencher {
            settings: &self.settings,
            samples: Vec::new(),
            iters_per_sample: 0,
        };
        routine(&mut bencher, input);
        report(&self.name, &id, &bencher);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

fn report(group: &str, id: &BenchmarkId, bencher: &Bencher<'_>) {
    if bencher.samples.is_empty() {
        println!("{group}/{id}: no samples (routine never called iter?)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    println!(
        "{group}/{id}: time [{} {} {}] ({} samples × {} iters)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        bencher.samples.len(),
        bencher.iters_per_sample,
    );
    if let Ok(path) = std::env::var("EDF_BENCH_JSON") {
        if !path.is_empty() {
            append_json_record(&path, group, id, min, mean, max, bencher);
        }
    }
}

/// Appends one JSON object (on its own line) describing a finished
/// benchmark to `path`; errors are reported to stderr but never fail the
/// bench run.
fn append_json_record(
    path: &str,
    group: &str,
    id: &BenchmarkId,
    min: Duration,
    mean: Duration,
    max: Duration,
    bencher: &Bencher<'_>,
) {
    let record = format!(
        "{{\"group\":\"{}\",\"id\":\"{}\",\"min_ns\":{},\"mean_ns\":{},\"max_ns\":{},\
         \"samples\":{},\"iters_per_sample\":{}}}\n",
        json_escape(group),
        json_escape(&id.to_string()),
        min.as_nanos(),
        mean.as_nanos(),
        max.as_nanos(),
        bencher.samples.len(),
        bencher.iters_per_sample,
    );
    let written = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut file| file.write_all(record.as_bytes()));
    if let Err(error) = written {
        eprintln!("EDF_BENCH_JSON: cannot append to {path}: {error}");
    }
}

fn json_escape(text: &str) -> String {
    text.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            name,
            settings: Settings::default(),
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut group = BenchmarkGroup {
            name: "bench".to_owned(),
            settings: Settings::default(),
            _criterion: self,
        };
        group.bench_function(BenchmarkId::from(id), routine);
        self
    }
}

/// Declares a benchmark group function (criterion-compatible spelling).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn json_escape_handles_special_characters() {
        assert_eq!(json_escape("plain/3"), "plain/3");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    /// One test covers every bench-running scenario: the harness reads
    /// `EDF_BENCH_FAST` / `EDF_BENCH_JSON` on every run, so the phase that
    /// mutates the process environment must not execute concurrently with
    /// any other benchmark-running test.
    #[test]
    fn bench_runs_report_clamp_and_append_json() {
        // Phase 1 (environment untouched): the routine runs and reports.
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-self-test");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 1), &7u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        assert!(calls > 0);

        // Phase 2: fast mode clamps oversized budgets and JSON records are
        // appended to the artifact path.
        let path =
            std::env::temp_dir().join(format!("edf_bench_smoke_{}.jsonl", std::process::id()));
        std::env::set_var("EDF_BENCH_FAST", "1");
        std::env::set_var("EDF_BENCH_JSON", &path);

        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-json-test");
        // Deliberately large budgets: fast mode must clamp them away.
        group
            .sample_size(50)
            .measurement_time(Duration::from_secs(30));
        group.bench_function("fast", |b| b.iter(|| 1 + 1));
        group.finish();

        std::env::remove_var("EDF_BENCH_FAST");
        std::env::remove_var("EDF_BENCH_JSON");
        let contents = std::fs::read_to_string(&path).expect("artifact written");
        std::fs::remove_file(&path).ok();
        let line = contents
            .lines()
            .find(|l| l.contains("shim-json-test"))
            .expect("record for this benchmark");
        assert!(line.contains("\"id\":\"fast\""));
        assert!(line.contains("\"mean_ns\":"));
        // The 50-sample request was clamped to the smoke budget.
        assert!(line.contains("\"samples\":2"));
    }
}
