//! Offline stand-in for the subset of `proptest` 1.x used by this
//! workspace: the [`proptest!`] macro, `prop_assert*`, a
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_filter_map` / `prop_filter`, range and
//! tuple strategies, and `prop::collection::vec`.
//!
//! Semantics: each `proptest!` test runs its body for
//! [`ProptestConfig::cases`](test_runner::ProptestConfig::cases)
//! deterministically generated inputs (seeded
//! from the test name, so failures are reproducible).  Unlike the real
//! crate there is **no shrinking** — a failing case panics with the
//! sampled values left to the assertion message.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Configuration of a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` inputs per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The deterministic random source driving the strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Creates the generator for one named test (deterministic per
        /// name, independent between names).
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name keeps runs reproducible.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(hash),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// How often a strategy may reject before the harness gives up.
    const MAX_REJECTS: u32 = 10_000;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Attempts to generate one value; `None` means the candidate was
        /// rejected (e.g. by `prop_filter_map`) and the harness retries.
        fn new_value(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only values for which `f` returns `Some`, unwrapping them.
        fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
            self,
            _whence: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap { inner: self, f }
        }

        /// Keeps only values for which `f` returns `true`.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            _whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, f }
        }
    }

    /// Draws one value from `strategy`, retrying rejected candidates.
    ///
    /// # Panics
    ///
    /// Panics if the strategy rejects [`MAX_REJECTS`] candidates in a row.
    #[allow(rustdoc::private_intra_doc_links)]
    pub fn sample<S: Strategy>(strategy: &S, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            if let Some(value) = strategy.new_value(rng) {
                return value;
            }
        }
        panic!("strategy rejected {MAX_REJECTS} candidates in a row");
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.new_value(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.new_value(rng).and_then(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.inner.new_value(rng).filter(|v| (self.f)(v))
        }
    }

    /// See [`crate::prop_oneof`]: draws uniformly from one of several
    /// alternative strategies.  Unlike real proptest's heterogeneous
    /// (boxing) union, the shim requires all alternatives to be the same
    /// strategy type — sufficient for unions of literal ranges.
    #[derive(Debug, Clone)]
    pub struct Union<S> {
        options: Vec<S>,
    }

    impl<S> Union<S> {
        /// Creates the union; `options` must be non-empty.
        #[must_use]
        pub fn new(options: Vec<S>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union { options }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            let pick = rng.gen_range(0..self.options.len());
            self.options[pick].new_value(rng)
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(rng.gen_range(self.clone()))
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(rng.gen_range(self.clone()))
                }
            }
        )*};
    }

    impl_range_strategies!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.new_value(rng)?,)+))
                }
            }
        )*};
    }

    impl_tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Length specification for [`vec()`] (mirrors `proptest::collection::SizeRange`).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange { min: len, max: len }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                min: range.start,
                max: range.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty size range");
            SizeRange {
                min: *range.start(),
                max: *range.end(),
            }
        }
    }

    /// A strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size` and elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.new_value(rng)?);
            }
            Some(out)
        }
    }
}

/// The body of a `proptest!` block: declares one `#[test]` function per
/// entry, running it over deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::sample(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// A uniform choice between alternative strategies (see
/// [`strategy::Union`]; the shim form requires all alternatives to share
/// one strategy type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strategy),+])
    };
}

/// `assert!` under the proptest spelling.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under the proptest spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// `assert_ne!` under the proptest spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Everything a `proptest!` user normally imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1_000).prop_filter_map("even only", |x| (x % 2 == 0).then_some(x))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 5u64..10, y in 1usize..=4) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..=4).contains(&y), "y = {}", y);
        }

        #[test]
        fn oneof_draws_from_every_alternative(x in prop_oneof![0u64..=4, 100u64..=104]) {
            prop_assert!((0..=4).contains(&x) || (100..=104).contains(&x));
        }

        #[test]
        fn tuples_and_vec(pair in (1u64..=3, 1u64..=3), v in prop::collection::vec(0u32..7, 1..=5)) {
            prop_assert!(pair.0 >= 1 && pair.1 <= 3);
            prop_assert!(!v.is_empty() && v.len() <= 5);
            prop_assert!(v.iter().all(|&x| x < 7));
        }

        #[test]
        fn filter_map_respects_predicate(x in arb_even()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn map_applies(s in (1u64..=9).prop_map(|x| x * 10)) {
            prop_assert!((10..=90).contains(&s) && s % 10 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::{sample, Strategy};
        let strat = (1u64..=1_000, 1u64..=1_000);
        let mut a = crate::test_runner::TestRng::for_test("same");
        let mut b = crate::test_runner::TestRng::for_test("same");
        for _ in 0..32 {
            assert_eq!(sample(&strat, &mut a), sample(&strat, &mut b));
        }
        let _ = strat.new_value(&mut a);
    }
}
