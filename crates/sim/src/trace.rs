//! Execution traces (Gantt-style) recorded by the simulator.

use core::fmt;

use edf_model::Time;

/// A contiguous slice of processor time given to one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionSlice {
    /// Index of the executing task, or `None` for an idle slice.
    pub task_index: Option<usize>,
    /// Start of the slice.
    pub start: Time,
    /// Exclusive end of the slice.
    pub end: Time,
}

impl ExecutionSlice {
    /// Length of the slice.
    #[must_use]
    pub fn duration(&self) -> Time {
        self.end - self.start
    }

    /// `true` if the processor was idle during this slice.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.task_index.is_none()
    }
}

/// An execution trace: the sequence of processor slices of one simulation,
/// merged so that consecutive slices of the same task (or consecutive idle
/// slices) form a single entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    slices: Vec<ExecutionSlice>,
    limit: Option<usize>,
}

impl Trace {
    /// Creates an empty, unbounded trace.
    #[must_use]
    pub fn new() -> Self {
        Trace {
            slices: Vec::new(),
            limit: None,
        }
    }

    /// Creates a trace that keeps at most `limit` slices (older slices are
    /// dropped from the front), protecting long simulations from unbounded
    /// memory growth.
    #[must_use]
    pub fn with_limit(limit: usize) -> Self {
        Trace {
            slices: Vec::new(),
            limit: Some(limit),
        }
    }

    /// Records that `task_index` (or idle time, for `None`) occupied the
    /// processor during `[start, end)`.  Adjacent slices of the same task
    /// are merged.
    pub fn record(&mut self, task_index: Option<usize>, start: Time, end: Time) {
        if start >= end {
            return;
        }
        if let Some(last) = self.slices.last_mut() {
            if last.task_index == task_index && last.end == start {
                last.end = end;
                return;
            }
        }
        self.slices.push(ExecutionSlice {
            task_index,
            start,
            end,
        });
        if let Some(limit) = self.limit {
            if self.slices.len() > limit {
                let excess = self.slices.len() - limit;
                self.slices.drain(..excess);
            }
        }
    }

    /// The recorded slices in chronological order.
    #[must_use]
    pub fn slices(&self) -> &[ExecutionSlice] {
        &self.slices
    }

    /// Total processor time spent idle within the recorded slices.
    #[must_use]
    pub fn idle_time(&self) -> Time {
        self.slices
            .iter()
            .filter(|s| s.is_idle())
            .fold(Time::ZERO, |acc, s| acc + s.duration())
    }

    /// Total processor time spent executing task `task_index`.
    #[must_use]
    pub fn execution_time_of(&self, task_index: usize) -> Time {
        self.slices
            .iter()
            .filter(|s| s.task_index == Some(task_index))
            .fold(Time::ZERO, |acc, s| acc + s.duration())
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for slice in &self.slices {
            match slice.task_index {
                Some(idx) => writeln!(f, "[{:>6}, {:>6})  task {}", slice.start, slice.end, idx)?,
                None => writeln!(f, "[{:>6}, {:>6})  idle", slice.start, slice.end)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_merge_when_adjacent_and_same_task() {
        let mut trace = Trace::new();
        trace.record(Some(0), Time::new(0), Time::new(2));
        trace.record(Some(0), Time::new(2), Time::new(5));
        trace.record(Some(1), Time::new(5), Time::new(6));
        trace.record(None, Time::new(6), Time::new(9));
        trace.record(None, Time::new(9), Time::new(10));
        assert_eq!(trace.slices().len(), 3);
        assert_eq!(trace.slices()[0].duration(), Time::new(5));
        assert_eq!(trace.idle_time(), Time::new(4));
        assert_eq!(trace.execution_time_of(0), Time::new(5));
        assert_eq!(trace.execution_time_of(1), Time::new(1));
        assert_eq!(trace.execution_time_of(7), Time::ZERO);
    }

    #[test]
    fn empty_and_degenerate_records_are_ignored() {
        let mut trace = Trace::new();
        trace.record(Some(0), Time::new(5), Time::new(5));
        trace.record(Some(0), Time::new(7), Time::new(6));
        assert!(trace.slices().is_empty());
        assert_eq!(trace.idle_time(), Time::ZERO);
    }

    #[test]
    fn limit_drops_oldest_slices() {
        let mut trace = Trace::with_limit(2);
        trace.record(Some(0), Time::new(0), Time::new(1));
        trace.record(Some(1), Time::new(1), Time::new(2));
        trace.record(Some(2), Time::new(2), Time::new(3));
        assert_eq!(trace.slices().len(), 2);
        assert_eq!(trace.slices()[0].task_index, Some(1));
    }

    #[test]
    fn display_contains_idle_and_task_rows() {
        let mut trace = Trace::new();
        trace.record(Some(3), Time::new(0), Time::new(4));
        trace.record(None, Time::new(4), Time::new(6));
        let text = trace.to_string();
        assert!(text.contains("task 3"));
        assert!(text.contains("idle"));
    }
}
