//! Simulation-based feasibility oracle.
//!
//! For a *periodic* task system released synchronously, simulating the
//! schedule over one hyperperiod (plus the largest deadline) and checking
//! for deadline misses is an exact feasibility test.  The analytical tests
//! of the `edf-analysis` crate are much faster, but the simulator provides
//! an independent implementation against which they are cross-validated in
//! the integration and property tests of this workspace.

use edf_model::{TaskSet, Time};

use crate::policy::SchedulingPolicy;
use crate::scheduler::Simulator;

/// Default cap on the oracle's simulation horizon (ticks).
const DEFAULT_HORIZON_CAP: u64 = 1 << 22;

/// Outcome of the simulation oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleVerdict {
    /// No deadline miss within the exact horizon: the synchronous periodic
    /// pattern is schedulable.
    Schedulable,
    /// A deadline miss occurred at the given absolute deadline.
    MissAt(Time),
    /// The exact horizon (hyperperiod + max deadline) exceeds the cap, so
    /// the simulation covered only a prefix and cannot prove schedulability.
    Inconclusive,
}

impl OracleVerdict {
    /// `true` for [`OracleVerdict::Schedulable`].
    #[must_use]
    pub fn is_schedulable(self) -> bool {
        matches!(self, OracleVerdict::Schedulable)
    }
}

/// Simulates the synchronous periodic arrival pattern under EDF and reports
/// whether every deadline is met over the exact horizon
/// (`hyperperiod + max deadline`).
///
/// # Examples
///
/// ```
/// use edf_model::{Task, TaskSet, Time};
/// use edf_sim::{simulate_edf_feasibility, OracleVerdict};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let ts = TaskSet::from_tasks(vec![
///     Task::new(Time::new(1), Time::new(2), Time::new(4))?,
///     Task::new(Time::new(2), Time::new(6), Time::new(8))?,
/// ]);
/// assert_eq!(simulate_edf_feasibility(&ts), OracleVerdict::Schedulable);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn simulate_edf_feasibility(task_set: &TaskSet) -> OracleVerdict {
    simulate_feasibility(
        task_set,
        SchedulingPolicy::EarliestDeadlineFirst,
        DEFAULT_HORIZON_CAP,
    )
}

/// Like [`simulate_edf_feasibility`] but with an explicit policy and horizon
/// cap.
#[must_use]
pub fn simulate_feasibility(
    task_set: &TaskSet,
    policy: SchedulingPolicy,
    horizon_cap: u64,
) -> OracleVerdict {
    if task_set.is_empty() {
        return OracleVerdict::Schedulable;
    }
    let exact_horizon = task_set
        .hyperperiod()
        .and_then(|h| h.checked_add(task_set.max_deadline().unwrap_or(Time::ZERO)));
    let (horizon, exact) = match exact_horizon {
        Some(h) if h.as_u64() <= horizon_cap => (h, true),
        _ => (Time::new(horizon_cap), false),
    };
    let outcome = Simulator::new(task_set)
        .policy(policy)
        .horizon(horizon)
        .run();
    match outcome.deadline_misses.first() {
        Some(miss) => OracleVerdict::MissAt(miss.deadline),
        None if exact => OracleVerdict::Schedulable,
        None => OracleVerdict::Inconclusive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edf_model::Task;

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    #[test]
    fn schedulable_and_unschedulable_sets() {
        let good = TaskSet::from_tasks(vec![t(1, 2, 10), t(2, 3, 10), t(5, 9, 10)]);
        assert_eq!(simulate_edf_feasibility(&good), OracleVerdict::Schedulable);
        assert!(simulate_edf_feasibility(&good).is_schedulable());

        let bad = TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]);
        match simulate_edf_feasibility(&bad) {
            OracleVerdict::MissAt(deadline) => assert!(deadline <= Time::new(6)),
            other => panic!("expected a miss, got {other:?}"),
        }
    }

    #[test]
    fn empty_set_is_schedulable() {
        assert_eq!(
            simulate_edf_feasibility(&TaskSet::new()),
            OracleVerdict::Schedulable
        );
    }

    #[test]
    fn huge_hyperperiod_is_inconclusive_when_no_miss_is_found() {
        let ts = TaskSet::from_tasks(vec![
            t(1, 999_983, 999_983),
            t(1, 1_000_003, 1_000_003),
            t(1, 1_000_033, 1_000_033),
        ]);
        assert_eq!(simulate_edf_feasibility(&ts), OracleVerdict::Inconclusive);
    }

    #[test]
    fn fixed_priority_oracle_differs_from_edf() {
        let ts = TaskSet::from_tasks(vec![t(2, 5, 5), t(4, 7, 7)]);
        assert!(
            simulate_feasibility(&ts, SchedulingPolicy::EarliestDeadlineFirst, 1 << 20)
                .is_schedulable()
        );
        assert!(
            !simulate_feasibility(&ts, SchedulingPolicy::DeadlineMonotonic, 1 << 20)
                .is_schedulable()
        );
    }
}
