//! The event-driven uniprocessor scheduler simulation.

use edf_model::{TaskSet, Time};

use crate::job::{DeadlineMiss, Job};
use crate::policy::SchedulingPolicy;
use crate::trace::Trace;

/// Aggregate result of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulationOutcome {
    /// All deadline misses observed (empty for a schedulable run), in
    /// chronological order.  If the simulation was configured to stop at
    /// the first miss, at most one entry is present.
    pub deadline_misses: Vec<DeadlineMiss>,
    /// Number of jobs that completed within the horizon.
    pub completed_jobs: u64,
    /// Number of preemptions (a running job displaced by another).
    pub preemptions: u64,
    /// Total processor idle time within the horizon.
    pub idle_time: Time,
    /// Total processor busy time within the horizon.
    pub busy_time: Time,
    /// The simulated horizon.
    pub horizon: Time,
    /// Optional execution trace (present when tracing was enabled).
    pub trace: Option<Trace>,
}

impl SimulationOutcome {
    /// `true` when no deadline was missed within the horizon.
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        self.deadline_misses.is_empty()
    }

    /// Fraction of the horizon the processor was busy.
    #[must_use]
    pub fn observed_utilization(&self) -> f64 {
        if self.horizon.is_zero() {
            0.0
        } else {
            self.busy_time.as_f64() / self.horizon.as_f64()
        }
    }
}

/// Builder/runner for uniprocessor schedule simulations.
///
/// The simulator releases jobs periodically (each task at its phase and
/// every period thereafter — the synchronous worst case when all phases are
/// zero), schedules them preemptively according to the configured
/// [`SchedulingPolicy`], and records deadline misses.
///
/// # Examples
///
/// ```
/// use edf_model::{Task, TaskSet, Time};
/// use edf_sim::Simulator;
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let ts = TaskSet::from_tasks(vec![
///     Task::new(Time::new(1), Time::new(2), Time::new(4))?,
///     Task::new(Time::new(2), Time::new(4), Time::new(8))?,
/// ]);
/// let outcome = Simulator::new(&ts).horizon(Time::new(64)).run();
/// assert!(outcome.is_schedulable());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    task_set: &'a TaskSet,
    policy: SchedulingPolicy,
    horizon: Option<Time>,
    stop_at_first_miss: bool,
    collect_trace: bool,
    trace_limit: Option<usize>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for `task_set` with EDF scheduling, an automatic
    /// horizon, stop-at-first-miss behaviour and no trace collection.
    #[must_use]
    pub fn new(task_set: &'a TaskSet) -> Self {
        Simulator {
            task_set,
            policy: SchedulingPolicy::EarliestDeadlineFirst,
            horizon: None,
            stop_at_first_miss: true,
            collect_trace: false,
            trace_limit: None,
        }
    }

    /// Selects the scheduling policy (default: EDF).
    #[must_use]
    pub fn policy(mut self, policy: SchedulingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets an explicit simulation horizon.  Without one, the simulator
    /// uses `hyperperiod + max deadline` (capped at 2²⁴ ticks to keep
    /// accidental huge runs bounded; pass an explicit horizon to go
    /// further).
    #[must_use]
    pub fn horizon(mut self, horizon: Time) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Continue simulating after a deadline miss (collecting all misses)
    /// instead of stopping at the first one.
    #[must_use]
    pub fn record_all_misses(mut self) -> Self {
        self.stop_at_first_miss = false;
        self
    }

    /// Enables execution-trace collection (optionally bounded to the last
    /// `limit` slices).
    #[must_use]
    pub fn with_trace(mut self, limit: Option<usize>) -> Self {
        self.collect_trace = true;
        self.trace_limit = limit;
        self
    }

    fn default_horizon(&self) -> Time {
        const CAP: u64 = 1 << 24;
        let candidate = self
            .task_set
            .hyperperiod()
            .and_then(|h| h.checked_add(self.task_set.max_deadline().unwrap_or(Time::ZERO)))
            .unwrap_or(Time::new(CAP));
        Time::new(candidate.as_u64().min(CAP))
    }

    /// Runs the simulation and returns the outcome.
    #[must_use]
    pub fn run(&self) -> SimulationOutcome {
        let horizon = self.horizon.unwrap_or_else(|| self.default_horizon());
        let mut trace = if self.collect_trace {
            Some(match self.trace_limit {
                Some(limit) => Trace::with_limit(limit),
                None => Trace::new(),
            })
        } else {
            None
        };

        let n = self.task_set.len();
        // Next release instant and job counter per task.
        let mut next_release: Vec<Time> = self.task_set.iter().map(|t| t.phase()).collect();
        let mut job_counter: Vec<u64> = vec![0; n];
        let mut ready: Vec<Job> = Vec::new();
        let mut misses: Vec<DeadlineMiss> = Vec::new();
        let mut completed_jobs = 0u64;
        let mut preemptions = 0u64;
        let mut busy_time = Time::ZERO;
        let mut last_running: Option<usize> = None;
        let mut now = Time::ZERO;

        while now < horizon {
            // Release every job due at `now`.
            for (idx, task) in self.task_set.iter().enumerate() {
                while next_release[idx] <= now && next_release[idx] < horizon {
                    let release = next_release[idx];
                    let deadline = release.saturating_add(task.deadline());
                    ready.push(Job::new(
                        idx,
                        job_counter[idx],
                        release,
                        deadline,
                        task.wcet(),
                    ));
                    job_counter[idx] += 1;
                    next_release[idx] = release.saturating_add(task.period());
                }
            }

            // Next instant at which the ready queue can change by a release.
            let next_event = next_release
                .iter()
                .copied()
                .filter(|r| *r > now)
                .min()
                .unwrap_or(horizon)
                .min(horizon);

            let Some(selected) = self.policy.select(self.task_set, &ready) else {
                // Idle until the next release.
                if let Some(trace) = trace.as_mut() {
                    trace.record(None, now, next_event);
                }
                last_running = None;
                now = next_event;
                continue;
            };

            // Detect preemption: a different unfinished job was running.
            let selected_task = ready[selected].task_index;
            if let Some(previous) = last_running {
                if previous != selected_task
                    && ready
                        .iter()
                        .any(|j| j.task_index == previous && !j.is_complete())
                {
                    preemptions += 1;
                }
            }

            // Run the selected job until it finishes or the next release.
            let slice_end = next_event.min(now.saturating_add(ready[selected].remaining));
            let executed = slice_end - now;
            ready[selected].remaining -= executed;
            busy_time += executed;
            if let Some(trace) = trace.as_mut() {
                trace.record(Some(selected_task), now, slice_end);
            }
            last_running = Some(selected_task);
            now = slice_end;

            // Collect completions and deadline misses.
            let mut i = 0;
            while i < ready.len() {
                if ready[i].is_complete() {
                    if now > ready[i].absolute_deadline {
                        // Finished, but only after its deadline had passed.
                        let job = ready[i];
                        misses.push(DeadlineMiss {
                            task_index: job.task_index,
                            job_index: job.job_index,
                            deadline: job.absolute_deadline,
                            unfinished: Time::ZERO,
                        });
                        if self.stop_at_first_miss {
                            let idle_time = now.saturating_sub(busy_time);
                            return SimulationOutcome {
                                deadline_misses: misses,
                                completed_jobs,
                                preemptions,
                                idle_time,
                                busy_time,
                                horizon,
                                trace,
                            };
                        }
                    } else {
                        completed_jobs += 1;
                    }
                    ready.swap_remove(i);
                    continue;
                }
                if ready[i].is_late(now) {
                    let job = ready[i];
                    misses.push(DeadlineMiss {
                        task_index: job.task_index,
                        job_index: job.job_index,
                        deadline: job.absolute_deadline,
                        unfinished: job.remaining,
                    });
                    if self.stop_at_first_miss {
                        let idle_time = now.saturating_sub(busy_time);
                        return SimulationOutcome {
                            deadline_misses: misses,
                            completed_jobs,
                            preemptions,
                            idle_time,
                            busy_time,
                            horizon,
                            trace,
                        };
                    }
                    // Drop the late job so the overload does not cascade
                    // forever when recording all misses.
                    ready.swap_remove(i);
                    continue;
                }
                i += 1;
            }
        }

        // Any unfinished job whose deadline lies within the horizon counts
        // as a miss.
        for job in &ready {
            if job.absolute_deadline <= horizon && !job.is_complete() {
                misses.push(DeadlineMiss {
                    task_index: job.task_index,
                    job_index: job.job_index,
                    deadline: job.absolute_deadline,
                    unfinished: job.remaining,
                });
            }
        }
        misses.sort_by_key(|m| m.deadline);

        SimulationOutcome {
            deadline_misses: misses,
            completed_jobs,
            preemptions,
            idle_time: horizon.saturating_sub(busy_time),
            busy_time,
            horizon,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edf_model::Task;

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    #[test]
    fn schedulable_set_has_no_misses() {
        let ts = TaskSet::from_tasks(vec![t(1, 4, 4), t(2, 8, 8)]);
        let outcome = Simulator::new(&ts).horizon(Time::new(80)).run();
        assert!(outcome.is_schedulable());
        assert_eq!(outcome.completed_jobs, 20 + 10);
        assert_eq!(outcome.busy_time, Time::new(20 + 20));
        assert_eq!(outcome.idle_time, Time::new(40));
        assert!((outcome.observed_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn full_utilization_set_has_no_idle_time() {
        let ts = TaskSet::from_tasks(vec![t(1, 2, 2), t(2, 4, 4)]);
        let outcome = Simulator::new(&ts).horizon(Time::new(100)).run();
        assert!(outcome.is_schedulable());
        assert_eq!(outcome.idle_time, Time::ZERO);
    }

    #[test]
    fn overloaded_set_misses_and_stops_at_first_miss() {
        let ts = TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]);
        let outcome = Simulator::new(&ts).horizon(Time::new(200)).run();
        assert!(!outcome.is_schedulable());
        assert_eq!(outcome.deadline_misses.len(), 1);
        // The analysis predicts the first overload inside the interval of
        // length 6; the simulated miss must be at a deadline <= 6.
        assert!(outcome.deadline_misses[0].deadline <= Time::new(6));
    }

    #[test]
    fn record_all_misses_collects_more_than_one() {
        let ts = TaskSet::from_tasks(vec![t(3, 4, 10), t(4, 6, 10), t(2, 5, 12)]);
        let outcome = Simulator::new(&ts)
            .horizon(Time::new(100))
            .record_all_misses()
            .run();
        assert!(outcome.deadline_misses.len() > 1);
    }

    #[test]
    fn trace_accounts_for_every_tick() {
        let ts = TaskSet::from_tasks(vec![t(1, 3, 5), t(2, 6, 10)]);
        let outcome = Simulator::new(&ts)
            .horizon(Time::new(50))
            .with_trace(None)
            .run();
        let trace = outcome.trace.expect("trace collected");
        let total: Time = trace
            .slices()
            .iter()
            .fold(Time::ZERO, |acc, s| acc + s.duration());
        assert_eq!(total, Time::new(50));
        assert_eq!(trace.idle_time(), outcome.idle_time);
        assert_eq!(trace.execution_time_of(0), Time::new(10));
        assert_eq!(trace.execution_time_of(1), Time::new(10));
    }

    #[test]
    fn edf_schedules_what_dm_cannot() {
        // Classic example: feasible under EDF, infeasible under DM/RM.
        let ts = TaskSet::from_tasks(vec![t(2, 5, 5), t(4, 7, 7)]);
        // U = 0.4 + 0.571 = 0.971 <= 1: EDF succeeds.
        let edf = Simulator::new(&ts).horizon(Time::new(70)).run();
        assert!(edf.is_schedulable());
        // Fixed priorities (either order) miss a deadline.
        let dm = Simulator::new(&ts)
            .policy(SchedulingPolicy::DeadlineMonotonic)
            .horizon(Time::new(70))
            .run();
        assert!(!dm.is_schedulable());
        let rm = Simulator::new(&ts)
            .policy(SchedulingPolicy::RateMonotonic)
            .horizon(Time::new(70))
            .run();
        assert!(!rm.is_schedulable());
    }

    #[test]
    fn preemptions_are_counted() {
        // A long low-priority job preempted by a short high-frequency task.
        let ts = TaskSet::from_tasks(vec![t(1, 3, 5), t(6, 20, 20)]);
        let outcome = Simulator::new(&ts).horizon(Time::new(40)).run();
        assert!(outcome.is_schedulable());
        assert!(outcome.preemptions > 0);
    }

    #[test]
    fn phases_delay_first_release() {
        let ts = TaskSet::from_tasks(vec![t(2, 5, 10).with_phase(Time::new(3)), t(1, 4, 10)]);
        let outcome = Simulator::new(&ts)
            .horizon(Time::new(20))
            .with_trace(None)
            .run();
        assert!(outcome.is_schedulable());
        let trace = outcome.trace.unwrap();
        // Task 1 (phase 0) runs first; task 0 cannot start before t = 3.
        assert_eq!(trace.slices()[0].task_index, Some(1));
        assert!(trace
            .slices()
            .iter()
            .filter(|s| s.task_index == Some(0))
            .all(|s| s.start >= Time::new(3)));
    }

    #[test]
    fn default_horizon_is_capped_and_runs() {
        let ts = TaskSet::from_tasks(vec![t(1, 1_000_003, 1_000_003), t(1, 999_983, 999_983)]);
        // Hyperperiod ~ 10^12: the default horizon cap keeps this tractable.
        let outcome = Simulator::new(&ts).run();
        assert!(outcome.horizon <= Time::new(1 << 24));
        assert!(outcome.is_schedulable());
    }

    #[test]
    fn empty_task_set_is_trivially_schedulable() {
        let ts = TaskSet::new();
        let outcome = Simulator::new(&ts).horizon(Time::new(10)).run();
        assert!(outcome.is_schedulable());
        assert_eq!(outcome.busy_time, Time::ZERO);
        assert_eq!(outcome.idle_time, Time::new(10));
    }
}
