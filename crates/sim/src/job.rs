//! Job instances released during a simulation.

use edf_model::Time;

/// A single released job (one invocation of a task).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Index of the task in the simulated task set.
    pub task_index: usize,
    /// 0-based job number of that task.
    pub job_index: u64,
    /// Release (arrival) instant.
    pub release: Time,
    /// Absolute deadline.
    pub absolute_deadline: Time,
    /// Remaining execution demand.
    pub remaining: Time,
}

impl Job {
    /// Creates a freshly released job with its full execution demand left.
    #[must_use]
    pub fn new(
        task_index: usize,
        job_index: u64,
        release: Time,
        absolute_deadline: Time,
        wcet: Time,
    ) -> Self {
        Job {
            task_index,
            job_index,
            release,
            absolute_deadline,
            remaining: wcet,
        }
    }

    /// `true` once the job has no execution demand left.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.remaining.is_zero()
    }

    /// `true` if the job is past its deadline at time `now` while still
    /// holding unfinished demand.
    #[must_use]
    pub fn is_late(&self, now: Time) -> bool {
        !self.is_complete() && now > self.absolute_deadline
    }
}

/// A recorded deadline miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineMiss {
    /// Index of the task whose job missed its deadline.
    pub task_index: usize,
    /// 0-based job number of that task.
    pub job_index: u64,
    /// The absolute deadline that was missed.
    pub deadline: Time,
    /// Execution demand still pending at the deadline.
    pub unfinished: Time,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_lifecycle_predicates() {
        let mut job = Job::new(0, 3, Time::new(30), Time::new(38), Time::new(4));
        assert!(!job.is_complete());
        assert!(!job.is_late(Time::new(38)));
        assert!(job.is_late(Time::new(39)));
        job.remaining = Time::ZERO;
        assert!(job.is_complete());
        assert!(!job.is_late(Time::new(100)));
    }

    #[test]
    fn deadline_miss_is_plain_data() {
        let miss = DeadlineMiss {
            task_index: 1,
            job_index: 2,
            deadline: Time::new(20),
            unfinished: Time::new(3),
        };
        assert_eq!(miss.task_index, 1);
        assert!(!format!("{miss:?}").is_empty());
    }
}
