//! # `edf-sim` — a discrete-event uniprocessor scheduler simulator
//!
//! A compact, exact (integer-time) simulator for preemptive uniprocessor
//! scheduling of periodic task sets, used throughout the `edf-feasibility`
//! workspace as an *independent oracle* against which the analytical
//! feasibility tests of `edf-analysis` are cross-validated, and to
//! demonstrate the EDF-optimality result the paper builds on.
//!
//! * [`Simulator`] — event-driven simulation with preemptive EDF,
//!   deadline-monotonic or rate-monotonic scheduling, deadline-miss
//!   detection, preemption counting and optional execution traces;
//! * [`simulate_edf_feasibility`] — a one-call feasibility oracle that
//!   simulates the synchronous arrival pattern over the exact horizon
//!   (hyperperiod + largest deadline);
//! * [`Trace`] — Gantt-style execution traces.
//!
//! # Examples
//!
//! ```
//! use edf_model::{Task, TaskSet, Time};
//! use edf_sim::{SchedulingPolicy, Simulator};
//!
//! # fn main() -> Result<(), edf_model::TaskError> {
//! let ts = TaskSet::from_tasks(vec![
//!     Task::new(Time::new(2), Time::new(5), Time::new(5))?,
//!     Task::new(Time::new(4), Time::new(7), Time::new(7))?,
//! ]);
//! // EDF meets every deadline; deadline-monotonic fixed priorities do not.
//! assert!(Simulator::new(&ts).horizon(Time::new(70)).run().is_schedulable());
//! let dm = Simulator::new(&ts)
//!     .policy(SchedulingPolicy::DeadlineMonotonic)
//!     .horizon(Time::new(70))
//!     .run();
//! assert!(!dm.is_schedulable());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod job;
mod oracle;
mod policy;
mod scheduler;
mod trace;

pub use job::{DeadlineMiss, Job};
pub use oracle::{simulate_edf_feasibility, simulate_feasibility, OracleVerdict};
pub use policy::SchedulingPolicy;
pub use scheduler::{SimulationOutcome, Simulator};
pub use trace::{ExecutionSlice, Trace};
